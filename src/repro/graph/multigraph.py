"""Multigraph support for the LT "parallel edges" weight scheme.

Some social networks are naturally multigraphs — e.g. a phone-call network
where each call ``u -> v`` is its own edge (Sec. 2.1.2 of the paper).  To
apply LT, parallel edges are consolidated into a simple graph where

    W(u, v) = c(u, v) / sum_{u' in In(v)} c(u', v)

with ``c(u, v)`` the number of parallel edges from ``u`` to ``v``.  This is
the generalization of LT-uniform to multigraphs used by SIMPATH's original
evaluation (myth M5 / Table 4).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

import numpy as np

from .digraph import DiGraph

__all__ = ["MultiDiGraph", "consolidate"]


class MultiDiGraph:
    """A bag of directed arcs that may repeat.  Nodes are ``0 .. n-1``."""

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] = ()) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.n = int(n)
        self._counts: Counter[tuple[int, int]] = Counter()
        for u, v in edges:
            self.add_edge(u, v)

    def add_edge(self, u: int, v: int, count: int = 1) -> None:
        """Record ``count`` parallel arcs from ``u`` to ``v``."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError("edge endpoint out of range")
        if count < 1:
            raise ValueError("count must be positive")
        if u != v:
            self._counts[(u, v)] += count

    @property
    def num_arcs(self) -> int:
        """Total number of arcs counting multiplicity."""
        return sum(self._counts.values())

    @property
    def num_edges(self) -> int:
        """Number of distinct (u, v) pairs."""
        return len(self._counts)

    def multiplicity(self, u: int, v: int) -> int:
        return self._counts.get((u, v), 0)

    def edge_items(self) -> Iterable[tuple[int, int, int]]:
        """Yield ``(u, v, multiplicity)`` for each distinct arc."""
        for (u, v), c in sorted(self._counts.items()):
            yield u, v, c


def consolidate(multigraph: MultiDiGraph) -> DiGraph:
    """Collapse parallel edges into a weighted :class:`DiGraph`.

    The returned graph carries the LT "parallel edges" weights, so incoming
    weights of every node with at least one in-arc sum to exactly 1.
    """
    items = list(multigraph.edge_items())
    if not items:
        return DiGraph.from_edges(multigraph.n, [])
    arr = np.asarray(items, dtype=np.int64)
    src, dst, counts = arr[:, 0], arr[:, 1], arr[:, 2].astype(np.float64)
    totals = np.zeros(multigraph.n, dtype=np.float64)
    np.add.at(totals, dst, counts)
    weights = counts / totals[dst]
    return DiGraph.from_arrays(multigraph.n, src, dst, weights, dedup=False)

"""Result records: JSON round-trip and ASCII rendering.

Benchmarks accumulate :class:`~repro.framework.metrics.RunRecord` objects;
this module persists them and renders the paper-style tables so bench
output can be compared against the published figures line by line.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Iterable, Sequence

from .metrics import RunRecord

__all__ = ["save_records", "load_records", "render_table", "render_series"]


def _jsonable(value):
    """Coerce numpy scalars and arrays hiding in extras to JSON types."""
    if hasattr(value, "item") and not isinstance(value, (list, dict, str)):
        try:
            return value.item()
        except (AttributeError, ValueError):
            pass
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def save_records(records: Iterable[RunRecord], path: str | os.PathLike) -> None:
    """Serialize records to a JSON file."""
    payload = [_jsonable(asdict(r)) for r in records]
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_records(path: str | os.PathLike) -> list[RunRecord]:
    """Load records previously written by :func:`save_records`."""
    with open(path) as handle:
        payload = json.load(handle)
    return [RunRecord(**item) for item in payload]


def render_table(
    records: Sequence[RunRecord],
    columns: Sequence[str] = ("algorithm", "model", "k", "status", "spread", "elapsed_seconds", "peak_memory_mb"),
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table of selected record fields."""
    headers = {
        "algorithm": "Algorithm",
        "model": "Model",
        "k": "k",
        "status": "Status",
        "spread": "Spread",
        "spread_std": "Spread sd",
        "elapsed_seconds": "Time (s)",
        "peak_memory_mb": "Mem (MB)",
    }

    def fmt(record: RunRecord, col: str) -> str:
        value = getattr(record, col)
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    rows = [[headers.get(c, c) for c in columns]]
    rows += [[fmt(r, c) for c in columns] for r in records]
    widths = [max(len(row[i]) for row in rows) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    for idx, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if idx == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence,
    series: dict[str, Sequence],
    title: str | None = None,
) -> str:
    """Paper-figure data as aligned columns: one x column, one per series."""
    names = list(series)
    rows = [[x_label] + names]
    for i, x in enumerate(xs):
        row = [str(x)]
        for name in names:
            value = series[name][i]
            if value is None:
                row.append("-")
            elif isinstance(value, float):
                row.append(f"{value:.3f}")
            else:
                row.append(str(value))
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines = []
    if title:
        lines.append(title)
    for idx, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if idx == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)

"""Diffusion substrate: models, cascade simulators, MC estimation, worlds."""

from .models import (
    IC,
    LT,
    LT_RANDOM,
    STANDARD_MODELS,
    TV,
    WC,
    Dynamics,
    PropagationModel,
    model_by_name,
    weighted_graph,
)
from .independent_cascade import simulate_ic, simulate_ic_times
from .linear_threshold import simulate_lt
from .simulation import (
    DEFAULT_MC_SIMULATIONS,
    SpreadEstimate,
    monte_carlo_spread,
    simulate_spread,
)
from .snapshots import (
    Snapshot,
    generate_ic_snapshot,
    generate_lt_snapshot,
    strongly_connected_components,
)
from .opinion import (
    OpinionEstimate,
    assign_opinions,
    monte_carlo_opinion_spread,
    simulate_opinion_spread,
)
from .rrpool import FlatRRPool
from .rrsets import RRCollection, greedy_max_cover, greedy_max_cover_legacy, random_rr_set

__all__ = [
    "IC",
    "LT",
    "LT_RANDOM",
    "STANDARD_MODELS",
    "TV",
    "WC",
    "Dynamics",
    "PropagationModel",
    "model_by_name",
    "weighted_graph",
    "simulate_ic",
    "simulate_ic_times",
    "simulate_lt",
    "DEFAULT_MC_SIMULATIONS",
    "SpreadEstimate",
    "monte_carlo_spread",
    "simulate_spread",
    "Snapshot",
    "generate_ic_snapshot",
    "generate_lt_snapshot",
    "strongly_connected_components",
    "OpinionEstimate",
    "assign_opinions",
    "monte_carlo_opinion_spread",
    "simulate_opinion_spread",
    "FlatRRPool",
    "RRCollection",
    "greedy_max_cover",
    "greedy_max_cover_legacy",
    "random_rr_set",
]

"""The benchmarking framework of Fig. 2 — the paper's core contribution."""

from .asciiplot import line_chart
from .convergence import MCConvergencePoint, converged, mc_convergence_study
from .experiments import (
    SweepConfig,
    head_to_head,
    memory_sweep,
    pillar_scores,
    quality_sweep,
)
from .isolation import (
    FaultInjector,
    IsolatedExecutor,
    IsolationConfig,
    RetryPolicy,
    derive_rng,
    execute_cell,
    isolation_supported,
)
from .metrics import (
    BUDGET_STATUSES,
    FAILURE_STATUSES,
    STATUS_CRASHED,
    STATUS_DNF,
    STATUS_FAILED,
    STATUS_KILLED,
    STATUS_OK,
    Measurement,
    ResourceBudget,
    RunRecord,
    measure,
    run_with_budget,
)
from .report import EXPERIMENT_ORDER, collect_results, render_report
from .results import (
    CheckpointJournal,
    append_record,
    cell_key,
    load_records,
    render_series,
    render_table,
    save_records,
)
from .runner import FrameworkTrace, IMFramework
from .skyline import PillarScores, classify_pillars, recommend, skyline
from .tuning import SweepPoint, TuningResult, tune_parameter

__all__ = [
    "line_chart",
    "SweepConfig",
    "head_to_head",
    "memory_sweep",
    "pillar_scores",
    "quality_sweep",
    "MCConvergencePoint",
    "converged",
    "mc_convergence_study",
    "STATUS_CRASHED",
    "STATUS_DNF",
    "STATUS_FAILED",
    "STATUS_KILLED",
    "STATUS_OK",
    "BUDGET_STATUSES",
    "FAILURE_STATUSES",
    "Measurement",
    "ResourceBudget",
    "RunRecord",
    "measure",
    "run_with_budget",
    "FaultInjector",
    "IsolatedExecutor",
    "IsolationConfig",
    "RetryPolicy",
    "derive_rng",
    "execute_cell",
    "isolation_supported",
    "EXPERIMENT_ORDER",
    "collect_results",
    "render_report",
    "CheckpointJournal",
    "append_record",
    "cell_key",
    "load_records",
    "render_series",
    "render_table",
    "save_records",
    "FrameworkTrace",
    "IMFramework",
    "PillarScores",
    "classify_pillars",
    "recommend",
    "skyline",
    "SweepPoint",
    "TuningResult",
    "tune_parameter",
]

"""StaticGreedy (Cheng et al., CIKM'13) — Sec. 4.3.

Generates R live-edge snapshots *once*, then runs lazy greedy where a
node's gain is its average marginal reachability across snapshots.  Reusing
the same snapshots for every iteration removes the sampling noise that
plagues per-iteration MC greedy ("solving the scalability-accuracy
dilemma"), but the reach computations are on the raw snapshot graphs —
no SCC contraction — which is why PMC overtakes it on large or dense
inputs (Sec. 5.5; the paper could not even run SG on its large datasets).

Because a covered node's reachable set is already fully covered, marginal
BFS stops at covered nodes — marginal gains shrink rapidly across
iterations, the property lazy evaluation feeds on.
"""

from __future__ import annotations

from collections import deque
from typing import Any

import heapq
import itertools

import numpy as np

from ..diffusion.models import Dynamics, PropagationModel
from ..diffusion.snapshots import generate_ic_snapshot
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm

__all__ = ["StaticGreedy", "snapshot_adjacency"]


def snapshot_adjacency(graph: DiGraph, live: np.ndarray) -> list[np.ndarray]:
    """Per-node live out-neighbour arrays for one snapshot."""
    counts = np.zeros(graph.n, dtype=np.int64)
    live_idx = np.nonzero(live)[0]
    src = graph.edge_src[live_idx]
    np.add.at(counts, src, 1)
    splits = np.cumsum(counts)[:-1]
    return np.split(graph.out_dst[live_idx], splits)


def _marginal_reach(
    adj: list[np.ndarray], covered: np.ndarray, source: int
) -> list[int]:
    """Nodes newly reachable from ``source``, stopping at covered nodes."""
    if covered[source]:
        return []
    reached = [source]
    seen = {source}
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        for v in adj[u]:
            v = int(v)
            if v in seen or covered[v]:
                continue
            seen.add(v)
            reached.append(v)
            queue.append(v)
    return reached


class StaticGreedy(IMAlgorithm):
    """Snapshot-averaged lazy greedy (the SG of the paper's figures)."""

    name = "StaticGreedy"
    supported = (Dynamics.IC,)
    external_parameter = "#Snapshots"

    def __init__(self, num_snapshots: int = 250) -> None:
        if num_snapshots < 1:
            raise ValueError("num_snapshots must be positive")
        self.num_snapshots = num_snapshots

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        snapshots: list[list[np.ndarray]] = []
        for __ in range(self.num_snapshots):
            self._tick(budget)
            live = rng.random(graph.m) < graph.out_w
            snapshots.append(snapshot_adjacency(graph, live))
        covered = [np.zeros(graph.n, dtype=bool) for __ in snapshots]

        def gain(v: int) -> float:
            total = 0
            for adj, cov in zip(snapshots, covered):
                total += len(_marginal_reach(adj, cov, v))
            return total / len(snapshots)

        counter = itertools.count()
        cached = np.zeros(graph.n, dtype=np.float64)
        heap: list[tuple[float, int, int, int]] = []
        for v in range(graph.n):
            if v % 64 == 0:
                self._tick(budget)
            g = gain(v)
            cached[v] = g
            heapq.heappush(heap, (-g, next(counter), v, 0))

        seeds: list[int] = []
        in_seed = np.zeros(graph.n, dtype=bool)
        estimated = 0.0
        while heap and len(seeds) < k:
            neg_gain, __, v, round_tag = heapq.heappop(heap)
            if in_seed[v] or -neg_gain != cached[v]:
                continue
            if round_tag == len(seeds):
                seeds.append(v)
                in_seed[v] = True
                estimated += -neg_gain
                for adj, cov in zip(snapshots, covered):
                    for u in _marginal_reach(adj, cov, v):
                        cov[u] = True
                continue
            self._tick(budget)
            g = gain(v)
            cached[v] = g
            heapq.heappush(heap, (-g, next(counter), v, len(seeds)))
        return seeds, {
            "num_snapshots": self.num_snapshots,
            "estimated_spread": estimated,
        }

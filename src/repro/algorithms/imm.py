"""IMM — Influence Maximization via Martingales (Tang, Shi & Xiao, SIGMOD'15).

Sec. 4.2 of the benchmarking paper.  IMM replaces TIM+'s KPT estimation
with a martingale-based search for a lower bound LB on OPT: it repeatedly
doubles the RR pool, runs greedy max-cover, and stops as soon as the
covered fraction certifies LB; then it tops the pool up to θ = λ*/LB and
returns the final max-cover seeds.  Crucially, the pool is *reused* across
phases (the martingale argument makes that sound), which is where its
speed-up over TIM+ comes from.

As with TIM+, the spread this algorithm itself reports is the coverage
extrapolation (myth M4 / Appendix A): inflated, and increasingly so at
larger ε because smaller pools over-fit the selected seeds.  ``rr_scale``
and ``max_rr_sets`` play the same roles as in :class:`TIMPlus`.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..diffusion.models import Dynamics, PropagationModel
from ..diffusion.rrpool import FlatRRPool, greedy_max_cover
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm
from .ris import log_comb

__all__ = ["IMM"]


class IMM(IMAlgorithm):
    """IMM with martingale-based sampling (Alg. 3 of the IMM paper)."""

    name = "IMM"
    supported = (Dynamics.IC, Dynamics.LT)
    external_parameter = "epsilon"

    def __init__(
        self,
        epsilon: float = 0.5,
        ell: float = 1.0,
        rr_scale: float = 1.0,
        max_rr_sets: int | None = 2_000_000,
        rr_workers: int | None = None,
    ) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon
        self.ell = ell
        self.rr_scale = rr_scale
        self.max_rr_sets = max_rr_sets
        self.rr_workers = rr_workers

    def _cap(self, count: float) -> int:
        count = int(math.ceil(count * self.rr_scale))
        if self.max_rr_sets is not None:
            count = min(count, self.max_rr_sets)
        return max(count, 1)

    def _extend(
        self,
        pool: FlatRRPool,
        graph: DiGraph,
        dynamics: Dynamics,
        target: int,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> None:
        pool.extend(
            graph, dynamics, target - len(pool), rng,
            workers=self.rr_workers, budget=budget,
        )

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        if k == 0:
            return [], {"num_rr_sets": 0, "extrapolated_spread": 0.0}
        n = graph.n
        eps = self.epsilon
        log_n = math.log(max(n, 2))
        lcnk = log_comb(n, k)
        # ell is boosted so the union bound over both phases still gives
        # success probability 1 - 1/n^ell (IMM paper, Sec. 4.3).
        ell = self.ell * (1.0 + math.log(2) / log_n)

        eps_prime = math.sqrt(2.0) * eps
        lambda_prime = (
            (2.0 + 2.0 * eps_prime / 3.0)
            * (lcnk + ell * log_n + math.log(max(math.log2(max(n, 2)), 1.0)))
            * n
            / eps_prime**2
        )
        one_minus_inv_e = 1.0 - 1.0 / math.e
        alpha = math.sqrt(ell * log_n + math.log(2))
        beta = math.sqrt(one_minus_inv_e * (lcnk + ell * log_n + math.log(2)))
        lambda_star = 2.0 * n * (one_minus_inv_e * alpha + beta) ** 2 / eps**2

        pool = FlatRRPool(graph.n)
        lower_bound = 1.0
        phases = 0
        max_i = max(int(math.ceil(math.log2(max(n, 2)))) - 1, 1)
        for i in range(1, max_i + 1):
            phases = i
            x = n / 2.0**i
            theta_i = self._cap(lambda_prime / x)
            self._extend(pool, graph, model.dynamics, theta_i, rng, budget)
            seeds_i, coverage_i = greedy_max_cover(
                pool, k, pad_priority=graph.out_degree()
            )
            if n * coverage_i >= (1.0 + eps_prime) * x:
                lower_bound = n * coverage_i / (1.0 + eps_prime)
                break

        theta = self._cap(lambda_star / lower_bound)
        self._extend(pool, graph, model.dynamics, theta, rng, budget)
        seeds, coverage = greedy_max_cover(pool, k, pad_priority=graph.out_degree())
        return seeds, {
            "lower_bound": lower_bound,
            "sampling_phases": phases,
            "theta": theta,
            "num_rr_sets": len(pool),
            "coverage_fraction": coverage,
            "extrapolated_spread": coverage * n,
            "epsilon": eps,
            "rr_pool_bytes": pool.nbytes,
        }

"""TIM+ — Two-phase Influence Maximization (Tang, Xiao & Shi, SIGMOD'14).

Sec. 4.2 of the benchmarking paper.  Phase 1 estimates KPT (the expected
cascade cost of a random size-k seed set) and refines it to KPT+ with an
intermediate greedy pass; phase 2 samples θ = λ/KPT+ RR sets and greedily
max-covers them, giving a (1 − 1/e − ε) guarantee w.p. 1 − 1/n^ℓ.

Benchmark-relevant behaviours reproduced deliberately:

* The *reported* spread is the coverage extrapolation ``F(S)·n`` — the
  quantity the released TIM+ code prints (Appendix A), which the paper's
  myth M4 shows is inflated and *grows* with ε.  True σ(S) must be
  computed by MC simulation, as the benchmarking framework does.
* Under constant-weight IC on dense graphs the RR sets are huge, which is
  the memory blow-up of Figs. 1a/8 and M6; a memory budget turns that
  into a ``CRASHED`` status.

``rr_scale`` scales every sample-size bound (θ and the KPT-estimation
batch sizes).  The theoretical bounds assume C++-scale throughput; on the
scaled Python datasets a value well below 1 preserves the ε-shape of the
bounds (θ ∝ 1/ε²) at tractable cost.  ``max_rr_sets`` is a hard safety
cap.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..diffusion.models import Dynamics, PropagationModel
from ..diffusion.rrpool import FlatRRPool, greedy_max_cover
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm
from .ris import log_comb

__all__ = ["TIMPlus"]


class TIMPlus(IMAlgorithm):
    """TIM+ with the KPT refinement step of the original paper."""

    name = "TIM+"
    supported = (Dynamics.IC, Dynamics.LT)
    external_parameter = "epsilon"

    def __init__(
        self,
        epsilon: float = 0.5,
        ell: float = 1.0,
        rr_scale: float = 1.0,
        max_rr_sets: int | None = 2_000_000,
        rr_workers: int | None = None,
    ) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon
        self.ell = ell
        self.rr_scale = rr_scale
        self.max_rr_sets = max_rr_sets
        self.rr_workers = rr_workers

    # ------------------------------------------------------------------

    def _cap(self, count: float) -> int:
        count = int(math.ceil(count * self.rr_scale))
        if self.max_rr_sets is not None:
            count = min(count, self.max_rr_sets)
        return max(count, 1)

    def _extend(
        self,
        pool: FlatRRPool,
        graph: DiGraph,
        dynamics: Dynamics,
        target: int,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> None:
        pool.extend(
            graph, dynamics, target - len(pool), rng,
            workers=self.rr_workers, budget=budget,
        )

    def _kpt_estimation(
        self,
        graph: DiGraph,
        k: int,
        dynamics: Dynamics,
        rng: np.random.Generator,
        budget: Budget | None,
        pool: FlatRRPool,
    ) -> float:
        """Alg. 2 of the TIM paper: iterative-halving estimate of KPT."""
        n, m = graph.n, graph.m
        if m == 0:
            return 1.0
        log_n = math.log(max(n, 2))
        max_i = max(int(math.log2(max(n, 2))) - 1, 1)
        for i in range(1, max_i + 1):
            ci = self._cap((6 * self.ell * log_n + 6 * math.log(max_i + 1)) * 2**i)
            start = len(pool)
            self._extend(pool, graph, dynamics, start + ci, rng, budget)
            # kappa per sample, vectorized over the batch's widths.
            widths = pool.widths[start : start + ci].astype(np.float64)
            total = float(np.sum(1.0 - (1.0 - widths / m) ** k))
            if total / ci > 1.0 / 2**i:
                return max(n * total / (2.0 * ci), 1.0)
        return 1.0

    def _refine_kpt(
        self,
        graph: DiGraph,
        k: int,
        dynamics: Dynamics,
        kpt: float,
        rng: np.random.Generator,
        budget: Budget | None,
        pool: FlatRRPool,
    ) -> float:
        """Alg. 3 of the TIM paper: tighten KPT with an intermediate greedy."""
        n = graph.n
        log_n = math.log(max(n, 2))
        seeds, __ = greedy_max_cover(pool, k, pad_priority=graph.out_degree())
        eps_prime = 5.0 * (self.ell * self.epsilon**2 / (k + self.ell)) ** (1.0 / 3.0)
        theta_prime = self._cap(
            (2 + eps_prime) * self.ell * n * log_n / (eps_prime**2 * kpt)
        )
        probe = FlatRRPool(graph.n)
        self._extend(probe, graph, dynamics, theta_prime, rng, budget)
        fraction = probe.coverage_fraction(seeds)
        kpt_plus = fraction * n / (1.0 + eps_prime)
        return max(kpt_plus, kpt)

    # ------------------------------------------------------------------

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        if k == 0:
            return [], {"num_rr_sets": 0, "extrapolated_spread": 0.0}
        n = graph.n
        log_n = math.log(max(n, 2))
        pool = FlatRRPool(graph.n)
        kpt = self._kpt_estimation(graph, k, model.dynamics, rng, budget, pool)
        kpt_plus = self._refine_kpt(graph, k, model.dynamics, kpt, rng, budget, pool)

        lam = (
            (8 + 2 * self.epsilon)
            * n
            * (self.ell * log_n + log_comb(n, k) + math.log(2))
            / self.epsilon**2
        )
        theta = self._cap(lam / kpt_plus)
        final = FlatRRPool(graph.n)
        self._extend(final, graph, model.dynamics, theta, rng, budget)
        seeds, coverage = greedy_max_cover(final, k, pad_priority=graph.out_degree())
        return seeds, {
            "kpt": kpt,
            "kpt_plus": kpt_plus,
            "theta": theta,
            "num_rr_sets": len(final),
            "coverage_fraction": coverage,
            "extrapolated_spread": coverage * n,
            "epsilon": self.epsilon,
            "rr_pool_bytes": final.nbytes,
        }

"""Quickstart: pick seeds with IMM and score them with Monte Carlo.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import algorithms, datasets, diffusion


def main() -> None:
    # 1. A social network.  The catalog ships scaled analogues of the
    #    paper's eight datasets; nethept is the small collaboration graph.
    topology = datasets.load("nethept")
    print(f"Loaded {topology}")

    # 2. A propagation model = diffusion dynamics + edge-weight scheme.
    #    WC (weighted cascade) assigns W(u,v) = 1/|In(v)|.
    model = diffusion.WC
    graph = model.weighted(topology)

    # 3. An IM algorithm.  IMM is the paper's recommendation for WC when
    #    memory is plentiful (Fig. 11b).  rr_scale shrinks its theoretical
    #    sample sizes to pure-Python scale.
    algo = algorithms.make("IMM", epsilon=0.5, rr_scale=0.05)
    result = algo.select(graph, k=20, model=model, rng=np.random.default_rng(0))
    print(f"IMM picked {result.k} seeds in {result.elapsed_seconds:.2f}s")
    print(f"Seeds: {result.seeds}")

    # 4. Decoupled evaluation: never trust an algorithm's self-reported
    #    spread (myth M4) — run Monte-Carlo simulations.
    estimate = diffusion.monte_carlo_spread(
        graph, result.seeds, model, r=2000, rng=np.random.default_rng(1)
    )
    print(
        f"Expected spread: {estimate.mean:.1f} nodes "
        f"(+/- {estimate.stderr:.1f}, {estimate.simulations} simulations)"
    )
    print(
        f"IMM's own extrapolated estimate was "
        f"{result.extras['extrapolated_spread']:.1f} — inflated, as the "
        f"paper's myth M4 predicts."
    )


if __name__ == "__main__":
    main()

"""Tests for resource measurement, budgets and run records."""

import time

import numpy as np
import pytest

from repro.algorithms.base import BudgetExceeded
from repro.algorithms.celf import CELF
from repro.algorithms.heuristics import Degree
from repro.diffusion.models import IC
from repro.framework.metrics import (
    BUDGET_STATUSES,
    FAILURE_STATUSES,
    STATUS_CRASHED,
    STATUS_DNF,
    STATUS_FAILED,
    STATUS_KILLED,
    STATUS_OK,
    Measurement,
    ResourceBudget,
    RunRecord,
    measure,
    run_with_budget,
)
from repro.graph.digraph import DiGraph


@pytest.fixture
def small_graph():
    return IC.weighted(
        DiGraph.from_edges(30, [(i, (i + 1) % 30) for i in range(30)])
    )


class TestMeasure:
    def test_elapsed_positive(self):
        with measure(track_memory=False) as sink:
            time.sleep(0.01)
        assert sink[0].elapsed_seconds >= 0.01
        assert sink[0].peak_memory_mb is None

    def test_memory_tracked(self):
        with measure(track_memory=True) as sink:
            __data = np.zeros(2_000_000)  # ~16 MB
        assert sink[0].peak_memory_mb is not None
        assert sink[0].peak_memory_mb > 10

    def test_nested_measurement(self):
        with measure(track_memory=True) as outer:
            with measure(track_memory=True) as inner:
                __ = np.zeros(500_000)
        assert inner[0].peak_memory_mb is not None
        assert outer[0].peak_memory_mb is not None

    def test_nested_block_does_not_clobber_outer_peak(self):
        # Regression: the inner block's reset_peak() used to erase the
        # outer block's high-water mark, so an outer allocation freed
        # before the inner block started was never reported.
        with measure(track_memory=True) as outer:
            big = np.zeros(2_000_000)  # ~16 MB, the outer peak
            del big
            with measure(track_memory=True) as inner:
                __ = np.zeros(100_000)  # ~0.8 MB
        assert inner[0].peak_memory_mb < 10
        assert outer[0].peak_memory_mb > 10

    def test_outer_peak_sees_nested_allocation(self):
        # The converse direction: a peak inside the inner block must
        # still count toward the enclosing measurement.
        with measure(track_memory=True) as outer:
            with measure(track_memory=True) as inner:
                __ = np.zeros(2_000_000)  # ~16 MB
        assert inner[0].peak_memory_mb > 10
        assert outer[0].peak_memory_mb >= inner[0].peak_memory_mb

    def test_doubly_nested_peaks_propagate(self):
        with measure(track_memory=True) as outer:
            with measure(track_memory=True):
                with measure(track_memory=True) as innermost:
                    __ = np.zeros(2_000_000)  # ~16 MB
        assert outer[0].peak_memory_mb >= innermost[0].peak_memory_mb > 10


class TestResourceBudget:
    def test_memory_budget_raises_crashed(self):
        import tracemalloc

        budget = ResourceBudget(memory_limit_mb=1.0)
        budget.start()
        tracemalloc.start()
        try:
            __data = np.zeros(1_000_000)  # ~8 MB
            with pytest.raises(BudgetExceeded) as err:
                budget.check()
            assert err.value.status == STATUS_CRASHED
        finally:
            tracemalloc.stop()

    def test_time_budget_status_dnf(self):
        budget = ResourceBudget(time_limit_seconds=0.0)
        budget.start()
        time.sleep(0.001)
        with pytest.raises(BudgetExceeded) as err:
            budget.check()
        assert err.value.status == STATUS_DNF


class TestRunWithBudget:
    def test_ok_run(self, small_graph, rng):
        record, result = run_with_budget(Degree(), small_graph, 3, IC, rng=rng)
        assert record.status == STATUS_OK
        assert record.ok
        assert len(record.seeds) == 3
        assert result is not None

    def test_dnf_on_slow_algorithm(self, small_graph, rng):
        record, result = run_with_budget(
            CELF(mc_simulations=5000),
            small_graph,
            5,
            IC,
            rng=rng,
            time_limit_seconds=0.05,
        )
        assert record.status == STATUS_DNF
        assert record.seeds == []
        assert result is None
        assert "budget_detail" in record.extras

    def test_cell_rendering(self):
        ok = RunRecord("X", "IC", 5, STATUS_OK, spread=12.0, elapsed_seconds=1.0,
                       peak_memory_mb=3.0)
        assert "12.0" in ok.cell()
        dnf = RunRecord("X", "IC", 5, STATUS_DNF)
        assert dnf.cell() == "DNF"

    def test_cell_renders_zero_peak_memory(self):
        # Regression: a legitimate measured peak of 0.0 MB used to be
        # truth-tested away and rendered as the untracked "-" placeholder.
        zero = RunRecord("X", "IC", 5, STATUS_OK, spread=1.0,
                         elapsed_seconds=0.5, peak_memory_mb=0.0)
        assert zero.cell().endswith("0MB")
        untracked = RunRecord("X", "IC", 5, STATUS_OK, spread=1.0,
                              elapsed_seconds=0.5, peak_memory_mb=None)
        assert untracked.cell().endswith("-")

    def test_memory_tracking_optional(self, small_graph, rng):
        record, __ = run_with_budget(
            Degree(), small_graph, 2, IC, rng=rng, track_memory=False
        )
        assert record.peak_memory_mb is None


class TestFailureTaxonomy:
    def test_status_vocabulary(self):
        assert STATUS_FAILED == "FAILED" and STATUS_KILLED == "KILLED"
        assert set(BUDGET_STATUSES) == {STATUS_DNF, STATUS_CRASHED}
        assert set(FAILURE_STATUSES) == {STATUS_FAILED, STATUS_KILLED}
        assert STATUS_OK not in BUDGET_STATUSES + FAILURE_STATUSES

    def test_unexpected_exception_becomes_failed(self, small_graph, rng):
        from repro.framework.isolation import FaultInjector

        algo = FaultInjector(
            Degree(), fault="raise", exception=KeyError("boom")
        )
        record, result = run_with_budget(algo, small_graph, 3, IC, rng=rng)
        assert record.status == STATUS_FAILED
        assert not record.ok
        assert result is None
        failure = record.extras["failure"]
        assert failure["type"] == "KeyError"
        assert "boom" in failure["traceback"]

    def test_failed_cell_renders_status(self):
        failed = RunRecord("X", "IC", 5, STATUS_FAILED)
        assert failed.cell() == "FAILED"

    def test_memory_limit_without_tracking_rejected(self, small_graph, rng):
        with pytest.raises(ValueError, match="track_memory"):
            run_with_budget(
                Degree(), small_graph, 2, IC, rng=rng,
                memory_limit_mb=10.0, track_memory=False,
            )

    def test_memory_limit_with_tracking_accepted(self, small_graph, rng):
        record, __ = run_with_budget(
            Degree(), small_graph, 2, IC, rng=rng,
            memory_limit_mb=500.0, track_memory=True,
        )
        assert record.status == STATUS_OK
        assert record.peak_memory_mb is not None

"""Tests for the opinion-aware (OI) diffusion extension."""

import numpy as np
import pytest

from repro.algorithms import OpinionEaSyIM
from repro.diffusion import (
    IC,
    LT,
    assign_opinions,
    monte_carlo_opinion_spread,
    simulate_opinion_spread,
)
from repro.graph.digraph import DiGraph


@pytest.fixture
def chain():
    return DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[1.0, 1.0])


class TestAssignOpinions:
    def test_range(self, rng):
        opinions = assign_opinions(500, rng)
        assert ((opinions >= -1.0) & (opinions <= 1.0)).all()

    def test_negative_fraction(self, rng):
        opinions = assign_opinions(2000, rng, negative_fraction=0.3)
        assert (opinions < 0).mean() == pytest.approx(0.3, abs=0.05)

    def test_zero_negatives(self, rng):
        opinions = assign_opinions(200, rng, negative_fraction=0.0)
        assert (opinions >= 0).all()

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            assign_opinions(10, rng, negative_fraction=1.5)


class TestOpinionSpread:
    def test_deterministic_chain_sums_opinions(self, chain, rng):
        opinions = np.array([0.5, -0.25, 1.0])
        payoff = simulate_opinion_spread(chain, [0], opinions, rng)
        assert payoff == pytest.approx(1.25)  # all three activate

    def test_detractors_reduce_payoff(self, chain, rng):
        good = np.array([0.5, 0.5, 0.5])
        bad = np.array([0.5, -0.9, 0.5])
        p_good = monte_carlo_opinion_spread(chain, [0], good, r=50, rng=rng)
        p_bad = monte_carlo_opinion_spread(chain, [0], bad, r=50, rng=rng)
        assert p_bad.mean < p_good.mean

    def test_shape_validation(self, chain, rng):
        with pytest.raises(ValueError):
            simulate_opinion_spread(chain, [0], np.array([0.5]), rng)

    def test_invalid_r(self, chain, rng):
        with pytest.raises(ValueError):
            monte_carlo_opinion_spread(chain, [0], np.zeros(3), r=0, rng=rng)


class TestOpinionEaSyIM:
    def test_avoids_detractor_heavy_regions(self, rng):
        # Hub 0 reaches detractors; hub 4 reaches supporters: seed 4 first.
        g = DiGraph.from_edges(
            8,
            [(0, 1), (0, 2), (0, 3), (4, 5), (4, 6), (4, 7)],
            weights=[0.9] * 6,
        )
        opinions = np.array([0.1, -0.9, -0.9, -0.9, 0.1, 0.9, 0.9, 0.9])
        res = OpinionEaSyIM(opinions, path_length=2).select(g, 1, IC, rng=rng)
        assert res.seeds == [4]

    def test_oblivious_easyim_would_tie(self, rng):
        # With all-ones opinions the OI scores reduce to EaSyIM's.
        from repro.algorithms import EaSyIM

        trial = np.random.default_rng(2)
        g = IC.weighted(DiGraph.from_arrays(
            30, trial.integers(0, 30, 90), trial.integers(0, 30, 90)
        ))
        ones = np.ones(30)
        oi = OpinionEaSyIM(ones, path_length=3).select(g, 3, IC, rng=rng)
        plain = EaSyIM(path_length=3).select(g, 3, IC, rng=rng)
        assert oi.seeds == plain.seeds

    def test_supports_lt_weights(self, rng):
        g = LT.weighted(DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)]))
        res = OpinionEaSyIM(np.ones(4), path_length=2).select(g, 2, LT, rng=rng)
        assert len(res.seeds) == 2

    def test_payoff_beats_oblivious_selection(self, rng):
        from repro.algorithms import EaSyIM

        trial = np.random.default_rng(7)
        g = IC.weighted(DiGraph.from_arrays(
            60, trial.integers(0, 60, 240), trial.integers(0, 60, 240)
        ))
        opinions = assign_opinions(60, np.random.default_rng(8),
                                   negative_fraction=0.4)
        aware = OpinionEaSyIM(opinions, path_length=3).select(g, 5, IC, rng=rng)
        oblivious = EaSyIM(path_length=3).select(g, 5, IC, rng=rng)
        p_aware = monte_carlo_opinion_spread(
            g, aware.seeds, opinions, r=1500, rng=np.random.default_rng(9))
        p_oblivious = monte_carlo_opinion_spread(
            g, oblivious.seeds, opinions, r=1500, rng=np.random.default_rng(9))
        assert p_aware.mean >= p_oblivious.mean - 2 * p_aware.std / np.sqrt(1500)

    def test_opinion_shape_validated(self, chain, rng):
        with pytest.raises(ValueError):
            OpinionEaSyIM(np.ones(2)).select(chain, 1, IC, rng=rng)

    def test_invalid_path_length(self):
        with pytest.raises(ValueError):
            OpinionEaSyIM(np.ones(3), path_length=0)

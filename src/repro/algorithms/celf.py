"""CELF and CELF++ — lazy-forward greedy (Sec. 4.1).

Both exploit submodularity: a node's marginal gain can only shrink as the
seed set grows, so a stale queue entry whose cached gain already trails the
current best need never be re-evaluated.

* CELF (Leskovec et al., KDD'07) keeps one cached gain per node.
* CELF++ (Goyal et al., WWW'11) additionally caches ``mg2`` — the node's
  marginal gain w.r.t. S ∪ {prev_best} — so that when ``prev_best`` is the
  seed just picked, the fresh gain is available without re-simulating.

Myth M1 machinery: both classes count *node lookups* (spread estimations)
per iteration, the execution-environment-independent metric of Appendix C.
CELF++'s look-ahead costs extra simulation work per lookup, which is why
its wall-clock time ends up on par with CELF despite slightly fewer
lookups — the behaviour the paper demonstrates in Figs. 9a-b/13.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any

import numpy as np

from ..diffusion.models import Dynamics, PropagationModel
from ..diffusion.simulation import DEFAULT_MC_SIMULATIONS, monte_carlo_spread
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm

__all__ = ["CELF", "CELFpp"]


class CELF(IMAlgorithm):
    """Cost-Effective Lazy Forward selection."""

    name = "CELF"
    supported = (Dynamics.IC, Dynamics.LT)
    external_parameter = "#MC Simulations"

    def __init__(self, mc_simulations: int = DEFAULT_MC_SIMULATIONS) -> None:
        if mc_simulations < 1:
            raise ValueError("mc_simulations must be positive")
        self.mc_simulations = mc_simulations

    def _sigma(self, graph, seeds, model, rng) -> float:
        return monte_carlo_spread(
            graph, seeds, model, r=self.mc_simulations, rng=rng
        ).mean

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        counter = itertools.count()
        heap: list[tuple[float, int, int, int]] = []  # (-gain, tiebreak, node, round)
        cached = np.zeros(graph.n, dtype=np.float64)
        lookups = [0]
        for v in range(graph.n):
            self._tick(budget)
            gain = self._sigma(graph, [v], model, rng)
            cached[v] = gain
            lookups[0] += 1
            heapq.heappush(heap, (-gain, next(counter), v, 0))

        seeds: list[int] = []
        in_seed = np.zeros(graph.n, dtype=bool)
        sigma_s = 0.0
        while heap and len(seeds) < k:
            neg_gain, __, v, round_tag = heapq.heappop(heap)
            if in_seed[v] or -neg_gain != cached[v]:
                continue  # stale duplicate entry
            if round_tag == len(seeds):
                # Gain is fresh for the current seed set: pick it.
                seeds.append(v)
                in_seed[v] = True
                sigma_s += -neg_gain
                if len(lookups) <= len(seeds) and len(seeds) < k:
                    lookups.append(0)
                continue
            self._tick(budget)
            gain = self._sigma(graph, seeds + [v], model, rng) - sigma_s
            cached[v] = gain
            lookups[-1] += 1
            heapq.heappush(heap, (-gain, next(counter), v, len(seeds)))
        return seeds, {
            "node_lookups_per_iteration": lookups[: max(len(seeds), 1)],
            "estimated_spread": sigma_s,
        }


class CELFpp(IMAlgorithm):
    """CELF++ with the prev-best look-ahead optimization."""

    name = "CELF++"
    supported = (Dynamics.IC, Dynamics.LT)
    external_parameter = "#MC Simulations"

    def __init__(self, mc_simulations: int = DEFAULT_MC_SIMULATIONS) -> None:
        if mc_simulations < 1:
            raise ValueError("mc_simulations must be positive")
        self.mc_simulations = mc_simulations

    def _sigma(self, graph, seeds, model, rng) -> float:
        return monte_carlo_spread(
            graph, seeds, model, r=self.mc_simulations, rng=rng
        ).mean

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        counter = itertools.count()
        # Entry state per node: mg1 (gain wrt S), prev_best (the best node
        # seen when mg1 was computed), mg2 (gain wrt S + prev_best), flag
        # (|S| at computation time).
        mg1 = np.zeros(graph.n, dtype=np.float64)
        mg2 = np.zeros(graph.n, dtype=np.float64)
        prev_best = np.full(graph.n, -1, dtype=np.int64)
        flag = np.zeros(graph.n, dtype=np.int64)

        heap: list[tuple[float, int, int]] = []
        lookups = [0]
        cur_best = -1
        cur_best_gain = -np.inf
        for v in range(graph.n):
            self._tick(budget)
            mg1[v] = self._sigma(graph, [v], model, rng)
            lookups[0] += 1
            prev_best[v] = cur_best
            if cur_best >= 0:
                # Look-ahead: gain of v given the current front-runner is
                # also simulated now — the extra work CELF++ banks on.
                mg2[v] = self._sigma(graph, [cur_best, v], model, rng) - cur_best_gain
            else:
                mg2[v] = mg1[v]
            if mg1[v] > cur_best_gain:
                cur_best_gain, cur_best = mg1[v], v
            heapq.heappush(heap, (-mg1[v], next(counter), v))

        seeds: list[int] = []
        last_seed = -1
        sigma_s = 0.0
        cur_best = -1
        cur_best_gain = -np.inf
        in_seed = np.zeros(graph.n, dtype=bool)
        while heap and len(seeds) < k:
            neg_gain, __, v = heapq.heappop(heap)
            if in_seed[v] or -neg_gain != mg1[v]:
                continue  # stale duplicate entry
            if flag[v] == len(seeds):
                seeds.append(v)
                in_seed[v] = True
                sigma_s += mg1[v]
                last_seed = v
                cur_best, cur_best_gain = -1, -np.inf
                if len(lookups) <= len(seeds) and len(seeds) < k:
                    lookups.append(0)
                continue
            if prev_best[v] == last_seed and flag[v] == len(seeds) - 1:
                # The saving: mg2 was computed against exactly this seed set.
                mg1[v] = mg2[v]
            else:
                self._tick(budget)
                mg1[v] = self._sigma(graph, seeds + [v], model, rng) - sigma_s
                lookups[-1] += 1
                prev_best[v] = cur_best
                if cur_best >= 0 and cur_best != v:
                    mg2[v] = (
                        self._sigma(graph, seeds + [cur_best, v], model, rng)
                        - sigma_s
                        - cur_best_gain
                    )
                else:
                    mg2[v] = mg1[v]
            flag[v] = len(seeds)
            if mg1[v] > cur_best_gain:
                cur_best_gain, cur_best = mg1[v], v
            heapq.heappush(heap, (-mg1[v], next(counter), v))
        return seeds, {
            "node_lookups_per_iteration": lookups[: max(len(seeds), 1)],
            "estimated_spread": sigma_s,
        }

"""Byte-budgeted LRU over the server's warm per-(graph, model, params) state.

Three artifact kinds ride in one cache, all measured in bytes through the
``nbytes`` / ``nbytes_detail`` protocol the engines already expose:

* ``rrpool`` — a sampled :class:`~repro.diffusion.rrpool.FlatRRPool`
  (CSR pairs + lazy inverted index): any ``top-k`` against it is a warm
  vectorized max-cover, no resampling.
* ``oracle`` — a deterministic spread oracle (snapshot live-edge worlds,
  sketch bounds, or content-keyed batched MC) answering ``sigma`` and
  ``gain`` queries online — the Cohen et al. sketch-oracle serving
  pattern.
* ``selection`` — a finished :class:`SeedSelectionResult`; the greedy
  prefix property (``seeds[:k']`` answers any smaller budget) makes one
  cached run warm for every ``k' <= k``.

Eviction is least-recently-used by total bytes.  The newest artifact is
never evicted — a build that alone exceeds the budget still serves the
request that paid for it, and simply leaves nothing else resident.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Artifact", "ArtifactLRU", "artifact_key", "payload_nbytes"]


def artifact_key(kind: str, dataset: str, model: str, **params: Any) -> str:
    """Canonical cache key for a (kind, graph, model, params) artifact."""
    suffix = ",".join(f"{k}={params[k]!r}" for k in sorted(params))
    return f"{kind}:{dataset}:{model}:{suffix}"


def payload_nbytes(payload: Any) -> tuple[int, dict[str, int]]:
    """(total bytes, breakdown) of an artifact payload.

    Engine objects report through their own ``nbytes_detail``/``nbytes``;
    anything else (e.g. a selection result) is sized by its pickle — an
    upper-bound proxy that is cheap and monotone in content.
    """
    detail = getattr(payload, "nbytes_detail", None)
    if callable(detail):
        breakdown = {str(k): int(v) for k, v in detail().items()}
        return sum(breakdown.values()), breakdown
    nbytes = getattr(payload, "nbytes", None)
    if isinstance(nbytes, int):
        return int(nbytes), {"nbytes": int(nbytes)}
    size = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    return size, {"pickled": size}


@dataclass
class Artifact:
    """One warm cache entry plus its accounting."""

    key: str
    kind: str
    payload: Any
    nbytes: int
    detail: dict[str, int] = field(default_factory=dict)
    build_seconds: float = 0.0
    hits: int = 0

    @classmethod
    def wrap(cls, key: str, kind: str, payload: Any, build_seconds: float = 0.0) -> "Artifact":
        nbytes, detail = payload_nbytes(payload)
        return cls(
            key=key, kind=kind, payload=payload, nbytes=nbytes,
            detail=detail, build_seconds=build_seconds,
        )


class ArtifactLRU:
    """Byte-budgeted LRU keyed by :func:`artifact_key`.

    Not thread-safe by design: the server performs every ``get``/``put``
    on the event loop; only artifact *construction* runs on executor
    threads.  ``telemetry`` (a collecting handle or the NULL singleton)
    receives ``serving.artifact_*`` counters.
    """

    def __init__(self, budget_bytes: int | None, telemetry=None) -> None:
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError("budget_bytes must be non-negative or None")
        self.budget_bytes = budget_bytes
        self._entries: OrderedDict[str, Artifact] = OrderedDict()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if telemetry is None:
            from ..framework.telemetry import NULL

            telemetry = NULL
        self._tele = telemetry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Artifact | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._tele.count("serving.artifact_misses")
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        self.hits += 1
        self._tele.count("serving.artifact_hits")
        return entry

    def put(self, artifact: Artifact) -> list[str]:
        """Insert (or replace) an artifact; returns evicted keys."""
        old = self._entries.pop(artifact.key, None)
        if old is not None:
            self.total_bytes -= old.nbytes
        self._entries[artifact.key] = artifact
        self.total_bytes += artifact.nbytes
        evicted: list[str] = []
        if self.budget_bytes is not None:
            while self.total_bytes > self.budget_bytes and len(self._entries) > 1:
                key, entry = self._entries.popitem(last=False)
                self.total_bytes -= entry.nbytes
                self.evictions += 1
                evicted.append(key)
                self._tele.count("serving.artifact_evictions")
                self._tele.count("serving.artifact_evicted_bytes", entry.nbytes)
        return evicted

    def stats(self) -> dict[str, Any]:
        return {
            "entries": len(self._entries),
            "total_bytes": int(self.total_bytes),
            "budget_bytes": self.budget_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "by_kind": self._by_kind(),
        }

    def _by_kind(self) -> dict[str, dict[str, int]]:
        kinds: dict[str, dict[str, int]] = {}
        for entry in self._entries.values():
            agg = kinds.setdefault(entry.kind, {"entries": 0, "bytes": 0})
            agg["entries"] += 1
            agg["bytes"] += entry.nbytes
        return kinds

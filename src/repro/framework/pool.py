"""Fault-tolerant process fan-out: one resilient worker pool for every engine.

The parallel kernels of the three engines (RR sampling, Monte-Carlo
cascades, path-structure builds) all fan work out over process pools, and
a bare ``ProcessPoolExecutor`` makes that fan-out fragile: one worker
OOM-killed or segfaulted raises ``BrokenProcessPool`` and vaporizes the
whole cell — including every chunk that had already finished.  The
benchmarking paper's testbed assumes long unattended sweeps under
resource pressure; this module is the substrate that survives them.

Every unit of work is a **self-describing deterministic chunk**: a
module-level function plus positional arguments that embed any randomness
as a ``SeedSequence`` spawn-key state.  Re-executing a chunk therefore
reproduces its output byte-for-byte, which is what lets the pool recover
instead of restart:

* **Worker death** (``BrokenProcessPool``) — salvage every chunk result
  already delivered, respawn the executor, and re-execute only the lost
  chunks.  ``pool.worker_restarts`` / ``pool.chunks_salvaged`` count it.
* **Hung workers** — an optional stall deadline (no chunk completes for
  ``stall_timeout_seconds``) hard-kills the executor and takes the same
  respawn path, so a wedged worker costs one window, not the sweep.
* **Chunk failures** (an exception out of the chunk fn, or a corrupt
  result detected by checksum under fault injection) — bounded retry with
  exponential backoff.  Retries re-run the same (fn, args) pair, so the
  deterministic-reseed semantics of
  :class:`~repro.framework.isolation.RetryPolicy` hold with no RNG
  bookkeeping: the spawn key *is* the seed.  ``pool.chunk_retries``.
* **Poison chunks** — after ``retries`` attributable failures the chunk
  is quarantined: :class:`ChunkQuarantined` propagates with structured
  ``details`` that :func:`~repro.framework.metrics.run_with_budget` maps
  into the ``FAILED`` cell taxonomy instead of a raw traceback.
* **Repeated pool collapse** — after ``max_restarts`` executor respawns
  the pool degrades to in-process serial execution of the remaining
  chunks (``pool.serial_downgrades``), trading parallelism for a
  finished, still byte-identical cell.

Because chunk results are committed in chunk-index order regardless of
completion or recovery order, a run under any fault schedule produces
output byte-identical to the fault-free run — asserted end-to-end by
``tests/test_pool_faults.py`` (chaos suite) and property-tested in
``tests/test_pool_replay.py``.

**Shared-args transport.**  Chunks often share big immutable operands —
the graph CSR above all.  ``run_chunks(..., shared=(graph, ...))``
hoists them out of the per-chunk tuples: serial paths call
``fn(*shared, *args)`` on the original objects, and parallel paths ship
the shared tuple once per worker through the executor initializer —
zero-copy via :mod:`repro.framework.shm` when the payload is big enough
(named shared-memory segments, workers attach by handle), ordinary
pickle otherwise.  Either way the per-chunk dispatch payload is O(1) in
graph size.  The arena is torn down in a ``finally`` so every exit path
— completion, quarantine, interrupt, serial downgrade — unlinks its
segments.

**Sharding.**  ``REPRO_BENCH_SHARDS`` / :func:`shards_env` split a
fan-out into round-robin buckets of chunk indices executed bucket by
bucket through the same recovery machinery (shared restart budget).
Sharding is a pure *scheduling* layer: chunk contents are untouched and
results still commit by chunk index, so a sharded run is byte-identical
to an unsharded one — it just bounds how many chunks are in flight, so
concurrent sweeps or graphs bigger than one worker set's budget can
time-share the machine.  Locality-aware chunk *composition* (grouping
sources by graph partition) lives with the engines that can prove it
result-invariant (see :func:`repro.diffusion.paths.batched_max_prob_paths`).

:class:`ChunkFaultInjector` is the test harness: rate-controlled
kill / hang / corrupt / raise faults, armed through ``REPRO_FAULT_*``
environment variables so they reach the worker wrapper in any process.
Fault draws are a deterministic hash of ``(seed, chunk index, attempt)``
— reproducible, and a retried chunk draws afresh so injected faults are
transient by construction.  When no injector is armed the wrapper adds
no checksum, no hash draw, and no extra pickling to the hot path.

This module deliberately imports only the standard library and
:mod:`repro.framework.telemetry` so the diffusion engines can reach it
lazily without import cycles.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import time
import zlib
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool, ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from . import telemetry as _telemetry

__all__ = [
    "PoolConfig",
    "PoolError",
    "ChunkQuarantined",
    "InjectedChunkFault",
    "ResilientPool",
    "run_chunks",
    "ChunkFaultInjector",
    "FaultSpec",
    "pool_retries_env",
    "shards_env",
]


# ----------------------------------------------------------------------
# Configuration

def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, "") or default)
    except ValueError:
        return default


def _env_float(name: str, default: float | None) -> float | None:
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


@dataclass(frozen=True)
class PoolConfig:
    """Resilience knobs for one :class:`ResilientPool` run.

    Defaults come from the environment so a long sweep (or an isolated
    child re-running a cell) can be tuned without threading a config
    through every engine constructor:

    * ``REPRO_BENCH_POOL_RETRIES`` → :attr:`retries`
    * ``REPRO_POOL_MAX_RESTARTS``  → :attr:`max_restarts`
    * ``REPRO_POOL_STALL_TIMEOUT`` → :attr:`stall_timeout_seconds`
    * ``REPRO_POOL_BACKOFF``       → :attr:`backoff_seconds`
    * ``REPRO_BENCH_SHARDS``       → :attr:`shards`
    """

    #: Attributable failures (chunk exception, corrupt result) tolerated
    #: per chunk before quarantine.
    retries: int = 4
    #: Executor respawns tolerated before degrading to serial execution.
    max_restarts: int = 4
    #: Collapse the pool when no chunk completes within this window
    #: (``None`` disables stall detection — a healthy-but-slow chunk is
    #: indistinguishable from a hang without a caller-chosen deadline).
    stall_timeout_seconds: float | None = None
    #: Base of the exponential per-retry backoff (seconds).
    backoff_seconds: float = 0.05
    #: Seconds to wait for a terminated worker before SIGKILL.
    grace_seconds: float = 1.0
    #: Round-robin buckets a fan-out is split into (1 disables sharding).
    #: Pure scheduling — results are byte-identical at any shard count.
    shards: int = 1

    @classmethod
    def from_env(cls) -> "PoolConfig":
        return cls(
            retries=max(1, _env_int("REPRO_BENCH_POOL_RETRIES", cls.retries)),
            max_restarts=max(0, _env_int("REPRO_POOL_MAX_RESTARTS", cls.max_restarts)),
            stall_timeout_seconds=_env_float("REPRO_POOL_STALL_TIMEOUT", None),
            backoff_seconds=_env_float("REPRO_POOL_BACKOFF", cls.backoff_seconds)
            or cls.backoff_seconds,
            shards=max(1, _env_int("REPRO_BENCH_SHARDS", cls.shards)),
        )


@contextmanager
def pool_retries_env(retries: int | None) -> Iterator[None]:
    """Scoped override of ``REPRO_BENCH_POOL_RETRIES`` (no-op for ``None``).

    Environment-based so it reaches pools opened anywhere below the
    current frame — including inside an isolated child, where the
    executor applies it before running the cell.
    """
    if retries is None:
        yield
        return
    key = "REPRO_BENCH_POOL_RETRIES"
    previous = os.environ.get(key)
    os.environ[key] = str(int(retries))
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = previous


@contextmanager
def shards_env(shards: int | None) -> Iterator[None]:
    """Scoped override of ``REPRO_BENCH_SHARDS`` (no-op for ``None``).

    Same environment-based scoping as :func:`pool_retries_env`, so the
    shard count reaches every pool opened below the current frame —
    including the engines' lazily-opened fan-outs and isolated children.
    """
    if shards is None:
        yield
        return
    key = "REPRO_BENCH_SHARDS"
    previous = os.environ.get(key)
    os.environ[key] = str(int(shards))
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = previous


# ----------------------------------------------------------------------
# Failure taxonomy

class PoolError(RuntimeError):
    """A pool-level failure with structured ``details`` for RunRecords."""

    def __init__(self, message: str, details: dict[str, Any] | None = None) -> None:
        super().__init__(message)
        self.details = details or {}


class ChunkQuarantined(PoolError):
    """A chunk kept failing attributably and was marked poison."""


class InjectedChunkFault(RuntimeError):
    """Raised inside a worker by the ``raise`` fault mode."""


# ----------------------------------------------------------------------
# Fault injection

FAULT_MODES = ("kill", "hang", "corrupt", "raise")
_FAULT_EXIT_CODE = 113


@dataclass(frozen=True)
class FaultSpec:
    """An armed fault: mode, rate, and the deterministic draw seed."""

    mode: str
    rate: float
    seed: int = 0
    hang_seconds: float = 30.0


def active_fault_spec() -> FaultSpec | None:
    """The injector armed via ``REPRO_FAULT_*``, or ``None``."""
    rate = _env_float("REPRO_FAULT_RATE", None)
    if rate is None or rate <= 0.0:
        return None
    mode = os.environ.get("REPRO_FAULT_MODE", "kill")
    if mode not in FAULT_MODES:
        return None
    return FaultSpec(
        mode=mode,
        rate=min(1.0, rate),
        seed=_env_int("REPRO_FAULT_SEED", 0),
        hang_seconds=_env_float("REPRO_FAULT_HANG_SECONDS", 30.0) or 30.0,
    )


def fault_fires(spec: FaultSpec, index: int, attempt: int) -> bool:
    """Deterministic rate draw for ``(chunk, attempt)``.

    A hash draw instead of an RNG stream: reproducible across processes,
    independent of draw order, and varying with ``attempt`` so a retried
    chunk is not doomed to refire the same fault forever.
    """
    token = f"{spec.seed}:{index}:{attempt}".encode()
    digest = hashlib.sha256(token).digest()
    draw = int.from_bytes(digest[:8], "big") / 2.0**64
    return draw < spec.rate


class ChunkFaultInjector:
    """Arm rate-controlled chunk faults for the enclosed block.

    Context manager used by the chaos suite (and the CI chaos job, which
    arms the same variables externally)::

        with ChunkFaultInjector(mode="kill", rate=0.2, seed=7):
            pool.extend(graph, dynamics, 4000, rng, workers=4)

    Modes: ``kill`` (``os._exit`` → ``BrokenProcessPool``), ``hang``
    (sleep ``hang_seconds`` before computing — pair with
    ``stall_timeout`` so the parent reclaims the worker), ``corrupt``
    (perturb the result after checksumming, so the parent detects and
    retries), ``raise`` (an exception out of the chunk fn).  Serial
    downgrade never injects: it is the last-resort correctness path.
    """

    _KEYS = (
        "REPRO_FAULT_RATE",
        "REPRO_FAULT_MODE",
        "REPRO_FAULT_SEED",
        "REPRO_FAULT_HANG_SECONDS",
        "REPRO_POOL_STALL_TIMEOUT",
    )

    def __init__(
        self,
        mode: str = "kill",
        rate: float = 0.2,
        seed: int = 0,
        hang_seconds: float = 2.0,
        stall_timeout: float | None = None,
    ) -> None:
        if mode not in FAULT_MODES:
            raise ValueError(
                f"unknown fault mode {mode!r}; options: {', '.join(FAULT_MODES)}"
            )
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.mode = mode
        self.rate = rate
        self.seed = seed
        self.hang_seconds = hang_seconds
        self.stall_timeout = stall_timeout
        self._saved: dict[str, str | None] = {}

    def __enter__(self) -> "ChunkFaultInjector":
        values = {
            "REPRO_FAULT_RATE": str(self.rate),
            "REPRO_FAULT_MODE": self.mode,
            "REPRO_FAULT_SEED": str(self.seed),
            "REPRO_FAULT_HANG_SECONDS": str(self.hang_seconds),
            "REPRO_POOL_STALL_TIMEOUT": (
                str(self.stall_timeout) if self.stall_timeout is not None else None
            ),
        }
        for key in self._KEYS:
            self._saved[key] = os.environ.get(key)
            value = values[key]
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        return self

    def __exit__(self, *exc) -> bool:
        for key, previous in self._saved.items():
            if previous is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = previous
        self._saved.clear()
        return False


def _result_digest(value: Any) -> int:
    """Integrity checksum over the pickled result (fault runs only)."""
    return zlib.crc32(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


def _execute_chunk(
    fn: Callable[..., Any],
    args: tuple,
    index: int,
    attempt: int,
    spec: FaultSpec | None,
    has_shared: bool = False,
) -> tuple[int, int | None, Any, dict[str, int] | None]:
    """Worker-side wrapper: run one chunk, applying any armed fault.

    Returns ``(index, digest, value, meta)``; ``digest`` is ``None`` (and
    no extra pickling happens) when no injector is armed.  ``meta``
    carries worker-side counter deltas (shared-memory attaches) for the
    parent to fold into its telemetry — ``None`` when there are none.
    """
    fired = spec is not None and fault_fires(spec, index, attempt)
    if fired:
        if spec.mode == "kill":
            os._exit(_FAULT_EXIT_CODE)
        if spec.mode == "raise":
            raise InjectedChunkFault(
                f"injected failure in chunk {index} (attempt {attempt})"
            )
        if spec.mode == "hang":
            deadline = time.perf_counter() + spec.hang_seconds
            while time.perf_counter() < deadline:
                time.sleep(0.02)
    meta = None
    if has_shared:
        from . import shm as _shm  # lazy: pickle-only pools skip numpy

        value = fn(*_shm.worker_shared(), *args)
        meta = _shm.attach_meta()
    else:
        value = fn(*args)
    if spec is None:
        return index, None, value, meta
    digest = _result_digest(value)
    if fired and spec.mode == "corrupt":
        value = ("__corrupt__", value)
    return index, digest, value, meta


# ----------------------------------------------------------------------
# The pool

_UNSET = object()


class ResilientPool:
    """Deterministic chunk fan-out that survives worker loss.

    One instance is cheap and stateless between :meth:`run` calls; the
    module-level :func:`run_chunks` is the one-shot convenience the
    engines use.  See the module docstring for the recovery ladder.
    """

    def __init__(
        self,
        config: PoolConfig | None = None,
        label: str | None = None,
    ) -> None:
        self.config = config or PoolConfig.from_env()
        self.label = label or "pool"

    # -- public API -----------------------------------------------------

    def run(
        self,
        fn: Callable[..., Any],
        arg_tuples: Sequence[tuple],
        *,
        workers: int | None = None,
        tick: Callable[[], None] | None = None,
        shared: Sequence[Any] | None = None,
    ) -> list[Any]:
        """Execute every chunk and return results in chunk-index order.

        ``fn`` must be a module-level (picklable) function and each args
        tuple fully determines its chunk's output — randomness goes in as
        a ``SeedSequence`` spawn-key state, never as live RNG objects
        shared between chunks.  ``tick`` runs in the parent after each
        chunk commits (budget checks).  ``workers`` defaults to one per
        chunk, matching the engines' historical fan-out shape.

        ``shared`` holds big immutable operands common to every chunk;
        workers receive them prepended — ``fn(*shared, *args)`` — but
        they travel once per worker (shared-memory arena or pickled
        initializer payload), never once per chunk.  Serial paths use
        the original objects directly, so results are transport-
        independent.
        """
        n = len(arg_tuples)
        if n == 0:
            return []
        shared = tuple(shared) if shared else ()
        workers = n if workers is None else max(1, min(int(workers), n))
        if workers == 1 or n == 1:
            return self._run_serial(
                fn, arg_tuples, range(n), tick, downgrade=False, shared=shared
            )
        if multiprocessing.current_process().daemon:
            # Daemonic processes (e.g. the isolated-executor worker) may
            # not spawn children, so a nested fan-out runs the same
            # chunks serially — byte-identical, just not parallel.
            _telemetry.current().count("pool.nested_serial")
            return self._run_serial(
                fn, arg_tuples, range(n), tick, downgrade=False, shared=shared
            )

        cfg = self.config
        tele = _telemetry.current()
        spec = active_fault_spec()
        tele.count("pool.chunks", n)
        shards = max(1, min(int(cfg.shards), n))
        if shards > 1:
            tele.count("pool.shards", shards)
        # Round-robin buckets of chunk indices, executed bucket by bucket
        # through the same recovery ladder.  Chunk contents and commit
        # order are untouched, so output is byte-identical at any shard
        # count — sharding only bounds how many chunks are in flight.
        buckets = [list(range(s, n, shards)) for s in range(shards)]
        payload, arena = shared, None
        if shared:
            from . import shm as _shm  # lazy: pickle-only pools skip numpy

            payload, arena = _shm.export_shared(shared, label=self.label)
        results: list[Any] = [_UNSET] * n
        attempts = [0] * n  # total executions started (varies fault draws)
        failures = [0] * n  # attributable failures (counts toward quarantine)
        restarts = 0
        try:
            for bucket in buckets:
                remaining = set(bucket)
                while remaining:
                    if restarts > cfg.max_restarts:
                        tele.count("pool.serial_downgrades")
                        serial = self._run_serial(
                            fn, arg_tuples, sorted(remaining), tick,
                            downgrade=True, shared=shared,
                        )
                        for i, value in zip(sorted(remaining), serial):
                            results[i] = value
                        break
                    executor = self._spawn_executor(
                        min(workers, len(remaining)), shared, payload
                    )
                    try:
                        collapsed = self._drain(
                            executor, fn, arg_tuples, spec,
                            results, attempts, failures, remaining, tick,
                            has_shared=bool(shared),
                        )
                    except BaseException:
                        self._shutdown(executor, force=True)
                        raise
                    self._shutdown(executor, force=collapsed)
                    if collapsed and remaining:
                        restarts += 1
                        tele.count("pool.worker_restarts")
                        tele.count(
                            "pool.chunks_salvaged",
                            len(bucket) - len(remaining),
                        )
        finally:
            if arena is not None:
                # Unlink on every exit path (interrupt included); workers
                # still holding mappings keep the pages via the kernel
                # refcount until they terminate.
                arena.close()
            if shared:
                from . import shm as _shm

                # The parent attaches too when chunks resolve in-process
                # (nested-serial, downgrade); sweep so a resident process
                # running many fan-outs holds no dead mappings.
                _shm.detach_stale()
        return results

    def _spawn_executor(
        self, max_workers: int, shared: tuple, payload: Any
    ) -> ProcessPoolExecutor:
        """One executor generation, with the shared payload installed.

        The initializer ships ``payload`` exactly once per worker — for
        the arena path that is O(1) descriptors; for the pickle fallback
        it is the one serialization of the shared objects that the
        per-chunk tuples no longer carry.
        """
        if not shared:
            return ProcessPoolExecutor(max_workers=max_workers)
        from . import shm as _shm  # lazy: pickle-only pools skip numpy

        return ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_shm._worker_init,
            initargs=(payload,),
        )

    # -- internals ------------------------------------------------------

    def _run_serial(
        self,
        fn: Callable[..., Any],
        arg_tuples: Sequence[tuple],
        indexes,
        tick: Callable[[], None] | None,
        downgrade: bool,
        shared: tuple = (),
    ) -> list[Any]:
        """In-process execution: the no-fan-out path and the last resort.

        Faults are never injected here — serial execution is the
        correctness backstop, and a ``kill`` fired in-process would take
        the parent down with it.  ``shared`` objects are used directly
        (no transport at all), so a serial downgrade is byte-identical
        to the arena path it replaces.
        """
        out: list[Any] = []
        for i in indexes:
            try:
                out.append(fn(*shared, *arg_tuples[i]))
            except Exception as exc:
                if not downgrade:
                    raise
                raise ChunkQuarantined(
                    f"{self.label}: chunk {i} failed during serial downgrade",
                    details={
                        "label": self.label,
                        "chunk": int(i),
                        "phase": "serial_downgrade",
                        "last_error": repr(exc),
                    },
                ) from exc
            if tick is not None:
                tick()
        return out

    def _submit(
        self,
        executor: ProcessPoolExecutor,
        fn: Callable[..., Any],
        arg_tuples: Sequence[tuple],
        spec: FaultSpec | None,
        attempts: list[int],
        index: int,
        has_shared: bool = False,
    ) -> Future:
        future = executor.submit(
            _execute_chunk, fn, arg_tuples[index], index, attempts[index], spec,
            has_shared,
        )
        attempts[index] += 1
        return future

    def _drain(
        self,
        executor: ProcessPoolExecutor,
        fn: Callable[..., Any],
        arg_tuples: Sequence[tuple],
        spec: FaultSpec | None,
        results: list[Any],
        attempts: list[int],
        failures: list[int],
        remaining: set[int],
        tick: Callable[[], None] | None,
        has_shared: bool = False,
    ) -> bool:
        """One executor generation; returns True when it collapsed."""
        cfg = self.config
        tele = _telemetry.current()
        futures: dict[Future, int] = {
            self._submit(executor, fn, arg_tuples, spec, attempts, i,
                         has_shared): i
            for i in sorted(remaining)
        }
        pending = set(futures)
        while pending:
            done, pending = wait(
                pending, timeout=cfg.stall_timeout_seconds,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                # Stall: nothing finished inside the window — treat the
                # executor as wedged and reclaim its workers.
                return True
            collapsed = False
            for future in done:
                index = futures[future]
                if future.cancelled():
                    collapsed = True
                    continue
                error = future.exception()
                if isinstance(error, BrokenProcessPool):
                    collapsed = True
                    continue
                if error is None:
                    __, digest, value, meta = future.result()
                    if meta:
                        # Worker-side counter deltas (shm attaches) fold
                        # into the parent's telemetry stream.
                        for key, delta in meta.items():
                            tele.count(key, delta)
                    if digest is not None and digest != _result_digest(value):
                        tele.count("pool.corrupt_results")
                        error = PoolError(
                            f"{self.label}: chunk {index} returned a corrupt "
                            "result (checksum mismatch)"
                        )
                    else:
                        results[index] = value
                        remaining.discard(index)
                        if tick is not None:
                            tick()
                        continue
                # Attributable chunk failure: bounded retry with backoff.
                failures[index] += 1
                if failures[index] >= cfg.retries:
                    raise ChunkQuarantined(
                        f"{self.label}: chunk {index} quarantined after "
                        f"{failures[index]} failed attempts: {error}",
                        details={
                            "label": self.label,
                            "chunk": int(index),
                            "failed_attempts": failures[index],
                            "last_error": repr(error),
                        },
                    ) from error
                tele.count("pool.chunk_retries")
                time.sleep(cfg.backoff_seconds * 2.0 ** (failures[index] - 1))
                try:
                    retry = self._submit(
                        executor, fn, arg_tuples, spec, attempts, index,
                        has_shared,
                    )
                except (BrokenProcessPool, RuntimeError):
                    # The executor died under us mid-retry; the chunk is
                    # still in ``remaining`` and replays after respawn.
                    collapsed = True
                    continue
                futures[retry] = index
                pending.add(retry)
            if collapsed:
                return True
        return False

    def _shutdown(self, executor: ProcessPoolExecutor, force: bool) -> None:
        """Dismantle one executor generation, leaving no orphan workers.

        ``force`` hard-terminates workers still running (collapse, stall,
        ``KeyboardInterrupt``, any exception mid-iteration); the clean
        path still cancels queued work so an early return cannot leave
        chunks running behind the caller's back.
        """
        procs = list(getattr(executor, "_processes", {}).values() or [])
        try:
            executor.shutdown(wait=not force, cancel_futures=True)
        except Exception:  # pragma: no cover - broken executor internals
            pass
        if force:
            for proc in procs:
                try:
                    if proc.is_alive():
                        proc.terminate()
                except Exception:  # pragma: no cover - already reaped
                    continue
            deadline = time.perf_counter() + self.config.grace_seconds
            for proc in procs:
                try:
                    proc.join(max(0.0, deadline - time.perf_counter()))
                    if proc.is_alive():
                        proc.kill()
                        proc.join(self.config.grace_seconds)
                except Exception:  # pragma: no cover - already reaped
                    continue


def run_chunks(
    fn: Callable[..., Any],
    arg_tuples: Sequence[tuple],
    *,
    workers: int | None = None,
    label: str | None = None,
    tick: Callable[[], None] | None = None,
    config: PoolConfig | None = None,
    shared: Sequence[Any] | None = None,
) -> list[Any]:
    """Run deterministic chunks through a :class:`ResilientPool`.

    The single entry point every engine fans out through — no ad-hoc
    ``ProcessPoolExecutor`` call sites remain outside this module.
    ``shared`` carries the chunk-invariant operands (graph CSR, masks)
    once per worker instead of once per chunk; see :meth:`ResilientPool.run`.
    """
    return ResilientPool(config=config, label=label).run(
        fn, arg_tuples, workers=workers, tick=tick, shared=shared
    )

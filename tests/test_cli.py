"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_params, _parse_value, main


class TestParsing:
    def test_parse_value_types(self):
        assert _parse_value("3") == 3
        assert _parse_value("0.5") == 0.5
        assert _parse_value("abc") == "abc"

    def test_parse_params(self):
        assert _parse_params(["epsilon=0.5", "rr_scale=0.01"]) == {
            "epsilon": 0.5,
            "rr_scale": 0.01,
        }

    def test_parse_params_rejects_bad_item(self):
        with pytest.raises(SystemExit):
            _parse_params(["oops"])

    def test_parse_params_none(self):
        assert _parse_params(None) == {}


class TestCommands:
    def test_list_datasets(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        assert "nethept" in out and "friendster" in out

    def test_support_matrix(self, capsys):
        assert main(["support-matrix"]) == 0
        out = capsys.readouterr().out
        assert "LDAG" in out

    def test_recommend(self, capsys):
        assert main(["recommend", "--model", "WC"]) == 0
        assert "IMM" in capsys.readouterr().out

    def test_recommend_memory_constrained(self, capsys):
        assert main(["recommend", "--model", "IC", "--memory-constrained"]) == 0
        assert "EaSyIM" in capsys.readouterr().out

    def test_select(self, capsys):
        code = main([
            "select", "--dataset", "nethept", "--model", "WC",
            "--algorithm", "EaSyIM", "--param", "path_length=2",
            "--k", "3", "--mc", "50",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "spread" in out
        assert "seeds" in out

    def test_select_budget_violation_nonzero_exit(self, capsys):
        code = main([
            "select", "--dataset", "nethept", "--model", "WC",
            "--algorithm", "CELF", "--param", "mc_simulations=5000",
            "--k", "5", "--time-limit", "0.05",
        ])
        assert code == 1
        assert "DNF" in capsys.readouterr().out

    def test_tune(self, capsys):
        code = main([
            "tune", "--dataset", "nethept", "--model", "WC",
            "--algorithm", "EaSyIM", "--parameter", "path_length",
            "--spectrum", "3,2,1", "--k", "3", "--mc", "50",
        ])
        assert code == 0
        assert "X*" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

"""Proxy-based baseline heuristics.

These are not among the eleven benchmarked techniques (the paper drops
degree-discount because IRIE dominates it, Sec. 4) but they appear
throughout the study as initializers (IMRank starts from a degree-discount
or PageRank ordering) and as the sanity floor every serious technique must
beat.

* :class:`Degree` — top-k by out-degree.
* :class:`SingleDiscount` — degree minus edges already pointing at seeds.
* :class:`DegreeDiscount` — Chen et al. (KDD'09) discount for constant-p IC.
* :class:`PageRankHeuristic` — top-k by PageRank on the reversed graph
  (influence flows along edges, so rank mass must flow against them).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..diffusion.models import Dynamics, PropagationModel
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm

__all__ = ["Degree", "SingleDiscount", "DegreeDiscount", "PageRankHeuristic", "pagerank"]


class Degree(IMAlgorithm):
    """Pick the k nodes with the highest out-degree."""

    name = "Degree"
    supported = (Dynamics.IC, Dynamics.LT)

    def _select(self, graph, k, model, rng, budget):
        order = np.argsort(-graph.out_degree(), kind="stable")
        return [int(v) for v in order[:k]], {}


class SingleDiscount(IMAlgorithm):
    """Degree discounted by the number of already-selected out-neighbours."""

    name = "SingleDiscount"
    supported = (Dynamics.IC, Dynamics.LT)

    def _select(self, graph, k, model, rng, budget):
        score = graph.out_degree().astype(np.float64)
        chosen = np.zeros(graph.n, dtype=bool)
        seeds: list[int] = []
        for __ in range(k):
            self._tick(budget)
            score_masked = np.where(chosen, -np.inf, score)
            v = int(score_masked.argmax())
            seeds.append(v)
            chosen[v] = True
            sources, __w = graph.in_neighbors(v)
            score[sources] -= 1.0
        return seeds, {}


class DegreeDiscount(IMAlgorithm):
    """Chen et al.'s degreediscountic heuristic for uniform-p IC.

    ddv = d_v - 2 t_v - (d_v - t_v) t_v p, with t_v the number of
    already-seeded neighbours.  For non-constant weight schemes the mean
    edge weight stands in for p.
    """

    name = "DegreeDiscount"
    supported = (Dynamics.IC, Dynamics.LT)

    def _select(self, graph, k, model, rng, budget):
        p = float(graph.out_w.mean()) if graph.m else 0.0
        degree = graph.out_degree().astype(np.float64)
        t = np.zeros(graph.n, dtype=np.float64)
        dd = degree.copy()
        chosen = np.zeros(graph.n, dtype=bool)
        seeds: list[int] = []
        for __ in range(k):
            self._tick(budget)
            v = int(np.where(chosen, -np.inf, dd).argmax())
            seeds.append(v)
            chosen[v] = True
            neighbours, __w = graph.out_neighbors(v)
            for u in neighbours:
                u = int(u)
                if chosen[u]:
                    continue
                t[u] += 1.0
                dd[u] = degree[u] - 2.0 * t[u] - (degree[u] - t[u]) * t[u] * p
        return seeds, {}


def pagerank(
    graph: DiGraph,
    damping: float = 0.85,
    iterations: int = 100,
    tol: float = 1e-10,
    reverse: bool = True,
) -> np.ndarray:
    """Power-iteration PageRank; by default on the reversed graph."""
    n = graph.n
    if n == 0:
        return np.empty(0, dtype=np.float64)
    g = graph.reverse() if reverse else graph
    out_deg = g.out_degree().astype(np.float64)
    dangling = out_deg == 0
    rank = np.full(n, 1.0 / n)
    src = g.edge_src
    dst = g.edge_dst
    share = np.where(out_deg[src] > 0, 1.0 / out_deg[src], 0.0)
    for __ in range(iterations):
        new = np.zeros(n, dtype=np.float64)
        np.add.at(new, dst, rank[src] * share)
        new = damping * new
        new += damping * rank[dangling].sum() / n
        new += (1.0 - damping) / n
        if np.abs(new - rank).sum() < tol:
            rank = new
            break
        rank = new
    return rank


class PageRankHeuristic(IMAlgorithm):
    """Top-k by reverse-graph PageRank (Sec. 4.5 initializer)."""

    name = "PageRank"
    supported = (Dynamics.IC, Dynamics.LT)

    def __init__(self, damping: float = 0.85, iterations: int = 100) -> None:
        self.damping = damping
        self.iterations = iterations

    def _select(self, graph, k, model, rng, budget) -> tuple[list[int], dict[str, Any]]:
        rank = pagerank(graph, damping=self.damping, iterations=self.iterations)
        order = np.argsort(-rank, kind="stable")
        return [int(v) for v in order[:k]], {"rank": rank}

"""Property-based tests (hypothesis) on core structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion._frontier import gather_edges
from repro.diffusion.models import Dynamics
from repro.diffusion.rrpool import random_rr_set
from repro.diffusion.rrsets import RRCollection, greedy_max_cover
from repro.graph import weights as weight_schemes
from repro.graph.digraph import DiGraph
from tests.oracles import exact_ic_spread, exact_lt_spread


@st.composite
def small_graphs(draw, max_nodes=7, max_edges=10, weighted=True):
    """Random small weighted digraphs (few enough edges for exact oracles)."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    pairs = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    )
    edges = draw(st.lists(pairs, max_size=max_edges, unique=True))
    edges = [(u, v) for u, v in edges if u != v]
    if weighted:
        ws = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                min_size=len(edges),
                max_size=len(edges),
            )
        )
    else:
        ws = None
    return DiGraph.from_edges(n, edges, weights=ws)


class TestCSRInvariants:
    @given(small_graphs(max_nodes=10, max_edges=25))
    def test_degree_sums_equal_m(self, g):
        assert g.out_degree().sum() == g.m
        assert g.in_degree().sum() == g.m

    @given(small_graphs(max_nodes=10, max_edges=25))
    def test_in_out_views_consistent(self, g):
        out_pairs = {(u, v): w for u, v, w in g.edges()}
        in_pairs = {}
        for v in range(g.n):
            src, w = g.in_neighbors(v)
            for u, wu in zip(src, w):
                in_pairs[(int(u), v)] = float(wu)
        assert out_pairs == in_pairs

    @given(small_graphs(max_nodes=10, max_edges=25))
    def test_ptr_arrays_monotone(self, g):
        assert (np.diff(g.out_ptr) >= 0).all()
        assert (np.diff(g.in_ptr) >= 0).all()
        assert g.out_ptr[-1] == g.m
        assert g.in_ptr[-1] == g.m

    @given(small_graphs(max_nodes=8, max_edges=20))
    def test_reverse_preserves_edge_multiset(self, g):
        r = g.reverse()
        fwd = sorted((u, v, round(w, 9)) for u, v, w in g.edges())
        bwd = sorted((v, u, round(w, 9)) for u, v, w in r.edges())
        assert fwd == bwd


class TestWeightSchemeInvariants:
    @given(small_graphs(max_nodes=8, max_edges=20, weighted=False))
    def test_wc_incoming_sums_one(self, g):
        wg = weight_schemes.weighted_cascade(g)
        sums = weight_schemes.incoming_weight_sums(wg)
        for v in range(g.n):
            if wg.in_degree(v) > 0:
                assert sums[v] == pytest.approx(1.0)

    @given(small_graphs(max_nodes=8, max_edges=20, weighted=False), st.integers(0, 2**31 - 1))
    def test_lt_random_sums_one(self, g, seed):
        wg = weight_schemes.lt_random(g, rng=np.random.default_rng(seed))
        sums = weight_schemes.incoming_weight_sums(wg)
        for v in range(g.n):
            if wg.in_degree(v) > 0:
                assert sums[v] == pytest.approx(1.0)

    @given(small_graphs(max_nodes=8, max_edges=20, weighted=False), st.floats(0.0, 1.0))
    def test_constant_within_bounds(self, g, p):
        wg = weight_schemes.constant(g, p)
        assert ((wg.out_w >= 0) & (wg.out_w <= 1)).all()


class TestSpreadProperties:
    @settings(max_examples=30, deadline=None)
    @given(small_graphs(max_nodes=5, max_edges=7))
    def test_ic_spread_monotone_in_seeds(self, g):
        """σ is monotone (Sec. 2.2): exact enumeration ground truth."""
        base = exact_ic_spread(g, [0])
        larger = exact_ic_spread(g, [0, 1])
        assert larger >= base - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(small_graphs(max_nodes=5, max_edges=7))
    def test_ic_spread_submodular(self, g):
        """Marginal gains diminish: σ(S+v)−σ(S) >= σ(T+v)−σ(T) for S ⊆ T."""
        if g.n < 3:
            return
        v = g.n - 1
        gain_small = exact_ic_spread(g, [0, v]) - exact_ic_spread(g, [0])
        gain_large = exact_ic_spread(g, [0, 1, v]) - exact_ic_spread(g, [0, 1])
        assert gain_small >= gain_large - 1e-9

    @settings(max_examples=20, deadline=None)
    @given(small_graphs(max_nodes=4, max_edges=5, weighted=False))
    def test_lt_spread_monotone(self, g):
        wg = weight_schemes.lt_uniform(g)
        base = exact_lt_spread(wg, [0])
        larger = exact_lt_spread(wg, [0, 1])
        assert larger >= base - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(small_graphs(max_nodes=5, max_edges=7))
    def test_spread_bounded(self, g):
        value = exact_ic_spread(g, [0])
        assert 1.0 - 1e-9 <= value <= g.n + 1e-9


class TestFrontierGather:
    @given(small_graphs(max_nodes=10, max_edges=30), st.data())
    def test_matches_naive_slicing(self, g, data):
        nodes = data.draw(
            st.lists(
                st.integers(0, g.n - 1), min_size=0, max_size=g.n, unique=True
            )
        )
        nodes = np.asarray(sorted(nodes), dtype=np.int64)
        got = gather_edges(g.out_ptr, nodes)
        expected = np.concatenate(
            [np.arange(g.out_ptr[u], g.out_ptr[u + 1]) for u in nodes]
        ) if nodes.size else np.empty(0, dtype=np.int64)
        assert np.array_equal(np.sort(got), np.sort(expected))


class TestRandomRRSetInvariants:
    """Invariants of a single RR-set draw, under both dynamics.

    An RR set is the set of nodes that reach the root through live
    edges, so: the root is always a member, every member reaches the
    root inside the set, LT sets are simple paths (the reverse walk
    keeps at most one in-edge per node), and ``width`` equals the total
    in-degree of the set (each member's in-edges are examined once).
    """

    @settings(max_examples=60, deadline=None)
    @given(small_graphs(max_nodes=8, max_edges=16), st.integers(0, 2**31 - 1), st.data())
    def test_root_always_in_set(self, g, seed, data):
        root = data.draw(st.integers(0, g.n - 1))
        for dynamics in (Dynamics.IC, Dynamics.LT):
            nodes, __ = random_rr_set(
                g, dynamics, np.random.default_rng(seed), root=root
            )
            assert root in nodes.tolist()

    @settings(max_examples=60, deadline=None)
    @given(small_graphs(max_nodes=8, max_edges=16), st.integers(0, 2**31 - 1), st.data())
    def test_members_reach_root_within_set(self, g, seed, data):
        root = data.draw(st.integers(0, g.n - 1))
        for dynamics in (Dynamics.IC, Dynamics.LT):
            nodes, __ = random_rr_set(
                g, dynamics, np.random.default_rng(seed), root=root
            )
            members = set(nodes.tolist())
            # Reverse-close from the root over examined in-edges: the
            # fixpoint must recover every member (RR sets are closed
            # under path intermediates).
            reached = {root}
            grew = True
            while grew:
                grew = False
                for v in list(reached):
                    srcs, __ = g.in_neighbors(v)
                    for u in srcs:
                        u = int(u)
                        if u in members and u not in reached:
                            reached.add(u)
                            grew = True
            assert reached == members

    @settings(max_examples=60, deadline=None)
    @given(small_graphs(max_nodes=8, max_edges=16, weighted=False),
           st.integers(0, 2**31 - 1), st.data())
    def test_lt_set_is_a_simple_path(self, g, seed, data):
        wg = weight_schemes.lt_uniform(g)
        root = data.draw(st.integers(0, wg.n - 1))
        nodes, __ = random_rr_set(
            wg, Dynamics.LT, np.random.default_rng(seed), root=root
        )
        members = set(nodes.tolist())

        def extends_to_path(v, visited):
            if len(visited) == len(members):
                return True
            srcs, __ = wg.in_neighbors(v)
            return any(
                extends_to_path(int(u), visited | {int(u)})
                for u in srcs
                if int(u) in members and int(u) not in visited
            )

        assert extends_to_path(root, {root})

    @settings(max_examples=60, deadline=None)
    @given(small_graphs(max_nodes=8, max_edges=16), st.integers(0, 2**31 - 1), st.data())
    def test_width_equals_in_edges_examined(self, g, seed, data):
        root = data.draw(st.integers(0, g.n - 1))
        in_degree = g.in_degree()
        for dynamics in (Dynamics.IC, Dynamics.LT):
            nodes, width = random_rr_set(
                g, dynamics, np.random.default_rng(seed), root=root
            )
            assert width == int(in_degree[nodes].sum())


class TestMaxCoverProperties:
    @given(
        st.lists(
            st.lists(st.integers(0, 9), min_size=1, max_size=4),
            min_size=1,
            max_size=12,
        ),
        st.integers(1, 4),
    )
    def test_greedy_at_least_single_best(self, sets, k):
        pool = RRCollection(10)
        for s in sets:
            pool.add(np.asarray(sorted(set(s)), dtype=np.int64))
        __, coverage = greedy_max_cover(pool, k)
        best_single = max(
            pool.coverage_fraction([v]) for v in range(10)
        )
        assert coverage >= best_single - 1e-12

    @given(
        st.lists(
            st.lists(st.integers(0, 9), min_size=1, max_size=4),
            min_size=1,
            max_size=12,
        )
    )
    def test_coverage_monotone_in_k(self, sets):
        pool = RRCollection(10)
        for s in sets:
            pool.add(np.asarray(sorted(set(s)), dtype=np.int64))
        coverages = [greedy_max_cover(pool, k)[1] for k in (1, 2, 3)]
        assert coverages == sorted(coverages)

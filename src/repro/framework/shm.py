"""Zero-copy shared-memory transport for pool chunk arguments.

Every parallel fan-out used to pickle its big immutable operands — the
``DiGraph`` CSR above all — into each worker, so worker start-up cost
scaled with graph size times worker count and each worker held a private
copy.  This module publishes those arrays once into named
``multiprocessing.shared_memory`` segments and ships only :class:`ShmRef`
descriptors; workers attach by name and wrap the segment in a read-only
numpy view, so the per-worker payload is O(1) in graph size and the pages
are shared, not copied.

Transport contract (the pool calls :func:`export_shared` /
:func:`worker_shared`; everything else is plumbing):

* **Structural encoding** — tuples / lists / dicts are walked
  recursively; ndarrays at least :data:`INLINE_BYTES` big become
  :class:`ShmRef`, smaller ones stay inline (a segment per tiny array
  costs more than it saves).  Registered composite types (``DiGraph``,
  ``FlatRRPool``, ``Snapshot`` by default — :func:`register_shm_handler`
  adds more) are exploded into a state dict whose arrays take the same
  path, and reassembled on the worker without recomputation.
* **Fallback** — when shm is disabled (``REPRO_SHM_DISABLE``), the
  eligible payload is below ``REPRO_SHM_MIN_BYTES`` (default 1 MiB), or
  segment creation fails (``OSError``: no ``/dev/shm``, rlimits), the
  original objects are returned untouched and ride ordinary pickle —
  still hoisted to once-per-worker by the pool's initializer, never
  per-chunk.
* **Lifecycle** — the parent's :class:`ShmArena` owns every segment it
  published and unlinks them in ``close()`` (idempotent; invoked from
  the pool's ``finally`` so interrupts unlink too, and backstopped by
  ``atexit``).  Workers only ever attach; the kernel refcounts the
  mappings, so a parent-side unlink while workers still hold views is
  safe — the pages persist until the last map drops.  Under the fork
  start method all processes share one ``resource_tracker``, whose
  per-name registry collapses the workers' duplicate registrations, so
  the single parent unlink leaves neither leaked segments nor tracker
  warnings.
* **Attach accounting** — each worker process attaches a segment at most
  once (per-process cache) and counts it; the pool ships the per-chunk
  delta back and folds it into the parent's telemetry as ``shm.attach``.
  A respawned worker starts with a cold cache, so re-attaches after a
  crash are visible in the counter — the chaos suite asserts workers
  re-attach rather than re-copy.
"""

from __future__ import annotations

import atexit
import os
import pickle
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable

import numpy as np

from . import telemetry as _telemetry

__all__ = [
    "ShmRef",
    "ShmArena",
    "shm_enabled",
    "shm_min_bytes",
    "export_shared",
    "resolve_shared",
    "register_shm_handler",
    "shm_segment_of",
    "attached_segments",
    "detach_stale",
    "detach_all",
    "SEGMENT_PREFIX",
    "INLINE_BYTES",
]

#: Segment names start with this (plus pid), so tests can assert that
#: ``/dev/shm`` holds no ``repro_shm_*`` leftovers after any code path.
SEGMENT_PREFIX = "repro_shm"

#: Arrays smaller than this stay inline in the pickled payload.
INLINE_BYTES = 4096

_DEFAULT_MIN_BYTES = 1 << 20


def shm_enabled() -> bool:
    """Shared-memory transport is available and not disabled via env."""
    flag = os.environ.get("REPRO_SHM_DISABLE", "")
    return not (flag and flag != "0")


def shm_min_bytes() -> int:
    """Minimum total eligible bytes before the arena is worth opening."""
    raw = os.environ.get("REPRO_SHM_MIN_BYTES", "")
    try:
        return int(raw) if raw else _DEFAULT_MIN_BYTES
    except ValueError:
        return _DEFAULT_MIN_BYTES


# ----------------------------------------------------------------------
# Descriptors

@dataclass(frozen=True)
class ShmRef:
    """A named shared-memory segment holding one C-contiguous ndarray."""

    segment: str
    descr: Any  # np.lib.format dtype descriptor (str or list)
    shape: tuple[int, ...]
    nbytes: int


@dataclass(frozen=True)
class _Composite:
    """A registered object exploded into an encodable state tree."""

    key: str
    state: Any


# ----------------------------------------------------------------------
# Type handlers

#: key -> (class, export obj->state, restore state->obj).  The class slot
#: is resolved lazily so importing this module never drags in the engines.
_HANDLERS: dict[str, tuple[type, Callable[[Any], Any], Callable[[Any], Any]]] = {}
_DEFAULTS_LOADED = False


def register_shm_handler(
    key: str,
    cls: type,
    export: Callable[[Any], Any],
    restore: Callable[[Any], Any],
) -> None:
    """Teach the transport a composite type.

    ``export`` returns a picklable state tree (its ndarrays are published
    like any other); ``restore`` rebuilds the object from the resolved
    state on the worker.  The round trip must not recompute derived
    structure — that is the whole point of shipping it.
    """
    _HANDLERS[key] = (cls, export, restore)


def _load_default_handlers() -> None:
    """Register DiGraph / FlatRRPool / Snapshot handlers, best-effort.

    Lazy and tolerant: the handlers only matter once one of these types
    crosses a pool boundary, by which point its module is imported; a
    stripped-down install without the engines still gets plain-array
    transport.
    """
    global _DEFAULTS_LOADED
    if _DEFAULTS_LOADED:
        return
    _DEFAULTS_LOADED = True
    try:
        from ..graph.digraph import DiGraph

        register_shm_handler(
            "repro.digraph",
            DiGraph,
            lambda g: {
                "n": g.n,
                "arrays": (g.out_ptr, g.out_dst, g.out_w,
                           g.in_ptr, g.in_src, g.in_w, g._in_perm),
            },
            lambda state: __import__(
                "repro.graph.digraph", fromlist=["DiGraph"]
            ).DiGraph(state["n"], *state["arrays"]),
        )
    except ImportError:  # pragma: no cover - partial install
        pass
    try:
        from ..diffusion.rrpool import FlatRRPool

        def _export_rrpool(pool):
            pool._compact()
            return {
                "n": pool.n,
                "ptr": pool._ptr,
                "nodes": pool._nodes,
                "widths": pool._widths,
                "node_ptr": pool._node_ptr,
                "node_sets": pool._node_sets,
            }

        def _restore_rrpool(state):
            from ..diffusion.rrpool import FlatRRPool

            segs = tuple(
                seg for seg in (
                    shm_segment_of(state[k])
                    for k in ("ptr", "nodes", "widths", "node_ptr", "node_sets")
                    if state[k] is not None
                ) if seg is not None
            )
            return FlatRRPool.from_csr(
                state["n"], state["ptr"], state["nodes"], state["widths"],
                node_ptr=state["node_ptr"], node_sets=state["node_sets"],
                shm_segments=segs,
            )

        register_shm_handler(
            "repro.rrpool", FlatRRPool, _export_rrpool, _restore_rrpool
        )
    except ImportError:  # pragma: no cover - partial install
        pass
    try:
        from ..diffusion.snapshots import Snapshot

        register_shm_handler(
            "repro.snapshot",
            Snapshot,
            lambda s: {"graph": s.graph, "live": s.live},
            lambda state: __import__(
                "repro.diffusion.snapshots", fromlist=["Snapshot"]
            ).Snapshot(graph=state["graph"], live=state["live"]),
        )
    except ImportError:  # pragma: no cover - partial install
        pass


def _handler_for(obj: Any):
    _load_default_handlers()
    for key, (cls, export, __) in _HANDLERS.items():
        if isinstance(obj, cls):
            return key, export
    return None


# ----------------------------------------------------------------------
# The arena (parent side)

#: Arenas not yet closed, for the atexit backstop.  Weak so a collected
#: arena (which unlinks in __del__ via close) drops out on its own.
_LIVE_ARENAS: "weakref.WeakSet[ShmArena]" = weakref.WeakSet()
_ATEXIT_INSTALLED = False
_NAME_COUNTER = 0


def _next_segment_name() -> str:
    global _NAME_COUNTER
    _NAME_COUNTER += 1
    return f"{SEGMENT_PREFIX}_{os.getpid()}_{_NAME_COUNTER}"


def _cleanup_live_arenas() -> None:  # pragma: no cover - interpreter exit
    for arena in list(_LIVE_ARENAS):
        arena.close()


class ShmArena:
    """Owns the shared-memory segments published for one pool run.

    ``close()`` unlinks everything and is idempotent; the pool calls it
    from a ``finally`` so every exit path — completion, quarantine,
    ``KeyboardInterrupt``, serial downgrade — tears the arena down.  The
    kernel keeps the pages alive for workers still holding mappings.
    """

    def __init__(self, label: str = "pool") -> None:
        global _ATEXIT_INSTALLED
        self.label = label
        self._segments: list[shared_memory.SharedMemory] = []
        self.nbytes = 0
        _LIVE_ARENAS.add(self)
        if not _ATEXIT_INSTALLED:
            _ATEXIT_INSTALLED = True
            atexit.register(_cleanup_live_arenas)

    def __len__(self) -> int:
        return len(self._segments)

    def publish(self, array: np.ndarray) -> ShmRef:
        """Copy ``array`` into a fresh named segment; returns its ref."""
        arr = np.asarray(array)
        if not arr.flags.c_contiguous:
            arr = np.ascontiguousarray(arr)
        seg = shared_memory.SharedMemory(
            name=_next_segment_name(), create=True, size=max(1, arr.nbytes)
        )
        if arr.nbytes:
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
            view[...] = arr
        self._segments.append(seg)
        self.nbytes += arr.nbytes
        return ShmRef(
            seg.name,
            np.lib.format.dtype_to_descr(arr.dtype),
            tuple(int(s) for s in arr.shape),
            int(arr.nbytes),
        )

    def close(self) -> None:
        """Unlink every published segment (idempotent)."""
        segments, self._segments = self._segments, []
        for seg in segments:
            try:
                seg.close()
            except Exception:  # pragma: no cover - already closed
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            except Exception:  # pragma: no cover - platform quirks
                pass
        _LIVE_ARENAS.discard(self)

    def __del__(self) -> None:  # pragma: no cover - GC timing
        self.close()


# ----------------------------------------------------------------------
# Encoding (parent side)

def _expand(obj: Any) -> Any:
    """Explode registered composites; leave everything else in place."""
    handled = _handler_for(obj)
    if handled is not None:
        key, export = handled
        return _Composite(key, _expand(export(obj)))
    if isinstance(obj, tuple):
        return tuple(_expand(v) for v in obj)
    if isinstance(obj, list):
        return [_expand(v) for v in obj]
    if isinstance(obj, dict):
        return {k: _expand(v) for k, v in obj.items()}
    return obj


def _eligible_bytes(obj: Any) -> int:
    if isinstance(obj, np.ndarray):
        return obj.nbytes if obj.nbytes >= INLINE_BYTES else 0
    if isinstance(obj, _Composite):
        return _eligible_bytes(obj.state)
    if isinstance(obj, (tuple, list)):
        return sum(_eligible_bytes(v) for v in obj)
    if isinstance(obj, dict):
        return sum(_eligible_bytes(v) for v in obj.values())
    return 0


def _publish_tree(obj: Any, arena: ShmArena) -> Any:
    if isinstance(obj, np.ndarray):
        if obj.nbytes >= INLINE_BYTES:
            return arena.publish(obj)
        return obj
    if isinstance(obj, _Composite):
        return _Composite(obj.key, _publish_tree(obj.state, arena))
    if isinstance(obj, tuple):
        return tuple(_publish_tree(v, arena) for v in obj)
    if isinstance(obj, list):
        return [_publish_tree(v, arena) for v in obj]
    if isinstance(obj, dict):
        return {k: _publish_tree(v, arena) for k, v in obj.items()}
    return obj


def export_shared(
    shared: tuple, label: str = "pool"
) -> tuple[Any, ShmArena | None]:
    """Encode a shared-args tuple for worker transport.

    Returns ``(payload, arena)``.  With the arena path taken, ``payload``
    is the encoded tree (composites exploded, big arrays as
    :class:`ShmRef`) and ``arena`` owns the segments — the caller must
    ``close()`` it after the last worker is done.  On any fallback the
    original tuple comes back with ``arena=None`` and travels by pickle.
    """
    tele = _telemetry.current()
    if not shared:
        return shared, None
    if shm_enabled():
        expanded = _expand(shared)
        if _eligible_bytes(expanded) >= shm_min_bytes():
            arena = ShmArena(label=label)
            try:
                payload = _publish_tree(expanded, arena)
            except OSError:
                # No usable /dev/shm (or rlimit hit): pickle still works.
                arena.close()
                tele.count("shm.fallbacks")
            else:
                tele.count("pool.transport_shm")
                tele.count("shm.publish_segments", len(arena))
                tele.count("shm.publish_bytes", arena.nbytes)
                if tele.enabled:
                    tele.count("shm.payload_bytes", len(pickle.dumps(
                        payload, protocol=pickle.HIGHEST_PROTOCOL)))
                return payload, arena
    tele.count("pool.transport_pickle")
    if tele.enabled:
        tele.count("pool.shared_pickle_bytes", len(pickle.dumps(
            shared, protocol=pickle.HIGHEST_PROTOCOL)))
    return shared, None


# ----------------------------------------------------------------------
# Resolution (worker side)

#: Per-process attach cache: segment name -> (SharedMemory, view).  The
#: SharedMemory handle must stay referenced as long as its views live.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}
#: id(view) -> segment name, for provenance queries (``shm_segment_of``).
_VIEW_SEGMENTS: dict[int, str] = {}
_ATTACH_TOTAL = 0
_ATTACH_REPORTED = 0


def _attach(ref: ShmRef) -> np.ndarray:
    """Attach (or reuse) the segment behind ``ref`` as a read-only view."""
    global _ATTACH_TOTAL
    cached = _ATTACHED.get(ref.segment)
    if cached is None:
        seg = shared_memory.SharedMemory(name=ref.segment)
        dtype = np.lib.format.descr_to_dtype(ref.descr)
        view = np.ndarray(ref.shape, dtype=dtype, buffer=seg.buf)
        view.flags.writeable = False
        _ATTACHED[ref.segment] = cached = (seg, view)
        _VIEW_SEGMENTS[id(view)] = ref.segment
        _ATTACH_TOTAL += 1
    return cached[1]


def resolve_shared(payload: Any) -> Any:
    """Rebuild the original shared-args structure from an encoded tree."""
    if isinstance(payload, ShmRef):
        return _attach(payload)
    if isinstance(payload, _Composite):
        _load_default_handlers()
        try:
            restore = _HANDLERS[payload.key][2]
        except KeyError:
            raise RuntimeError(
                f"no shm handler registered for {payload.key!r} in this "
                "process; register_shm_handler must run on both sides"
            ) from None
        return restore(resolve_shared(payload.state))
    if isinstance(payload, tuple):
        return tuple(resolve_shared(v) for v in payload)
    if isinstance(payload, list):
        return [resolve_shared(v) for v in payload]
    if isinstance(payload, dict):
        return {k: resolve_shared(v) for k, v in payload.items()}
    return payload


def shm_segment_of(array: Any) -> str | None:
    """Segment name backing ``array`` if it is an attached view, else None."""
    return _VIEW_SEGMENTS.get(id(array))


def attached_segments() -> tuple[str, ...]:
    """Names currently held in this process's attach cache."""
    return tuple(_ATTACHED)


def _segment_exists(name: str) -> bool:
    """Whether the named segment is still linked in the filesystem."""
    if os.path.isdir("/dev/shm"):
        return os.path.exists(os.path.join("/dev/shm", name))
    try:  # pragma: no cover - non-tmpfs platforms
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:  # pragma: no cover
        return False
    probe.close()  # pragma: no cover
    return True  # pragma: no cover


def _drop_attached(name: str) -> None:
    seg, view = _ATTACHED.pop(name)
    _VIEW_SEGMENTS.pop(id(view), None)
    del view
    try:
        seg.close()
    except BufferError:
        # Some consumer still holds the view (e.g. a graph attached in a
        # previous generation): the mapping stays alive until that
        # reference dies; dropping the cache entry is what stops the
        # unbounded growth.
        pass


def detach_stale() -> int:
    """Evict attach-cache entries whose segment has been unlinked.

    The cache exists so one worker process attaches each segment once —
    but a process that outlives many arenas (the serving pattern, and any
    reused pool worker) would otherwise accumulate ``SharedMemory``
    handles and page mappings for segments the parent unlinked long ago.
    Called between fan-out generations (worker initializer, parent-side
    pool teardown); returns the number of entries dropped.
    """
    stale = [name for name in _ATTACHED if not _segment_exists(name)]
    for name in stale:
        _drop_attached(name)
    if stale:
        _telemetry.current().count("shm.detach_stale", len(stale))
    return len(stale)


def detach_all() -> int:
    """Drop every cached attachment (e.g. at server shutdown)."""
    names = list(_ATTACHED)
    for name in names:
        _drop_attached(name)
    return len(names)


def attach_meta() -> dict[str, int] | None:
    """Attach-counter delta since last call (``None`` when nothing new)."""
    global _ATTACH_REPORTED
    delta = _ATTACH_TOTAL - _ATTACH_REPORTED
    _ATTACH_REPORTED = _ATTACH_TOTAL
    return {"shm.attach": delta} if delta else None


# -- worker initializer -------------------------------------------------

_WORKER_PAYLOAD: Any = None
_WORKER_RESOLVED: Any = None
_WORKER_ARMED = False


def _worker_init(payload: Any) -> None:
    """Executor initializer: stash the encoded payload, resolve lazily.

    Pickled once per worker process (via ``initargs``) — for the arena
    path that is a handful of :class:`ShmRef` descriptors; for the pickle
    fallback it is the original objects, but still once per worker rather
    than once per chunk.  Resolution (attach) is deferred to the first
    chunk so a worker that never runs one never maps the segments.
    """
    global _WORKER_PAYLOAD, _WORKER_RESOLVED, _WORKER_ARMED
    # A new payload generation begins: anything attached for a previous
    # (now unlinked) arena in this process is dead weight — sweep it so a
    # long-lived worker's attach cache tracks live segments only.
    detach_stale()
    _WORKER_PAYLOAD = payload
    _WORKER_RESOLVED = None
    _WORKER_ARMED = True


def worker_shared() -> tuple:
    """The resolved shared-args tuple inside a pool worker."""
    global _WORKER_RESOLVED
    if not _WORKER_ARMED:
        raise RuntimeError(
            "worker_shared() called without a shared payload: the pool "
            "must pass shared args through the executor initializer"
        )
    if _WORKER_RESOLVED is None:
        _WORKER_RESOLVED = resolve_shared(_WORKER_PAYLOAD)
    return _WORKER_RESOLVED

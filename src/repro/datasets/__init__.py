"""Synthetic analogues of the paper's eight benchmark datasets."""

from .catalog import (
    DATASETS,
    LARGE_DATASETS,
    SMALL_DATASETS,
    DatasetSpec,
    load,
    names,
    spec,
    summary,
    table1_rows,
)

__all__ = [
    "DATASETS",
    "LARGE_DATASETS",
    "SMALL_DATASETS",
    "DatasetSpec",
    "load",
    "names",
    "spec",
    "summary",
    "table1_rows",
]

"""IRIE — Influence Ranking + Influence Estimation (Jung et al., ICDM'12).

A global score-estimation technique for IC (Sec. 4.4).  Two interleaved
pieces:

* **IR** (influence ranking): the fixed-point system
  ``r(u) = 1 + α · Σ_{v ∈ Out(u)} W(u,v) · r(v)``, solved by a bounded
  number of damped iterations (α = 0.7, 20 rounds in the original).
  ``r(u)`` approximates the total influence of ``u`` via the expected
  number of weighted walks leaving it.
* **IE** (influence estimation): after each seed is chosen, the activation
  probability AP(u, S) of every node is re-estimated, and ranks are damped
  by (1 − AP) so already-covered regions stop attracting seeds.  AP is
  propagated from the new seed along maximum-probability paths above the
  PMIA-style threshold (1/320), the same machinery the original borrows.

IRIE has no external accuracy parameter in the benchmark (Sec. 5.1.1).
"""

from __future__ import annotations

import heapq
from typing import Any

import numpy as np

from ..diffusion import paths
from ..diffusion.models import Dynamics, PropagationModel
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm

__all__ = ["IRIE", "max_probability_paths"]


def max_probability_paths(
    graph: DiGraph, source: int, threshold: float
) -> dict[int, float]:
    """Maximum path-propagation probability from ``source`` to each node.

    Dijkstra over -log(weight); paths whose product drops below
    ``threshold`` are pruned (the MIA/PMIA trick).  Returns only nodes with
    pp >= threshold, excluding the source itself.
    """
    best: dict[int, float] = {source: 1.0}
    heap: list[tuple[float, int]] = [(-1.0, source)]
    while heap:
        neg_pp, u = heapq.heappop(heap)
        pp = -neg_pp
        # Stale duplicate entries carry a pp below the final best[u]
        # (push values strictly increase per node); comparing against
        # best skips them without a settled-set membership probe.
        if pp < best[u]:
            continue
        dst, w = graph.out_neighbors(u)
        for v, wv in zip(dst, w):
            v = int(v)
            nxt = pp * float(wv)
            if nxt < threshold:
                continue
            if nxt > best.get(v, 0.0):
                best[v] = nxt
                heapq.heappush(heap, (-nxt, v))
    best.pop(source, None)
    return best


class IRIE(IMAlgorithm):
    """Iterative ranking with influence-estimation discounts."""

    name = "IRIE"
    supported = (Dynamics.IC,)
    external_parameter = None

    def __init__(
        self,
        alpha: float = 0.7,
        iterations: int = 20,
        ap_threshold: float = 1.0 / 320.0,
        engine: str = "flat",
        path_workers: int | None = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if engine not in ("flat", "legacy"):
            raise ValueError("engine must be 'flat' or 'legacy'")
        self.alpha = alpha
        self.iterations = iterations
        self.ap_threshold = ap_threshold
        #: "flat" runs the IE step on the path-proxy kernel (bit-identical
        #: pp values); "legacy" keeps the dict/heap reference helper.
        self.engine = engine
        #: Accepted for injection uniformity with the other proxy
        #: techniques; the IE step is single-source, so the kernel never
        #: actually fans out (results are identical either way).
        self.path_workers = path_workers

    def _rank(
        self,
        graph: DiGraph,
        ap: np.ndarray,
        edge_src: np.ndarray,
    ) -> np.ndarray:
        """Damped iteration of the IR fixed point, discounted by (1 - AP)."""
        not_covered = 1.0 - ap
        rank = np.ones(graph.n, dtype=np.float64)
        for __ in range(self.iterations):
            acc = np.zeros(graph.n, dtype=np.float64)
            np.add.at(acc, edge_src, graph.out_w * rank[graph.out_dst])
            rank = not_covered * (1.0 + self.alpha * acc)
        return rank

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        edge_src = graph.edge_src
        ap = np.zeros(graph.n, dtype=np.float64)
        seeds: list[int] = []
        in_seed = np.zeros(graph.n, dtype=bool)
        for __ in range(k):
            self._tick(budget)
            rank = self._rank(graph, ap, edge_src)
            # Deterministic tie-break: argmax over the masked ranks returns
            # the *first* maximal entry, i.e. the lowest node id on ties
            # (symmetric graphs produce exactly equal ranks).
            v = int(np.where(in_seed, -np.inf, rank).argmax())
            seeds.append(v)
            in_seed[v] = True
            ap[v] = 1.0
            # IE step: fold the new seed's reach into AP along max-prob paths.
            if self.engine == "flat":
                batch = paths.batched_max_prob_paths(
                    graph, np.array([v], dtype=np.int64), self.ap_threshold,
                    workers=self.path_workers,
                )
                sl = batch.slice(0)
                nodes = batch.node[sl.start + 1:sl.stop]  # source excluded
                pps = batch.pp[sl.start + 1:sl.stop]
                keep = ~in_seed[nodes]
                u = nodes[keep]
                ap[u] = 1.0 - (1.0 - ap[u]) * (1.0 - pps[keep])
            else:
                for u, pp in max_probability_paths(graph, v, self.ap_threshold).items():
                    if not in_seed[u]:
                        ap[u] = 1.0 - (1.0 - ap[u]) * (1.0 - pp)
        return seeds, {}

"""Evaluation of learned influence probabilities against ground truth.

Two views matter and they can disagree:

* *weight fidelity* — how close the per-edge estimates are to the true
  probabilities (:func:`weight_error`);
* *task fidelity* — whether seed selection on the learned graph still
  finds good seeds for the *true* graph (:func:`seed_set_transfer`), which
  is what an IM user actually cares about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..diffusion.models import PropagationModel
from ..diffusion.simulation import monte_carlo_spread
from ..graph.digraph import DiGraph

__all__ = ["WeightError", "weight_error", "seed_set_transfer"]


@dataclass(frozen=True)
class WeightError:
    """Per-edge agreement between learned and true weights."""

    mae: float
    rmse: float
    correlation: float
    coverage: float  # fraction of edges with a non-default estimate


def weight_error(
    true_graph: DiGraph, learned_graph: DiGraph, default: float = 0.0
) -> WeightError:
    """Compare weights edge-by-edge (topologies must match)."""
    if true_graph.m != learned_graph.m or true_graph.n != learned_graph.n:
        raise ValueError("graphs must share their topology")
    true_w = true_graph.out_w
    learned_w = learned_graph.out_w
    diff = learned_w - true_w
    mae = float(np.abs(diff).mean()) if true_graph.m else 0.0
    rmse = float(np.sqrt((diff**2).mean())) if true_graph.m else 0.0
    if true_graph.m >= 2 and true_w.std() > 0 and learned_w.std() > 0:
        correlation = float(np.corrcoef(true_w, learned_w)[0, 1])
    else:
        correlation = float("nan")
    coverage = (
        float((learned_w != default).mean()) if true_graph.m else 0.0
    )
    return WeightError(mae=mae, rmse=rmse, correlation=correlation,
                       coverage=coverage)


def seed_set_transfer(
    true_graph: DiGraph,
    learned_graph: DiGraph,
    model: PropagationModel,
    algorithm,
    k: int,
    rng: np.random.Generator,
    mc_simulations: int = 1000,
) -> dict[str, float]:
    """Does seed selection on the learned graph transfer to the truth?

    Returns the true-graph spread of (a) seeds chosen on the true graph
    and (b) seeds chosen on the learned graph, plus their ratio (1.0 =
    perfect transfer).
    """
    true_seeds = algorithm.select(true_graph, k, model, rng=rng).seeds
    learned_seeds = algorithm.select(learned_graph, k, model, rng=rng).seeds
    true_spread = monte_carlo_spread(
        true_graph, true_seeds, model, r=mc_simulations, rng=rng
    ).mean
    transferred = monte_carlo_spread(
        true_graph, learned_seeds, model, r=mc_simulations, rng=rng
    ).mean
    return {
        "true_spread": true_spread,
        "transferred_spread": transferred,
        "transfer_ratio": transferred / true_spread if true_spread else 1.0,
    }

"""Tests for the zero-copy shared-memory transport (repro.framework.shm).

Three layers are pinned here:

* the descriptor round trip — any C-representable ndarray published into
  an arena comes back bit-identical through a worker-side attach
  (property-tested across dtypes and shapes);
* the transport contract — composites (DiGraph / FlatRRPool / Snapshot)
  explode, ship and reassemble without recomputation; the pickle
  fallbacks (disable flag, min-bytes threshold, publish failure) return
  the original objects; telemetry counters say which path ran;
* the lifecycle — no ``repro_shm_*`` segment survives in ``/dev/shm``
  after normal completion, ``KeyboardInterrupt``, worker kills, or the
  serial downgrade, and engine results are byte-identical with the arena
  on vs off.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.diffusion.models import Dynamics, WC
from repro.diffusion.rrpool import FlatRRPool
from repro.diffusion.snapshots import Snapshot, sample_live_masks
from repro.framework import shm
from repro.framework.pool import (
    ChunkFaultInjector,
    PoolConfig,
    ResilientPool,
    run_chunks,
)
from repro.framework.shm import (
    INLINE_BYTES,
    SEGMENT_PREFIX,
    ShmArena,
    ShmRef,
    export_shared,
    resolve_shared,
    shm_enabled,
    shm_min_bytes,
)
from repro.framework.telemetry import Telemetry, activate
from repro.graph.digraph import DiGraph
from repro.graph.generators import build, powerlaw_configuration

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="process pools need fork/spawn support"
)


def _leftover_segments():
    """Names of repro shm segments still present in /dev/shm."""
    try:
        return sorted(
            f for f in os.listdir("/dev/shm") if f.startswith(SEGMENT_PREFIX)
        )
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


def _drain_attach_counter():
    """Reset the in-process attach delta after a parent-side resolve.

    Tests that resolve payloads in the parent (to exercise the worker
    path in-process) must not leak their attach delta into the next
    pool run's ``shm.attach`` accounting.
    """
    shm.attach_meta()


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(7)
    return WC.weighted(build(powerlaw_configuration(150, 2.3, 4.0, rng)), rng)


# -- module-level chunk functions (must pickle) -------------------------


def _shared_sum(big, offset):
    return float(big.sum()) + offset


def _graph_degree_sum(graph, offset):
    return int(np.diff(graph.out_ptr).sum()) + offset


def _slow_shared_sum(big, offset):
    import time

    time.sleep(0.05)
    return float(big.sum()) + offset


# ----------------------------------------------------------------------
# Descriptor round trip


class TestShmRefRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        arr=hnp.arrays(
            dtype=st.one_of(
                hnp.integer_dtypes(),
                hnp.unsigned_integer_dtypes(),
                hnp.floating_dtypes(),
                hnp.complex_number_dtypes(),
                hnp.boolean_dtypes(),
                hnp.datetime64_dtypes(),
                hnp.byte_string_dtypes(),
                hnp.unicode_string_dtypes(),
            ),
            shape=hnp.array_shapes(min_dims=0, max_dims=3, max_side=8),
        )
    )
    def test_publish_attach_bit_identical(self, arr):
        arena = ShmArena(label="prop")
        try:
            ref = arena.publish(arr)
            assert ref.segment.startswith(SEGMENT_PREFIX)
            view = resolve_shared(ref)
            assert view.dtype == arr.dtype
            assert view.shape == arr.shape
            assert view.tobytes() == arr.tobytes()
            assert not view.flags.writeable
        finally:
            arena.close()
            _drain_attach_counter()

    def test_empty_array_publishes(self):
        arena = ShmArena(label="empty")
        try:
            ref = arena.publish(np.empty(0, dtype=np.float64))
            view = resolve_shared(ref)
            assert view.size == 0 and view.dtype == np.float64
        finally:
            arena.close()
            _drain_attach_counter()

    def test_noncontiguous_input(self):
        arena = ShmArena(label="strided")
        base = np.arange(64, dtype=np.int64).reshape(8, 8)
        try:
            ref = arena.publish(base[:, ::2])
            view = resolve_shared(ref)
            assert np.array_equal(view, base[:, ::2])
        finally:
            arena.close()
            _drain_attach_counter()

    def test_close_is_idempotent_and_unlinks(self):
        arena = ShmArena(label="close")
        ref = arena.publish(np.ones(2048, dtype=np.float64))
        assert ref.segment in _leftover_segments()
        arena.close()
        arena.close()
        assert ref.segment not in _leftover_segments()


# ----------------------------------------------------------------------
# Transport encoding and fallbacks


class TestExportShared:
    def test_env_switches(self, monkeypatch):
        assert shm_enabled()
        monkeypatch.setenv("REPRO_SHM_DISABLE", "1")
        assert not shm_enabled()
        monkeypatch.setenv("REPRO_SHM_DISABLE", "0")
        assert shm_enabled()
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "12345")
        assert shm_min_bytes() == 12345
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "junk")
        assert shm_min_bytes() == 1 << 20

    def test_structure_round_trip(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        big = np.arange(4096, dtype=np.float64)
        small = np.arange(4, dtype=np.int64)
        shared = ({"big": big, "tag": "x"}, [small, 7], 3.5)
        payload, arena = export_shared(shared, label="t")
        assert arena is not None
        try:
            assert isinstance(payload[0]["big"], ShmRef)
            # Small arrays and scalars stay inline.
            assert isinstance(payload[1][0], np.ndarray)
            resolved = resolve_shared(payload)
            assert np.array_equal(resolved[0]["big"], big)
            assert resolved[0]["tag"] == "x"
            assert np.array_equal(resolved[1][0], small)
            assert resolved[1][1] == 7 and resolved[2] == 3.5
        finally:
            arena.close()
            _drain_attach_counter()

    def test_disable_falls_back_to_pickle(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_DISABLE", "1")
        tele = Telemetry()
        shared = (np.arange(1 << 18, dtype=np.float64),)
        with activate(tele):
            payload, arena = export_shared(shared)
        assert arena is None
        assert payload is shared
        assert tele.counters["pool.transport_pickle"] == 1
        assert "pool.transport_shm" not in tele.counters

    def test_below_threshold_falls_back_to_pickle(self):
        # Default threshold is 1 MiB; 64 KiB of eligible bytes stays pickle.
        tele = Telemetry()
        shared = (np.arange(1 << 13, dtype=np.float64),)
        with activate(tele):
            payload, arena = export_shared(shared)
        assert arena is None
        assert payload is shared
        assert tele.counters["pool.transport_pickle"] == 1
        assert tele.counters["pool.shared_pickle_bytes"] > (1 << 16)

    def test_arena_path_counts(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        tele = Telemetry()
        big = np.arange(1 << 13, dtype=np.float64)
        with activate(tele):
            payload, arena = export_shared((big,))
        assert arena is not None
        try:
            assert tele.counters["pool.transport_shm"] == 1
            assert tele.counters["shm.publish_segments"] == 1
            assert tele.counters["shm.publish_bytes"] == big.nbytes
            # The dispatch payload is descriptors, not data.
            assert tele.counters["shm.payload_bytes"] < 2048
        finally:
            arena.close()

    def test_publish_failure_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        monkeypatch.setattr(
            ShmArena, "publish",
            lambda self, arr: (_ for _ in ()).throw(OSError("no /dev/shm")),
        )
        tele = Telemetry()
        shared = (np.arange(1 << 13, dtype=np.float64),)
        with activate(tele):
            payload, arena = export_shared(shared)
        assert arena is None
        assert payload is shared
        assert tele.counters["shm.fallbacks"] == 1
        assert tele.counters["pool.transport_pickle"] == 1
        assert not _leftover_segments()

    def test_empty_shared_is_noop(self):
        payload, arena = export_shared(())
        assert payload == () and arena is None

    def test_unknown_handler_key_raises(self):
        bad = shm._Composite("no.such.handler", {"x": 1})
        with pytest.raises(RuntimeError, match="no shm handler"):
            resolve_shared(bad)


class TestCompositeHandlers:
    def test_digraph_round_trip(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        # Big enough that the CSR payload arrays clear INLINE_BYTES.
        rng = np.random.default_rng(11)
        graph = WC.weighted(
            build(powerlaw_configuration(900, 2.3, 4.0, rng)), rng
        )
        assert graph.out_dst.nbytes >= INLINE_BYTES
        payload, arena = export_shared((graph,), label="g")
        assert arena is not None
        try:
            (restored,) = resolve_shared(payload)
            assert isinstance(restored, DiGraph)
            assert restored.n == graph.n and restored.m == graph.m
            for name in ("out_ptr", "out_dst", "out_w",
                         "in_ptr", "in_src", "in_w"):
                assert np.array_equal(getattr(restored, name),
                                      getattr(graph, name))
            # Big CSR arrays are arena-backed views, not copies.
            assert shm.shm_segment_of(restored.out_dst) is not None
        finally:
            arena.close()
            _drain_attach_counter()

    def test_rrpool_round_trip_without_resampling(self, graph, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        pool = FlatRRPool(graph.n)
        pool.extend(graph, Dynamics.IC, 400, np.random.default_rng(3))
        pool.node_index  # materialize the inverted index before export
        payload, arena = export_shared((pool,), label="rr")
        assert arena is not None
        try:
            (restored,) = resolve_shared(payload)
            assert len(restored) == len(pool)
            assert restored.total_width == pool.total_width
            assert np.array_equal(restored.set_ptr, pool.set_ptr)
            assert np.array_equal(restored.set_nodes, pool.set_nodes)
            assert np.array_equal(restored.widths, pool.widths)
            # The inverted index shipped — no lazy rebuild on the worker.
            assert restored._node_ptr is not None
            assert np.array_equal(restored.node_index[1], pool.node_index[1])
        finally:
            arena.close()
            _drain_attach_counter()

    def test_rrpool_nbytes_accounts_attached_views(self, graph, monkeypatch):
        # Satellite regression: fig-8 memory cells must charge attached
        # pages to the pool, with the shared portion broken out.
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        pool = FlatRRPool(graph.n)
        pool.extend(graph, Dynamics.IC, 400, np.random.default_rng(3))
        pool.node_index
        payload, arena = export_shared((pool,), label="rr")
        try:
            (restored,) = resolve_shared(payload)
            detail = restored.nbytes_detail
            assert detail["total"] == restored.nbytes == pool.nbytes
            assert detail["set_view"] + detail["node_index"] == detail["total"]
            assert detail["node_index"] > 0
            # Every published CSR array resolves to an attached view.
            assert detail["shm_attached"] > 0
            assert detail["shm_attached"] <= detail["total"]
            assert restored._shm_segments
            # A locally built pool reports zero shared bytes.
            assert pool.nbytes_detail["shm_attached"] == 0
        finally:
            arena.close()
            _drain_attach_counter()

    def test_nbytes_detail_partitions_nbytes_lazily(self, graph):
        pool = FlatRRPool(graph.n)
        pool.extend(graph, Dynamics.IC, 50, np.random.default_rng(1))
        before = pool.nbytes_detail
        assert before["node_index"] == 0
        assert before["total"] == pool.nbytes
        pool.node_index
        after = pool.nbytes_detail
        assert after["node_index"] > 0
        assert after["total"] == pool.nbytes == (
            after["set_view"] + after["node_index"]
        )

    def test_snapshot_round_trip(self, graph, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        masks = sample_live_masks(
            graph, Dynamics.IC, 1, np.random.default_rng(5)
        )
        snap = Snapshot(graph, masks[0])
        payload, arena = export_shared((snap,), label="snap")
        assert arena is not None
        try:
            (restored,) = resolve_shared(payload)
            assert isinstance(restored, Snapshot)
            assert np.array_equal(restored.live, snap.live)
            assert np.array_equal(restored.graph.out_dst, graph.out_dst)
            assert restored.reach_count([0, 1]) == snap.reach_count([0, 1])
        finally:
            arena.close()
            _drain_attach_counter()


# ----------------------------------------------------------------------
# Pool integration


class TestPoolIntegration:
    def test_shared_args_via_arena(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        big = np.arange(1 << 14, dtype=np.float64)
        tele = Telemetry()
        with activate(tele):
            out = run_chunks(
                _shared_sum, [(1,), (2,), (3,)], workers=3, shared=(big,)
            )
        assert out == [float(big.sum()) + i for i in (1, 2, 3)]
        assert tele.counters["pool.transport_shm"] == 1
        assert tele.counters["shm.publish_segments"] == 1
        assert tele.counters["shm.attach"] >= 1
        assert not _leftover_segments()

    def test_shared_args_via_pickle_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_DISABLE", "1")
        big = np.arange(1 << 14, dtype=np.float64)
        tele = Telemetry()
        with activate(tele):
            out = run_chunks(
                _shared_sum, [(1,), (2,), (3,)], workers=3, shared=(big,)
            )
        assert out == [float(big.sum()) + i for i in (1, 2, 3)]
        assert tele.counters["pool.transport_pickle"] == 1
        assert "shm.attach" not in tele.counters
        assert not _leftover_segments()

    def test_serial_path_skips_transport(self):
        big = np.arange(1 << 14, dtype=np.float64)
        tele = Telemetry()
        with activate(tele):
            out = run_chunks(_shared_sum, [(5,)], workers=1, shared=(big,))
        assert out == [float(big.sum()) + 5.0]
        assert "pool.transport_shm" not in tele.counters
        assert "pool.transport_pickle" not in tele.counters

    def test_composite_shared_graph(self, graph, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        expected = int(np.diff(graph.out_ptr).sum())
        out = run_chunks(
            _graph_degree_sum, [(0,), (1,)], workers=2, shared=(graph,)
        )
        assert out == [expected, expected + 1]
        assert not _leftover_segments()

    def test_transport_does_not_change_results(self, graph):
        big = np.arange(1 << 14, dtype=np.float64)
        args = [(i,) for i in range(4)]
        serial = [_shared_sum(big, i) for i in range(4)]
        with pytest.MonkeyPatch.context() as mp:
            mp.setenv("REPRO_SHM_MIN_BYTES", "0")
            via_shm = run_chunks(_shared_sum, args, workers=4, shared=(big,))
        with pytest.MonkeyPatch.context() as mp:
            mp.setenv("REPRO_SHM_DISABLE", "1")
            via_pickle = run_chunks(_shared_sum, args, workers=4, shared=(big,))
        assert via_shm == via_pickle == serial


# ----------------------------------------------------------------------
# Lifecycle: every exit path unlinks


class TestArenaLifecycle:
    def test_no_leftovers_after_completion(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        big = np.arange(1 << 14, dtype=np.float64)
        run_chunks(_shared_sum, [(i,) for i in range(3)], workers=3,
                   shared=(big,))
        assert not _leftover_segments()

    def test_no_leftovers_after_keyboard_interrupt(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        big = np.arange(1 << 14, dtype=np.float64)

        def tick():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_chunks(
                _slow_shared_sum, [(i,) for i in range(4)], workers=2,
                shared=(big,), tick=tick,
            )
        assert not _leftover_segments()

    def test_no_leftovers_after_worker_kill(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        big = np.arange(1 << 14, dtype=np.float64)
        tele = Telemetry()
        # seed 84 @ rate .15: one chunk killed on attempt 0, then replayed.
        with activate(tele), ChunkFaultInjector(mode="kill", rate=0.15, seed=84):
            out = run_chunks(
                _shared_sum, [(i,) for i in range(3)], workers=3, shared=(big,)
            )
        assert out == [float(big.sum()) + i for i in range(3)]
        assert tele.counters["pool.worker_restarts"] >= 1
        # The respawned generation re-attached rather than re-copied.
        assert tele.counters["shm.attach"] >= 2
        assert not _leftover_segments()

    def test_no_leftovers_after_serial_downgrade(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        big = np.arange(1 << 14, dtype=np.float64)
        tele = Telemetry()
        pool = ResilientPool(
            config=PoolConfig(max_restarts=0, backoff_seconds=0.01),
            label="downgrade",
        )
        # rate 1.0 kills every parallel attempt; the downgrade path runs
        # the chunks in-process on the original objects.
        with activate(tele), ChunkFaultInjector(mode="kill", rate=1.0, seed=1):
            out = pool.run(
                _shared_sum, [(i,) for i in range(3)], workers=3, shared=(big,)
            )
        assert out == [float(big.sum()) + i for i in range(3)]
        assert tele.counters["pool.serial_downgrades"] == 1
        assert not _leftover_segments()

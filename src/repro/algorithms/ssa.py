"""SSA / D-SSA — Stop-and-Stare (Nguyen, Thai & Dinh, SIGMOD'16).

The benchmarking paper singles this out as the "highly promising technique
... published in SIGMOD 2016. Unfortunately, we could not include the
technique in our study due to how recently it is published. Nonetheless,
our benchmarking study will also evolve with the inclusion of more recent
techniques" (Sec. 7).  This module is that evolution: the platform's
newest RR-set member, benchmarked against TIM+/IMM in
``benchmarks/bench_evolution_ssa.py``.

The stop-and-stare idea: instead of computing a worst-case pool size θ
up front (TIM+/IMM), repeatedly

1. *stop* — draw a pool Λ of RR sets and greedily max-cover it,
2. *stare* — draw an **independent** verification pool of equal size and
   re-estimate the candidate seed set's influence on it,
3. accept when the verification estimate is within (1 − ε₁) of the
   optimistic max-cover estimate (the coverage was not over-fit);
   otherwise double the pool and repeat.

``DSSA`` is the dynamic variant of the same loop: rather than discarding
the verification pool, it becomes the next iteration's selection pool
(halving the sampling cost), and the acceptance threshold adapts to the
measured gap — the paper's D-SSA behaviourally.  Both scale their initial
pool with ``rr_scale`` like TIM+/IMM.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..diffusion.models import Dynamics, PropagationModel
from ..diffusion.rrpool import FlatRRPool, greedy_max_cover
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm
from .ris import log_comb

__all__ = ["SSA", "DSSA"]


class SSA(IMAlgorithm):
    """Stop-and-Stare with independent verification pools."""

    name = "SSA"
    supported = (Dynamics.IC, Dynamics.LT)
    external_parameter = "epsilon"

    def __init__(
        self,
        epsilon: float = 0.5,
        ell: float = 1.0,
        rr_scale: float = 1.0,
        max_rr_sets: int | None = 2_000_000,
        rr_workers: int | None = None,
    ) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon
        self.ell = ell
        self.rr_scale = rr_scale
        self.max_rr_sets = max_rr_sets
        self.rr_workers = rr_workers
        # The paper splits eps into (eps1, eps2, eps3) with
        # (1+eps1)(1+eps2)(1+eps3) <= 1+eps; the reference code uses an
        # even three-way split.
        self.eps1 = self.eps2 = self.eps3 = epsilon / 3.0

    def _initial_pool_size(self, n: int, k: int) -> int:
        lam = (
            (2.0 + 2.0 * self.eps3 / 3.0)
            * (log_comb(n, k) + self.ell * math.log(max(n, 2)) + math.log(2))
            / self.eps3**2
        )
        return self._cap(lam)

    def _cap(self, count: float) -> int:
        count = int(math.ceil(count * self.rr_scale))
        if self.max_rr_sets is not None:
            count = min(count, self.max_rr_sets)
        return max(count, 8)

    def _sample(
        self,
        graph: DiGraph,
        dynamics: Dynamics,
        count: int,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> FlatRRPool:
        pool = FlatRRPool(graph.n)
        pool.extend(
            graph, dynamics, count, rng, workers=self.rr_workers, budget=budget
        )
        return pool

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        if k == 0:
            return [], {"num_rr_sets": 0}
        n = graph.n
        pool_size = self._initial_pool_size(n, k)
        max_pool = self._cap(
            8.0 * n * (math.log(max(n, 2)) + log_comb(n, k)) / self.epsilon**2
        )
        total_sampled = 0
        iterations = 0
        seeds: list[int] = []
        coverage = 0.0
        while True:
            iterations += 1
            self._tick(budget)
            selection = self._sample(graph, model.dynamics, pool_size, rng, budget)
            total_sampled += len(selection)
            seeds, coverage = greedy_max_cover(
                selection, k, pad_priority=graph.out_degree()
            )
            optimistic = coverage * n
            verification = self._sample(
                graph, model.dynamics, pool_size, rng, budget
            )
            total_sampled += len(verification)
            verified = verification.coverage_fraction(seeds) * n
            if verified >= (1.0 - self.eps1) * optimistic:
                break
            if pool_size >= max_pool:
                break  # theoretical cap reached: accept the current answer
            pool_size = min(2 * pool_size, max_pool)
        return seeds, {
            "num_rr_sets": total_sampled,
            "stare_iterations": iterations,
            "coverage_fraction": coverage,
            "extrapolated_spread": coverage * n,
            "epsilon": self.epsilon,
            "rr_pool_bytes": selection.nbytes + verification.nbytes,
        }


class DSSA(SSA):
    """Dynamic Stop-and-Stare: verification pools are recycled."""

    name = "D-SSA"

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        if k == 0:
            return [], {"num_rr_sets": 0}
        n = graph.n
        pool_size = self._initial_pool_size(n, k)
        max_pool = self._cap(
            8.0 * n * (math.log(max(n, 2)) + log_comb(n, k)) / self.epsilon**2
        )
        selection = self._sample(graph, model.dynamics, pool_size, rng, budget)
        total_sampled = len(selection)
        iterations = 0
        seeds: list[int] = []
        coverage = 0.0
        while True:
            iterations += 1
            self._tick(budget)
            seeds, coverage = greedy_max_cover(
                selection, k, pad_priority=graph.out_degree()
            )
            optimistic = coverage * n
            verification = self._sample(
                graph, model.dynamics, len(selection), rng, budget
            )
            total_sampled += len(verification)
            verified = verification.coverage_fraction(seeds) * n
            if verified >= (1.0 - self.eps1) * optimistic:
                break
            if len(selection) >= max_pool:
                break
            # Dynamic step: the verification pool joins the selection pool
            # (the sampling effort is never wasted).
            selection.absorb(verification)
        return seeds, {
            "num_rr_sets": total_sampled,
            "stare_iterations": iterations,
            "coverage_fraction": coverage,
            "extrapolated_spread": coverage * n,
            "epsilon": self.epsilon,
            "rr_pool_bytes": selection.nbytes + verification.nbytes,
        }

"""Statistical-equivalence tests for the batched spread engine.

The batched multi-cascade kernels consume RNG draws in a different layout
than the serial per-cascade loops (coins are drawn edge-major across the
batch), so batched and serial σ samples can never be compared
sample-for-sample — but they must agree *distributionally*, under both IC
and LT.  The snapshot oracle must converge to the exhaustive-enumeration
oracle, and the marginal-gain memo must be invisible in CELF's output.

Everything runs on fixed seeds, so the p-value assertions are
deterministic; the suite rides the ``pytest -m statistical`` CI job.
"""

import numpy as np
import pytest

from repro.algorithms import registry
from repro.diffusion import oracle as oracle_mod
from repro.diffusion.models import Dynamics, WC
from repro.diffusion.oracle import SnapshotOracle
from repro.diffusion.simulation import monte_carlo_spread
from repro.graph.digraph import DiGraph
from repro.graph.generators import build, powerlaw_configuration
from tests.oracles import exact_spread

stats = pytest.importorskip("scipy.stats")

pytestmark = pytest.mark.statistical

SAMPLES = 400
P_FLOOR = 0.01  # deterministic under fixed seeds; guards distribution drift
ORACLE_WORLDS = 20_000


@pytest.fixture(scope="module")
def powerlaw_graph():
    rng = np.random.default_rng(2024)
    return WC.weighted(build(powerlaw_configuration(250, 2.3, 4.0, rng)), rng)


@pytest.fixture(scope="module")
def tiny_graph():
    """10 nodes / 10 edges: small enough for exhaustive world enumeration."""
    edges = [
        (0, 1), (0, 2), (1, 3), (2, 3), (3, 4),
        (4, 5), (5, 6), (2, 7), (7, 8), (8, 9),
    ]
    return DiGraph.from_edges(10, edges, weights=[0.4] * len(edges))


class TestBatchedVsSerialDistribution:
    @pytest.mark.parametrize("dynamics", [Dynamics.IC, Dynamics.LT])
    def test_spread_samples_ks(self, powerlaw_graph, dynamics):
        seeds = [0, 7, 21]
        __, serial = monte_carlo_spread(
            powerlaw_graph, seeds, dynamics, r=SAMPLES,
            rng=np.random.default_rng(31), return_samples=True,
        )
        __, batched = monte_carlo_spread(
            powerlaw_graph, seeds, dynamics, r=SAMPLES,
            rng=np.random.default_rng(77), batch=64, return_samples=True,
        )
        result = stats.ks_2samp(serial, batched)
        assert result.pvalue > P_FLOOR

    @pytest.mark.parametrize("dynamics", [Dynamics.IC, Dynamics.LT])
    def test_batched_mean_within_joint_se(self, powerlaw_graph, dynamics):
        seeds = [0, 7, 21]
        est_s = monte_carlo_spread(
            powerlaw_graph, seeds, dynamics, r=SAMPLES,
            rng=np.random.default_rng(31),
        )
        est_b = monte_carlo_spread(
            powerlaw_graph, seeds, dynamics, r=SAMPLES,
            rng=np.random.default_rng(77), batch=64,
        )
        joint_se = float(np.hypot(est_s.stderr, est_b.stderr))
        assert abs(est_s.mean - est_b.mean) <= 3.0 * joint_se


class TestSnapshotOracleConvergence:
    @pytest.mark.parametrize("dynamics", [Dynamics.IC, Dynamics.LT])
    def test_sigma_within_three_se_of_exact(self, tiny_graph, dynamics):
        seeds = (0, 2)
        oracle = SnapshotOracle(
            tiny_graph, dynamics, ORACLE_WORLDS, np.random.default_rng(555)
        )
        # Per-world reach counts expose the sampling error of the estimate.
        counts = oracle._reach(seeds, np.zeros_like(oracle.covered)).sum(axis=1)
        mean = float(counts.mean())
        se = float(counts.std(ddof=1)) / np.sqrt(ORACLE_WORLDS)
        truth = exact_spread(tiny_graph, list(seeds), dynamics)
        assert abs(mean - truth) <= 3.0 * se
        assert oracle.evaluate(seeds) == pytest.approx(mean, abs=1e-9)


class TestGainCacheRegression:
    def test_celf_seed_sets_identical_with_and_without_memo(
        self, powerlaw_graph, monkeypatch
    ):
        """Enabling the memo cache must not change CELF's output at all.

        The batched backend derives each query's RNG from the query
        content, so a memoized answer equals a recomputed one exactly;
        this pins that contract byte-for-byte.
        """

        def run():
            algo = registry.make(
                "CELF", mc_simulations=30, spread_oracle="batched", mc_batch=16
            )
            return algo.select(powerlaw_graph, 8, WC, rng=np.random.default_rng(42))

        with_cache = run()

        class _Bypass(oracle_mod.GainCache):
            def gain(self, oracle, v, extra=(), extra_gain=0.0):
                self.misses += 1
                return oracle.gain(v, extra, extra_gain)

        monkeypatch.setattr(oracle_mod, "GainCache", _Bypass)
        without_cache = run()

        assert with_cache.seeds == without_cache.seeds
        assert with_cache.extras["estimated_spread"] == (
            without_cache.extras["estimated_spread"]
        )
        # The bypass really did disable memoization.
        assert without_cache.extras["gain_cache_hits"] == 0

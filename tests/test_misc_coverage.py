"""Assorted edge-coverage tests across modules."""

import numpy as np
import pytest

from repro.diffusion._frontier import gather_edges
from repro.diffusion.models import IC, WC
from repro.framework.metrics import RunRecord
from repro.framework.runner import IMFramework
from repro.framework.tuning import tune_parameter
from repro.graph.digraph import DiGraph
from repro.graph.generators import build, erdos_renyi
from repro.graph.multigraph import MultiDiGraph
from repro.graph.stats import effective_diameter


class TestFrontierGatherEdges:
    def test_empty_nodes(self):
        g = DiGraph.from_edges(3, [(0, 1)])
        assert gather_edges(g.out_ptr, np.empty(0, dtype=np.int64)).size == 0

    def test_nodes_without_edges(self):
        g = DiGraph.from_edges(3, [(0, 1)])
        got = gather_edges(g.out_ptr, np.array([1, 2]))
        assert got.size == 0


class TestGeneratorsBuild:
    def test_build_helper(self, rng):
        g = build(erdos_renyi(30, 0.05, rng))
        assert g.n == 30


class TestEffectiveDiameter:
    def test_percentile_monotone(self, rng):
        g = build(erdos_renyi(80, 0.08, rng))
        d50 = effective_diameter(g, percentile=50.0, rng=rng)
        d90 = effective_diameter(g, percentile=90.0, rng=rng)
        assert d90 >= d50

    def test_single_node(self):
        assert effective_diameter(DiGraph.from_edges(1, [])) == 0.0


class TestMultiGraphIteration:
    def test_edge_items_sorted(self):
        mg = MultiDiGraph(4, [(2, 3), (0, 1), (0, 1)])
        items = list(mg.edge_items())
        assert items == [(0, 1, 2), (2, 3, 1)]


class TestRunRecordCell:
    def test_cell_without_memory(self):
        record = RunRecord("X", "IC", 1, "OK", spread=5.0, elapsed_seconds=0.5)
        assert "5.0" in record.cell()
        assert record.cell().endswith("-")

    def test_crashed_cell(self):
        assert RunRecord("X", "IC", 1, "CRASHED").cell() == "CRASHED"


class TestFrameworkEdges:
    @pytest.fixture
    def graph(self):
        rng = np.random.default_rng(0)
        return WC.weighted(DiGraph.from_arrays(
            40, rng.integers(0, 40, 120), rng.integers(0, 40, 120)
        ))

    def test_run_surfaces_immediate_failure(self, graph, rng):
        fw = IMFramework(graph, WC, mc_simulations=50,
                         time_limit_seconds=0.001)
        trace = fw.run("CELF", 2, [{"mc_simulations": 500}], rng=rng)
        assert trace.chosen_index == -1
        assert trace.failure is not None
        assert trace.failure.status == "DNF"
        with pytest.raises(LookupError):
            trace.chosen
        with pytest.raises(LookupError):
            trace.chosen_parameters

    def test_tuning_respects_fixed_params(self, graph, rng):
        result = tune_parameter(
            "IMM", "epsilon", [0.5], graph, WC, 2,
            mc_simulations=50, rng=rng,
            fixed_params={"rr_scale": 0.01, "max_rr_sets": 64},
        )
        assert result.points[0].status == "OK"

    def test_chosen_estimate_matches_record(self, graph, rng):
        fw = IMFramework(graph, WC, mc_simulations=50)
        trace = fw.run("Degree", 2, rng=rng)
        assert trace.chosen_estimate.mean == trace.chosen.spread


class TestModelValueErrors:
    def test_ic_weighting_is_deterministic(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        a = IC.weighted(g)
        b = IC.weighted(g, np.random.default_rng(123))
        assert np.array_equal(a.out_w, b.out_w)

"""The GREEDY hill-climbing algorithm of Kempe et al. (Alg. 2).

Iteratively adds the node with the largest Monte-Carlo-estimated marginal
gain σ(S ∪ {v}) − σ(S).  Provides the (1 − 1/e − ε) guarantee of Theorem 2
but is non-scalable: every iteration re-estimates the spread of every node
(the paper benchmarks CELF/CELF++ instead for exactly this reason).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..diffusion.models import Dynamics, PropagationModel
from ..diffusion.simulation import DEFAULT_MC_SIMULATIONS, monte_carlo_spread
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm

__all__ = ["Greedy"]


class Greedy(IMAlgorithm):
    """Kempe et al.'s GREEDY with ``r`` MC simulations per estimate."""

    name = "GREEDY"
    supported = (Dynamics.IC, Dynamics.LT)
    external_parameter = "#MC Simulations"

    def __init__(self, mc_simulations: int = DEFAULT_MC_SIMULATIONS) -> None:
        if mc_simulations < 1:
            raise ValueError("mc_simulations must be positive")
        self.mc_simulations = mc_simulations

    def _estimate(self, graph, seeds, model, rng) -> float:
        return monte_carlo_spread(
            graph, seeds, model, r=self.mc_simulations, rng=rng
        ).mean

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        seeds: list[int] = []
        in_seed = np.zeros(graph.n, dtype=bool)
        current = 0.0
        lookups: list[int] = []
        for __ in range(k):
            best_v, best_gain = -1, -np.inf
            evaluations = 0
            for v in range(graph.n):
                if in_seed[v]:
                    continue
                self._tick(budget)
                gain = self._estimate(graph, seeds + [v], model, rng) - current
                evaluations += 1
                if gain > best_gain:
                    best_gain, best_v = gain, v
            seeds.append(best_v)
            in_seed[best_v] = True
            current += best_gain
            lookups.append(evaluations)
        return seeds, {
            "node_lookups_per_iteration": lookups,
            "estimated_spread": current,
        }

"""Tests for the proxy heuristics (degree family + PageRank)."""

import numpy as np
import pytest

from repro.algorithms.heuristics import (
    Degree,
    DegreeDiscount,
    PageRankHeuristic,
    SingleDiscount,
    pagerank,
)
from repro.diffusion.models import IC, WC
from repro.graph.digraph import DiGraph


@pytest.fixture
def hub_graph():
    """Node 0 is a hub; nodes 1-3 point into a chain."""
    edges = [(0, i) for i in range(1, 6)] + [(1, 6), (6, 7)]
    return IC.weighted(DiGraph.from_edges(8, edges))


class TestDegree:
    def test_picks_highest_degree_first(self, hub_graph, rng):
        res = Degree().select(hub_graph, 1, IC, rng=rng)
        assert res.seeds == [0]

    def test_order_is_degree_sorted(self, hub_graph, rng):
        res = Degree().select(hub_graph, 3, IC, rng=rng)
        degrees = [hub_graph.out_degree(s) for s in res.seeds]
        assert degrees == sorted(degrees, reverse=True)


class TestSingleDiscount:
    def test_discounts_edges_into_seeds(self, rng):
        # 0 -> {1,2,3}; 4 -> {0,5}; 6 -> {7,8}: after picking 0, node 4's
        # edge into the seed is discounted, so 6 wins the second slot.
        edges = [(0, 1), (0, 2), (0, 3), (4, 0), (4, 5), (6, 7), (6, 8)]
        g = IC.weighted(DiGraph.from_edges(9, edges))
        res = SingleDiscount().select(g, 2, IC, rng=rng)
        assert res.seeds[0] == 0
        assert res.seeds[1] == 6

    def test_matches_degree_on_disjoint_stars(self, rng):
        edges = [(0, 1), (0, 2), (3, 4), (3, 5)]
        g = IC.weighted(DiGraph.from_edges(6, edges))
        res = SingleDiscount().select(g, 2, IC, rng=rng)
        assert set(res.seeds) == {0, 3}


class TestDegreeDiscount:
    def test_first_seed_is_max_degree(self, hub_graph, rng):
        res = DegreeDiscount().select(hub_graph, 1, IC, rng=rng)
        assert res.seeds == [0]

    def test_discounts_neighbours_of_seeds(self, rng):
        # Hub 0 -> {1..4}; its leaf 1 -> {5, 6} has the next-highest raw
        # degree but gets heavily discounted once 0 is seeded, so the
        # independent node 7 -> 8 overtakes it.
        edges = [(0, i) for i in (1, 2, 3, 4)] + [(1, 5), (1, 6), (7, 8)]
        g = IC.weighted(DiGraph.from_edges(9, edges))
        res = DegreeDiscount().select(g, 2, IC, rng=rng)
        assert res.seeds[0] == 0
        assert res.seeds[1] == 7


class TestPageRank:
    def test_uniform_on_symmetric_cycle(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        rank = pagerank(g)
        assert np.allclose(rank, 1 / 3, atol=1e-6)

    def test_rank_sums_to_one(self, hub_graph):
        rank = pagerank(hub_graph)
        assert rank.sum() == pytest.approx(1.0, abs=1e-6)

    def test_reverse_pagerank_favours_influencers(self, rng):
        # 0 points at many nodes: on the reversed graph it *receives* mass.
        edges = [(0, i) for i in range(1, 6)]
        g = WC.weighted(DiGraph.from_edges(6, edges))
        res = PageRankHeuristic().select(g, 1, WC, rng=rng)
        assert res.seeds == [0]

    def test_forward_pagerank_differs(self, hub_graph):
        fwd = pagerank(hub_graph, reverse=False)
        rev = pagerank(hub_graph, reverse=True)
        assert not np.allclose(fwd, rev)

    def test_empty_graph(self):
        assert pagerank(DiGraph.from_edges(0, [])).size == 0

    def test_dangling_mass_redistributed(self):
        g = DiGraph.from_edges(2, [(0, 1)])
        rank = pagerank(g, reverse=False)
        assert rank.sum() == pytest.approx(1.0, abs=1e-6)
        assert rank[1] > rank[0]

"""EaSyIM-OI — opinion-aware EaSyIM (Galhotra, Arora & Roy, SIGMOD\'16).

The opinion-aware half of the EaSyIM paper, extending the platform beyond
the benchmark\'s opinion-oblivious setting; the OI diffusion primitives
live in :mod:`repro.diffusion.opinion`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..diffusion.models import Dynamics, PropagationModel
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm

__all__ = ["OpinionEaSyIM"]


class OpinionEaSyIM(IMAlgorithm):
    """EaSyIM-OI: opinion-weighted path scores, one float per node."""

    name = "EaSyIM-OI"
    supported = (Dynamics.IC, Dynamics.LT)
    external_parameter = "path length"

    def __init__(self, opinions: np.ndarray, path_length: int = 4) -> None:
        if path_length < 1:
            raise ValueError("path_length must be positive")
        self.opinions = np.asarray(opinions, dtype=np.float64)
        self.path_length = path_length

    def _scores(
        self, graph: DiGraph, alive: np.ndarray, edge_src: np.ndarray
    ) -> np.ndarray:
        opinions = self.opinions
        score = np.zeros(graph.n, dtype=np.float64)
        alive_dst = alive[graph.out_dst]
        contribution = np.where(alive_dst, graph.out_w, 0.0)
        for __ in range(self.path_length):
            acc = np.zeros(graph.n, dtype=np.float64)
            np.add.at(
                acc,
                edge_src,
                contribution * (opinions[graph.out_dst] + score[graph.out_dst]),
            )
            score = acc
        # A seed contributes its own opinion on top of its paths.
        return score + opinions

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        if self.opinions.shape[0] != graph.n:
            raise ValueError("opinions must have one entry per node")
        edge_src = graph.edge_src
        alive = np.ones(graph.n, dtype=bool)
        seeds: list[int] = []
        for __ in range(k):
            self._tick(budget)
            score = self._scores(graph, alive, edge_src)
            score[~alive] = -np.inf
            v = int(score.argmax())
            seeds.append(v)
            alive[v] = False
        return seeds, {"path_length": self.path_length}

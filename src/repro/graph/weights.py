"""Edge-weight schemes of Sec. 2.1 of the paper.

Every function takes a :class:`~repro.graph.digraph.DiGraph` and returns a
*new* graph with the same topology and re-assigned weights.  The weight of
an edge ``(u, v)`` is the probability (IC) or the threshold contribution
(LT) with which ``u`` influences ``v``.

Independent Cascade schemes (Sec. 2.1.1):

* :func:`constant` — W(u,v) = p (p in {0.01, 0.1} in the literature).
* :func:`weighted_cascade` — W(u,v) = 1/|In(v)| (the WC model).
* :func:`trivalency` — W(u,v) drawn uniformly from a small value set.

Linear Threshold schemes (Sec. 2.1.2):

* :func:`lt_uniform` — W(u,v) = 1/|In(v)| (identical formula to WC).
* :func:`lt_random` — U(0,1) weights normalized so incoming sums are 1.
* parallel-edges — see :func:`repro.graph.multigraph.consolidate`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .digraph import DiGraph

__all__ = [
    "constant",
    "weighted_cascade",
    "trivalency",
    "lt_uniform",
    "lt_random",
    "incoming_weight_sums",
]

DEFAULT_TRIVALENCY = (0.001, 0.01, 0.1)


def constant(graph: DiGraph, p: float = 0.1) -> DiGraph:
    """IC-constant: every edge gets probability ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability in [0, 1]")
    return graph.with_weights(np.full(graph.m, p, dtype=np.float64))


def weighted_cascade(graph: DiGraph) -> DiGraph:
    """WC: W(u,v) = 1/|In(v)| — low-degree nodes are easier to influence."""
    in_deg = graph.in_degree()
    # Every edge (u, v) has in_deg[v] >= 1 by construction.
    w = 1.0 / in_deg[graph.edge_dst]
    return graph.with_weights(w)


def trivalency(
    graph: DiGraph,
    values: Sequence[float] = DEFAULT_TRIVALENCY,
    rng: np.random.Generator | None = None,
) -> DiGraph:
    """Tri-valency: per-edge weight drawn uniformly from ``values``."""
    vals = np.asarray(values, dtype=np.float64)
    if vals.size == 0:
        raise ValueError("values must be non-empty")
    if ((vals < 0) | (vals > 1)).any():
        raise ValueError("values must be probabilities in [0, 1]")
    rng = np.random.default_rng() if rng is None else rng
    w = rng.choice(vals, size=graph.m)
    return graph.with_weights(w)


def lt_uniform(graph: DiGraph) -> DiGraph:
    """LT-uniform: identical formula to WC; incoming weights sum to 1."""
    return weighted_cascade(graph)


def lt_random(graph: DiGraph, rng: np.random.Generator | None = None) -> DiGraph:
    """LT-random: U(0,1) draws normalized per target so In(v) sums to 1."""
    rng = np.random.default_rng() if rng is None else rng
    raw = rng.uniform(0.0, 1.0, size=graph.m)
    # Guard against a pathological all-zero incoming draw.
    raw = np.maximum(raw, 1e-12)
    sums = np.zeros(graph.n, dtype=np.float64)
    np.add.at(sums, graph.edge_dst, raw)
    w = raw / sums[graph.edge_dst]
    return graph.with_weights(w)


def incoming_weight_sums(graph: DiGraph) -> np.ndarray:
    """Sum of incoming edge weights per node (LT requires each <= 1)."""
    sums = np.zeros(graph.n, dtype=np.float64)
    np.add.at(sums, graph.edge_dst, graph.out_w)
    return sums

"""Tests for SIMPATH path enumeration and selection."""

import numpy as np
import pytest

from repro.algorithms.simpath import SIMPATH, simpath_spread
from repro.diffusion.models import IC, LT
from repro.diffusion.simulation import monte_carlo_spread
from repro.graph.digraph import DiGraph
from tests.oracles import exact_lt_spread


def all_allowed(n):
    return np.ones(n, dtype=bool)


class TestSimpathSpread:
    def test_isolated_node(self):
        g = DiGraph.from_edges(2, [])
        assert simpath_spread(g, 0, all_allowed(2), eta=1e-3) == 1.0

    def test_single_edge(self):
        g = DiGraph.from_edges(2, [(0, 1)], weights=[0.4])
        assert simpath_spread(g, 0, all_allowed(2), eta=1e-3) == pytest.approx(1.4)

    def test_chain_path_products(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.5, 0.5])
        # paths: (0), (0,1)=0.5, (0,1,2)=0.25
        assert simpath_spread(g, 0, all_allowed(3), eta=1e-3) == pytest.approx(1.75)

    def test_matches_exact_lt_spread_on_dag(self):
        # On a DAG with simple-path-unique structure SIMPATH is exact.
        g = DiGraph.from_edges(
            4, [(0, 1), (0, 2), (1, 3), (2, 3)], weights=[0.5, 0.3, 0.4, 0.2]
        )
        got = simpath_spread(g, 0, all_allowed(4), eta=1e-9)
        assert got == pytest.approx(exact_lt_spread(g, [0]), abs=1e-9)

    def test_pruning_threshold(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.1, 0.1])
        # with eta=0.05 the length-2 path (0.01) is pruned
        got = simpath_spread(g, 0, all_allowed(3), eta=0.05)
        assert got == pytest.approx(1.1)

    def test_blocked_nodes_excluded(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.5, 0.5])
        allowed = np.array([True, False, True])
        assert simpath_spread(g, 0, allowed, eta=1e-3) == pytest.approx(1.0)

    def test_simple_paths_only(self):
        # 2-cycle: paths from 0 are (0) and (0,1); no revisits.
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)], weights=[0.5, 0.5])
        assert simpath_spread(g, 0, all_allowed(2), eta=1e-6) == pytest.approx(1.5)

    def test_through_counts(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.5, 0.5])
        through = np.zeros(3)
        simpath_spread(g, 0, all_allowed(3), eta=1e-3, through=through)
        assert through[1] == pytest.approx(0.75)  # 0.5 + 0.25 both pass node 1
        assert through[2] == pytest.approx(0.25)
        assert through[0] == 0.0


class TestSelection:
    def test_chain_picks_head(self, rng):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[1.0, 1.0])
        res = SIMPATH().select(g, 1, LT, rng=rng)
        assert res.seeds == [0]

    def test_rejects_ic(self, rng):
        g = DiGraph.from_edges(2, [(0, 1)], weights=[0.5])
        with pytest.raises(ValueError):
            SIMPATH().select(g, 1, IC, rng=rng)

    def test_first_seed_is_exact_argmax(self, rng):
        g = DiGraph.from_edges(
            6, [(0, 1), (0, 2), (1, 3), (2, 4), (5, 4)],
            weights=[0.5, 0.5, 0.5, 0.5, 0.5],
        )
        res = SIMPATH(eta=1e-9).select(g, 1, LT, rng=rng)
        spreads = {v: exact_lt_spread(g, [v]) for v in range(6)}
        assert res.seeds[0] == max(spreads, key=spreads.get)

    def test_two_seeds_diversify(self, rng):
        # Two disjoint chains: second seed must come from the other chain.
        g = DiGraph.from_edges(
            6, [(0, 1), (1, 2), (3, 4), (4, 5)], weights=[1.0] * 4
        )
        res = SIMPATH().select(g, 2, LT, rng=rng)
        assert set(res.seeds) == {0, 3}

    def test_agrees_with_ldag_on_random_graph(self, rng):
        from repro.algorithms.ldag import LDAG
        from repro.diffusion.models import LT as LTModel

        trial_rng = np.random.default_rng(2)
        g = DiGraph.from_arrays(
            30, trial_rng.integers(0, 30, 80), trial_rng.integers(0, 30, 80)
        )
        wg = LTModel.weighted(g)
        sp = SIMPATH().select(wg, 3, LTModel, rng=rng)
        ld = LDAG().select(wg, 3, LTModel, rng=rng)
        got_sp = monte_carlo_spread(wg, sp.seeds, LTModel, r=3000, rng=rng).mean
        got_ld = monte_carlo_spread(wg, ld.seeds, LTModel, r=3000, rng=rng).mean
        assert abs(got_sp - got_ld) < 0.15 * max(got_sp, got_ld)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SIMPATH(eta=0.0)
        with pytest.raises(ValueError):
            SIMPATH(lookahead=0)


class TestVertexCover:
    def random_graph(self, seed=4, n=25, m=70):
        rng = np.random.default_rng(seed)
        g = DiGraph.from_arrays(n, rng.integers(0, n, m), rng.integers(0, n, m))
        return LT.weighted(g)

    def test_cover_touches_every_edge(self):
        from repro.algorithms.simpath import vertex_cover

        g = self.random_graph()
        cov = vertex_cover(g)
        for u, v, __ in g.edges():
            assert cov[u] or cov[v]

    def test_uncovered_out_neighbors_lie_in_cover(self):
        from repro.algorithms.simpath import vertex_cover

        g = self.random_graph()
        cov = vertex_cover(g)
        for u, v, __ in g.edges():
            if not cov[u]:
                assert cov[v]

    def test_covered_sigmas_exact(self):
        # Covered nodes are enumerated directly, so their sigma must equal
        # the plain per-node enumeration bit for bit.
        from repro.algorithms.simpath import _sigma_cover, vertex_cover

        g = self.random_graph()
        cov = vertex_cover(g)
        vnodes = np.flatnonzero(cov)
        sig, __ = _sigma_cover(g, 1e-3, cov, vnodes)
        for i, v in enumerate(vnodes):
            assert sig[i] == simpath_spread(g, int(v), all_allowed(g.n), 1e-3)

    def test_vertex_cover_mode_selects_valid_seeds(self, rng):
        g = self.random_graph()
        res = SIMPATH(vertex_cover=True).select(g, 3, LT, rng=rng)
        assert len(set(res.seeds)) == 3
        assert res.extras["vertex_cover"] is True

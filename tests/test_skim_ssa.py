"""Tests for the extension techniques: SKIM and SSA/D-SSA."""

import numpy as np
import pytest

from repro.algorithms.skim import SKIM, _reverse_adjacency
from repro.algorithms.ssa import DSSA, SSA
from repro.diffusion.models import IC, LT, WC
from repro.diffusion.simulation import monte_carlo_spread
from repro.graph.digraph import DiGraph


@pytest.fixture
def hub_graph():
    edges = [(0, i) for i in range(1, 10)] + [(10, 11)]
    return DiGraph.from_edges(12, edges, weights=[0.9] * 10)


class TestReverseAdjacency:
    def test_matches_in_neighbors(self):
        g = DiGraph.from_edges(4, [(0, 2), (1, 2), (2, 3)])
        adj = _reverse_adjacency(g, np.ones(3, dtype=bool))
        assert sorted(adj[2].tolist()) == [0, 1]
        assert adj[3].tolist() == [2]
        assert adj[0].tolist() == []

    def test_respects_live_mask(self):
        g = DiGraph.from_edges(3, [(0, 2), (1, 2)])
        # Only one of the two arcs is live.
        live = np.array([True, False])
        adj = _reverse_adjacency(g, live)
        assert len(adj[2]) == 1


class TestSKIM:
    def test_finds_hub(self, hub_graph, rng):
        res = SKIM(num_instances=16, sketch_k=8).select(hub_graph, 1, IC, rng=rng)
        assert res.seeds == [0]

    def test_second_seed_diversifies(self, hub_graph, rng):
        res = SKIM(num_instances=16, sketch_k=8).select(hub_graph, 2, IC, rng=rng)
        assert res.seeds[0] == 0
        assert res.seeds[1] == 10

    def test_supports_lt(self, two_cliques, rng):
        res = SKIM(num_instances=8, sketch_k=4).select(two_cliques, 2, LT, rng=rng)
        assert len(set(res.seeds)) == 2

    def test_estimated_spread_reported(self, hub_graph, rng):
        res = SKIM(num_instances=32, sketch_k=8).select(hub_graph, 1, IC, rng=rng)
        # sigma({0}) = 1 + 9 * 0.9 = 9.1
        assert res.extras["estimated_spread"] == pytest.approx(9.1, abs=1.0)

    def test_edgeless_graph(self, rng):
        g = IC.weighted(DiGraph.from_edges(5, []))
        res = SKIM(num_instances=4, sketch_k=4).select(g, 3, IC, rng=rng)
        assert len(set(res.seeds)) == 3

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SKIM(num_instances=0)
        with pytest.raises(ValueError):
            SKIM(sketch_k=0)


class TestSSA:
    def test_finds_hub(self, hub_graph, rng):
        res = SSA(epsilon=0.5, rr_scale=0.05).select(hub_graph, 1, IC, rng=rng)
        assert res.seeds == [0]

    def test_stare_iterations_reported(self, hub_graph, rng):
        res = SSA(epsilon=0.5, rr_scale=0.05).select(hub_graph, 2, IC, rng=rng)
        assert res.extras["stare_iterations"] >= 1
        assert res.extras["num_rr_sets"] > 0

    def test_verification_uses_fresh_pools(self, hub_graph, rng):
        # Total sampled must be at least twice one selection pool.
        res = SSA(epsilon=0.5, rr_scale=0.05).select(hub_graph, 2, IC, rng=rng)
        assert res.extras["num_rr_sets"] >= 16  # two pools of >= 8

    def test_quality_comparable_to_imm(self, rng):
        from repro.algorithms.imm import IMM

        trial = np.random.default_rng(3)
        g = WC.weighted(DiGraph.from_arrays(
            60, trial.integers(0, 60, 240), trial.integers(0, 60, 240)
        ))
        ssa = SSA(epsilon=0.3, rr_scale=0.1).select(g, 5, WC, rng=rng)
        imm = IMM(epsilon=0.3, rr_scale=0.1).select(g, 5, WC, rng=rng)
        s1 = monte_carlo_spread(g, ssa.seeds, WC, r=2000, rng=rng).mean
        s2 = monte_carlo_spread(g, imm.seeds, WC, r=2000, rng=rng).mean
        assert s1 >= 0.85 * s2

    def test_k_zero(self, hub_graph, rng):
        assert SSA(rr_scale=0.05).select(hub_graph, 0, IC, rng=rng).seeds == []

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            SSA(epsilon=0.0)


class TestDSSA:
    def test_finds_hub(self, hub_graph, rng):
        res = DSSA(epsilon=0.5, rr_scale=0.05).select(hub_graph, 1, IC, rng=rng)
        assert res.seeds == [0]

    def test_recycles_verification_pool(self, hub_graph):
        # With an absurdly strict acceptance bound D-SSA must iterate, and
        # its total sampling stays below independent-pool SSA's for the
        # same schedule (pool reuse).
        ssa = SSA(epsilon=0.5, rr_scale=0.05)
        dssa = DSSA(epsilon=0.5, rr_scale=0.05)
        r1 = ssa.select(hub_graph, 2, IC, rng=np.random.default_rng(1))
        r2 = dssa.select(hub_graph, 2, IC, rng=np.random.default_rng(1))
        assert r2.extras["num_rr_sets"] <= 2 * r1.extras["num_rr_sets"]

    def test_supports_lt(self, two_cliques, rng):
        res = DSSA(epsilon=0.5, rr_scale=0.05).select(two_cliques, 2, LT, rng=rng)
        assert len(set(res.seeds)) == 2

    def test_registry_names(self):
        from repro.algorithms import registry

        assert registry.make("SSA").name == "SSA"
        assert registry.make("D-SSA").name == "D-SSA"
        assert registry.make("SKIM").name == "SKIM"
        assert registry.make("PMIA").name == "PMIA"

"""RIS — Reverse Influence Sampling (Borgs et al., SODA'14).

The progenitor of the RR-set family (Sec. 4.2).  The paper excludes RIS
from the main benchmark because TIM+ and IMM dominate it, but it is the
conceptual baseline both build on, so it is included here: sample a pool
of RR sets, then greedily max-cover it.

The original algorithm sets its sampling budget through a threshold on
total *width* (edges examined); this implementation exposes both knobs —
``num_rr_sets`` for a fixed pool size and ``width_budget`` for the
original stopping rule.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..diffusion.models import Dynamics, PropagationModel
from ..diffusion.rrpool import FlatRRPool, greedy_max_cover, random_rr_set
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm

__all__ = ["RIS", "log_comb"]


def log_comb(n: int, k: int) -> float:
    """log C(n, k) — shows up in every RR-set sample-size bound."""
    if k < 0 or k > n:
        return float("-inf")
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


class RIS(IMAlgorithm):
    """Fixed-budget reverse influence sampling.

    ``rr_workers > 1`` samples the pool across a process pool (flat-CSR
    engine); the width-budget stopping rule forces serial sampling, since
    the stop depends on the running width total.
    """

    name = "RIS"
    supported = (Dynamics.IC, Dynamics.LT)
    external_parameter = "#RR Sets"

    def __init__(
        self,
        num_rr_sets: int = 10_000,
        width_budget: int | None = None,
        rr_workers: int | None = None,
    ) -> None:
        if num_rr_sets < 1:
            raise ValueError("num_rr_sets must be positive")
        self.num_rr_sets = num_rr_sets
        self.width_budget = width_budget
        self.rr_workers = rr_workers

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        pool = FlatRRPool(graph.n)
        if self.width_budget is not None:
            while len(pool) < self.num_rr_sets:
                self._tick(budget)
                nodes, width = random_rr_set(graph, model.dynamics, rng)
                pool.add(nodes, width)
                if pool.total_width >= self.width_budget:
                    break
        else:
            pool.extend(
                graph, model.dynamics, self.num_rr_sets, rng,
                workers=self.rr_workers, budget=budget,
            )
        seeds, coverage = greedy_max_cover(pool, k, pad_priority=graph.out_degree())
        return seeds, {
            "num_rr_sets": len(pool),
            "total_width": pool.total_width,
            "coverage_fraction": coverage,
            "extrapolated_spread": coverage * graph.n,
            "rr_pool_bytes": pool.nbytes,
        }

"""Shared fixtures for the test suite (exact oracles live in oracles.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.digraph import DiGraph


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def line_graph():
    """0 -> 1 -> 2 -> 3 with weights 0.5 each."""
    return DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)], weights=[0.5, 0.5, 0.5])


@pytest.fixture
def diamond_graph():
    """0 -> {1, 2} -> 3."""
    return DiGraph.from_edges(
        4, [(0, 1), (0, 2), (1, 3), (2, 3)], weights=[0.5, 0.5, 0.5, 0.5]
    )


@pytest.fixture
def star_graph():
    """Hub 0 pointing to 1..5 with weight 0.3."""
    return DiGraph.from_edges(6, [(0, i) for i in range(1, 6)], weights=[0.3] * 5)


@pytest.fixture
def two_cliques():
    """Two directed 3-cliques {0,1,2} and {3,4,5} joined by a weak bridge."""
    edges = []
    for group in ((0, 1, 2), (3, 4, 5)):
        for u in group:
            for v in group:
                if u != v:
                    edges.append((u, v))
    edges.append((2, 3))
    weights = [0.6] * (len(edges) - 1) + [0.05]
    return DiGraph.from_edges(6, edges, weights=weights)

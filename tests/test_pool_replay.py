"""Property tests: lost chunks replay byte-identically from spawn keys.

The resilient pool's recovery story rests on one invariant — a chunk is a
pure function of ``(fn, args, SeedSequence spawn-key state)``, so
re-executing a lost chunk reproduces its bytes exactly, and a faulted run
equals a fault-free run no matter which chunks were lost or in what order
they were recovered.  Hypothesis drives that invariant across random
entropies, spawn keys, chunk sizes, and fault seeds; part of the
``-m statistical`` equivalence layer.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion.models import Dynamics, WC
from repro.diffusion.rrpool import FlatRRPool, _sample_rr_chunk
from repro.diffusion.simulation import _simulate_chunk, monte_carlo_spread
from repro.framework.pool import ChunkFaultInjector
from repro.graph.digraph import DiGraph
from repro.graph.generators import build, powerlaw_configuration

pytestmark = pytest.mark.statistical


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(31)
    return WC.weighted(build(powerlaw_configuration(60, 2.3, 4.0, rng)), rng)


class TestChunkReplay:
    """Re-executing any chunk from its spawn-key state is byte-identical."""

    @given(
        entropy=st.integers(min_value=0, max_value=2**63 - 1),
        spawn=st.integers(min_value=0, max_value=63),
        count=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=25, deadline=None)
    def test_rr_chunk_replays_identically(self, graph, entropy, spawn, count):
        state = {"entropy": entropy, "spawn_key": (spawn,)}
        first = _sample_rr_chunk(graph, Dynamics.IC, count, state)
        second = _sample_rr_chunk(graph, Dynamics.IC, count, dict(state))
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    @given(
        entropy=st.integers(min_value=0, max_value=2**63 - 1),
        spawn=st.integers(min_value=0, max_value=63),
        count=st.integers(min_value=1, max_value=40),
        batch=st.sampled_from([1, 4]),
    )
    @settings(max_examples=25, deadline=None)
    def test_mc_chunk_replays_identically(self, graph, entropy, spawn, count, batch):
        state = {"entropy": entropy, "spawn_key": (spawn,)}
        first = _simulate_chunk(graph, [0, 1], Dynamics.IC, count, state, batch)
        second = _simulate_chunk(graph, [0, 1], Dynamics.IC, count, dict(state), batch)
        np.testing.assert_array_equal(first, second)


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs process pools")
class TestFaultedRunsEqualFaultFree:
    """Any kill schedule leaves pool contents / spread sums byte-identical."""

    @given(fault_seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None)
    def test_rr_pool_contents(self, graph, fault_seed):
        def sample():
            pool = FlatRRPool(graph.n)
            pool.extend(
                graph, Dynamics.IC, 120, np.random.default_rng(17), workers=3
            )
            return pool

        baseline = sample()
        with ChunkFaultInjector(mode="kill", rate=0.3, seed=fault_seed):
            faulted = sample()
        np.testing.assert_array_equal(faulted.set_ptr, baseline.set_ptr)
        np.testing.assert_array_equal(faulted.set_nodes, baseline.set_nodes)
        np.testing.assert_array_equal(faulted.widths, baseline.widths)

    @given(fault_seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None)
    def test_mc_spread_samples(self, graph, fault_seed):
        def run():
            return monte_carlo_spread(
                graph, [0, 2], WC, r=60,
                rng=np.random.default_rng(23), workers=3, return_samples=True,
            )[1]

        baseline = run()
        with ChunkFaultInjector(mode="kill", rate=0.3, seed=fault_seed):
            faulted = run()
        np.testing.assert_array_equal(faulted, baseline)
        assert float(faulted.sum()) == float(baseline.sum())

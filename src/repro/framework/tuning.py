"""Optimal external-parameter selection — Sec. 5.1.1 / Table 2 / Fig. 4.

The paper's generic procedure, verbatim:

1. Sweep the parameter X over its spectrum; record spread and time.
2. X* is the value attaining the highest spread (within a reasonable time
   limit); μ* and sd* are the mean and standard deviation of the spread at
   X* across the MC simulations.
3. The *optimal* value is the one minimizing running time among values
   whose spread is at least μ* − sd* — "the value that optimizes the
   running time while being at most one standard deviation away from the
   best possible spread."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..algorithms import registry
from ..diffusion.models import PropagationModel
from ..diffusion.simulation import monte_carlo_spread
from ..graph.digraph import DiGraph
from .metrics import RunRecord, run_with_budget

__all__ = ["SweepPoint", "TuningResult", "tune_parameter"]


@dataclass(frozen=True)
class SweepPoint:
    """One parameter value's measurements."""

    value: Any
    spread_mean: float
    spread_std: float
    elapsed_seconds: float
    status: str


@dataclass
class TuningResult:
    """Outcome of the Sec.-5.1.1 procedure for one (algorithm, model, k)."""

    algorithm: str
    model: str
    k: int
    parameter: str
    points: list[SweepPoint] = field(default_factory=list)
    best_value: Any = None  # X*
    mu_star: float = float("nan")
    sd_star: float = float("nan")
    optimal_value: Any = None

    def table(self) -> str:
        lines = [
            f"{self.algorithm} / {self.model} / k={self.k} "
            f"(parameter: {self.parameter})",
            f"{'value':>12} {'spread':>10} {'sd':>8} {'time (s)':>10} {'status':>8}",
        ]
        for p in self.points:
            lines.append(
                f"{p.value!s:>12} {p.spread_mean:>10.1f} {p.spread_std:>8.1f} "
                f"{p.elapsed_seconds:>10.3f} {p.status:>8}"
            )
        lines.append(
            f"X* = {self.best_value} (mu* = {self.mu_star:.1f}, sd* = {self.sd_star:.1f})"
            f" -> optimal = {self.optimal_value}"
        )
        return "\n".join(lines)


def tune_parameter(
    algorithm_name: str,
    parameter: str,
    spectrum: Sequence[Any],
    graph: DiGraph,
    model: PropagationModel,
    k: int,
    mc_simulations: int = 1000,
    rng: np.random.Generator | None = None,
    time_limit_seconds: float | None = None,
    fixed_params: dict[str, Any] | None = None,
    tolerance_std: float = 1.0,
) -> TuningResult:
    """Run the full Sec.-5.1.1 tuning procedure.

    ``spectrum`` may be in any order; ``fixed_params`` lets callers pin
    implementation knobs (e.g. ``rr_scale``) while sweeping the paper
    parameter.
    """
    rng = np.random.default_rng() if rng is None else rng
    fixed = dict(fixed_params or {})
    result = TuningResult(
        algorithm=algorithm_name, model=model.name, k=k, parameter=parameter
    )
    for value in spectrum:
        params = dict(fixed)
        params[parameter] = value
        algorithm = registry.make(algorithm_name, **params)
        record, __ = run_with_budget(
            algorithm,
            graph,
            k,
            model,
            rng=rng,
            time_limit_seconds=time_limit_seconds,
            track_memory=False,
        )
        if record.ok:
            estimate = monte_carlo_spread(
                graph, record.seeds, model, r=mc_simulations, rng=rng
            )
            point = SweepPoint(
                value=value,
                spread_mean=estimate.mean,
                spread_std=estimate.std,
                elapsed_seconds=record.elapsed_seconds,
                status=record.status,
            )
        else:
            point = SweepPoint(
                value=value,
                spread_mean=float("-inf"),
                spread_std=0.0,
                elapsed_seconds=record.elapsed_seconds,
                status=record.status,
            )
        result.points.append(point)

    finished = [p for p in result.points if p.status == "OK"]
    if not finished:
        return result
    best = max(finished, key=lambda p: p.spread_mean)
    result.best_value = best.value
    result.mu_star = best.spread_mean
    result.sd_star = best.spread_std
    eligible = [
        p
        for p in finished
        if p.spread_mean >= result.mu_star - tolerance_std * result.sd_star
    ]
    optimal = min(eligible, key=lambda p: p.elapsed_seconds)
    result.optimal_value = optimal.value
    return result

"""Common interface for all influence-maximization algorithms.

Seed selection (Sec. 3.1.1) is the phase each technique implements; spread
computation and convergence checks are shared framework phases and live in
:mod:`repro.framework`.  ``select`` returns a :class:`SeedSelectionResult`
carrying the chosen seeds plus algorithm-specific counters used by the myth
experiments (node lookups for CELF/CELF++, extrapolated spreads for
TIM+/IMM, scoring-round traces for IMRank, ...).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, Protocol

import numpy as np

from ..diffusion.models import Dynamics, PropagationModel
from ..graph.digraph import DiGraph

__all__ = [
    "Budget",
    "BudgetExceeded",
    "SeedSelectionResult",
    "IMAlgorithm",
    "SpreadOracleMixin",
]


class BudgetExceeded(RuntimeError):
    """Raised when a selection run exceeds its time or memory budget.

    ``status`` mirrors Table 3's vocabulary: ``"DNF"`` for a time-limit hit
    ("did not finish even after 40 hours") and ``"CRASHED"`` for a memory
    hit ("crashed due to running out of memory").
    """

    def __init__(self, status: str, detail: str) -> None:
        super().__init__(f"{status}: {detail}")
        self.status = status
        self.detail = detail


class Budget(Protocol):
    """Anything with a ``check()`` that raises :class:`BudgetExceeded`."""

    def check(self) -> None: ...  # pragma: no cover - protocol


def _plain(value):
    """Coerce numpy scalars/arrays to plain Python for pipe/JSON transport."""
    if hasattr(value, "item") and not isinstance(value, (list, dict, str)):
        try:
            return value.item()
        except (AttributeError, ValueError):
            pass
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


@dataclass
class SeedSelectionResult:
    """Outcome of one seed-selection run."""

    algorithm: str
    model: str
    seeds: list[int]
    elapsed_seconds: float = 0.0
    #: Seed list prefixes are meaningful: ``seeds[:k']`` is the algorithm's
    #: answer for any smaller budget k' <= k (true for every greedy-style
    #: technique in the study).
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def k(self) -> int:
        return len(self.seeds)

    def to_payload(self) -> dict[str, Any]:
        """Plain-types dict safe to ship across a process pipe or as JSON.

        The isolated executor uses this to return results from a worker
        subprocess without pickling algorithm-specific objects hiding in
        ``extras``.
        """
        return {
            "algorithm": self.algorithm,
            "model": self.model,
            "seeds": [int(s) for s in self.seeds],
            "elapsed_seconds": float(self.elapsed_seconds),
            "extras": _plain(self.extras),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "SeedSelectionResult":
        """Inverse of :meth:`to_payload`."""
        return cls(**payload)


class IMAlgorithm(abc.ABC):
    """Base class: seed-selection phase of the generalized IM module.

    Subclasses set ``name``, ``supported`` dynamics, and the name of their
    external parameter (Table 2), and implement :meth:`_select`.
    """

    name: str = "abstract"
    supported: tuple[Dynamics, ...] = ()
    #: Human-readable name of the external accuracy parameter, or None for
    #: parameter-free techniques (LDAG, SIMPATH, IRIE) — Sec. 5.1.1.
    external_parameter: str | None = None

    def supports(self, model: PropagationModel | Dynamics) -> bool:
        """Whether this technique runs under the given dynamics (Table 5)."""
        dynamics = model.dynamics if isinstance(model, PropagationModel) else model
        return dynamics in self.supported

    def select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator | None = None,
        budget: Budget | None = None,
    ) -> SeedSelectionResult:
        """Pick ``k`` seeds on a graph already weighted for ``model``."""
        if k < 0:
            raise ValueError("k must be non-negative")
        if k > graph.n:
            raise ValueError(f"k={k} exceeds the number of nodes ({graph.n})")
        if not self.supports(model):
            raise ValueError(f"{self.name} does not support the {model.name} model")
        rng = np.random.default_rng() if rng is None else rng
        started = time.perf_counter()
        seeds, extras = self._select(graph, k, model, rng, budget)
        elapsed = time.perf_counter() - started
        if len(seeds) != k:
            raise AssertionError(
                f"{self.name} returned {len(seeds)} seeds, expected {k}"
            )
        if len(set(seeds)) != len(seeds):
            raise AssertionError(f"{self.name} returned duplicate seeds")
        return SeedSelectionResult(
            algorithm=self.name,
            model=model.name,
            seeds=[int(s) for s in seeds],
            elapsed_seconds=elapsed,
            extras=extras,
        )

    @abc.abstractmethod
    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        """Algorithm-specific seed selection; returns (seeds, extras)."""

    @staticmethod
    def _tick(budget: Budget | None) -> None:
        """Cheap budget checkpoint for inner loops."""
        if budget is not None:
            budget.check()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SpreadOracleMixin:
    """Constructor plumbing shared by the oracle-backed greedy family.

    GREEDY/CELF/CELF++ all answer the same question — which σ(S) backend
    services their marginal-gain queries — so the knobs live here once.
    ``spread_oracle=None`` with no batching knobs keeps the historical
    per-cascade path, byte-identical for seeded runs.
    """

    def _init_oracle(
        self,
        mc_simulations: int,
        spread_oracle,
        mc_batch: int | None,
        mc_workers: int | None,
        num_worlds: int | None,
        sketch_k: int = 8,
    ) -> None:
        if mc_simulations < 1:
            raise ValueError("mc_simulations must be positive")
        if mc_batch is not None and mc_batch < 1:
            raise ValueError("mc_batch must be positive")
        if mc_workers is not None and mc_workers < 1:
            raise ValueError("mc_workers must be positive")
        if num_worlds is not None and num_worlds < 1:
            raise ValueError("num_worlds must be positive")
        self.mc_simulations = mc_simulations
        self.spread_oracle = spread_oracle
        self.mc_batch = mc_batch
        self.mc_workers = mc_workers
        self.num_worlds = num_worlds
        self.sketch_k = sketch_k

    def _build_oracle(self, graph, model, rng, budget):
        """Resolve the configured backend plus a gain memo for this run."""
        from ..diffusion.oracle import GainCache, make_oracle

        oracle = make_oracle(
            self.spread_oracle,
            graph,
            model,
            rng,
            mc_simulations=self.mc_simulations,
            mc_batch=self.mc_batch,
            mc_workers=self.mc_workers,
            num_worlds=self.num_worlds,
            sketch_k=self.sketch_k,
            budget=budget,
        )
        return oracle, GainCache()

    @staticmethod
    def _oracle_extras(oracle, cache) -> dict[str, Any]:
        return {
            "spread_oracle": oracle.name,
            "sigma_evaluations": oracle.evaluations,
            "gain_cache_hits": cache.hits,
            "gain_cache_misses": cache.misses,
        }

"""IMFramework — the generalized IM module of Alg. 3.

The paper's central methodological move: *decouple* seed selection from
spread computation so every technique is judged by the same unbiased MC
estimate (Sec. 5.1, "Computing expected spread"), and sweep each
technique's external parameter spectrum from most to least accurate,
stopping at the cheapest setting whose spread has not degraded
(Sec. 3.1.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..algorithms import registry
from ..algorithms.base import IMAlgorithm
from ..diffusion.models import PropagationModel
from ..diffusion.simulation import SpreadEstimate, monte_carlo_spread
from ..graph.digraph import DiGraph
from .convergence import converged
from .metrics import RunRecord, run_with_budget

__all__ = ["FrameworkTrace", "IMFramework"]


@dataclass
class FrameworkTrace:
    """Everything observed across the parameter spectrum of one run."""

    algorithm: str
    model: str
    k: int
    records: list[RunRecord] = field(default_factory=list)
    estimates: list[SpreadEstimate] = field(default_factory=list)
    parameters: list[dict[str, Any]] = field(default_factory=list)
    chosen_index: int = -1

    @property
    def chosen(self) -> RunRecord:
        return self.records[self.chosen_index]

    @property
    def chosen_estimate(self) -> SpreadEstimate:
        return self.estimates[self.chosen_index]

    @property
    def chosen_parameters(self) -> dict[str, Any]:
        return self.parameters[self.chosen_index]


class IMFramework:
    """Alg. 3: seed selection + decoupled spread computation + convergence.

    Parameters
    ----------
    graph:
        Weighted graph (already carrying the model's edge weights).
    model:
        The propagation model the weights correspond to.
    mc_simulations:
        ``r`` of Alg. 3 — simulations for the decoupled spread estimate.
    tolerance_std:
        Convergence band width in standard deviations (Sec. 5.1.1 uses 1).
    """

    def __init__(
        self,
        graph: DiGraph,
        model: PropagationModel,
        mc_simulations: int = 10_000,
        tolerance_std: float = 1.0,
        time_limit_seconds: float | None = None,
        memory_limit_mb: float | None = None,
        track_memory: bool = False,
    ) -> None:
        self.graph = graph
        self.model = model
        self.mc_simulations = mc_simulations
        self.tolerance_std = tolerance_std
        self.time_limit_seconds = time_limit_seconds
        self.memory_limit_mb = memory_limit_mb
        self.track_memory = track_memory

    # ------------------------------------------------------------------

    def evaluate(
        self,
        algorithm: IMAlgorithm,
        k: int,
        rng: np.random.Generator | None = None,
    ) -> RunRecord:
        """One Alg.-3 inner pass: select seeds, then estimate σ(S) by MC."""
        rng = np.random.default_rng() if rng is None else rng
        record, __ = run_with_budget(
            algorithm,
            self.graph,
            k,
            self.model,
            rng=rng,
            time_limit_seconds=self.time_limit_seconds,
            memory_limit_mb=self.memory_limit_mb,
            track_memory=self.track_memory,
        )
        if record.ok:
            estimate = monte_carlo_spread(
                self.graph, record.seeds, self.model, r=self.mc_simulations, rng=rng
            )
            record.spread = estimate.mean
            record.spread_std = estimate.std
        return record

    def run(
        self,
        algorithm_name: str,
        k: int,
        parameter_spectrum: Sequence[dict[str, Any]] | None = None,
        rng: np.random.Generator | None = None,
    ) -> FrameworkTrace:
        """Full Alg. 3: walk the spectrum until convergence fails.

        ``parameter_spectrum`` must be ordered from most to least accurate
        (α_1 first).  With ``None`` (parameter-free techniques) a single
        default-configured pass runs.
        """
        rng = np.random.default_rng() if rng is None else rng
        spectrum = list(parameter_spectrum) if parameter_spectrum else [{}]
        trace = FrameworkTrace(algorithm=algorithm_name, model=self.model.name, k=k)
        best_estimate: SpreadEstimate | None = None
        for i, params in enumerate(spectrum):
            algorithm = registry.make(algorithm_name, **params)
            record = self.evaluate(algorithm, k, rng=rng)
            estimate = SpreadEstimate(
                mean=record.spread if record.spread is not None else float("-inf"),
                std=record.spread_std or 0.0,
                simulations=self.mc_simulations,
            )
            trace.records.append(record)
            trace.estimates.append(estimate)
            trace.parameters.append(dict(params))
            if not record.ok:
                break
            if best_estimate is None:
                best_estimate = estimate
                trace.chosen_index = i
                continue
            if converged(best_estimate, estimate, self.tolerance_std):
                trace.chosen_index = i
            else:
                break
        if trace.chosen_index < 0:
            trace.chosen_index = 0
        return trace

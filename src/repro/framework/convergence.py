"""Convergence machinery (Sec. 3.1.3 and Fig. 12).

Two separate convergence questions appear in the paper:

1. **Parameter convergence** — is the spread at a cheaper external
   parameter still within one standard deviation of the best spread?
   (:func:`converged`, used by the framework runner and the tuner.)
2. **MC convergence** — how many Monte-Carlo simulations until the spread
   estimate stabilizes?  The paper settles on 10K via the experiment of
   Fig. 12; :func:`mc_convergence_study` regenerates that curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..diffusion.models import PropagationModel
from ..diffusion.simulation import SpreadEstimate, monte_carlo_spread
from ..graph.digraph import DiGraph

__all__ = ["converged", "MCConvergencePoint", "mc_convergence_study"]


def converged(
    best: SpreadEstimate,
    candidate: SpreadEstimate,
    tolerance_std: float = 1.0,
) -> bool:
    """Sec 5.1.1 criterion: candidate within ``tolerance_std``·sd of best."""
    return candidate.mean >= best.mean - tolerance_std * best.std


@dataclass(frozen=True)
class MCConvergencePoint:
    """Spread estimate at one simulation count (one x of Fig. 12)."""

    simulations: int
    mean: float
    std_of_mean: float
    #: Average within-run standard error (``SpreadEstimate.stderr``) — the
    #: analytic counterpart of the empirical across-repeat deviation; the
    #: two tracking each other is the Fig.-12 sanity check.
    stderr: float = 0.0


def mc_convergence_study(
    graph: DiGraph,
    seeds: list[int],
    model: PropagationModel,
    simulation_counts: tuple[int, ...] = (100, 500, 1000, 2000, 4000),
    repeats: int = 5,
    rng: np.random.Generator | None = None,
) -> list[MCConvergencePoint]:
    """How mean and run-to-run deviation of σ̂(S) evolve with r (Fig. 12).

    For each r, the estimate is recomputed ``repeats`` times with
    independent randomness; the reported deviation is across repeats (the
    error bar of Fig. 12).
    """
    rng = np.random.default_rng() if rng is None else rng
    points = []
    for r in simulation_counts:
        estimates = [
            monte_carlo_spread(graph, seeds, model, r=r, rng=rng)
            for __ in range(repeats)
        ]
        arr = np.asarray([e.mean for e in estimates])
        points.append(
            MCConvergencePoint(
                simulations=r,
                mean=float(arr.mean()),
                std_of_mean=float(arr.std(ddof=1)) if repeats > 1 else 0.0,
                stderr=float(np.mean([e.stderr for e in estimates])),
            )
        )
    return points

"""End-to-end tests for the hardened execution layer.

Every status of the failure taxonomy (OK / DNF / CRASHED / FAILED /
KILLED) is driven through the isolated executor via the fault injector —
crucially *without* the faulty algorithm ever calling ``budget.check()``,
proving the enforcement is preemptive, not cooperative.  Retry-with-reseed
determinism and checkpoint/resume round-trips are exercised the same way.
"""

import json
import os

import numpy as np
import pytest

from repro.algorithms import registry
from repro.algorithms.base import IMAlgorithm, SeedSelectionResult
from repro.algorithms.heuristics import Degree
from repro.cli import main
from repro.diffusion.models import Dynamics, WC
from repro.framework.experiments import SweepConfig, quality_sweep
from repro.framework.isolation import (
    FaultInjector,
    IsolationConfig,
    RetryPolicy,
    derive_rng,
    execute_cell,
    isolation_supported,
)
from repro.framework.metrics import (
    STATUS_CRASHED,
    STATUS_DNF,
    STATUS_FAILED,
    STATUS_KILLED,
    STATUS_OK,
    RunRecord,
    run_with_budget,
)
from repro.framework.results import CheckpointJournal, append_record, cell_key
from repro.framework.runner import IMFramework
from repro.graph.digraph import DiGraph

needs_isolation = pytest.mark.skipif(
    not isolation_supported(), reason="multiprocessing unavailable"
)

ISOLATED = IsolationConfig(enabled=True, time_limit_seconds=60.0)


@pytest.fixture
def graph():
    gen = np.random.default_rng(3)
    g = DiGraph.from_arrays(40, gen.integers(0, 40, 160), gen.integers(0, 40, 160))
    return WC.weighted(g)


#: Tags of every CountingAlgo execution in this process (resume tests).
EXECUTIONS: list[int] = []


class CountingAlgo(IMAlgorithm):
    """Deterministic technique that records each in-process execution."""

    name = "Counting"
    supported = (Dynamics.IC, Dynamics.LT)

    def __init__(self, tag: int = 0) -> None:
        self.tag = tag

    def _select(self, graph, k, model, rng, budget):
        EXECUTIONS.append(self.tag)
        return list(range(k)), {"tag": self.tag}


class TestDeriveRng:
    def test_deterministic(self):
        a = derive_rng(np.random.default_rng(5), 3).integers(0, 1 << 30, 8)
        b = derive_rng(np.random.default_rng(5), 3).integers(0, 1 << 30, 8)
        assert (a == b).all()

    def test_salts_decorrelate(self):
        parent = np.random.default_rng(5)
        a = derive_rng(parent, 0).integers(0, 1 << 30, 8)
        b = derive_rng(parent, 1).integers(0, 1 << 30, 8)
        assert not (a == b).all()

    def test_parent_state_untouched(self):
        parent = np.random.default_rng(5)
        before = parent.bit_generator.state
        derive_rng(parent, 2)
        assert parent.bit_generator.state == before


class TestFaultInjectorCooperative:
    def test_passthrough_keeps_identity(self, graph, rng):
        algo = FaultInjector(Degree(), fault="none")
        record, result = run_with_budget(algo, graph, 3, WC, rng=rng)
        assert record.status == STATUS_OK
        assert record.algorithm == "Degree"
        assert result is not None and len(result.seeds) == 3

    def test_raise_becomes_failed_not_crash(self, graph, rng):
        record, result = run_with_budget(
            FaultInjector(Degree(), fault="raise"), graph, 3, WC, rng=rng
        )
        assert record.status == STATUS_FAILED
        assert result is None
        assert "injected fault" in record.extras["failure"]["traceback"]

    def test_transient_fault_clears_after_fail_times(self, graph, rng):
        algo = FaultInjector(Degree(), fault="raise", fail_times=1)
        first, __ = run_with_budget(algo, graph, 3, WC, rng=rng)
        second, __ = run_with_budget(algo, graph, 3, WC, rng=rng)
        assert first.status == STATUS_FAILED
        assert second.status == STATUS_OK

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            FaultInjector(Degree(), fault="lightning")


@needs_isolation
class TestIsolatedStatuses:
    def test_ok_round_trip(self, graph, rng):
        record, result = execute_cell(
            Degree(), graph, 3, WC, rng=rng, config=ISOLATED
        )
        assert record.status == STATUS_OK
        assert len(record.seeds) == 3
        assert record.extras["attempts"] == 1
        assert isinstance(result, SeedSelectionResult)
        assert result.seeds == record.seeds

    def test_hang_preempted_to_dnf_without_budget_check(self, graph, rng):
        algo = FaultInjector(Degree(), fault="hang", hang_seconds=20.0)
        record, result = execute_cell(
            algo, graph, 3, WC, rng=rng,
            config=IsolationConfig(enabled=True, time_limit_seconds=0.5),
        )
        assert record.status == STATUS_DNF
        assert result is None
        assert record.extras["enforcement"] == "preemptive-kill"
        assert record.elapsed_seconds < 15.0

    def test_overallocation_crashed(self, graph, rng):
        algo = FaultInjector(
            Degree(), fault="oom", alloc_step_mb=16, alloc_cap_mb=256
        )
        record, result = execute_cell(
            algo, graph, 3, WC, rng=rng,
            config=IsolationConfig(
                enabled=True, time_limit_seconds=60.0, memory_limit_mb=64.0
            ),
        )
        assert record.status == STATUS_CRASHED
        assert result is None
        assert record.extras.get("memory_enforcement") in ("rlimit", "tracemalloc")

    def test_raise_failed_with_traceback(self, graph, rng):
        algo = FaultInjector(Degree(), fault="raise")
        record, __ = execute_cell(algo, graph, 3, WC, rng=rng, config=ISOLATED)
        assert record.status == STATUS_FAILED
        failure = record.extras["failure"]
        assert failure["type"] == "RuntimeError"
        assert "injected fault" in failure["traceback"]

    def test_hard_exit_killed(self, graph, rng):
        algo = FaultInjector(Degree(), fault="exit", exit_code=13)
        record, __ = execute_cell(algo, graph, 3, WC, rng=rng, config=ISOLATED)
        assert record.status == STATUS_KILLED
        assert record.extras["failure"]["exitcode"] == 13

    def test_disabled_config_runs_in_process(self, graph, rng):
        record, __ = execute_cell(
            CountingAlgo(tag=99), graph, 3, WC, rng=rng,
            config=IsolationConfig(enabled=False, time_limit_seconds=60.0),
        )
        assert record.status == STATUS_OK
        assert EXECUTIONS[-1] == 99  # ran in this process, not a child


@needs_isolation
class TestRetryPolicy:
    def test_transient_failure_retried_to_ok(self, graph, tmp_path):
        algo = FaultInjector(
            Degree(), fault="raise", fail_times=2,
            state_file=tmp_path / "count",
        )
        record, result = execute_cell(
            algo, graph, 3, WC, rng=np.random.default_rng(7),
            config=ISOLATED, retry=RetryPolicy(max_attempts=3),
        )
        assert record.status == STATUS_OK
        assert result is not None
        assert record.extras["attempts"] == 3
        assert record.extras["attempt_history"] == [STATUS_FAILED, STATUS_FAILED]

    def test_exhausted_attempts_keep_last_failure(self, graph):
        algo = FaultInjector(Degree(), fault="raise")
        record, __ = execute_cell(
            algo, graph, 3, WC, rng=np.random.default_rng(7),
            config=ISOLATED, retry=RetryPolicy(max_attempts=2),
        )
        assert record.status == STATUS_FAILED
        assert record.extras["attempts"] == 2

    def test_budget_statuses_not_retried(self, graph, tmp_path):
        state = tmp_path / "count"
        algo = FaultInjector(
            Degree(), fault="hang", hang_seconds=20.0, state_file=state
        )
        record, __ = execute_cell(
            algo, graph, 3, WC, rng=np.random.default_rng(7),
            config=IsolationConfig(enabled=True, time_limit_seconds=0.4),
            retry=RetryPolicy(max_attempts=3),
        )
        assert record.status == STATUS_DNF
        assert record.extras["attempts"] == 1
        assert int(state.read_text()) == 1  # a DNF never re-ran

    def test_reseed_is_deterministic(self, graph, tmp_path):
        def run_once(tag):
            algo = FaultInjector(
                registry.make("RIS", num_rr_sets=80),
                fault="raise", fail_times=1,
                state_file=tmp_path / f"count-{tag}",
            )
            record, __ = execute_cell(
                algo, graph, 4, WC, rng=np.random.default_rng(11),
                config=ISOLATED, retry=RetryPolicy(max_attempts=2, reseed=True),
            )
            return record

        first, second = run_once("a"), run_once("b")
        assert first.status == STATUS_OK == second.status
        assert first.extras["attempts"] == 2 == second.extras["attempts"]
        assert first.seeds == second.seeds


class TestJournal:
    def test_cell_key_param_order_insensitive(self):
        a = cell_key("IMM", {"epsilon": 0.5, "rr_scale": 0.01}, 10, model="WC")
        b = cell_key("IMM", {"rr_scale": 0.01, "epsilon": 0.5}, 10, model="WC")
        assert a == b

    def test_cell_key_distinguishes_cells(self):
        base = cell_key("IMM", {"epsilon": 0.5}, 10, model="WC", scope="dblp")
        assert base != cell_key("IMM", {"epsilon": 0.5}, 25, model="WC", scope="dblp")
        assert base != cell_key("IMM", {"epsilon": 0.1}, 10, model="WC", scope="dblp")
        assert base != cell_key("IMM", {"epsilon": 0.5}, 10, model="LT", scope="dblp")
        assert base != cell_key("IMM", {"epsilon": 0.5}, 10, model="WC", scope="orkut")

    def test_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        key = cell_key("X", {}, 3, model="WC")
        journal = CheckpointJournal(path)
        assert key not in journal and len(journal) == 0
        journal.record(
            key, RunRecord("X", "WC", 3, STATUS_OK, seeds=[1, 2, 3], spread=5.5)
        )
        reloaded = CheckpointJournal(path)
        assert key in reloaded
        assert reloaded.get(key).seeds == [1, 2, 3]
        assert reloaded.get(key).spread == 5.5
        assert reloaded.keys() == [key]

    def test_tolerates_killed_writer_tail(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        key = cell_key("X", {}, 3, model="WC")
        CheckpointJournal(path).record(key, RunRecord("X", "WC", 3, STATUS_OK))
        with open(path, "a") as handle:
            handle.write('{"key": "half-written cell, no closing')
        with pytest.warns(RuntimeWarning, match="torn trailing"):
            journal = CheckpointJournal(path)
        assert len(journal) == 1 and key in journal
        assert journal.torn_tail_bytes > 0

    def test_truncated_mid_record_repairs_and_reruns_cell(self, tmp_path):
        """A kill mid-append loses only the cell being written.

        The torn tail is physically truncated away on load (so the file is
        back on a clean line boundary) and the affected cell reads as
        missing — i.e. it will re-run, never resume from half a record.
        """
        path = tmp_path / "journal.jsonl"
        key_a = cell_key("A", {}, 3, model="WC")
        key_b = cell_key("B", {}, 3, model="WC")
        journal = CheckpointJournal(path)
        journal.record(key_a, RunRecord("A", "WC", 3, STATUS_OK, seeds=[1]))
        clean_size = path.stat().st_size
        journal.record(key_b, RunRecord("B", "WC", 3, STATUS_OK, seeds=[2]))
        # Kill the writer mid-way through the second record's bytes.
        os.truncate(path, clean_size + (path.stat().st_size - clean_size) // 2)
        with pytest.warns(RuntimeWarning, match="torn trailing"):
            reloaded = CheckpointJournal(path)
        assert key_a in reloaded and reloaded.get(key_a).seeds == [1]
        assert key_b not in reloaded  # the torn cell re-runs
        assert reloaded.torn_tail_bytes > 0
        assert path.stat().st_size == clean_size  # repaired on disk

    def test_append_after_torn_tail_does_not_concatenate(self, tmp_path):
        """Appending to an unrepaired torn tail must not merge records.

        ``append_record`` guards the line boundary itself, so even a writer
        that never went through ``CheckpointJournal._load`` (no repair pass)
        cannot glue its record onto a killed predecessor's fragment.
        """
        path = tmp_path / "journal.jsonl"
        key_a = cell_key("A", {}, 1, model="IC")
        key_b = cell_key("B", {}, 1, model="IC")
        CheckpointJournal(path).record(key_a, RunRecord("A", "IC", 1, STATUS_OK))
        os.truncate(path, path.stat().st_size - 7)  # torn: no trailing newline
        append_record(RunRecord("B", "IC", 1, STATUS_OK, seeds=[9]), path, key=key_b)
        # The fragment became a complete-but-unparsable interior line, so
        # the reload skips it without a torn-tail warning.
        reloaded = CheckpointJournal(path)
        assert key_b in reloaded and reloaded.get(key_b).seeds == [9]
        assert key_a not in reloaded  # its fragment was skipped, not merged
        assert reloaded.torn_tail_bytes == 0

    def test_non_ok_cells_journaled_too(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        key = cell_key("Y", {"p": 1}, 5, model="IC")
        CheckpointJournal(path).record(
            key,
            RunRecord("Y", "IC", 5, STATUS_FAILED,
                      extras={"failure": {"type": "KeyError"}}),
        )
        reloaded = CheckpointJournal(path)
        assert reloaded.get(key).status == STATUS_FAILED
        assert reloaded.get(key).extras["failure"]["type"] == "KeyError"


class TestCheckpointResume:
    @pytest.fixture(autouse=True)
    def _register_counting(self, monkeypatch):
        monkeypatch.setitem(registry.ALGORITHMS, "Counting", CountingAlgo)
        EXECUTIONS.clear()

    def test_rerun_skips_all_journaled_cells(self, graph, tmp_path):
        path = tmp_path / "sweep.jsonl"
        spectrum = [{"tag": 0}, {"tag": 1}]
        fw = IMFramework(graph, WC, mc_simulations=30, journal=path)
        trace = fw.run("Counting", 3, spectrum, rng=np.random.default_rng(0))
        assert EXECUTIONS == [0, 1]
        assert trace.chosen.ok

        resumed = IMFramework(graph, WC, mc_simulations=30, journal=path)
        trace2 = resumed.run("Counting", 3, spectrum, rng=np.random.default_rng(0))
        assert EXECUTIONS == [0, 1]  # nothing re-ran
        assert trace2.chosen.ok
        assert trace2.chosen.seeds == trace.chosen.seeds
        assert trace2.chosen.spread == trace.chosen.spread

    def test_killed_sweep_resumes_only_missing_cells(self, graph, tmp_path):
        path = tmp_path / "sweep.jsonl"
        spectrum = [{"tag": 0}, {"tag": 1}, {"tag": 2}]
        # A sweep killed after its first cell left one journaled line.
        IMFramework(graph, WC, mc_simulations=30, journal=path).run(
            "Counting", 3, spectrum[:1], rng=np.random.default_rng(0)
        )
        assert EXECUTIONS == [0]
        trace = IMFramework(graph, WC, mc_simulations=30, journal=path).run(
            "Counting", 3, spectrum, rng=np.random.default_rng(0)
        )
        assert EXECUTIONS == [0, 1, 2]  # cell 0 reused, only 1 and 2 ran
        assert len(trace.records) == 3
        with open(path) as handle:
            assert sum(1 for line in handle if line.strip()) == 3

    def test_quality_sweep_journal_round_trip(self, graph, tmp_path):
        path = tmp_path / "cells.jsonl"
        roster = {"Counting": {"tag": 7}}
        config = SweepConfig(k_grid=(2, 3), mc_simulations=20,
                             time_limit_seconds=30.0)
        first = quality_sweep(graph, WC, roster, config,
                              journal=CheckpointJournal(path), scope="toy")
        assert EXECUTIONS == [7, 7]
        assert first[("Counting", 2)].spread is not None

        again = quality_sweep(graph, WC, roster, config,
                              journal=CheckpointJournal(path), scope="toy")
        assert EXECUTIONS == [7, 7]  # fully resumed from the journal
        assert again[("Counting", 3)].spread == first[("Counting", 3)].spread


class FaultyCounting(CountingAlgo):
    """Raises on the tag-0 configuration, runs clean otherwise."""

    def _select(self, graph, k, model, rng, budget):
        if self.tag == 0:
            raise RuntimeError("injected fault")
        return super()._select(graph, k, model, rng, budget)


class TestFrameworkIsolation:
    @needs_isolation
    def test_spectrum_walk_survives_failing_configuration(self, graph, monkeypatch):
        monkeypatch.setitem(registry.ALGORITHMS, "Counting", FaultyCounting)
        fw = IMFramework(
            graph, WC, mc_simulations=30,
            isolation=IsolationConfig(enabled=True, time_limit_seconds=60.0),
        )
        trace = fw.run(
            "Counting", 3, [{"tag": 0}, {"tag": 1}],
            rng=np.random.default_rng(0),
        )
        # The faulty first configuration is recorded, not raised.
        assert trace.records[0].status == STATUS_FAILED
        assert trace.chosen_index == -1
        assert trace.failure is trace.records[0]


@needs_isolation
class TestCLI:
    def test_select_isolated_with_resume(self, tmp_path, capsys):
        journal = tmp_path / "cells.jsonl"
        argv = [
            "select", "--dataset", "nethept", "--model", "WC",
            "--algorithm", "Degree", "--k", "3", "--mc", "30",
            "--isolate", "--retries", "2", "--resume", str(journal),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "seeds" in first and "resumed" not in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "resumed" in second and "seeds" in second
        with open(journal) as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert len(lines) == 1
        assert lines[0]["record"]["status"] == STATUS_OK
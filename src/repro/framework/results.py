"""Result records: JSON round-trip, checkpoint journals, ASCII rendering.

Benchmarks accumulate :class:`~repro.framework.metrics.RunRecord` objects;
this module persists them and renders the paper-style tables so bench
output can be compared against the published figures line by line.

It also provides the durable side of checkpoint/resume: a
:class:`CheckpointJournal` is an append-only JSONL file holding one
completed sweep cell per line, keyed by :func:`cell_key`.  A sweep that is
killed mid-flight (deadline, OOM-killer, Ctrl-C) re-runs only the missing
cells on the next invocation; a half-written trailing line from the kill
is tolerated and simply re-executed.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Any, Iterable, Mapping, Sequence

from .metrics import RunRecord

__all__ = [
    "save_records",
    "load_records",
    "render_table",
    "render_series",
    "cell_key",
    "append_record",
    "CheckpointJournal",
]


def _jsonable(value):
    """Coerce numpy scalars and arrays hiding in extras to JSON types."""
    if hasattr(value, "item") and not isinstance(value, (list, dict, str)):
        try:
            return value.item()
        except (AttributeError, ValueError):
            pass
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def save_records(records: Iterable[RunRecord], path: str | os.PathLike) -> None:
    """Serialize records to a JSON file."""
    payload = [_jsonable(asdict(r)) for r in records]
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_records(path: str | os.PathLike) -> list[RunRecord]:
    """Load records previously written by :func:`save_records`."""
    with open(path) as handle:
        payload = json.load(handle)
    return [RunRecord(**item) for item in payload]


def cell_key(
    algorithm: str,
    params: Mapping[str, Any] | None,
    k: int,
    model: str | None = None,
    scope: str | None = None,
) -> str:
    """Stable identity of one ``(algorithm, params, k)`` sweep cell.

    Keys are canonical JSON (sorted, compact) so parameter-dict ordering
    never splits a cell.  ``model``/``scope`` (e.g. the dataset name)
    widen the key for sweeps that mix them in one journal.
    """
    payload: dict[str, Any] = {
        "algorithm": algorithm,
        "params": _jsonable(dict(params or {})),
        "k": int(k),
    }
    if model is not None:
        payload["model"] = model
    if scope is not None:
        payload["scope"] = scope
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _tail_needs_newline(path: str | os.PathLike) -> bool:
    """True when the file ends mid-line (a torn append from a kill)."""
    try:
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() == 0:
                return False
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) != b"\n"
    except OSError:
        return False


def append_record(
    record: RunRecord, path: str | os.PathLike, key: str | None = None
) -> None:
    """Append one record as a line-atomic JSONL entry.

    The whole line (payload plus terminator) goes through one buffered
    write, flushed and fsynced, so a kill can lose at most the line being
    written — never a previously committed one.  If the file's current
    tail is a torn line (the writer before us was killed mid-write), a
    newline is inserted first so the torn fragment cannot swallow this
    record by concatenation.
    """
    line = json.dumps({"key": key, "record": _jsonable(asdict(record))})
    prefix = "\n" if _tail_needs_newline(path) else ""
    with open(path, "a") as handle:
        handle.write(prefix + line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


class CheckpointJournal:
    """Append-only JSONL journal of completed sweep cells.

    ``key in journal`` / ``journal.get(key)`` answer the resume question;
    :meth:`record` durably appends a finished cell.  Loading skips blank
    or unparsable interior lines (the expected residue of a killed
    writer) rather than failing the whole resume, and **repairs** a torn
    trailing line — a kill mid-write leaves a partial record at the tail,
    which is truncated away (and reported via :mod:`warnings` and
    :attr:`torn_tail_bytes`) so the next append starts from a clean
    line boundary instead of concatenating onto the fragment.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._cells: dict[str, RunRecord] = {}
        #: Bytes of torn trailing data truncated during load (0 = clean).
        self.torn_tail_bytes = 0
        self._load()

    def _parse_line(self, line: str) -> bool:
        """Absorb one journal line into the cell map; False when torn."""
        if not line.strip():
            return True
        try:
            item = json.loads(line)
        except json.JSONDecodeError:
            return False
        payload = item.get("record") if isinstance(item, dict) else None
        if not isinstance(payload, dict):
            return False
        try:
            self._cells[item.get("key")] = RunRecord(**payload)
        except TypeError:
            return False
        return True

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        good_end = 0
        offset = 0
        with open(self.path, "rb") as handle:
            for raw in handle:
                offset += len(raw)
                # A line only commits when it carries its newline AND
                # parses: a parseable-looking tail without a newline may
                # still be a partially flushed write, so it is neither
                # absorbed nor preserved.
                if raw.endswith(b"\n") and self._parse_line(
                    raw.decode("utf-8", errors="replace")
                ):
                    good_end = offset
        if offset > good_end:
            self.torn_tail_bytes = offset - good_end
            import warnings

            warnings.warn(
                f"checkpoint journal {self.path}: truncating torn trailing "
                f"record ({self.torn_tail_bytes} bytes) left by a killed "
                "writer; the affected cell will re-run",
                RuntimeWarning,
                stacklevel=2,
            )
            with open(self.path, "r+b") as handle:
                handle.truncate(good_end)

    def __contains__(self, key: str) -> bool:
        return key in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def keys(self) -> list[str]:
        return list(self._cells)

    def get(self, key: str) -> RunRecord:
        return self._cells[key]

    def record(self, key: str, run_record: RunRecord) -> None:
        self._cells[key] = run_record
        append_record(run_record, self.path, key=key)


def render_table(
    records: Sequence[RunRecord],
    columns: Sequence[str] = ("algorithm", "model", "k", "status", "spread", "elapsed_seconds", "peak_memory_mb"),
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table of selected record fields."""
    headers = {
        "algorithm": "Algorithm",
        "model": "Model",
        "k": "k",
        "status": "Status",
        "spread": "Spread",
        "spread_std": "Spread sd",
        "elapsed_seconds": "Time (s)",
        "peak_memory_mb": "Mem (MB)",
    }

    def fmt(record: RunRecord, col: str) -> str:
        value = getattr(record, col)
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    rows = [[headers.get(c, c) for c in columns]]
    rows += [[fmt(r, c) for c in columns] for r in records]
    widths = [max(len(row[i]) for row in rows) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    for idx, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if idx == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence,
    series: dict[str, Sequence],
    title: str | None = None,
) -> str:
    """Paper-figure data as aligned columns: one x column, one per series."""
    names = list(series)
    rows = [[x_label] + names]
    for i, x in enumerate(xs):
        row = [str(x)]
        for name in names:
            value = series[name][i]
            if value is None:
                row.append("-")
            elif isinstance(value, float):
                row.append(f"{value:.3f}")
            else:
                row.append(str(value))
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines = []
    if title:
        lines.append(title)
    for idx, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if idx == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)

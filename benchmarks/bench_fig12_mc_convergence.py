"""Fig. 12 — convergence of the MC spread estimate with #simulations.

The paper justifies its 10K-simulation evaluation standard by showing the
mean and standard deviation of σ̂(S) stabilize by that point.  Here, IMM
seeds on each of the four small analogues x three models are re-scored at
growing simulation counts; the run-to-run deviation of the mean must
shrink as r grows (root-r behaviour), and the means must agree.
"""

import numpy as np
import pytest

from repro.algorithms import registry
from repro.diffusion.models import IC, LT, WC
from repro.framework.convergence import mc_convergence_study
from repro.framework.results import render_series

from _common import RR_SCALE, emit, once, weighted_dataset

COUNTS = (25, 50, 100, 200, 400, 800)
K = 25


def test_fig12_mc_convergence(benchmark):
    def experiment():
        panels = {}
        for dataset in ("nethept", "hepph", "dblp", "youtube"):
            for model in (IC, WC, LT):
                graph = weighted_dataset(dataset, model)
                seeds = registry.make("IMM", epsilon=0.5, rr_scale=RR_SCALE).select(
                    graph, K, model, rng=np.random.default_rng(12)
                ).seeds
                points = mc_convergence_study(
                    graph, seeds, model,
                    simulation_counts=COUNTS, repeats=5,
                    rng=np.random.default_rng(13),
                )
                panels[(dataset, model.name)] = points
        return panels

    panels = once(benchmark, experiment)
    blocks = []
    for (dataset, model_name), points in panels.items():
        series = {
            "mean": [round(p.mean, 1) for p in points],
            "sd of mean": [round(p.std_of_mean, 2) for p in points],
            # Analytic error bar (SpreadEstimate.stderr); should track the
            # empirical across-repeat deviation above.
            "stderr": [round(p.stderr, 2) for p in points],
        }
        blocks.append(render_series(
            "r", list(COUNTS), series,
            title=f"Fig 12: sigma-hat vs #MC simulations — {dataset} ({model_name})",
        ))
    emit("fig12_mc_convergence", "\n\n".join(blocks))

    # Deviation shrinks and means stay consistent on every panel.
    shrunk = 0
    for points in panels.values():
        if points[-1].std_of_mean <= points[0].std_of_mean:
            shrunk += 1
        assert points[-1].mean == pytest.approx(points[0].mean, rel=0.2)
    assert shrunk >= 0.75 * len(panels)

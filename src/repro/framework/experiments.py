"""Reusable experiment drivers — the programmable face of the platform.

The benchmarks under ``benchmarks/`` regenerate the paper's exact tables;
these drivers expose the same experiment *shapes* as library API so a
downstream user can run them on their own graphs:

* :func:`quality_sweep` — the Fig. 6/7 shape: roster x k-grid under a
  budget, with decoupled MC scoring and DNF-propagation to larger k.
* :func:`memory_sweep` — the Fig. 8 shape: one traced pass per technique.
* :func:`head_to_head` — repeated-run comparison of two techniques (the
  Fig. 9a-b shape behind myth M1).
* :func:`pillar_scores` — measure the (quality, time, memory) triple per
  technique, ready for :func:`repro.framework.skyline.classify_pillars`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from ..algorithms import registry
from ..diffusion.models import PropagationModel
from ..diffusion.simulation import monte_carlo_spread
from ..graph.digraph import DiGraph
from .isolation import IsolationConfig, RetryPolicy, execute_cell
from .metrics import BUDGET_STATUSES, RunRecord, run_with_budget
from .results import CheckpointJournal, cell_key
from .skyline import PillarScores
from .telemetry import Telemetry

__all__ = [
    "SweepConfig",
    "quality_sweep",
    "memory_sweep",
    "head_to_head",
    "pillar_scores",
]


@dataclass(frozen=True)
class SweepConfig:
    """Shared knobs for the sweep drivers."""

    k_grid: tuple[int, ...] = (10, 25, 50)
    mc_simulations: int = 150
    time_limit_seconds: float | None = 15.0
    memory_limit_mb: float | None = None
    seed: int = 0
    #: Skip larger k once a technique violates its budget (cost grows
    #: with k) — the paper's own concession for CELF/SIMPATH.  Only the
    #: deterministic budget verdicts (DNF/Crashed) propagate; transient
    #: FAILED/KILLED cells do not poison larger k.
    propagate_failures: bool = True
    #: Run each selection in a killable subprocess with preemptive budgets.
    isolate: bool = False
    #: Attempts per cell for transient FAILED/KILLED statuses.
    retries: int = 1
    #: Execution shape of the decoupled MC scoring pass: fan simulations
    #: over a process pool and/or run them through the batched kernels.
    mc_workers: int | None = None
    mc_batch: int | None = None
    #: Process-pool fan-out for the path-proxy engine's structure builds
    #: (PMIA / LDAG / IRIE / SIMPATH).  The batched kernel is
    #: deterministic, so results are identical at any worker count —
    #: unlike ``rr_workers``, the value never invalidates journal cells.
    path_workers: int | None = None
    #: Collect per-phase spans and engine counters into each cell's
    #: ``extras["telemetry"]`` (see :mod:`repro.framework.telemetry`).
    #: Off by default — the no-op path leaves results byte-identical.
    telemetry: bool = False

    def technique_params(self, name: str, params: Mapping[str, Any]) -> dict[str, Any]:
        """Roster params merged with the sweep-level engine knobs."""
        merged = dict(params)
        if (
            self.path_workers is not None
            and self.path_workers > 1
            and registry.accepts_parameter(name, "path_workers")
        ):
            merged.setdefault("path_workers", self.path_workers)
        return merged

    def execution(self) -> tuple[IsolationConfig, RetryPolicy]:
        return (
            IsolationConfig(
                enabled=self.isolate,
                time_limit_seconds=self.time_limit_seconds,
                memory_limit_mb=self.memory_limit_mb,
                track_memory=self.memory_limit_mb is not None,
                telemetry=self.telemetry,
            ),
            RetryPolicy(max_attempts=max(1, self.retries)),
        )


def _score(graph, record: RunRecord, model, config: SweepConfig) -> None:
    if record.ok:
        estimate = monte_carlo_spread(
            graph, record.seeds, model, r=config.mc_simulations,
            rng=np.random.default_rng(config.seed + 1),
            workers=config.mc_workers, batch=config.mc_batch,
        )
        record.spread = estimate.mean
        record.spread_std = estimate.std


def quality_sweep(
    graph: DiGraph,
    model: PropagationModel,
    roster: Mapping[str, Mapping[str, Any]],
    config: SweepConfig = SweepConfig(),
    journal: CheckpointJournal | None = None,
    scope: str | None = None,
) -> dict[tuple[str, int], RunRecord]:
    """Roster x k-grid sweep: selection under budget + decoupled scoring.

    ``roster`` maps algorithm name -> constructor parameters.  Returns one
    :class:`RunRecord` per (name, k); spread/std populated for runs that
    finished.  With a ``journal``, completed cells (scored, so resume needs
    no re-simulation) are appended as they finish and a rerun of a killed
    sweep executes only the missing ones; ``scope`` (e.g. the dataset
    name) disambiguates cells when one journal spans several sweeps.
    """
    isolation, retry = config.execution()
    results: dict[tuple[str, int], RunRecord] = {}
    for name, params in roster.items():
        last_status = "OK"
        for k in config.k_grid:
            if config.propagate_failures and last_status in BUDGET_STATUSES:
                results[(name, k)] = RunRecord(name, model.name, k, last_status)
                continue
            key = cell_key(name, params, k, model=model.name, scope=scope)
            if journal is not None and key in journal:
                record = journal.get(key)
            else:
                record, __ = execute_cell(
                    registry.make(name, **config.technique_params(name, params)),
                    graph,
                    k,
                    model,
                    rng=np.random.default_rng(config.seed + k),
                    config=isolation,
                    retry=retry,
                )
                _score(graph, record, model, config)
                if journal is not None:
                    journal.record(key, record)
            results[(name, k)] = record
            last_status = record.status
    return results


def memory_sweep(
    graph: DiGraph,
    model: PropagationModel,
    roster: Mapping[str, Mapping[str, Any]],
    k: int,
    config: SweepConfig = SweepConfig(),
) -> dict[str, RunRecord]:
    """One traced (tracemalloc) pass per technique at a single k."""
    results: dict[str, RunRecord] = {}
    for name, params in roster.items():
        record, __ = run_with_budget(
            registry.make(name, **config.technique_params(name, params)),
            graph,
            k,
            model,
            rng=np.random.default_rng(config.seed + k),
            time_limit_seconds=config.time_limit_seconds,
            memory_limit_mb=config.memory_limit_mb,
            track_memory=True,
            telemetry=Telemetry(label=name) if config.telemetry else None,
        )
        _score(graph, record, model, config)
        results[name] = record
    return results


def head_to_head(
    graph: DiGraph,
    model: PropagationModel,
    first: tuple[str, Mapping[str, Any]],
    second: tuple[str, Mapping[str, Any]],
    k: int,
    runs: int = 12,
    seed: int = 0,
) -> dict[str, list[RunRecord]]:
    """Repeated independent runs of two techniques (the M1 experiment)."""
    if runs < 1:
        raise ValueError("runs must be positive")
    outcomes: dict[str, list[RunRecord]] = {first[0]: [], second[0]: []}
    for run in range(runs):
        for name, params in (first, second):
            record, __ = run_with_budget(
                registry.make(name, **dict(params)),
                graph,
                k,
                model,
                rng=np.random.default_rng(seed + run),
                track_memory=False,
            )
            outcomes[name].append(record)
    return outcomes


def pillar_scores(
    graph: DiGraph,
    model: PropagationModel,
    roster: Mapping[str, Mapping[str, Any]],
    k: int,
    config: SweepConfig = SweepConfig(),
) -> list[PillarScores]:
    """Quality/time/memory triples per technique (Fig. 11a input)."""
    scores: list[PillarScores] = []
    for name, record in memory_sweep(graph, model, roster, k, config).items():
        if not record.ok or record.spread is None:
            continue
        scores.append(
            PillarScores(
                name=name,
                quality=record.spread,
                time_seconds=record.elapsed_seconds,
                memory_mb=record.peak_memory_mb or 0.0,
            )
        )
    return scores

"""Shared infrastructure for the per-table/per-figure benchmarks.

Every bench regenerates one table or figure of the paper on the scaled
dataset analogues (see DESIGN.md §1 for the substitutions).  The rendered
rows/series are printed and also written to ``benchmarks/results/`` so the
paper-vs-measured comparison of EXPERIMENTS.md can be refreshed.

Scaling knobs used throughout (documented here once):

* ``MC_EVAL`` — simulations for the decoupled spread estimate (the paper
  uses 10K on C++; the Fig.-12 bench shows estimates at our graph sizes
  stabilize well below that).
* ``RR_SCALE`` — multiplier on TIM+/IMM sample-size bounds.  The bounds
  assume native-code throughput; the multiplier preserves their ε-shape
  (θ ∝ 1/ε²) at pure-Python cost.
* ``TIME_LIMIT`` / ``MEMORY_LIMIT`` — the proportional analogues of the
  paper's 40-hour wall and 256 GB RAM; violations render as DNF / Crashed
  exactly as in Table 3.
"""

from __future__ import annotations

import os
import pathlib

import numpy as np

from repro.datasets import load
from repro.diffusion import monte_carlo_spread
from repro.diffusion.models import IC, LT, WC, PropagationModel
from repro.framework import (
    CheckpointJournal,
    IsolationConfig,
    RetryPolicy,
    cell_key,
    execute_cell,
    write_trace,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

MC_EVAL = 150
RR_SCALE = 0.01
TIME_LIMIT = 15.0
MEMORY_LIMIT_MB = 300.0

# Hardened-execution knobs, env-switchable so a long sweep can be run
# process-isolated and resumed after a kill without editing any bench:
#   REPRO_BENCH_ISOLATE=1     subprocess isolation + preemptive budgets
#   REPRO_BENCH_RETRIES=n     attempts for transient FAILED/KILLED cells
#   REPRO_BENCH_RESUME=1      journal cells under results/journals/ and skip
#                             already-completed ones on rerun
#   REPRO_BENCH_RR_WORKERS=n  parallel RR-set sampling (flat CSR engine)
#                             for the RR-sketch family
#   REPRO_BENCH_MC_WORKERS=n  parallel Monte-Carlo simulation (decoupled
#                             scoring and the MC greedy family's oracles)
#   REPRO_BENCH_MC_BATCH=b    cascades per vectorized multi-cascade kernel
#                             call for the same paths
#   REPRO_BENCH_SPREAD_ORACLE=name
#                             sigma(S) backend injected into techniques
#                             that accept it (serial/batched/snapshot/sketch)
#   REPRO_BENCH_PATH_WORKERS=n
#                             parallel structure builds in the path-proxy
#                             engine (PMIA/LDAG/IRIE/SIMPATH); deterministic,
#                             so results are identical at any worker count
#   REPRO_BENCH_TRACE=path    collect per-cell telemetry (phase spans and
#                             engine counters) and append it as JSONL to
#                             the given file; summarize with
#                             ``python -m repro trace path``
#   REPRO_BENCH_POOL_RETRIES=n
#                             per-chunk retry budget of the resilient
#                             worker pool (repro.framework.pool) that all
#                             parallel engines fan out through; a chunk
#                             failing n times is quarantined -> cell FAILED
#   REPRO_BENCH_SHARDS=s      partition-aware sharded fan-out: pool chunks
#                             execute in s round-robin waves and the path
#                             engine groups sources by an edge-cut
#                             partition; pure scheduling, so seeds and
#                             spreads stay byte-identical at any s
#   REPRO_SHM_MIN_BYTES=b     minimum total ndarray bytes in a pool call's
#                             shared args before they ship through the
#                             shared-memory arena instead of pickle
#                             (default 1 MiB; 0 = always use the arena)
#   REPRO_SHM_DISABLE=1       force the once-per-worker pickle transport
#                             for shared args (the arena is default-on)
#   REPRO_FAULT_RATE=r        arm the chunk fault injector at rate r
#                             (with REPRO_FAULT_MODE=kill|hang|corrupt|
#                             raise, REPRO_FAULT_SEED) — chaos-testing
#                             knob; results stay byte-identical because
#                             lost chunks replay from their spawn keys
BENCH_ISOLATE = os.environ.get("REPRO_BENCH_ISOLATE", "") == "1"
BENCH_RETRIES = int(os.environ.get("REPRO_BENCH_RETRIES", "1") or "1")
BENCH_RESUME = os.environ.get("REPRO_BENCH_RESUME", "") == "1"
BENCH_RR_WORKERS = int(os.environ.get("REPRO_BENCH_RR_WORKERS", "0") or "0")
BENCH_MC_WORKERS = int(os.environ.get("REPRO_BENCH_MC_WORKERS", "0") or "0")
BENCH_MC_BATCH = int(os.environ.get("REPRO_BENCH_MC_BATCH", "0") or "0")
BENCH_SPREAD_ORACLE = os.environ.get("REPRO_BENCH_SPREAD_ORACLE", "") or None
BENCH_PATH_WORKERS = int(os.environ.get("REPRO_BENCH_PATH_WORKERS", "0") or "0")
BENCH_TRACE = os.environ.get("REPRO_BENCH_TRACE", "") or None
BENCH_POOL_RETRIES = int(os.environ.get("REPRO_BENCH_POOL_RETRIES", "0") or "0") or None
BENCH_SHARDS = int(os.environ.get("REPRO_BENCH_SHARDS", "0") or "0") or None
JOURNAL_DIR = RESULTS_DIR / "journals"

#: Per-algorithm constructor parameters scaled for pure Python.  epsilon /
#: snapshot counts follow Table 2; only the implementation-scale knobs
#: (rr_scale, MC counts) are reduced.
SCALED_PARAMS: dict[str, dict] = {
    "CELF": {"mc_simulations": 10},
    "CELF++": {"mc_simulations": 10},
    "GREEDY": {"mc_simulations": 10},
    "TIM+": {"rr_scale": RR_SCALE},
    "IMM": {"rr_scale": RR_SCALE},
    "StaticGreedy": {"num_snapshots": 50},
    "PMC": {"num_snapshots": 50},
    "EaSyIM": {"path_length": 3},
    "RIS": {"num_rr_sets": 2000},
}

_WEIGHTED_CACHE: dict[tuple[str, str], object] = {}


def weighted_dataset(name: str, model: PropagationModel):
    """Weighted analogue graph, cached across benches in one session."""
    key = (name, model.name)
    if key not in _WEIGHTED_CACHE:
        _WEIGHTED_CACHE[key] = model.weighted(
            load(name), np.random.default_rng(0)
        )
    return _WEIGHTED_CACHE[key]


def scaled_params(name: str, model: PropagationModel | None = None, **overrides):
    """Table-2 parameters merged with the Python-scale adjustments."""
    from repro.algorithms.registry import accepts_parameter, optimal_parameters

    params = {}
    if model is not None:
        params.update(optimal_parameters(name, model))
    params.update(SCALED_PARAMS.get(name, {}))
    if BENCH_RR_WORKERS > 1 and accepts_parameter(name, "rr_workers"):
        params["rr_workers"] = BENCH_RR_WORKERS
    if BENCH_MC_WORKERS > 1 and accepts_parameter(name, "mc_workers"):
        params["mc_workers"] = BENCH_MC_WORKERS
    if BENCH_MC_BATCH > 1 and accepts_parameter(name, "mc_batch"):
        params["mc_batch"] = BENCH_MC_BATCH
    if BENCH_SPREAD_ORACLE and accepts_parameter(name, "spread_oracle"):
        params["spread_oracle"] = BENCH_SPREAD_ORACLE
    if BENCH_PATH_WORKERS > 1 and accepts_parameter(name, "path_workers"):
        params["path_workers"] = BENCH_PATH_WORKERS
    params.update(overrides)
    return params


def evaluate_spread(
    graph,
    seeds,
    model,
    r: int = MC_EVAL,
    seed: int = 99,
    workers: int | None = None,
    batch: int | None = None,
):
    """Decoupled σ(S) estimate (the Sec.-5.1 uniform comparison point)."""
    return monte_carlo_spread(
        graph, seeds, model, r=r, rng=np.random.default_rng(seed),
        workers=workers or (BENCH_MC_WORKERS if BENCH_MC_WORKERS > 1 else None),
        batch=batch or (BENCH_MC_BATCH if BENCH_MC_BATCH > 1 else None),
    )


def bench_journal(name: str) -> CheckpointJournal | None:
    """Checkpoint journal for one bench, or None when resume is off."""
    if not BENCH_RESUME:
        return None
    JOURNAL_DIR.mkdir(parents=True, exist_ok=True)
    return CheckpointJournal(JOURNAL_DIR / f"{name}.jsonl")


def run_cell(
    algo,
    graph,
    k: int,
    model: PropagationModel,
    *,
    seed: int = 1,
    time_limit: float | None = TIME_LIMIT,
    memory_limit_mb: float | None = None,
    journal: CheckpointJournal | None = None,
    scope: str | None = None,
    params: dict | None = None,
    score=None,
):
    """One sweep cell under the hardened executor.

    Honours the env knobs above: isolation, bounded retry-with-reseed, and
    journal skip/append when ``journal`` is given (``params``/``scope``
    identify the cell across reruns).  ``score`` is called on an OK record
    before journaling so resumed cells carry their spread estimate.
    """
    key = cell_key(algo.name, params or {}, k, model=model.name, scope=scope)
    if journal is not None and key in journal:
        return journal.get(key)
    record, __ = execute_cell(
        algo,
        graph,
        k,
        model,
        rng=np.random.default_rng(seed),
        config=IsolationConfig(
            enabled=BENCH_ISOLATE,
            time_limit_seconds=time_limit,
            memory_limit_mb=memory_limit_mb,
            track_memory=memory_limit_mb is not None,
            telemetry=BENCH_TRACE is not None,
            pool_retries=BENCH_POOL_RETRIES,
            shards=BENCH_SHARDS,
        ),
        retry=RetryPolicy(max_attempts=max(1, BENCH_RETRIES)),
    )
    if score is not None and record.ok:
        score(record)
    if BENCH_TRACE is not None:
        write_trace(BENCH_TRACE, record.extras.get("telemetry"),
                    cell=key, record=record)
    if journal is not None:
        journal.record(key, record)
    return record


def emit(name: str, text: str) -> None:
    """Print a rendered table/figure and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    print(f"\n=== {name} ===\n{text}\n")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

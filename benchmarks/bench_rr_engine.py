"""Flat CSR RR-set engine — cover speedup and parallel sampling throughput.

Not a paper figure: this bench validates the engine the RR-sketch family
(RIS/TIM+/IMM/SSA) now runs on.  It builds one large pool on a power-law
analogue, then measures

* vectorized flat-CSR ``greedy_max_cover`` against the legacy
  list-walking cover (byte-identical seeds are asserted first — the
  speedup is only meaningful if the answers agree), and
* serial vs. worker-pool RR sampling throughput plus the pool's flat-CSR
  memory footprint (``FlatRRPool.nbytes``).

Knobs:

* ``REPRO_BENCH_RR_POOL``    pool size (default 50000; CI smoke shrinks it)
* ``REPRO_BENCH_RR_WORKERS`` worker processes for the sampling comparison
                             (default 2 here, unlike the sweeps where 0
                             means "leave serial")

The >= 3x cover speedup is asserted only at full scale (>= 20000 sets);
at smoke scale the equivalence checks still run but constant overheads
dominate the timing.
"""

import os
import time

import numpy as np

from repro.diffusion.models import Dynamics, WC
from repro.diffusion.rrpool import FlatRRPool, greedy_max_cover
from repro.diffusion.rrsets import RRCollection, greedy_max_cover_legacy
from repro.graph.generators import build, powerlaw_configuration

from _common import emit, once

POOL_SIZE = int(os.environ.get("REPRO_BENCH_RR_POOL", "50000") or "50000")
WORKERS = int(os.environ.get("REPRO_BENCH_RR_WORKERS", "2") or "2")
K = 50
N_NODES = 2000
SPEEDUP_FLOOR = 3.0
FULL_SCALE = 20_000


def _graph():
    rng = np.random.default_rng(7)
    return WC.weighted(build(powerlaw_configuration(N_NODES, 2.3, 8.0, rng)), rng)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _run():
    graph = _graph()
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    lines = [
        f"pool_size={POOL_SIZE} graph: n={graph.n} m={graph.m} "
        f"(power-law WC analogue), k={K}, cores={cores}",
        "",
    ]

    # -- sampling throughput: serial vs process-pool workers ------------
    serial = FlatRRPool(graph.n)
    __, t_serial = _timed(
        lambda: serial.extend(
            graph, Dynamics.IC, POOL_SIZE, np.random.default_rng(11)
        )
    )
    parallel = FlatRRPool(graph.n)
    __, t_parallel = _timed(
        lambda: parallel.extend(
            graph, Dynamics.IC, POOL_SIZE, np.random.default_rng(11),
            workers=WORKERS,
        )
    )
    lines += [
        "RR sampling (IC):",
        f"  serial            {t_serial:8.3f} s   "
        f"({POOL_SIZE / t_serial:,.0f} sets/s)",
        f"  workers={WORKERS}         {t_parallel:8.3f} s   "
        f"({POOL_SIZE / t_parallel:,.0f} sets/s)   "
        f"speedup x{t_serial / t_parallel:.2f}",
    ]
    if cores < 2:
        lines.append(
            "  (single-core machine: the worker pool can only pay IPC "
            "overhead here)"
        )
    lines.append("")

    # -- pool memory footprint ------------------------------------------
    set_view = serial.set_ptr.nbytes + serial.set_nodes.nbytes + serial.widths.nbytes
    __ = serial.node_index  # materialize the inverted view too
    lines += [
        "flat-CSR pool memory:",
        f"  set view          {set_view / 1e6:8.2f} MB",
        f"  with node index   {serial.nbytes / 1e6:8.2f} MB",
        "",
    ]

    # -- cover speedup: flat vectorized vs legacy list-walking ----------
    # Rebuild the pool as an RRCollection and pre-materialize its list
    # caches so the legacy timing measures the cover walk, not the
    # CSR->list conversion.
    legacy_pool = RRCollection(graph.n)
    legacy_pool.absorb(serial)
    __ = legacy_pool.sets, legacy_pool.member_of
    degree = graph.out_degree()

    flat_result, t_flat = _timed(
        lambda: greedy_max_cover(serial, K, pad_priority=degree)
    )
    legacy_result, t_legacy = _timed(
        lambda: greedy_max_cover_legacy(legacy_pool, K, pad_priority=degree)
    )
    assert flat_result == legacy_result, "flat and legacy covers disagree"
    speedup = t_legacy / t_flat
    lines += [
        f"greedy max-cover (k={K}):",
        f"  legacy (lists)    {t_legacy:8.3f} s",
        f"  flat CSR          {t_flat:8.3f} s   speedup x{speedup:.2f}",
        f"  identical seeds: True   coverage={flat_result[1]:.4f}",
    ]
    return lines, speedup


def test_rr_engine(benchmark):
    lines, speedup = once(benchmark, _run)
    emit("rr_engine", "\n".join(lines))
    if POOL_SIZE >= FULL_SCALE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"flat cover only x{speedup:.2f} over legacy (floor x{SPEEDUP_FLOOR})"
        )

"""Compressed sparse row directed graph.

The social network of Definition 1 in the paper: an edge-weighted directed
graph ``G(V, E, W)``.  Nodes are the integers ``0 .. n-1``.  The structure is
immutable once built; edge-weight schemes produce a *new* :class:`DiGraph`
sharing the topology arrays (see :mod:`repro.graph.weights`).

Two adjacency views are kept:

* out-CSR (``out_ptr``, ``out_dst``, ``out_w``) — edges grouped by source,
  used by forward cascade simulation (IC/LT) and forward reachability.
* in-CSR (``in_ptr``, ``in_src``, ``in_w``) — edges grouped by target, used
  by reverse-reachable set sampling (TIM+/IMM) and by the weighted-cascade
  and linear-threshold weight schemes, which are functions of in-degree.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["DiGraph"]


class DiGraph:
    """Immutable edge-weighted directed graph in CSR form.

    Do not call the constructor directly; use :meth:`from_edges` or
    :meth:`from_arrays`.
    """

    __slots__ = (
        "n",
        "m",
        "out_ptr",
        "out_dst",
        "out_w",
        "in_ptr",
        "in_src",
        "in_w",
        "_in_perm",
    )

    def __init__(
        self,
        n: int,
        out_ptr: np.ndarray,
        out_dst: np.ndarray,
        out_w: np.ndarray,
        in_ptr: np.ndarray,
        in_src: np.ndarray,
        in_w: np.ndarray,
        in_perm: np.ndarray,
    ) -> None:
        self.n = int(n)
        self.m = int(out_dst.shape[0])
        self.out_ptr = out_ptr
        self.out_dst = out_dst
        self.out_w = out_w
        self.in_ptr = in_ptr
        self.in_src = in_src
        self.in_w = in_w
        # Permutation mapping out-CSR edge order -> in-CSR edge order, kept
        # so weight schemes can rebuild the in view without re-sorting.
        self._in_perm = in_perm

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        n: int,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray | None = None,
        dedup: bool = True,
    ) -> "DiGraph":
        """Build a graph from parallel ``src``/``dst`` arrays.

        Self-loops are dropped.  With ``dedup`` (the default), duplicate
        arcs are collapsed to one (keeping the first weight); pass
        ``dedup=False`` only when the caller guarantees uniqueness.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same shape")
        if src.size and (src.min() < 0 or src.max() >= n or dst.min() < 0 or dst.max() >= n):
            raise ValueError("edge endpoint out of range")
        if weights is None:
            w = np.ones(src.shape[0], dtype=np.float64)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != src.shape:
                raise ValueError("weights must align with edges")

        keep = src != dst
        src, dst, w = src[keep], dst[keep], w[keep]
        if dedup and src.size:
            key = src * n + dst
            __, first = np.unique(key, return_index=True)
            first.sort()
            src, dst, w = src[first], dst[first], w[first]

        # out-CSR: stable sort by source keeps deterministic edge order.
        order = np.argsort(src, kind="stable")
        src, dst, w = src[order], dst[order], w[order]
        out_ptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(out_ptr, src + 1, 1)
        np.cumsum(out_ptr, out=out_ptr)

        # in-CSR via a permutation of the out-order edges.
        in_perm = np.argsort(dst, kind="stable")
        in_src = src[in_perm]
        in_w = w[in_perm]
        in_ptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(in_ptr, dst + 1, 1)
        np.cumsum(in_ptr, out=in_ptr)

        return cls(n, out_ptr, dst, w, in_ptr, in_src, in_w, in_perm)

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, int]] | Sequence[tuple[int, int]],
        weights: Sequence[float] | None = None,
        dedup: bool = True,
    ) -> "DiGraph":
        """Build a graph from an iterable of ``(u, v)`` pairs."""
        edge_list = list(edges)
        if edge_list:
            arr = np.asarray(edge_list, dtype=np.int64)
            src, dst = arr[:, 0], arr[:, 1]
        else:
            src = dst = np.empty(0, dtype=np.int64)
        w = None if weights is None else np.asarray(list(weights), dtype=np.float64)
        return cls.from_arrays(n, src, dst, w, dedup=dedup)

    def with_weights(self, out_order_weights: np.ndarray) -> "DiGraph":
        """Return a graph with the same topology and new per-edge weights.

        ``out_order_weights`` must align with :attr:`edge_src`/:attr:`edge_dst`
        (out-CSR edge order).
        """
        w = np.asarray(out_order_weights, dtype=np.float64)
        if w.shape[0] != self.m:
            raise ValueError(f"expected {self.m} weights, got {w.shape[0]}")
        return DiGraph(
            self.n,
            self.out_ptr,
            self.out_dst,
            w,
            self.in_ptr,
            self.in_src,
            w[self._in_perm],
            self._in_perm,
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def edge_src(self) -> np.ndarray:
        """Source endpoint of every edge, in out-CSR order."""
        return np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.out_ptr))

    @property
    def edge_dst(self) -> np.ndarray:
        """Target endpoint of every edge, in out-CSR order."""
        return self.out_dst

    def out_neighbors(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        """``(targets, weights)`` of edges leaving ``u`` — Out(u)."""
        lo, hi = self.out_ptr[u], self.out_ptr[u + 1]
        return self.out_dst[lo:hi], self.out_w[lo:hi]

    def in_neighbors(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``(sources, weights)`` of edges entering ``v`` — In(v)."""
        lo, hi = self.in_ptr[v], self.in_ptr[v + 1]
        return self.in_src[lo:hi], self.in_w[lo:hi]

    def out_degree(self, u: int | None = None):
        if u is None:
            return np.diff(self.out_ptr)
        return int(self.out_ptr[u + 1] - self.out_ptr[u])

    def in_degree(self, v: int | None = None):
        if v is None:
            return np.diff(self.in_ptr)
        return int(self.in_ptr[v + 1] - self.in_ptr[v])

    def weight(self, u: int, v: int) -> float:
        """W(u, v); raises ``KeyError`` if the arc does not exist."""
        dst, w = self.out_neighbors(u)
        hits = np.nonzero(dst == v)[0]
        if hits.size == 0:
            raise KeyError(f"no edge ({u}, {v})")
        return float(w[hits[0]])

    def has_edge(self, u: int, v: int) -> bool:
        dst, __ = self.out_neighbors(u)
        return bool((dst == v).any())

    def reverse(self) -> "DiGraph":
        """The transpose graph (used to build RR sets by forward search)."""
        src = self.edge_src
        return DiGraph.from_arrays(self.n, self.out_dst, src, self.out_w, dedup=False)

    def edges(self) -> Iterable[tuple[int, int, float]]:
        """Yield ``(u, v, w)`` triples in out-CSR order."""
        for u in range(self.n):
            lo, hi = self.out_ptr[u], self.out_ptr[u + 1]
            for j in range(lo, hi):
                yield u, int(self.out_dst[j]), float(self.out_w[j])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiGraph(n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.out_ptr, other.out_ptr)
            and np.array_equal(self.out_dst, other.out_dst)
            and np.allclose(self.out_w, other.out_w)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)

"""Vectorized CSR slice expansion, shared by every frontier-style walker.

One primitive underlies the cascade simulators, the live-edge snapshot
reachability, the RR pool's set gathering, and the batched multi-cascade
kernels: given CSR offsets and a set of row ids, produce the flat index
array of every payload slot belonging to those rows in a single numpy
expression (no per-row Python loop).

``expand_slices`` returns the *indices*; ``gather_csr`` additionally
gathers the payload.  Both are int64-overflow-safe (the cumulative sum is
forced to int64 even when the inputs arrive as int32) and short-circuit
empty frontiers, so callers never pay array setup for a finished walk.
"""

from __future__ import annotations

import numpy as np

__all__ = ["expand_slices", "gather_csr", "gather_edges"]


def expand_slices(ptr: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Flat indices of the CSR slices ``ptr[i]:ptr[i+1]`` for ``i in ids``."""
    ids = np.asarray(ids)
    if ids.size == 0:  # empty-frontier fast path
        return np.empty(0, dtype=np.int64)
    starts = ptr[ids].astype(np.int64, copy=False)
    counts = (ptr[ids + 1] - ptr[ids]).astype(np.int64, copy=False)
    # int64-safe cumsum: with int32 ptr inputs the running total could
    # otherwise wrap on pools past 2^31 slots.
    ends = np.cumsum(counts, dtype=np.int64)
    total = int(ends[-1])
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # For each slot, its offset within its row's slice, then shift by the
    # slice start: classic CSR expansion without a Python loop.
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + within


def gather_csr(ptr: np.ndarray, data: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Concatenate the CSR slices ``data[ptr[i]:ptr[i+1]]`` for ``i in ids``."""
    idx = expand_slices(ptr, ids)
    if idx.size == 0:
        return np.empty(0, dtype=data.dtype)
    return data[idx]


def gather_edges(ptr: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Indices (into the CSR edge arrays) of all edges leaving ``nodes``."""
    return expand_slices(ptr, nodes)

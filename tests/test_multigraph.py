"""Unit tests for multigraphs and the LT parallel-edges consolidation."""

import pytest

from repro.graph.multigraph import MultiDiGraph, consolidate
from repro.graph.weights import incoming_weight_sums


class TestMultiDiGraph:
    def test_multiplicity_accumulates(self):
        mg = MultiDiGraph(3)
        mg.add_edge(0, 1)
        mg.add_edge(0, 1)
        mg.add_edge(0, 1, count=3)
        assert mg.multiplicity(0, 1) == 5
        assert mg.num_arcs == 5
        assert mg.num_edges == 1

    def test_constructor_edges(self):
        mg = MultiDiGraph(3, [(0, 1), (0, 1), (1, 2)])
        assert mg.multiplicity(0, 1) == 2
        assert mg.multiplicity(1, 2) == 1

    def test_self_loops_ignored(self):
        mg = MultiDiGraph(2, [(0, 0), (0, 1)])
        assert mg.num_edges == 1

    def test_out_of_range_raises(self):
        mg = MultiDiGraph(2)
        with pytest.raises(ValueError):
            mg.add_edge(0, 5)

    def test_bad_count_raises(self):
        mg = MultiDiGraph(2)
        with pytest.raises(ValueError):
            mg.add_edge(0, 1, count=0)


class TestConsolidate:
    def test_weights_proportional_to_multiplicity(self):
        # Phone-call network: 0 calls 2 thrice, 1 calls 2 once.
        mg = MultiDiGraph(3, [(0, 2)] * 3 + [(1, 2)])
        g = consolidate(mg)
        assert g.weight(0, 2) == pytest.approx(0.75)
        assert g.weight(1, 2) == pytest.approx(0.25)

    def test_incoming_sums_are_one(self):
        mg = MultiDiGraph(4, [(0, 3), (0, 3), (1, 3), (2, 3), (3, 0)])
        g = consolidate(mg)
        sums = incoming_weight_sums(g)
        assert sums[3] == pytest.approx(1.0)
        assert sums[0] == pytest.approx(1.0)

    def test_generalizes_uniform_model(self):
        # With all multiplicities 1, weights reduce to 1/|In(v)|.
        mg = MultiDiGraph(3, [(0, 2), (1, 2)])
        g = consolidate(mg)
        assert g.weight(0, 2) == pytest.approx(0.5)
        assert g.weight(1, 2) == pytest.approx(0.5)

    def test_empty_multigraph(self):
        g = consolidate(MultiDiGraph(4))
        assert g.n == 4
        assert g.m == 0

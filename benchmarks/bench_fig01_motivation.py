"""Fig. 1 — the motivating experiments.

(a) IMM running time under IC (W = 0.1) vs WC on the Orkut analogue.
    Under constant-weight IC the dense graph is epidemic: every RR set
    absorbs a large fraction of the graph, so time/memory blow up and the
    run violates its budget ("crashes ... consuming more than 256 GB")
    while WC — tiny RR sets — sails through.
(b, c) EaSyIM (iter) vs IMM (ε = 0.5) on the YouTube analogue under IC:
    IMM is the faster technique, EaSyIM the (far) smaller one.

Scaled parameters: rr_scale 0.1 (fig 1a) / 0.01 (fig 1b-c), memory budget
120 MB, time budget 30 s standing in for 256 GB / 40 h.
"""

import numpy as np

from repro.algorithms import registry
from repro.diffusion.models import IC, WC
from repro.framework.metrics import run_with_budget
from repro.framework.results import render_series

from _common import emit, once

K_GRID = (10, 50, 100)


def _run(name, graph, k, model, **params):
    algo = registry.make(name, **params)
    record, __ = run_with_budget(
        algo,
        graph,
        k,
        model,
        rng=np.random.default_rng(k),
        time_limit_seconds=15.0,
        memory_limit_mb=120.0,
        track_memory=True,
    )
    return record


def test_fig1a_imm_ic_vs_wc(benchmark):
    from _common import weighted_dataset

    def experiment():
        rows = {"IC time (s)": [], "WC time (s)": [], "IC status": [], "WC status": []}
        for k in K_GRID:
            for model, label in ((IC, "IC"), (WC, "WC")):
                graph = weighted_dataset("orkut", model)
                record = _run("IMM", graph, k, model, epsilon=0.5, rr_scale=0.1)
                rows[f"{label} time (s)"].append(record.elapsed_seconds)
                rows[f"{label} status"].append(record.status)
        return rows

    rows = once(benchmark, experiment)
    text = render_series(
        "k", list(K_GRID), rows,
        title="Fig 1a: IMM (eps=0.5) on orkut analogue — IC (W=0.1) vs WC",
    )
    emit("fig01a_imm_ic_vs_wc", text)

    assert all(s == "OK" for s in rows["WC status"]), "WC must scale"
    finished_pairs = [
        (ic_t, wc_t)
        for ic_t, wc_t, ic_s in zip(
            rows["IC time (s)"], rows["WC time (s)"], rows["IC status"]
        )
        if ic_s == "OK"
    ]
    blowup = any(s != "OK" for s in rows["IC status"])
    slower = all(ic_t > wc_t for ic_t, wc_t in finished_pairs)
    assert blowup or slower, "IC must blow up or at least dominate WC cost"


def test_fig1bc_easyim_vs_imm(benchmark):
    from _common import weighted_dataset

    graph = weighted_dataset("youtube", IC)
    k_grid = (10, 50, 100, 200)

    def experiment():
        rows = {
            "EaSyIM time (s)": [], "IMM time (s)": [],
            "EaSyIM mem (MB)": [], "IMM mem (MB)": [],
        }
        for k in k_grid:
            easy = _run("EaSyIM", graph, k, IC, path_length=3)
            # rr_scale 0.1: large enough that IMM's RR-pool footprint is
            # visible (the Fig-1c effect) while staying inside the budget.
            imm = _run("IMM", graph, k, IC, epsilon=0.5, rr_scale=0.1)
            rows["EaSyIM time (s)"].append(easy.elapsed_seconds)
            rows["IMM time (s)"].append(imm.elapsed_seconds)
            rows["EaSyIM mem (MB)"].append(easy.peak_memory_mb)
            rows["IMM mem (MB)"].append(imm.peak_memory_mb)
        return rows

    rows = once(benchmark, experiment)
    text = render_series(
        "k", list(k_grid), rows,
        title="Fig 1b-c: EaSyIM vs IMM on youtube analogue under IC (W=0.1)",
    )
    emit("fig01bc_easyim_vs_imm", text)

    # Fig 1c: EaSyIM's working set is one float per node; IMM stores a pool.
    assert rows["EaSyIM mem (MB)"][-1] < rows["IMM mem (MB)"][-1]
    # Fig 1b's shape at scale: EaSyIM's cost grows ~linearly with k (one
    # full score recomputation per seed) while IMM's is k-insensitive, so
    # the EaSyIM/IMM time ratio must grow with k.
    ratio_first = rows["EaSyIM time (s)"][0] / max(rows["IMM time (s)"][0], 1e-9)
    ratio_last = rows["EaSyIM time (s)"][-1] / max(rows["IMM time (s)"][-1], 1e-9)
    assert ratio_last > ratio_first

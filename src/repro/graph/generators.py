"""Seeded synthetic graph generators.

The paper benchmarks on eight real social networks (Table 1).  Those graphs
are not redistributable (and a pure-Python platform cannot hold
billion-edge graphs anyway), so :mod:`repro.datasets` builds scaled
analogues from the generators in this module.  Each generator returns
``(n, src, dst)`` arrays of *unique directed arcs* suitable for
:meth:`DiGraph.from_arrays`; use :func:`symmetrize` to model an undirected
network as arcs in both directions, exactly as the paper does ("the
undirected graphs are made directed by considering, for each edge, the
arcs in both directions").
"""

from __future__ import annotations

import numpy as np

from .digraph import DiGraph

__all__ = [
    "symmetrize",
    "erdos_renyi",
    "preferential_attachment",
    "watts_strogatz",
    "powerlaw_configuration",
    "forest_fire",
]

EdgeArrays = tuple[int, np.ndarray, np.ndarray]


def symmetrize(n: int, src: np.ndarray, dst: np.ndarray) -> EdgeArrays:
    """Add the reverse of every arc (undirected -> directed doubling)."""
    return n, np.concatenate([src, dst]), np.concatenate([dst, src])


def _dedup(n: int, src: np.ndarray, dst: np.ndarray) -> EdgeArrays:
    keep = src != dst
    src, dst = src[keep], dst[keep]
    if src.size:
        key = src.astype(np.int64) * n + dst
        __, first = np.unique(key, return_index=True)
        first.sort()
        src, dst = src[first], dst[first]
    return n, src, dst


def erdos_renyi(n: int, p: float, rng: np.random.Generator, directed: bool = True) -> EdgeArrays:
    """G(n, p) with expected ``p * n * (n - 1)`` directed arcs."""
    if n < 0 or not 0.0 <= p <= 1.0:
        raise ValueError("need n >= 0 and p in [0, 1]")
    expected = p * n * max(n - 1, 0)
    m = rng.binomial(n * max(n - 1, 0), p) if n > 1 else 0
    # Sample arcs with replacement then dedup; for sparse p the loss is tiny,
    # and slight oversampling compensates for collisions.
    m = int(m + 4 * np.sqrt(expected)) if expected > 0 else 0
    src = rng.integers(0, n, size=m) if n else np.empty(0, dtype=np.int64)
    dst = rng.integers(0, n, size=m) if n else np.empty(0, dtype=np.int64)
    n, src, dst = _dedup(n, src.astype(np.int64), dst.astype(np.int64))
    if not directed:
        return symmetrize(n, src, dst)
    return n, src, dst


def preferential_attachment(
    n: int, m_per_node: int, rng: np.random.Generator, directed: bool = False
) -> EdgeArrays:
    """Barabási–Albert-style growth: each new node attaches to ``m_per_node``
    existing nodes chosen proportionally to their current degree.

    Produces the heavy-tailed degree distribution characteristic of social
    networks (DBLP-, YouTube-like graphs).
    """
    if m_per_node < 1 or n < m_per_node + 1:
        raise ValueError("need n > m_per_node >= 1")
    src_list: list[int] = []
    dst_list: list[int] = []
    # repeated-nodes trick: sampling uniformly from this list is sampling
    # proportionally to degree.
    repeated: list[int] = list(range(m_per_node))
    for v in range(m_per_node, n):
        targets: set[int] = set()
        while len(targets) < m_per_node:
            if repeated and rng.random() < 0.9:
                targets.add(repeated[int(rng.integers(0, len(repeated)))])
            else:
                targets.add(int(rng.integers(0, v)))
        for t in targets:
            src_list.append(v)
            dst_list.append(t)
            repeated.append(v)
            repeated.append(t)
    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)
    if directed:
        return _dedup(n, src, dst)
    return symmetrize(*_dedup(n, src, dst))


def watts_strogatz(
    n: int, k: int, beta: float, rng: np.random.Generator, directed: bool = False
) -> EdgeArrays:
    """Ring lattice with ``k`` nearest neighbours per side, rewired w.p. beta."""
    if k < 1 or n < 2 * k + 1:
        raise ValueError("need n > 2k")
    src_list: list[int] = []
    dst_list: list[int] = []
    for u in range(n):
        for offset in range(1, k + 1):
            v = (u + offset) % n
            if rng.random() < beta:
                v = int(rng.integers(0, n))
                while v == u:
                    v = int(rng.integers(0, n))
            src_list.append(u)
            dst_list.append(v)
    n, src, dst = _dedup(n, np.asarray(src_list, dtype=np.int64), np.asarray(dst_list, dtype=np.int64))
    if directed:
        return n, src, dst
    return symmetrize(n, src, dst)


def powerlaw_configuration(
    n: int,
    exponent: float,
    avg_degree: float,
    rng: np.random.Generator,
    directed: bool = True,
    max_degree: int | None = None,
) -> EdgeArrays:
    """Directed configuration model with Zipf-like out-degrees.

    Out-degrees follow a truncated power law with the given exponent, scaled
    to hit ``avg_degree``; targets are sampled preferentially (by a second,
    independent power-law popularity) so in-degrees are heavy-tailed too —
    the Twitter-like regime where WC weights 1/|In(v)| become tiny at hubs.
    """
    if n < 2:
        raise ValueError("need n >= 2")
    max_degree = max_degree or max(2, n // 10)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    raw = ranks ** (-1.0 / max(exponent - 1.0, 1e-9))
    raw = np.minimum(raw / raw.mean() * avg_degree, max_degree)
    out_deg = np.maximum(rng.poisson(raw), 0)
    rng.shuffle(out_deg)

    popularity = ranks ** (-1.0 / max(exponent - 1.0, 1e-9))
    popularity /= popularity.sum()
    node_pop = np.arange(n)
    rng.shuffle(node_pop)

    src = np.repeat(np.arange(n, dtype=np.int64), out_deg)
    dst_pool = rng.choice(node_pop, size=src.shape[0], p=popularity)
    n, src, dst = _dedup(n, src, dst_pool.astype(np.int64))
    if directed:
        return n, src, dst
    return symmetrize(n, src, dst)


def forest_fire(
    n: int, forward_prob: float, rng: np.random.Generator, directed: bool = True
) -> EdgeArrays:
    """Leskovec-style forest-fire growth (densifying, small diameter)."""
    if not 0.0 <= forward_prob < 1.0:
        raise ValueError("forward_prob must be in [0, 1)")
    out_adj: list[list[int]] = [[] for __ in range(n)]
    src_list: list[int] = []
    dst_list: list[int] = []

    def link(u: int, v: int) -> None:
        out_adj[u].append(v)
        src_list.append(u)
        dst_list.append(v)

    for v in range(1, n):
        ambassador = int(rng.integers(0, v))
        burned = {ambassador}
        frontier = [ambassador]
        link(v, ambassador)
        while frontier:
            w = frontier.pop()
            # geometric number of links to burn forward from w
            n_burn = rng.geometric(1.0 - forward_prob) - 1
            fresh = [x for x in out_adj[w] if x not in burned]
            rng.shuffle(fresh)
            for x in fresh[:n_burn]:
                burned.add(x)
                frontier.append(x)
                link(v, x)
    n, src, dst = _dedup(
        n, np.asarray(src_list, dtype=np.int64), np.asarray(dst_list, dtype=np.int64)
    )
    if directed:
        return n, src, dst
    return symmetrize(n, src, dst)


def build(edge_arrays: EdgeArrays) -> DiGraph:
    """Convenience: materialize generator output as an unweighted DiGraph."""
    n, src, dst = edge_arrays
    return DiGraph.from_arrays(n, src, dst)

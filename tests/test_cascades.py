"""Tests for the IC and LT cascade simulators against exact oracles."""

import numpy as np
import pytest

from repro.diffusion.independent_cascade import simulate_ic
from repro.diffusion.linear_threshold import simulate_lt
from repro.diffusion.models import Dynamics
from repro.diffusion.simulation import monte_carlo_spread, simulate_spread
from repro.graph.digraph import DiGraph
from tests.oracles import exact_ic_spread, exact_lt_spread


class TestICBasics:
    def test_seeds_always_active(self, line_graph, rng):
        active = simulate_ic(line_graph, [0, 2], rng)
        assert active[0] and active[2]

    def test_no_seeds_no_activity(self, line_graph, rng):
        active = simulate_ic(line_graph, [], rng)
        assert not active.any()

    def test_deterministic_with_unit_weights(self, rng):
        g = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)], weights=[1, 1, 1])
        active = simulate_ic(g, [0], rng)
        assert active.all()

    def test_zero_weights_block(self, rng):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0, 0])
        active = simulate_ic(g, [0], rng)
        assert active.tolist() == [True, False, False]

    def test_respects_direction(self, rng):
        g = DiGraph.from_edges(2, [(0, 1)], weights=[1.0])
        active = simulate_ic(g, [1], rng)
        assert active.tolist() == [False, True]

    def test_duplicate_seeds_ok(self, line_graph, rng):
        active = simulate_ic(line_graph, [0, 0, 0], rng)
        assert active[0]


class TestICExact:
    def test_line_graph_spread_matches_exact(self, line_graph, rng):
        exact = exact_ic_spread(line_graph, [0])
        est = monte_carlo_spread(line_graph, [0], Dynamics.IC, r=20000, rng=rng)
        assert est.mean == pytest.approx(exact, abs=4 * est.stderr + 1e-9)

    def test_diamond_graph_spread_matches_exact(self, diamond_graph, rng):
        exact = exact_ic_spread(diamond_graph, [0])
        est = monte_carlo_spread(diamond_graph, [0], Dynamics.IC, r=20000, rng=rng)
        assert est.mean == pytest.approx(exact, abs=4 * est.stderr + 1e-9)

    def test_multi_seed_spread_matches_exact(self, diamond_graph, rng):
        exact = exact_ic_spread(diamond_graph, [1, 2])
        est = monte_carlo_spread(diamond_graph, [1, 2], Dynamics.IC, r=20000, rng=rng)
        assert est.mean == pytest.approx(exact, abs=4 * est.stderr + 1e-9)

    def test_each_edge_tried_once(self, rng):
        # A single edge with p = 0.5: spread of {0} must average 1.5,
        # not higher (no retries across time steps).
        g = DiGraph.from_edges(2, [(0, 1)], weights=[0.5])
        est = monte_carlo_spread(g, [0], Dynamics.IC, r=20000, rng=rng)
        assert est.mean == pytest.approx(1.5, abs=0.02)


class TestLTBasics:
    def test_seeds_always_active(self, line_graph, rng):
        active = simulate_lt(line_graph, [0], rng)
        assert active[0]

    def test_no_seeds_no_activity(self, line_graph, rng):
        assert not simulate_lt(line_graph, [], rng).any()

    def test_weight_one_edge_always_fires(self, rng):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[1.0, 1.0])
        for __ in range(20):
            active = simulate_lt(g, [0], rng)
            assert active.all()

    def test_threshold_override(self):
        g = DiGraph.from_edges(2, [(0, 1)], weights=[0.5])
        rng = np.random.default_rng(0)
        low = simulate_lt(g, [0], rng, thresholds=np.array([0.9, 0.4]))
        assert low[1]
        high = simulate_lt(g, [0], rng, thresholds=np.array([0.9, 0.6]))
        assert not high[1]

    def test_threshold_shape_validated(self, line_graph, rng):
        with pytest.raises(ValueError):
            simulate_lt(line_graph, [0], rng, thresholds=np.array([0.5]))

    def test_accumulation_across_neighbors(self, rng):
        # Two in-edges of 0.5 each: once both sources are active, the target
        # activates with probability 1 (sum = 1 >= any threshold).
        g = DiGraph.from_edges(3, [(0, 2), (1, 2)], weights=[0.5, 0.5])
        for __ in range(20):
            active = simulate_lt(g, [0, 1], rng)
            assert active[2]


class TestLTExact:
    def test_line_graph_matches_live_edge_oracle(self, line_graph, rng):
        exact = exact_lt_spread(line_graph, [0])
        est = monte_carlo_spread(line_graph, [0], Dynamics.LT, r=20000, rng=rng)
        assert est.mean == pytest.approx(exact, abs=4 * est.stderr + 1e-9)

    def test_diamond_graph_matches_live_edge_oracle(self, diamond_graph, rng):
        exact = exact_lt_spread(diamond_graph, [0])
        est = monte_carlo_spread(diamond_graph, [0], Dynamics.LT, r=20000, rng=rng)
        assert est.mean == pytest.approx(exact, abs=4 * est.stderr + 1e-9)


class TestSimulateSpread:
    def test_returns_count(self, line_graph, rng):
        value = simulate_spread(line_graph, [0], Dynamics.IC, rng)
        assert 1 <= value <= 4

    def test_lt_dispatch(self, line_graph, rng):
        value = simulate_spread(line_graph, [0], Dynamics.LT, rng)
        assert value >= 1

"""Serving layer: warm artifacts, coalescing, cache bounds, byte parity."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import algorithms
from repro.datasets import load as load_dataset
from repro.diffusion import model_by_name
from repro.diffusion.oracle import (
    BatchedMCOracle,
    BoundedMemo,
    GainCache,
    SnapshotOracle,
)
from repro.framework import shm
from repro.graph.io import save_npz
from repro.serving import (
    Artifact,
    ArtifactLRU,
    ServingCatalog,
    ServingClient,
    ServingConfig,
    ServingError,
    artifact_key,
    payload_nbytes,
    start_in_thread,
)


def _weighted(dataset="nethept", model_name="IC"):
    model = model_by_name(model_name)
    graph = model.weighted(load_dataset(dataset), np.random.default_rng(0))
    return graph, model


@pytest.fixture(scope="module")
def served():
    """One shared server for the read-only protocol tests."""
    handle = start_in_thread(
        ServingConfig(datasets=("nethept",), coalesce_ms=15.0)
    )
    yield handle
    handle.stop()


# ----------------------------------------------------------------------
# BoundedMemo / cache-bound regressions (the long-lived-process bugfixes)


def test_bounded_memo_caps_entries_lru():
    memo = BoundedMemo(max_entries=3)
    for i in range(5):
        memo.put(i, i * 10)
    assert len(memo) == 3
    assert memo.evictions == 2
    assert memo.get(0) is None and memo.get(1) is None
    assert memo.get(4) == 40
    # Recency: touching 2 makes 3 the eviction victim.
    memo.get(2)
    memo.put(5, 50)
    assert 3 not in memo and 2 in memo


def test_bounded_memo_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_TEST_MEMO_MAX", "2")
    memo = BoundedMemo(env="REPRO_TEST_MEMO_MAX")
    memo.put("a", 1)
    memo.put("b", 2)
    memo.put("c", 3)
    assert len(memo) == 2 and memo.evictions == 1


def test_gain_cache_bounded_under_distinct_queries(two_cliques):
    oracle = SnapshotOracle(
        two_cliques, model_by_name("IC"), num_worlds=4,
        rng=np.random.default_rng(0),
    )
    cache = GainCache(max_entries=64)
    for v in range(two_cliques.n):
        for _ in range(3):
            cache.gain(oracle, v)
    stats = cache.stats()
    assert stats["hits"] > 0
    assert stats["entries"] <= 64


def test_gain_cache_10k_distinct_queries_bounded(star_graph, monkeypatch):
    monkeypatch.setenv("REPRO_GAIN_CACHE_MAX", "64")
    oracle = SnapshotOracle(
        star_graph, model_by_name("IC"), num_worlds=2,
        rng=np.random.default_rng(0),
    )
    cache = GainCache()
    # 10k queries cycling through >64 distinct (extra-set, node) keys.
    n = star_graph.n
    for i in range(10_000):
        cache.gain(oracle, i % n, extra=[(i // n) % n, (i // (n * n)) % n])
    stats = cache.stats()
    assert stats["entries"] <= 64
    assert stats["evictions"] > 0


def test_sigma_caches_bounded_10k_distinct(two_cliques, monkeypatch):
    monkeypatch.setenv("REPRO_SIGMA_CACHE_MAX", "16")
    model = model_by_name("IC")
    snap = SnapshotOracle(
        two_cliques, model, num_worlds=2, rng=np.random.default_rng(0)
    )
    batched = BatchedMCOracle(two_cliques, model, 2, np.random.default_rng(0))
    n = two_cliques.n
    # 10k queries over the 63 nonempty subsets of the 6 nodes (bitmask
    # enumeration), far above the 16-entry bound.
    for i in range(10_000):
        mask = (i % 63) + 1
        key = [v for v in range(n) if mask & (1 << v)]
        snap.evaluate(key)
        batched.evaluate(key)
    assert len(snap._sigma_cache) <= 16
    assert len(batched._sigma_cache) <= 16
    assert snap._sigma_cache.evictions > 0
    assert batched._sigma_cache.evictions > 0


def test_sigma_cache_still_hits_for_repeats(two_cliques):
    oracle = SnapshotOracle(
        two_cliques, model_by_name("IC"), num_worlds=4,
        rng=np.random.default_rng(0),
    )
    first = oracle.evaluate([0, 3])
    evals = oracle.evaluations
    second = oracle.evaluate([0, 3])
    assert second == first
    assert oracle.evaluations == evals  # cache hit, no re-evaluation


# ----------------------------------------------------------------------
# SnapshotOracle.evaluate_many: one stacked BFS, bitwise-equal to evaluate


def test_evaluate_many_matches_evaluate(two_cliques):
    model = model_by_name("IC")
    sets = [[0], [3], [0, 3], [1, 4], [2]]
    a = SnapshotOracle(
        two_cliques, model, num_worlds=16, rng=np.random.default_rng(9)
    )
    b = SnapshotOracle(
        two_cliques, model, num_worlds=16, rng=np.random.default_rng(9)
    )
    batch = a.evaluate_many(sets)
    singles = [b.evaluate(s) for s in sets]
    assert batch == singles  # bitwise, not approximate


def test_evaluate_many_dedups_and_fills_cache(two_cliques):
    oracle = SnapshotOracle(
        two_cliques, model_by_name("IC"), num_worlds=8,
        rng=np.random.default_rng(1),
    )
    values = oracle.evaluate_many([[0], [1], [0], [1], [0]])
    assert values[0] == values[2] == values[4]
    assert oracle.evaluations == 2  # two distinct sets evaluated once each
    # Follow-up singles are pure cache hits.
    assert oracle.evaluate([0]) == values[0]
    assert oracle.evaluations == 2


# ----------------------------------------------------------------------
# shm attach-cache sweep


def _fake_attachment():
    """A (segment, view) pair shaped like a real _ATTACHED entry."""
    from multiprocessing import shared_memory

    seg = shared_memory.SharedMemory(create=True, size=64, name=None)
    view = np.ndarray((64,), dtype=np.uint8, buffer=seg.buf)
    view.flags.writeable = False
    shm._ATTACHED[seg.name] = (seg, view)
    shm._VIEW_SEGMENTS[id(view)] = seg.name
    return seg


def test_detach_stale_drops_unlinked_segments():
    seg = _fake_attachment()
    name = seg.name
    try:
        assert name in shm.attached_segments()
        assert shm.detach_stale() == 0  # segment still exists: kept
        seg.unlink()
        assert shm.detach_stale() >= 1
        assert name not in shm.attached_segments()
    finally:
        shm._ATTACHED.pop(name, None)
        try:
            seg.unlink()
        except FileNotFoundError:
            pass


def test_detach_all_empties_cache():
    seg = _fake_attachment()
    try:
        assert shm.detach_all() >= 1
        assert not shm.attached_segments()
    finally:
        try:
            seg.unlink()
        except FileNotFoundError:
            pass


# ----------------------------------------------------------------------
# ArtifactLRU


def _artifact(key, nbytes, kind="oracle"):
    return Artifact(key=key, kind=kind, payload=object(), nbytes=nbytes)


def test_artifact_lru_evicts_by_bytes_lru_order():
    lru = ArtifactLRU(budget_bytes=100)
    lru.put(_artifact("a", 40))
    lru.put(_artifact("b", 40))
    assert lru.get("a") is not None  # refresh a; b is now oldest
    evicted = lru.put(_artifact("c", 40))
    assert evicted == ["b"]
    assert "a" in lru and "c" in lru
    assert lru.total_bytes == 80


def test_artifact_lru_keeps_newest_even_over_budget():
    lru = ArtifactLRU(budget_bytes=10)
    lru.put(_artifact("big", 1000))
    assert "big" in lru and len(lru) == 1


def test_artifact_lru_replace_same_key():
    lru = ArtifactLRU(budget_bytes=100)
    lru.put(_artifact("a", 40))
    lru.put(_artifact("a", 60))
    assert len(lru) == 1 and lru.total_bytes == 60


def test_artifact_key_canonical_ordering():
    k1 = artifact_key("oracle", "d", "IC", worlds=5, seed=0)
    k2 = artifact_key("oracle", "d", "IC", seed=0, worlds=5)
    assert k1 == k2
    assert artifact_key("oracle", "d", "IC", worlds=6, seed=0) != k1


def test_payload_nbytes_prefers_detail(two_cliques):
    oracle = SnapshotOracle(
        two_cliques, model_by_name("IC"), num_worlds=4,
        rng=np.random.default_rng(0),
    )
    total, detail = payload_nbytes(oracle)
    assert total == oracle.nbytes > 0
    assert "live_worlds" in detail


# ----------------------------------------------------------------------
# Catalog


def test_catalog_weighted_matches_cli_convention():
    catalog = ServingCatalog(datasets=("nethept",))
    graph, model = catalog.weighted("nethept", "IC")
    ref, __ = _weighted()
    assert np.array_equal(graph.out_w, ref.out_w)
    assert catalog.weighted("nethept", "IC")[0] is graph  # cached


def test_catalog_dir_serves_npz(tmp_path, two_cliques):
    save_npz(two_cliques, tmp_path / "toy.npz")
    catalog = ServingCatalog(datasets=(), catalog_dir=str(tmp_path))
    assert catalog.names() == ("toy",)
    loaded = catalog.graph("toy")
    assert loaded.n == two_cliques.n and loaded.m == two_cliques.m


def test_catalog_rejects_unknown_dataset():
    with pytest.raises(KeyError):
        ServingCatalog(datasets=("nope",))


# ----------------------------------------------------------------------
# Server protocol: byte parity, warm hits, coalescing, errors


def test_topk_ris_byte_identical_to_batch_and_warm(served):
    with served.client() as client:
        cold = client.topk(
            "nethept", "IC", "RIS", 5, params={"num_rr_sets": 1000}, seed=7
        )
        warm = client.topk(
            "nethept", "IC", "RIS", 5, params={"num_rr_sets": 1000}, seed=7
        )
        smaller = client.topk(
            "nethept", "IC", "RIS", 2, params={"num_rr_sets": 1000}, seed=7
        )
    graph, model = _weighted()
    ref = algorithms.make("RIS", num_rr_sets=1000).select(
        graph, 5, model, rng=np.random.default_rng(7)
    )
    assert cold["seeds"] == ref.seeds
    assert warm["seeds"] == ref.seeds
    assert not cold["warm"] and warm["warm"]
    assert smaller["warm"] and smaller["seeds"] == ref.seeds[:2]


def test_topk_selection_path_prefix_warm(served):
    with served.client() as client:
        cold = client.topk(
            "nethept", "IC", "DegreeDiscount", 6, seed=3
        )
        prefix = client.topk(
            "nethept", "IC", "DegreeDiscount", 4, seed=3
        )
    graph, model = _weighted()
    ref = algorithms.make("DegreeDiscount").select(
        graph, 6, model, rng=np.random.default_rng(3)
    )
    assert cold["seeds"] == ref.seeds and not cold["warm"]
    assert prefix["warm"] and prefix["seeds"] == ref.seeds[:4]


def test_sigma_byte_identical_to_direct_oracle(served):
    with served.client() as client:
        got = client.sigma("nethept", "IC", [3, 5, 1], worlds=64, seed=0)
    graph, model = _weighted()
    oracle = SnapshotOracle(
        graph, model, num_worlds=64, rng=np.random.default_rng(0)
    )
    assert got["sigma"] == oracle.evaluate([3, 5, 1])


def test_gain_byte_identical_to_direct_oracle(served):
    with served.client() as client:
        got = client.gain("nethept", "IC", 9, seeds=[3, 5], worlds=64)
    graph, model = _weighted()
    oracle = SnapshotOracle(
        graph, model, num_worlds=64, rng=np.random.default_rng(0)
    )
    assert got["gain"] == oracle.gain(9, extra=[3, 5])


def test_concurrent_sigma_coalesces_into_one_evaluation(served):
    sets = [[0], [1], [2], [3], [0, 1]]
    before = served.server.telemetry.counters.get("serving.coalesced_batches", 0)
    with served.client() as client:
        results = client.sigma_many("nethept", "IC", sets, worlds=32)
    # Pipelined queries land inside one coalescing window: at least one
    # response reports a batch of >= 2, and parity holds for every set.
    assert max(r["batched"] for r in results) >= 2
    after = served.server.telemetry.counters.get("serving.coalesced_batches", 0)
    assert after > before
    graph, model = _weighted()
    oracle = SnapshotOracle(
        graph, model, num_worlds=32, rng=np.random.default_rng(0)
    )
    for seeds, got in zip(sets, results):
        assert got["sigma"] == oracle.evaluate(seeds)


def test_unknown_op_errors_without_killing_connection(served):
    with served.client() as client:
        with pytest.raises(ServingError):
            client.request("definitely-not-an-op")
        assert client.ping() == "pong"  # connection survived


def test_bad_request_reports_missing_field(served):
    with served.client() as client:
        with pytest.raises(ServingError, match="missing field"):
            client.request("topk", dataset="nethept")
        with pytest.raises(ServingError, match="not servable"):
            client.sigma("nethept", "IC", [0], oracle="serial")


def test_stats_exposes_cache_and_counters(served):
    with served.client() as client:
        client.ping()
        stats = client.stats()
    assert "nethept" in stats["datasets"]
    assert stats["counters"]["serving.requests"] > 0
    assert stats["cache"]["budget_bytes"] == 256 << 20


# ----------------------------------------------------------------------
# LRU eviction + re-warm under a tiny byte budget (own server: mutates cache)


def test_server_lru_evicts_and_rewarms_under_small_budget():
    handle = start_in_thread(
        ServingConfig(
            datasets=("nethept",),
            cache_bytes=100_000,  # fits ~two 1k-set RR pools, not four
            coalesce_ms=1.0,
        )
    )
    try:
        with handle.client() as client:
            first = client.topk(
                "nethept", "IC", "RIS", 3, params={"num_rr_sets": 1000}, seed=1
            )
            # Distinct seeds → distinct artifacts; evicts the first pool.
            for seed in (2, 3, 4):
                client.topk(
                    "nethept", "IC", "RIS", 3,
                    params={"num_rr_sets": 1000}, seed=seed,
                )
            stats = client.stats()
            assert stats["cache"]["evictions"] > 0
            assert stats["cache"]["total_bytes"] <= 100_000
            # Re-warm: evicted artifact rebuilds to the same answer.
            again = client.topk(
                "nethept", "IC", "RIS", 3, params={"num_rr_sets": 1000}, seed=1
            )
            assert not again["warm"]
            assert again["seeds"] == first["seeds"]
            rewarmed = client.topk(
                "nethept", "IC", "RIS", 3, params={"num_rr_sets": 1000}, seed=1
            )
            assert rewarmed["warm"] and rewarmed["seeds"] == first["seeds"]
    finally:
        handle.stop()


def test_server_shutdown_leaves_no_shm_residue():
    handle = start_in_thread(
        ServingConfig(datasets=("nethept",), coalesce_ms=1.0)
    )
    with handle.client() as client:
        client.topk("nethept", "IC", "RIS", 2, params={"num_rr_sets": 200})
        client.shutdown()
    handle.stop()
    assert not shm.attached_segments()
    if os.path.isdir("/dev/shm"):
        residue = [f for f in os.listdir("/dev/shm") if f.startswith("repro_shm")]
        assert residue == []

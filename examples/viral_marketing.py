"""Viral-marketing campaign planning with the Fig.-11b decision tree.

Scenario: a marketing team can give a free product to k influencers on a
YouTube-like network and wants the campaign that reaches the most users.
The environment constrains the choice of technique (deadline, memory), so
the example walks the paper's decision tree, runs the recommended
technique, and reports campaign reach and cost-effectiveness per seed.

Run with:  python examples/viral_marketing.py
"""

import time

import numpy as np

from repro import algorithms, datasets, diffusion
from repro.framework import recommend, run_with_budget


def plan_campaign(k: int, memory_constrained: bool) -> None:
    model = diffusion.WC  # adoption is easier for users with few influences
    graph = model.weighted(datasets.load("youtube"))

    choice = recommend(model.name, memory_constrained=memory_constrained)
    print(
        f"\nCampaign with k={k} influencers, "
        f"{'tight' if memory_constrained else 'ample'} memory "
        f"-> decision tree says: {choice}"
    )

    params = {
        "IMM": {"epsilon": 0.5, "rr_scale": 1.0},
        "EaSyIM": {"path_length": 3},
        "TIM+": {"epsilon": 0.5, "rr_scale": 1.0},
        "PMC": {"num_snapshots": 50},
    }[choice]
    algo = algorithms.make(choice, **params)

    started = time.perf_counter()
    record, __ = run_with_budget(
        algo, graph, k, model,
        rng=np.random.default_rng(0),
        time_limit_seconds=60.0,
        track_memory=True,
    )
    elapsed = time.perf_counter() - started
    if not record.ok:
        print(f"  {choice} violated its budget: {record.status}")
        return

    reach = diffusion.monte_carlo_spread(
        graph, record.seeds, model, r=1000, rng=np.random.default_rng(1)
    )
    print(f"  planning time : {elapsed:.2f}s "
          f"(peak memory {record.peak_memory_mb:.1f} MB)")
    print(f"  expected reach: {reach.mean:.0f} of {graph.n} users "
          f"({100 * reach.mean / graph.n:.1f}%)")
    print(f"  reach per seed: {reach.mean / k:.1f} users")

    # Sanity check against naively gifting the k most-followed users.
    # (Under WC, degree is a strong baseline — the paper's heuristics
    # discussion — so parity is expected; big losses would be a bug.)
    degree_seeds = algorithms.make("Degree").select(
        graph, k, model, rng=np.random.default_rng(2)
    ).seeds
    baseline = diffusion.monte_carlo_spread(
        graph, degree_seeds, model, r=1000, rng=np.random.default_rng(3)
    )
    lift = 100.0 * (reach.mean - baseline.mean) / baseline.mean
    print(f"  vs top-degree : {baseline.mean:.0f} users ({lift:+.1f}% difference)")


def main() -> None:
    for k in (10, 50):
        plan_campaign(k, memory_constrained=False)
    plan_campaign(25, memory_constrained=True)


if __name__ == "__main__":
    main()

"""The GREEDY hill-climbing algorithm of Kempe et al. (Alg. 2).

Iteratively adds the node with the largest estimated marginal gain
σ(S ∪ {v}) − σ(S).  Provides the (1 − 1/e − ε) guarantee of Theorem 2 but
is non-scalable: every iteration re-estimates the spread of every node
(the paper benchmarks CELF/CELF++ instead for exactly this reason).

Gains are served by a pluggable :class:`~repro.diffusion.oracle.SpreadOracle`
(``spread_oracle=None`` keeps the historical per-cascade Monte Carlo,
byte-identical under a fixed seed).  With the ``sketch`` backend, nodes
whose reach upper bound cannot beat the iteration's running best are
skipped without evaluation.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..diffusion.models import Dynamics, PropagationModel
from ..diffusion.simulation import DEFAULT_MC_SIMULATIONS
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm, SpreadOracleMixin

__all__ = ["Greedy"]


def _tele():
    # Lazy: algorithms are imported by the registry during framework
    # import, so a top-level framework import here would be circular.
    from ..framework.telemetry import current

    return current()


class Greedy(SpreadOracleMixin, IMAlgorithm):
    """Kempe et al.'s GREEDY with ``r`` MC simulations per estimate."""

    name = "GREEDY"
    supported = (Dynamics.IC, Dynamics.LT)
    external_parameter = "#MC Simulations"

    def __init__(
        self,
        mc_simulations: int = DEFAULT_MC_SIMULATIONS,
        spread_oracle: str | None = None,
        mc_batch: int | None = None,
        mc_workers: int | None = None,
        num_worlds: int | None = None,
        sketch_k: int = 8,
    ) -> None:
        self._init_oracle(
            mc_simulations, spread_oracle, mc_batch, mc_workers, num_worlds, sketch_k
        )

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        oracle, cache = self._build_oracle(graph, model, rng, budget)
        tele = _tele()
        seeds: list[int] = []
        in_seed = np.zeros(graph.n, dtype=bool)
        lookups: list[int] = []
        bound_skips = 0
        with tele.span("greedy.hill_climb"):
            for __ in range(k):
                best_v, best_gain = -1, -np.inf
                before = cache.misses
                for v in range(graph.n):
                    if in_seed[v]:
                        continue
                    if oracle.provides_bounds and oracle.gain_bound(v) <= best_gain:
                        bound_skips += 1
                        continue
                    self._tick(budget)
                    gain = cache.gain(oracle, v)
                    if gain > best_gain:
                        best_gain, best_v = gain, v
                seeds.append(best_v)
                in_seed[best_v] = True
                oracle.commit(best_v, best_gain)
                # True evaluations this iteration (memo hits don't count) —
                # the M1 "node lookups" metric of Appendix C.
                lookups.append(cache.misses - before)
        tele.count("greedy.iterations", len(seeds))
        return seeds, {
            "node_lookups_per_iteration": lookups,
            "estimated_spread": oracle.committed_sigma,
            "bound_skips": bound_skips,
            **self._oracle_extras(oracle, cache),
        }

"""Tests for the Alg.-3 runner, convergence and the tuning procedure."""

import numpy as np
import pytest

from repro.diffusion.models import IC, WC
from repro.diffusion.simulation import SpreadEstimate
from repro.framework.convergence import converged, mc_convergence_study
from repro.framework.runner import IMFramework
from repro.framework.tuning import tune_parameter
from repro.graph.digraph import DiGraph


@pytest.fixture
def graph():
    rng = np.random.default_rng(0)
    g = DiGraph.from_arrays(
        80, rng.integers(0, 80, 320), rng.integers(0, 80, 320)
    )
    return WC.weighted(g)


class TestConverged:
    def test_within_band(self):
        best = SpreadEstimate(100.0, 10.0, 1000)
        assert converged(best, SpreadEstimate(95.0, 9.0, 1000))

    def test_outside_band(self):
        best = SpreadEstimate(100.0, 2.0, 1000)
        assert not converged(best, SpreadEstimate(90.0, 2.0, 1000))

    def test_band_width_configurable(self):
        best = SpreadEstimate(100.0, 5.0, 1000)
        candidate = SpreadEstimate(92.0, 5.0, 1000)
        assert not converged(best, candidate, tolerance_std=1.0)
        assert converged(best, candidate, tolerance_std=2.0)


class TestIMFramework:
    def test_evaluate_decouples_spread(self, graph, rng):
        from repro.algorithms.heuristics import Degree

        fw = IMFramework(graph, WC, mc_simulations=200)
        record = fw.evaluate(Degree(), 5, rng=rng)
        assert record.ok
        assert record.spread is not None
        assert record.spread >= 5.0

    def test_run_walks_spectrum(self, graph, rng):
        fw = IMFramework(graph, WC, mc_simulations=200)
        spectrum = [
            {"epsilon": 0.1, "rr_scale": 0.02},
            {"epsilon": 0.5, "rr_scale": 0.02},
        ]
        trace = fw.run("IMM", 5, spectrum, rng=rng)
        assert len(trace.records) >= 1
        assert trace.chosen_parameters in spectrum
        assert trace.chosen.ok

    def test_run_stops_on_degradation(self, graph, rng):
        fw = IMFramework(graph, WC, mc_simulations=300, tolerance_std=0.01)
        # EaSyIM at path_length 4 vs 1: if quality degrades past the tight
        # band, the framework keeps the earlier parameter.
        spectrum = [{"path_length": 4}, {"path_length": 1}]
        trace = fw.run("EaSyIM", 5, spectrum, rng=rng)
        assert trace.chosen_index in (0, 1)
        assert trace.chosen_parameters == spectrum[trace.chosen_index]

    def test_run_without_spectrum(self, graph, rng):
        fw = IMFramework(graph, WC, mc_simulations=100)
        trace = fw.run("Degree", 3, rng=rng)
        assert trace.chosen_parameters == {}

    def test_budget_enforced(self, graph, rng):
        fw = IMFramework(
            graph, WC, mc_simulations=50, time_limit_seconds=0.02
        )
        trace = fw.run("CELF", 5, [{"mc_simulations": 5000}], rng=rng)
        assert trace.records[0].status == "DNF"


class TestTuning:
    def test_procedure_returns_optimal(self, graph, rng):
        result = tune_parameter(
            "EaSyIM", "path_length", [4, 3, 2, 1], graph, WC, 5,
            mc_simulations=200, rng=rng,
        )
        assert result.best_value in (1, 2, 3, 4)
        assert result.optimal_value in (1, 2, 3, 4)
        assert len(result.points) == 4
        assert not np.isnan(result.mu_star)

    def test_optimal_is_cheapest_within_band(self, graph, rng):
        result = tune_parameter(
            "IMM", "epsilon", [0.1, 0.5, 0.9], graph, WC, 5,
            mc_simulations=200, rng=rng, fixed_params={"rr_scale": 0.02},
        )
        eligible = [
            p for p in result.points
            if p.spread_mean >= result.mu_star - result.sd_star
        ]
        cheapest = min(eligible, key=lambda p: p.elapsed_seconds)
        assert result.optimal_value == cheapest.value

    def test_table_renders(self, graph, rng):
        result = tune_parameter(
            "EaSyIM", "path_length", [2, 1], graph, WC, 3,
            mc_simulations=100, rng=rng,
        )
        text = result.table()
        assert "EaSyIM" in text
        assert "X*" in text

    def test_all_dnf_returns_empty_optimum(self, graph, rng):
        result = tune_parameter(
            "CELF", "mc_simulations", [5000], graph, WC, 5,
            mc_simulations=50, rng=rng, time_limit_seconds=0.02,
        )
        assert result.optimal_value is None
        assert result.points[0].status == "DNF"


class TestMCConvergence:
    def test_deviation_shrinks_with_r(self, graph, rng):
        points = mc_convergence_study(
            graph, [0, 1, 2], WC,
            simulation_counts=(20, 2000), repeats=6, rng=rng,
        )
        assert points[0].simulations == 20
        assert points[-1].std_of_mean < points[0].std_of_mean

    def test_mean_stable(self, graph, rng):
        points = mc_convergence_study(
            graph, [0, 1], WC, simulation_counts=(500, 1000), repeats=4, rng=rng
        )
        assert points[0].mean == pytest.approx(points[1].mean, rel=0.15)

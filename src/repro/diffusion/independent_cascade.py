"""Independent Cascade dynamics (Definition 4).

Time unfolds in discrete steps; each newly activated node ``u`` gets one
independent attempt to activate each out-neighbour ``v`` with probability
``W(u, v)``.  The cascade ends when a step activates nobody (Alg. 1).
"""

from __future__ import annotations

import numpy as np

from ..graph.digraph import DiGraph
from ._frontier import gather_edges

__all__ = ["simulate_ic", "simulate_ic_times"]


def simulate_ic(
    graph: DiGraph,
    seeds: np.ndarray | list[int],
    rng: np.random.Generator,
) -> np.ndarray:
    """Run one IC cascade from ``seeds``; return the active-node mask Va.

    Each edge out of a newly active node is tried exactly once, so a node
    that fails to activate a neighbour never retries — per Definition 4.
    """
    seeds = np.asarray(seeds, dtype=np.int64)
    active = np.zeros(graph.n, dtype=bool)
    if seeds.size == 0:
        return active
    active[seeds] = True
    frontier = np.unique(seeds)
    out_dst, out_w, out_ptr = graph.out_dst, graph.out_w, graph.out_ptr
    while frontier.size:
        eidx = gather_edges(out_ptr, frontier)
        if eidx.size == 0:
            break
        dst = out_dst[eidx]
        coins = rng.random(eidx.shape[0])
        hit = dst[(coins < out_w[eidx]) & ~active[dst]]
        if hit.size == 0:
            break
        frontier = np.unique(hit)
        active[frontier] = True
    return active


def simulate_ic_times(
    graph: DiGraph,
    seeds: np.ndarray | list[int],
    rng: np.random.Generator,
) -> np.ndarray:
    """One IC cascade recording *when* each node activated.

    Returns the activation time step per node (0 for seeds, -1 for nodes
    never activated).  Used by the influence-probability learning substrate
    (:mod:`repro.learning`), which needs temporally ordered action logs.
    """
    seeds = np.asarray(seeds, dtype=np.int64)
    times = np.full(graph.n, -1, dtype=np.int64)
    if seeds.size == 0:
        return times
    times[seeds] = 0
    frontier = np.unique(seeds)
    out_dst, out_w, out_ptr = graph.out_dst, graph.out_w, graph.out_ptr
    step = 0
    while frontier.size:
        step += 1
        eidx = gather_edges(out_ptr, frontier)
        if eidx.size == 0:
            break
        dst = out_dst[eidx]
        coins = rng.random(eidx.shape[0])
        hit = dst[(coins < out_w[eidx]) & (times[dst] < 0)]
        if hit.size == 0:
            break
        frontier = np.unique(hit)
        times[frontier] = step
    return times

"""Table 5 — diffusion models supported by each benchmarked algorithm.

Rendered straight from the registry, and cross-checked against each
algorithm's declared capabilities (a registry/implementation mismatch
would silently skew every other bench).
"""

from repro.algorithms import registry, support_matrix
from repro.diffusion.models import Dynamics

from _common import emit, once

PAPER_TABLE5 = {
    "CELF": (True, True),
    "CELF++": (True, True),
    "EaSyIM": (True, True),
    "IMRank1": (True, False),
    "IMRank2": (True, False),
    "IRIE": (True, False),
    "PMC": (True, False),
    "StaticGreedy": (True, False),
    "TIM+": (True, True),
    "IMM": (True, True),
    "SIMPATH": (False, True),
    "LDAG": (False, True),
}


def test_table5_support_matrix(benchmark):
    text = once(benchmark, support_matrix)
    emit("table5_support_matrix", text)
    for name, (ic, lt) in PAPER_TABLE5.items():
        assert registry.supports(name, Dynamics.IC) == ic, name
        assert registry.supports(name, Dynamics.LT) == lt, name

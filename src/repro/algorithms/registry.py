"""Algorithm registry and the model-support matrix of Table 5.

Central place mapping the paper's algorithm names to classes, with
factories producing instances at the Table-2 optimal parameter values for
a given model.
"""

from __future__ import annotations

import inspect
from typing import Callable

from ..diffusion.models import Dynamics, PropagationModel
from .base import IMAlgorithm
from .celf import CELF, CELFpp
from .easyim import EaSyIM
from .greedy import Greedy
from .heuristics import Degree, DegreeDiscount, PageRankHeuristic, SingleDiscount
from .imm import IMM
from .imrank import IMRank
from .irie import IRIE
from .ldag import LDAG
from .pmc import PMC
from .pmia import PMIA
from .ris import RIS
from .simpath import SIMPATH
from .skim import SKIM
from .ssa import DSSA, SSA
from .static_greedy import StaticGreedy
from .tim import TIMPlus

__all__ = [
    "ALGORITHMS",
    "BENCHMARKED",
    "OPTIMAL_PARAMETERS",
    "accepts_parameter",
    "make",
    "make_tuned",
    "supports",
    "support_matrix",
    "optimal_parameters",
]

#: Name -> zero-argument factory with library defaults.
ALGORITHMS: dict[str, Callable[[], IMAlgorithm]] = {
    "GREEDY": Greedy,
    "CELF": CELF,
    "CELF++": CELFpp,
    "RIS": RIS,
    "TIM+": TIMPlus,
    "IMM": IMM,
    "StaticGreedy": StaticGreedy,
    "PMC": PMC,
    "LDAG": LDAG,
    "SIMPATH": SIMPATH,
    "IRIE": IRIE,
    "EaSyIM": EaSyIM,
    "IMRank1": lambda: IMRank(l=1),
    "IMRank2": lambda: IMRank(l=2),
    "PMIA": PMIA,
    "SKIM": SKIM,
    "SSA": SSA,
    "D-SSA": DSSA,
    "Degree": Degree,
    "SingleDiscount": SingleDiscount,
    "DegreeDiscount": DegreeDiscount,
    "PageRank": PageRankHeuristic,
}

#: The eleven techniques of the benchmarking study (Fig. 3), in the order
#: the paper lists them (IMRank counted once, run at l = 1 and l = 2).
BENCHMARKED: tuple[str, ...] = (
    "CELF",
    "CELF++",
    "TIM+",
    "IMM",
    "StaticGreedy",
    "PMC",
    "LDAG",
    "SIMPATH",
    "IRIE",
    "EaSyIM",
    "IMRank1",
    "IMRank2",
)

#: Table 2 — optimal external parameter values per model, as determined by
#: the paper's tuning procedure (re-derivable with repro.framework.tuning).
#: EaSyIM's knob here is the path length ℓ (see easyim.py's docstring).
OPTIMAL_PARAMETERS: dict[str, dict[str, dict[str, float]]] = {
    "CELF": {"IC": {"mc_simulations": 10000}, "WC": {"mc_simulations": 10000}, "LT": {"mc_simulations": 10000}},
    "CELF++": {"IC": {"mc_simulations": 7500}, "WC": {"mc_simulations": 7500}, "LT": {"mc_simulations": 10000}},
    "EaSyIM": {"IC": {"path_length": 4}, "WC": {"path_length": 4}, "LT": {"path_length": 3}},
    "IMRank1": {"IC": {"scoring_rounds": 10}, "WC": {"scoring_rounds": 10}},
    "IMRank2": {"IC": {"scoring_rounds": 10}, "WC": {"scoring_rounds": 10}},
    "PMC": {"IC": {"num_snapshots": 200}, "WC": {"num_snapshots": 250}},
    "StaticGreedy": {"IC": {"num_snapshots": 250}, "WC": {"num_snapshots": 250}},
    "TIM+": {"IC": {"epsilon": 0.05}, "WC": {"epsilon": 0.15}, "LT": {"epsilon": 0.35}},
    "IMM": {"IC": {"epsilon": 0.05}, "WC": {"epsilon": 0.1}, "LT": {"epsilon": 0.1}},
}


def make(name: str, **params) -> IMAlgorithm:
    """Instantiate an algorithm by paper name, overriding any parameters."""
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; options: {', '.join(ALGORITHMS)}"
        ) from None
    if isinstance(factory, type):
        return factory(**params)
    instance = factory()
    if params:
        if isinstance(instance, IMRank):
            # The IMRank1/IMRank2 factories carry a fixed l.
            merged: dict = {"l": instance.l}
            merged.update(params)
            return IMRank(**merged)
        return type(instance)(**params)
    return instance


def accepts_parameter(name: str, parameter: str) -> bool:
    """Whether ``name``'s constructor takes ``parameter``.

    Used to inject cross-cutting knobs (e.g. ``rr_workers``) only into
    the techniques that understand them.
    """
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        return False
    cls = factory if isinstance(factory, type) else type(factory())
    return parameter in inspect.signature(cls.__init__).parameters


def optimal_parameters(name: str, model: PropagationModel | str) -> dict[str, float]:
    """Table-2 parameter values for (algorithm, model); empty if none."""
    model_name = model if isinstance(model, str) else model.name
    return dict(OPTIMAL_PARAMETERS.get(name, {}).get(model_name, {}))


def make_tuned(name: str, model: PropagationModel | str, **overrides) -> IMAlgorithm:
    """Instantiate at the Table-2 optimal parameters for ``model``."""
    params = optimal_parameters(name, model)
    params.update(overrides)
    return make(name, **params)


def supports(name: str, model: PropagationModel | Dynamics) -> bool:
    """Whether ``name`` runs under ``model`` (Table 5)."""
    return make(name).supports(model)


def support_matrix(names: tuple[str, ...] = BENCHMARKED) -> str:
    """Render Table 5: diffusion models supported by each algorithm."""
    lines = [f"{'Algorithm':<14} {'Independent Cascade':<20} {'Linear Threshold':<16}"]
    lines.append("-" * len(lines[0]))
    for name in names:
        algo = make(name)
        ic = "yes" if Dynamics.IC in algo.supported else ""
        lt = "yes" if Dynamics.LT in algo.supported else ""
        lines.append(f"{name:<14} {ic:<20} {lt:<16}")
    return "\n".join(lines)

"""Tests for reverse-reachable set sampling and greedy max-cover."""

import numpy as np
import pytest

from repro.diffusion.models import Dynamics
from repro.diffusion.rrsets import RRCollection, greedy_max_cover, random_rr_set
from repro.graph.digraph import DiGraph
from tests.oracles import exact_ic_spread, exact_lt_spread


class TestRandomRRSet:
    def test_root_always_included(self, diamond_graph, rng):
        nodes, __ = random_rr_set(diamond_graph, Dynamics.IC, rng, root=3)
        assert 3 in nodes.tolist()

    def test_unit_weights_reach_all_ancestors(self, rng):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[1.0, 1.0])
        nodes, __ = random_rr_set(g, Dynamics.IC, rng, root=2)
        assert sorted(nodes.tolist()) == [0, 1, 2]

    def test_zero_weights_stay_at_root(self, rng):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.0, 0.0])
        nodes, __ = random_rr_set(g, Dynamics.IC, rng, root=2)
        assert nodes.tolist() == [2]

    def test_width_counts_in_edges(self, rng):
        g = DiGraph.from_edges(4, [(0, 3), (1, 3), (2, 3)], weights=[0.0, 0.0, 0.0])
        __, width = random_rr_set(g, Dynamics.IC, rng, root=3)
        assert width == 3

    def test_lt_rr_is_a_path(self, rng):
        # Under LT the RR set is a reverse walk: its size never exceeds
        # the longest simple path + 1 and each step has one parent.
        g = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)], weights=[1.0, 1.0, 1.0])
        nodes, __ = random_rr_set(g, Dynamics.LT, rng, root=3)
        assert sorted(nodes.tolist()) == [0, 1, 2, 3]

    def test_lt_residual_stops_walk(self, rng):
        g = DiGraph.from_edges(2, [(0, 1)], weights=[0.4])
        sizes = [
            random_rr_set(g, Dynamics.LT, rng, root=1)[0].size for __ in range(4000)
        ]
        assert np.mean([s == 2 for s in sizes]) == pytest.approx(0.4, abs=0.03)

    def test_empty_graph_raises(self, rng):
        with pytest.raises(ValueError):
            random_rr_set(DiGraph.from_edges(0, []), Dynamics.IC, rng)


class TestUnbiasedness:
    """Borgs et al.'s identity: P[S hits RR(v*)] = σ(S)/n for uniform v*."""

    @pytest.mark.parametrize("dynamics,oracle", [
        (Dynamics.IC, exact_ic_spread),
        (Dynamics.LT, exact_lt_spread),
    ])
    def test_coverage_matches_exact_spread(self, diamond_graph, rng, dynamics, oracle):
        if dynamics is Dynamics.LT:
            # Scale weights so incoming sums stay <= 1.
            graph = diamond_graph
        else:
            graph = diamond_graph
        seeds = [0]
        pool = RRCollection(graph.n)
        pool.extend(graph, dynamics, 30000, rng)
        estimate = pool.coverage_fraction(seeds) * graph.n
        exact = oracle(graph, seeds)
        assert estimate == pytest.approx(exact, abs=0.08)

    def test_multi_seed_coverage(self, diamond_graph, rng):
        pool = RRCollection(diamond_graph.n)
        pool.extend(diamond_graph, Dynamics.IC, 30000, rng)
        estimate = pool.coverage_fraction([1, 2]) * diamond_graph.n
        exact = exact_ic_spread(diamond_graph, [1, 2])
        assert estimate == pytest.approx(exact, abs=0.08)


class TestRRCollection:
    def test_inverted_index(self):
        pool = RRCollection(4)
        pool.add(np.array([0, 1]))
        pool.add(np.array([1, 2]))
        assert pool.member_of[1] == [0, 1]
        assert pool.member_of[3] == []
        assert len(pool) == 2

    def test_total_width_accumulates(self):
        pool = RRCollection(3)
        pool.add(np.array([0]), width=5)
        pool.add(np.array([1]), width=7)
        assert pool.total_width == 12

    def test_coverage_fraction_empty(self):
        assert RRCollection(3).coverage_fraction([0]) == 0.0


class TestGreedyMaxCover:
    def test_picks_most_frequent_node(self):
        pool = RRCollection(4)
        pool.add(np.array([0, 1]))
        pool.add(np.array([1, 2]))
        pool.add(np.array([1]))
        seeds, coverage = greedy_max_cover(pool, 1)
        assert seeds == [1]
        assert coverage == 1.0

    def test_second_seed_is_marginal_best(self):
        pool = RRCollection(5)
        pool.add(np.array([0, 1]))
        pool.add(np.array([0, 1]))
        pool.add(np.array([2]))
        pool.add(np.array([3]))
        pool.add(np.array([3]))
        seeds, coverage = greedy_max_cover(pool, 2)
        # 0 or 1 covers two sets; then 3 covers two more (2 covers one).
        assert seeds[0] in (0, 1)
        assert seeds[1] == 3
        assert coverage == pytest.approx(4 / 5)

    def test_pads_to_k_when_cover_exhausted(self):
        pool = RRCollection(5)
        pool.add(np.array([0]))
        seeds, coverage = greedy_max_cover(pool, 3)
        assert len(seeds) == 3
        assert seeds[0] == 0
        assert coverage == 1.0

    def test_k_zero(self):
        pool = RRCollection(3)
        pool.add(np.array([0]))
        assert greedy_max_cover(pool, 0) == ([], 0.0)

    def test_no_duplicate_seeds(self):
        pool = RRCollection(4)
        for __ in range(5):
            pool.add(np.array([2]))
        seeds, __ = greedy_max_cover(pool, 3)
        assert len(set(seeds)) == 3

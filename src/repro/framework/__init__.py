"""The benchmarking framework of Fig. 2 — the paper's core contribution."""

from .asciiplot import line_chart
from .convergence import MCConvergencePoint, converged, mc_convergence_study
from .experiments import (
    SweepConfig,
    head_to_head,
    memory_sweep,
    pillar_scores,
    quality_sweep,
)
from .metrics import (
    STATUS_CRASHED,
    STATUS_DNF,
    STATUS_OK,
    Measurement,
    ResourceBudget,
    RunRecord,
    measure,
    run_with_budget,
)
from .report import EXPERIMENT_ORDER, collect_results, render_report
from .results import load_records, render_series, render_table, save_records
from .runner import FrameworkTrace, IMFramework
from .skyline import PillarScores, classify_pillars, recommend, skyline
from .tuning import SweepPoint, TuningResult, tune_parameter

__all__ = [
    "line_chart",
    "SweepConfig",
    "head_to_head",
    "memory_sweep",
    "pillar_scores",
    "quality_sweep",
    "MCConvergencePoint",
    "converged",
    "mc_convergence_study",
    "STATUS_CRASHED",
    "STATUS_DNF",
    "STATUS_OK",
    "Measurement",
    "ResourceBudget",
    "RunRecord",
    "measure",
    "run_with_budget",
    "EXPERIMENT_ORDER",
    "collect_results",
    "render_report",
    "load_records",
    "render_series",
    "render_table",
    "save_records",
    "FrameworkTrace",
    "IMFramework",
    "PillarScores",
    "classify_pillars",
    "recommend",
    "skyline",
    "SweepPoint",
    "TuningResult",
    "tune_parameter",
]

"""Graph utilities: components, degree summaries, subgraph sampling.

Support routines for dataset analysis (the "network properties" the paper
cites as the driver of performance variation, Sec. 2.1) and for carving
benchmark-sized subgraphs out of larger inputs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .digraph import DiGraph

__all__ = [
    "weakly_connected_components",
    "largest_component",
    "DegreeSummary",
    "degree_summary",
    "induced_subgraph",
    "sample_nodes_subgraph",
]


def weakly_connected_components(graph: DiGraph) -> np.ndarray:
    """Component id per node, ignoring edge direction."""
    comp = np.full(graph.n, -1, dtype=np.int64)
    next_comp = 0
    for start in range(graph.n):
        if comp[start] >= 0:
            continue
        comp[start] = next_comp
        queue: deque[int] = deque([start])
        while queue:
            u = queue.popleft()
            out_nodes, __ = graph.out_neighbors(u)
            in_nodes, __w = graph.in_neighbors(u)
            for v in list(out_nodes) + list(in_nodes):
                v = int(v)
                if comp[v] < 0:
                    comp[v] = next_comp
                    queue.append(v)
        next_comp += 1
    return comp


def largest_component(graph: DiGraph) -> DiGraph:
    """The induced subgraph of the largest weakly connected component."""
    if graph.n == 0:
        return graph
    comp = weakly_connected_components(graph)
    winner = int(np.bincount(comp).argmax())
    return induced_subgraph(graph, np.nonzero(comp == winner)[0])


@dataclass(frozen=True)
class DegreeSummary:
    """Degree-distribution snapshot of one graph."""

    mean_out: float
    max_out: int
    median_out: float
    gini_out: float  # inequality of out-degrees: 0 regular, ->1 hub-heavy


def degree_summary(graph: DiGraph) -> DegreeSummary:
    """Mean/max/median/Gini of the out-degree distribution."""
    if graph.n == 0:
        return DegreeSummary(0.0, 0, 0.0, 0.0)
    deg = np.sort(graph.out_degree().astype(np.float64))
    total = deg.sum()
    if total == 0:
        gini = 0.0
    else:
        n = deg.shape[0]
        ranks = np.arange(1, n + 1)
        gini = float((2 * ranks - n - 1).dot(deg) / (n * total))
    return DegreeSummary(
        mean_out=float(deg.mean()),
        max_out=int(deg.max()),
        median_out=float(np.median(deg)),
        gini_out=gini,
    )


def induced_subgraph(graph: DiGraph, nodes: np.ndarray) -> DiGraph:
    """Subgraph on ``nodes`` with ids remapped to 0..len(nodes)-1.

    Preserves edge weights; node order in ``nodes`` defines the new ids.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    if np.unique(nodes).shape[0] != nodes.shape[0]:
        raise ValueError("nodes must be unique")
    remap = np.full(graph.n, -1, dtype=np.int64)
    remap[nodes] = np.arange(nodes.shape[0])
    src = remap[graph.edge_src]
    dst = remap[graph.edge_dst]
    keep = (src >= 0) & (dst >= 0)
    return DiGraph.from_arrays(
        nodes.shape[0], src[keep], dst[keep], graph.out_w[keep], dedup=False
    )


def sample_nodes_subgraph(
    graph: DiGraph, size: int, rng: np.random.Generator
) -> DiGraph:
    """Induced subgraph on a uniform sample of ``size`` nodes."""
    if not 0 <= size <= graph.n:
        raise ValueError("size out of range")
    nodes = rng.choice(graph.n, size=size, replace=False)
    return induced_subgraph(graph, np.sort(nodes))

"""Tests for PMIA: arborescence construction and tree-exact IC greedy."""

import numpy as np
import pytest

from repro.algorithms.pmia import PMIA, build_miia
from repro.diffusion.models import IC, LT
from repro.diffusion.simulation import monte_carlo_spread
from repro.graph.digraph import DiGraph
from tests.oracles import exact_ic_spread


@pytest.fixture
def chain():
    return DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.5, 0.4])


class TestBuildMIIA:
    def test_contains_ancestors_above_threshold(self, chain):
        arb = build_miia(chain, 2, theta=0.01)
        assert arb.nodes == {0, 1, 2}
        assert arb.parent[1] == 2
        assert arb.parent[0] == 1

    def test_threshold_prunes(self, chain):
        arb = build_miia(chain, 2, theta=0.3)
        assert arb.nodes == {1, 2}  # path weight 0.2 < 0.3 excludes 0

    def test_best_path_parent(self):
        # Two routes into 2: direct weak edge vs strong two-hop.
        g = DiGraph.from_edges(
            3, [(0, 2), (0, 1), (1, 2)], weights=[0.1, 0.9, 0.9]
        )
        arb = build_miia(g, 2, theta=0.01)
        assert arb.parent[0] == 1  # via the 0.81 path, not the 0.1 edge

    def test_blocked_interior_nodes(self, chain):
        blocked = np.array([False, True, False])
        arb = build_miia(chain, 2, theta=0.01, blocked=blocked)
        # 1 itself enters (as a frontier node) but conducts nothing, so 0
        # is out of the arborescence.
        assert 1 in arb.nodes
        assert 0 not in arb.nodes

    def test_order_is_leaves_first(self, chain):
        arb = build_miia(chain, 2, theta=0.01)
        position = {u: i for i, u in enumerate(arb.order)}
        for u, x in arb.parent.items():
            assert position[u] < position[x]


class TestTreeDP:
    def test_forward_ap_exact_on_chain(self, chain):
        arb = build_miia(chain, 2, theta=0.01)
        in_seed = np.zeros(3, dtype=bool)
        in_seed[0] = True
        PMIA._forward_ap(arb, in_seed)
        assert arb.ap[0] == 1.0
        assert arb.ap[1] == pytest.approx(0.5)
        assert arb.ap[2] == pytest.approx(0.2)

    def test_forward_ap_two_parents(self):
        g = DiGraph.from_edges(3, [(0, 2), (1, 2)], weights=[0.5, 0.5])
        arb = build_miia(g, 2, theta=0.01)
        in_seed = np.array([True, True, False])
        PMIA._forward_ap(arb, in_seed)
        # 1 - (1-0.5)(1-0.5) = 0.75 — exact IC on the tree.
        assert arb.ap[2] == pytest.approx(0.75)

    def test_backward_alpha_chain(self, chain):
        arb = build_miia(chain, 2, theta=0.01)
        in_seed = np.zeros(3, dtype=bool)
        PMIA._forward_ap(arb, in_seed)
        PMIA._backward_alpha(arb, in_seed)
        assert arb.alpha[2] == 1.0
        assert arb.alpha[1] == pytest.approx(0.4)
        assert arb.alpha[0] == pytest.approx(0.2)

    def test_alpha_sibling_discount(self):
        # Root 2 with children 0 (ap=1 seed) and 1: alpha(1) is discounted
        # by the chance 0 already activates 2.
        g = DiGraph.from_edges(3, [(0, 2), (1, 2)], weights=[0.5, 0.5])
        arb = build_miia(g, 2, theta=0.01)
        in_seed = np.array([True, False, False])
        PMIA._forward_ap(arb, in_seed)
        PMIA._backward_alpha(arb, in_seed)
        assert arb.alpha[1] == pytest.approx(0.5 * (1 - 0.5))

    def test_alpha_blocked_by_seed_root(self, chain):
        arb = build_miia(chain, 2, theta=0.01)
        in_seed = np.array([False, False, True])
        PMIA._backward_alpha(arb, in_seed)
        assert all(a == 0.0 for a in arb.alpha.values())


class TestSelection:
    def test_first_seed_is_exact_argmax_on_tree(self, rng):
        g = DiGraph.from_edges(
            6, [(0, 1), (0, 2), (1, 3), (2, 4), (5, 4)],
            weights=[0.5, 0.5, 0.5, 0.5, 0.5],
        )
        res = PMIA().select(g, 1, IC, rng=rng)
        spreads = {v: exact_ic_spread(g, [v]) for v in range(6)}
        assert res.seeds[0] == max(spreads, key=spreads.get)

    def test_rejects_lt(self, chain, rng):
        with pytest.raises(ValueError):
            PMIA().select(chain, 1, LT, rng=rng)

    def test_prefix_exclusion_diversifies(self, rng):
        # Chain 0 -> 1 -> 2 plus an island 3 -> 4: after seeding 0, the
        # island must win the second slot (1 and 2 are mostly covered).
        g = DiGraph.from_edges(
            5, [(0, 1), (1, 2), (3, 4)], weights=[0.9, 0.9, 0.9]
        )
        res = PMIA().select(g, 2, IC, rng=rng)
        assert res.seeds[0] == 0
        assert res.seeds[1] == 3

    def test_quality_not_worse_than_degree(self, rng):
        trial = np.random.default_rng(5)
        g = IC.weighted(DiGraph.from_arrays(
            40, trial.integers(0, 40, 120), trial.integers(0, 40, 120)
        ))
        res = PMIA().select(g, 3, IC, rng=rng)
        got = monte_carlo_spread(g, res.seeds, IC, r=3000, rng=rng).mean
        order = np.argsort(-g.out_degree())[:3]
        base = monte_carlo_spread(g, list(order), IC, r=3000, rng=rng).mean
        assert got >= 0.9 * base

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            PMIA(theta=0.0)

    def test_extras(self, chain, rng):
        res = PMIA().select(chain, 1, IC, rng=rng)
        assert res.extras["avg_arborescence_size"] >= 1.0

"""Hardened execution: process isolation, preemptive budgets, fault injection.

The cooperative budget of :mod:`repro.framework.metrics` reproduces the
paper's DNF/Crashed vocabulary (Table 3) only for algorithms that politely
poll ``budget.check()`` from their inner loops.  A hung loop, a deep
recursion (SimPath's known failure mode, Table 4), or a single unguarded
allocation can still take down a multi-hour sweep.  This module closes
that gap:

* :class:`IsolatedExecutor` runs one seed-selection call in a spawned
  subprocess.  The parent enforces a *preemptive* wall-clock deadline —
  the child is killed and the cell recorded as ``DNF`` whether or not it
  ever checked its budget — and the child installs an address-space
  ceiling via ``resource.setrlimit(RLIMIT_AS)`` where the platform allows
  it, so an over-allocation surfaces as ``MemoryError`` → ``CRASHED``
  instead of taking the machine down.  Results travel back over a pipe as
  plain-dict :class:`~repro.framework.metrics.RunRecord` payloads.  With
  ``enabled=False`` (or on platforms without ``multiprocessing``) the
  executor falls back to the cooperative in-process path.
* A widened failure taxonomy — ``FAILED`` (unexpected exception, full
  traceback captured in ``extras["failure"]``) and ``KILLED`` (the worker
  died without reporting: hard kill, segfault, OOM-killer) — so one bad
  cell never aborts a sweep.
* :class:`RetryPolicy` re-runs transient failures a bounded number of
  times, each attempt on a deterministically derived child RNG
  (:func:`derive_rng`), so retried cells stay reproducible.
* :class:`FaultInjector` wraps any :class:`~repro.algorithms.base.IMAlgorithm`
  and injects hangs, OOM-style allocations, raises, or hard exits — the
  test harness that proves every enforcement path end-to-end.

Checkpoint/resume for sweeps lives in :mod:`repro.framework.results`
(:class:`~repro.framework.results.CheckpointJournal`); the runner and the
benchmark helpers consult it so a killed sweep re-runs only missing cells.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
import time
import traceback
from dataclasses import asdict, dataclass
from typing import Any

import numpy as np

from ..algorithms.base import Budget, IMAlgorithm, SeedSelectionResult
from ..diffusion.models import PropagationModel
from ..graph.digraph import DiGraph
from .metrics import (
    STATUS_CRASHED,
    STATUS_DNF,
    STATUS_FAILED,
    STATUS_KILLED,
    RunRecord,
    run_with_budget,
)
from .pool import pool_retries_env, shards_env
from .results import _jsonable
from .telemetry import Telemetry

__all__ = [
    "IsolationConfig",
    "IsolatedExecutor",
    "RetryPolicy",
    "FaultInjector",
    "execute_cell",
    "derive_rng",
    "isolation_supported",
]


# ----------------------------------------------------------------------
# Deterministic RNG derivation

def derive_rng(rng: np.random.Generator, salt: int) -> np.random.Generator:
    """Child generator derived from ``rng``'s seed sequence and ``salt``.

    Salting the spawn key (instead of calling ``rng.spawn``) keeps the
    derivation stateless: the same (parent, salt) pair always yields the
    same child, no matter how many children were derived before — the
    property retry-with-reseed and per-pass spectrum RNGs rely on.
    Parent state is never consumed unless the generator carries no seed
    sequence (exotic bit generators), where we fall back to drawing one
    integer from the parent.
    """
    bitgen = getattr(rng, "bit_generator", None)
    seed_seq = getattr(bitgen, "seed_seq", None)
    if isinstance(seed_seq, np.random.SeedSequence):
        child = np.random.SeedSequence(
            entropy=seed_seq.entropy,
            spawn_key=(*seed_seq.spawn_key, int(salt)),
        )
        return np.random.default_rng(child)
    return np.random.default_rng(int(rng.integers(0, 2**63)))


# ----------------------------------------------------------------------
# Configuration

def isolation_supported(start_method: str | None = None) -> bool:
    """Whether subprocess isolation can run here (and via ``start_method``)."""
    try:
        methods = mp.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False
    if start_method is not None:
        return start_method in methods
    return bool(methods)


def _default_start_method() -> str:
    methods = mp.get_all_start_methods()
    # fork is strongly preferred: the child inherits graph/model/algorithm
    # objects without pickling (closures and lambda weight schemes included).
    return "fork" if "fork" in methods else methods[0]


@dataclass(frozen=True)
class IsolationConfig:
    """How one cell is executed.

    ``enabled=False`` keeps the cooperative in-process path (same limits,
    tracemalloc-based memory ceiling); ``enabled=True`` adds the
    preemptive parent-side deadline and the child-side rlimit ceiling.
    """

    enabled: bool = True
    time_limit_seconds: float | None = None
    memory_limit_mb: float | None = None
    track_memory: bool = False
    #: Collect per-phase spans and counters into ``extras["telemetry"]``.
    #: Under isolation the *child* owns the collecting handle and its
    #: snapshot rides home inside the plain-dict record payload, so spans
    #: survive the subprocess boundary with no extra IPC.
    telemetry: bool = False
    #: Seconds to wait after SIGTERM before escalating to SIGKILL, and for
    #: a reporting child to exit after delivering its payload.
    grace_seconds: float = 2.0
    #: multiprocessing start method; None picks fork where available.
    start_method: str | None = None
    #: Per-chunk retry budget for the resilient worker pool any engine
    #: opens inside this cell (``None`` keeps the pool's env default,
    #: ``REPRO_BENCH_POOL_RETRIES``).  A chunk still failing after this
    #: many attributable attempts is quarantined and the cell maps to
    #: ``FAILED`` with the poison chunk identified in
    #: ``extras["failure"]["pool"]``.
    pool_retries: int | None = None
    #: Shard count for the resilient worker pool's partition-aware fan-out
    #: inside this cell (``None`` keeps the pool's env default,
    #: ``REPRO_BENCH_SHARDS``).  Sharding is a scheduling decision only —
    #: results stay byte-identical at any shard count.
    shards: int | None = None


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded re-execution of transiently failed cells.

    Only ``FAILED``/``KILLED`` are retried by default: ``DNF``/``CRASHED``
    are resource verdicts that a re-run under the same budget would simply
    reproduce.  With ``reseed=True`` every attempt runs on an
    independently derived child RNG (see :func:`derive_rng`) so a retry of
    a stochastic technique explores a fresh sample path deterministically.
    """

    max_attempts: int = 1
    reseed: bool = True
    retry_statuses: tuple[str, ...] = (STATUS_FAILED, STATUS_KILLED)

    def should_retry(self, status: str, attempt: int) -> bool:
        return status in self.retry_statuses and attempt + 1 < max(1, self.max_attempts)


# ----------------------------------------------------------------------
# Child-side memory ceiling

def _current_vm_bytes() -> int | None:
    """Current virtual-memory size (Linux /proc); None where unreadable."""
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[0])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError, AttributeError):
        return None


def _set_memory_rlimit(memory_limit_mb: float | None) -> str | None:
    """Install an RLIMIT_AS ceiling of current-VM + limit; name on success.

    Returns ``"rlimit"`` when the hard ceiling is active, ``None`` when
    the platform cannot enforce it (the cooperative tracemalloc ceiling
    inside :func:`run_with_budget` remains as the fallback).
    """
    if memory_limit_mb is None:
        return None
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    base = _current_vm_bytes()
    if base is None:
        return None
    limit = base + int(memory_limit_mb * 1e6)
    try:
        soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        if soft != resource.RLIM_INFINITY:
            limit = min(limit, soft)
        resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    except (ValueError, OSError):  # pragma: no cover - locked-down hosts
        return None
    return "rlimit"


# ----------------------------------------------------------------------
# Worker (module-level so the spawn start method can pickle it)

def _fallback_payload(
    algorithm: IMAlgorithm,
    model: PropagationModel,
    k: int,
    status: str,
    extras: dict[str, Any],
) -> dict[str, Any]:
    record = RunRecord(
        algorithm=algorithm.name, model=model.name, k=k, status=status, extras=extras
    )
    return {"record": _jsonable(asdict(record)), "result": None}


def _isolated_worker(
    conn,
    algorithm: IMAlgorithm,
    graph: DiGraph,
    k: int,
    model: PropagationModel,
    rng: np.random.Generator,
    time_limit_seconds: float | None,
    memory_limit_mb: float | None,
    track_memory: bool,
    telemetry: bool = False,
    pool_retries: int | None = None,
    shards: int | None = None,
) -> None:
    """Run one cell in the child and ship a plain-dict payload back."""
    try:
        enforcement = _set_memory_rlimit(memory_limit_mb)
        with pool_retries_env(pool_retries), shards_env(shards):
            record, result = run_with_budget(
                algorithm,
                graph,
                k,
                model,
                rng=rng,
                time_limit_seconds=time_limit_seconds,
                memory_limit_mb=memory_limit_mb,
                track_memory=track_memory or memory_limit_mb is not None,
                telemetry=Telemetry(label=algorithm.name) if telemetry else None,
            )
        if memory_limit_mb is not None:
            record.extras["memory_enforcement"] = enforcement or "tracemalloc"
        payload = {
            "record": _jsonable(asdict(record)),
            "result": result.to_payload() if result is not None else None,
        }
    except MemoryError:
        payload = _fallback_payload(
            algorithm, model, k, STATUS_CRASHED,
            {"budget_detail": "MemoryError outside the measured block"},
        )
    except BaseException:
        exc_type, exc, _ = sys.exc_info()
        payload = _fallback_payload(
            algorithm, model, k, STATUS_FAILED,
            {"failure": {
                "type": exc_type.__name__ if exc_type else "BaseException",
                "message": str(exc),
                "traceback": traceback.format_exc(),
            }},
        )
    try:
        conn.send(payload)
    except (BrokenPipeError, OSError):  # pragma: no cover - parent already gone
        pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Parent-side executor

class IsolatedExecutor:
    """Run seed-selection cells in killable subprocesses.

    The parent never trusts the child to terminate: on deadline it sends
    SIGTERM, waits ``grace_seconds``, then SIGKILLs.  A child that dies
    without delivering a payload (segfault, ``os._exit``, kernel OOM kill)
    is recorded as ``KILLED`` with its exit code.
    """

    def __init__(self, config: IsolationConfig | None = None) -> None:
        self.config = config or IsolationConfig()

    def run(
        self,
        algorithm: IMAlgorithm,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator | None = None,
    ) -> tuple[RunRecord, SeedSelectionResult | None]:
        rng = np.random.default_rng() if rng is None else rng
        cfg = self.config
        if not cfg.enabled or not isolation_supported(cfg.start_method):
            with pool_retries_env(cfg.pool_retries), shards_env(cfg.shards):
                return run_with_budget(
                    algorithm,
                    graph,
                    k,
                    model,
                    rng=rng,
                    time_limit_seconds=cfg.time_limit_seconds,
                    memory_limit_mb=cfg.memory_limit_mb,
                    track_memory=cfg.track_memory
                    or cfg.memory_limit_mb is not None,
                    telemetry=Telemetry(label=algorithm.name)
                    if cfg.telemetry
                    else None,
                )
        ctx = mp.get_context(cfg.start_method or _default_start_method())
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_isolated_worker,
            args=(
                send_conn, algorithm, graph, k, model, rng,
                cfg.time_limit_seconds, cfg.memory_limit_mb, cfg.track_memory,
                cfg.telemetry, cfg.pool_retries, cfg.shards,
            ),
            daemon=True,
        )
        started = time.perf_counter()
        try:
            proc.start()
        except Exception as exc:  # unpicklable payload under spawn, fork failure
            recv_conn.close()
            send_conn.close()
            record = RunRecord(
                algorithm=algorithm.name, model=model.name, k=k,
                status=STATUS_FAILED,
                extras={"failure": {
                    "type": type(exc).__name__,
                    "message": f"subprocess start failed: {exc}",
                    "traceback": traceback.format_exc(),
                }},
            )
            return record, None
        send_conn.close()
        payload = None
        timed_out = False
        try:
            if recv_conn.poll(cfg.time_limit_seconds):
                payload = recv_conn.recv()
            else:
                timed_out = True
        except (EOFError, OSError):
            payload = None
        finally:
            elapsed = time.perf_counter() - started
            recv_conn.close()
        if timed_out:
            self._reap(proc, force=True)
            record = RunRecord(
                algorithm=algorithm.name, model=model.name, k=k,
                status=STATUS_DNF,
                elapsed_seconds=elapsed,
                extras={
                    "budget_detail": (
                        "killed at preemptive wall-clock deadline of "
                        f"{cfg.time_limit_seconds:.1f}s"
                    ),
                    "enforcement": "preemptive-kill",
                },
            )
            return record, None
        self._reap(proc, force=False)
        if payload is None:
            record = RunRecord(
                algorithm=algorithm.name, model=model.name, k=k,
                status=STATUS_KILLED,
                elapsed_seconds=elapsed,
                extras={"failure": {
                    "type": "ProcessDied",
                    "message": (
                        "worker exited without reporting a result "
                        f"(exitcode {proc.exitcode})"
                    ),
                    "exitcode": proc.exitcode,
                }},
            )
            return record, None
        record = RunRecord(**payload["record"])
        result_payload = payload.get("result")
        result = (
            SeedSelectionResult.from_payload(result_payload)
            if result_payload is not None
            else None
        )
        return record, result

    def _reap(self, proc, force: bool) -> None:
        grace = self.config.grace_seconds
        if force and proc.is_alive():
            proc.terminate()
        proc.join(grace)
        if proc.is_alive():  # pragma: no cover - SIGTERM ignored
            proc.kill()
            proc.join(grace)


def execute_cell(
    algorithm: IMAlgorithm,
    graph: DiGraph,
    k: int,
    model: PropagationModel,
    rng: np.random.Generator | None = None,
    config: IsolationConfig | None = None,
    retry: RetryPolicy | None = None,
) -> tuple[RunRecord, SeedSelectionResult | None]:
    """One sweep cell under isolation (optional) and a bounded retry policy.

    The returned record's ``extras`` carry ``attempts`` (total runs) and,
    when any retry happened, ``attempt_history`` (statuses of the
    discarded attempts).
    """
    rng = np.random.default_rng() if rng is None else rng
    executor = IsolatedExecutor(config or IsolationConfig(enabled=False))
    retry = retry or RetryPolicy()
    history: list[str] = []
    record: RunRecord
    result: SeedSelectionResult | None = None
    for attempt in range(max(1, retry.max_attempts)):
        attempt_rng = derive_rng(rng, attempt) if retry.reseed else rng
        record, result = executor.run(algorithm, graph, k, model, rng=attempt_rng)
        if not retry.should_retry(record.status, attempt):
            break
        history.append(record.status)
    record.extras["attempts"] = len(history) + 1
    if history:
        record.extras["attempt_history"] = history
    return record, result


# ----------------------------------------------------------------------
# Fault injection

class FaultInjector(IMAlgorithm):
    """Wrap a technique and inject failures before delegating to it.

    Faults (``fault=``):

    * ``"none"``  — transparent passthrough.
    * ``"raise"`` — raise ``exception`` (default ``RuntimeError``): the
      ``FAILED`` path.
    * ``"hang"``  — busy-wait up to ``hang_seconds`` without ever touching
      ``budget.check()``: the preemptive-``DNF`` path.  The cap means a
      broken deadline surfaces as a spurious ``OK`` instead of a wedged
      test suite.
    * ``"oom"``   — allocate ``alloc_step_mb`` blocks up to
      ``alloc_cap_mb``, then raise ``MemoryError`` if the platform ceiling
      never fired: the ``CRASHED`` path, bounded either way.
    * ``"exit"``  — ``os._exit(exit_code)``: the ``KILLED`` path (only
      meaningful under isolation).

    ``fail_times=n`` makes the fault transient: it fires on the first
    ``n`` invocations and then passes through — counted in-memory, or via
    ``state_file`` so the count survives subprocess re-execution.
    """

    def __init__(
        self,
        inner: IMAlgorithm,
        fault: str = "none",
        fail_times: int | None = None,
        state_file: str | os.PathLike | None = None,
        hang_seconds: float = 30.0,
        alloc_step_mb: int = 16,
        alloc_cap_mb: int = 256,
        exception: BaseException | None = None,
        exit_code: int = 13,
    ) -> None:
        faults = ("none", "raise", "hang", "oom", "exit")
        if fault not in faults:
            raise ValueError(f"unknown fault {fault!r}; options: {', '.join(faults)}")
        self.inner = inner
        self.fault = fault
        self.fail_times = fail_times
        self.state_file = os.fspath(state_file) if state_file is not None else None
        self.hang_seconds = hang_seconds
        self.alloc_step_mb = alloc_step_mb
        self.alloc_cap_mb = alloc_cap_mb
        self.exception = exception
        self.exit_code = exit_code
        self._calls = 0
        # Records keep the wrapped technique's identity.
        self.name = inner.name
        self.supported = inner.supported
        self.external_parameter = inner.external_parameter

    def _invocation_index(self) -> int:
        if self.state_file is None:
            index = self._calls
            self._calls += 1
            return index
        try:
            with open(self.state_file) as handle:
                index = int(handle.read().strip() or 0)
        except (OSError, ValueError):
            index = 0
        with open(self.state_file, "w") as handle:
            handle.write(str(index + 1))
        return index

    def _armed(self) -> bool:
        index = self._invocation_index()
        if self.fault == "none":
            return False
        return self.fail_times is None or index < self.fail_times

    def _fire(self) -> None:
        if self.fault == "raise":
            raise self.exception if self.exception is not None else RuntimeError(
                "injected fault"
            )
        if self.fault == "hang":
            deadline = time.perf_counter() + self.hang_seconds
            while time.perf_counter() < deadline:
                time.sleep(0.02)
            return
        if self.fault == "oom":
            blocks: list[bytearray] = []
            while len(blocks) * self.alloc_step_mb < self.alloc_cap_mb:
                blocks.append(bytearray(self.alloc_step_mb << 20))
            raise MemoryError(
                f"injected over-allocation capped at {self.alloc_cap_mb} MB"
            )
        if self.fault == "exit":
            os._exit(self.exit_code)

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        if self._armed():
            self._fire()
        return self.inner._select(graph, k, model, rng, budget)

"""Table 2 + Fig. 4 (and appendix Figs. 14-16) — optimal external parameters.

Runs the Sec.-5.1.1 tuning procedure per (algorithm, model): sweep the
external parameter, find X* (highest spread), then pick the cheapest value
whose spread stays within one sd of μ*.

Workloads (scaled): the greedy family and StaticGreedy tune on the nethept
analogue, the rest on hepph, k = 10-25.  The paper tunes at k up to 200 on
the real graphs; the procedure is identical, only the scale differs.  The
final test renders the Table-2 analogue with the paper's values alongside.
"""

import numpy as np

from repro.diffusion.models import IC, LT, WC
from repro.framework.tuning import tune_parameter

from _common import RR_SCALE, emit, once, weighted_dataset

#: (algorithm, model) -> optimal value found, accumulated across tests.
OPTIMA: dict[tuple[str, str], object] = {}

#: Paper's Table 2 for the rendered comparison.
PAPER_TABLE2 = {
    ("CELF", "IC"): 10000, ("CELF", "WC"): 10000, ("CELF", "LT"): 10000,
    ("CELF++", "IC"): 7500, ("CELF++", "WC"): 7500, ("CELF++", "LT"): 10000,
    ("EaSyIM", "IC"): 50, ("EaSyIM", "WC"): 50, ("EaSyIM", "LT"): 25,
    ("IMRank1", "IC"): 10, ("IMRank1", "WC"): 10,
    ("IMRank2", "IC"): 10, ("IMRank2", "WC"): 10,
    ("PMC", "IC"): 200, ("PMC", "WC"): 250,
    ("StaticGreedy", "IC"): 250, ("StaticGreedy", "WC"): 250,
    ("TIM+", "IC"): 0.05, ("TIM+", "WC"): 0.15, ("TIM+", "LT"): 0.35,
    ("IMM", "IC"): 0.05, ("IMM", "WC"): 0.1, ("IMM", "LT"): 0.1,
}


def _tune(name, parameter, spectrum, dataset, model, k, **fixed):
    result = tune_parameter(
        name,
        parameter,
        spectrum,
        weighted_dataset(dataset, model),
        model,
        k,
        mc_simulations=150,
        rng=np.random.default_rng(k),
        time_limit_seconds=20.0,
        fixed_params=fixed or None,
    )
    OPTIMA[(name, model.name)] = result.optimal_value
    return result


def test_fig4abc_mc_simulations(benchmark):
    """Fig 4a-c: #MC simulations for the greedy family + EaSyIM depth."""

    def experiment():
        tables = []
        for model in (IC, WC, LT):
            for name in ("CELF", "CELF++"):
                tables.append(
                    _tune(name, "mc_simulations", [20, 10, 5, 2],
                          "nethept", model, 10)
                )
            tables.append(
                _tune("EaSyIM", "path_length", [6, 4, 3, 2, 1],
                      "nethept", model, 10)
            )
        return tables

    tables = once(benchmark, experiment)
    emit("fig04abc_mc_simulations", "\n\n".join(t.table() for t in tables))
    assert all(t.optimal_value is not None for t in tables)


def test_fig4de_imrank_scoring_rounds(benchmark):
    """Fig 4d-e: IMRank scoring rounds under IC and WC."""

    def experiment():
        tables = []
        for model in (IC, WC):
            for name in ("IMRank1", "IMRank2"):
                tables.append(
                    _tune(name, "scoring_rounds", [10, 5, 3, 2, 1],
                          "hepph", model, 25)
                )
        return tables

    tables = once(benchmark, experiment)
    emit("fig04de_imrank_rounds", "\n\n".join(t.table() for t in tables))
    assert all(t.optimal_value is not None for t in tables)


def test_fig4fg_snapshots(benchmark):
    """Fig 4f-g: snapshot counts for PMC (hepph) and StaticGreedy (nethept)."""

    def experiment():
        tables = []
        for model in (IC, WC):
            tables.append(
                _tune("PMC", "num_snapshots", [100, 50, 25, 10],
                      "hepph", model, 25)
            )
            tables.append(
                _tune("StaticGreedy", "num_snapshots", [50, 25, 10],
                      "nethept", model, 25)
            )
        return tables

    tables = once(benchmark, experiment)
    emit("fig04fg_snapshots", "\n\n".join(t.table() for t in tables))
    assert all(t.optimal_value is not None for t in tables)


def test_fig4hij_epsilon(benchmark):
    """Fig 4h-j: ε for TIM+ and IMM under IC, WC and LT.

    IC runs on the sparse nethept analogue (the paper's own IC sweeps stop
    at HepPh because of the RR blow-up); WC/LT run on hepph.
    """

    def experiment():
        tables = []
        spectrum = [0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 0.9]
        for name in ("TIM+", "IMM"):
            tables.append(
                _tune(name, "epsilon", spectrum, "nethept", IC, 25,
                      rr_scale=RR_SCALE)
            )
            for model in (WC, LT):
                tables.append(
                    _tune(name, "epsilon", spectrum, "hepph", model, 25,
                          rr_scale=RR_SCALE)
                )
        return tables

    tables = once(benchmark, experiment)
    emit("fig04hij_epsilon", "\n\n".join(t.table() for t in tables))
    assert all(t.optimal_value is not None for t in tables)


def test_table2_optimal_parameter_summary(benchmark):
    """Table 2: the optimal values found above vs the paper's."""

    def render():
        lines = [
            f"{'Algorithm':<14} {'Model':<4} {'our optimum':>12} {'paper':>8}",
            "-" * 44,
        ]
        for (name, model), value in sorted(OPTIMA.items()):
            paper = PAPER_TABLE2.get((name, model), "-")
            lines.append(f"{name:<14} {model:<4} {value!s:>12} {paper!s:>8}")
        lines.append(
            "\nNote: MC counts / snapshot counts are scaled with the graphs;"
            "\nthe comparable signal is the *ordering* (e.g. LT needing fewer"
            "\nsimulations, TIM+ tolerating larger epsilon than IMM)."
        )
        return "\n".join(lines)

    text = once(benchmark, render)
    emit("table2_optimal_parameters", text)
    assert OPTIMA, "earlier sweeps must populate the summary"


def test_fig15_16_appendix_sweeps(benchmark):
    """Appendix Figs. 15-16: the same tuning sweeps on dblp and youtube.

    The greedy family cannot run at these sizes (as in the paper, whose
    appendix panels show only EaSyIM/IMRank/snapshots/epsilon beyond
    Nethept), so the scalable subset is swept.
    """

    def experiment():
        tables = []
        for dataset in ("dblp", "youtube"):
            for model in (IC, WC):
                tables.append(
                    _tune("EaSyIM", "path_length", [4, 3, 2, 1],
                          dataset, model, 25)
                )
                tables.append(
                    _tune("IMRank1", "scoring_rounds", [10, 5, 2, 1],
                          dataset, model, 25)
                )
            tables.append(
                _tune("IMM", "epsilon", [0.1, 0.35, 0.7],
                      dataset, WC, 25, rr_scale=RR_SCALE)
            )
            tables.append(
                _tune("TIM+", "epsilon", [0.1, 0.35, 0.7],
                      dataset, LT, 25, rr_scale=RR_SCALE)
            )
            tables.append(
                _tune("PMC", "num_snapshots", [50, 25, 10],
                      dataset, WC, 25)
            )
        return tables

    tables = once(benchmark, experiment)
    emit("fig15_16_appendix_sweeps", "\n\n".join(t.table() for t in tables))
    assert all(t.optimal_value is not None for t in tables)

"""Benchmark IM techniques on *your own* graph with the full framework.

Demonstrates the platform end-to-end on an external edge list: load a
SNAP-format file, pick a model, walk an algorithm's accuracy spectrum with
the Alg.-3 runner, tune its external parameter with the Sec.-5.1.1
procedure, and compare a roster of techniques under a common budget.

Run with:  python examples/benchmark_custom_graph.py
"""

import tempfile

import numpy as np

from repro import algorithms, diffusion
from repro.framework import IMFramework, render_table, run_with_budget, tune_parameter
from repro.graph import generators, io


def write_demo_edge_list(path: str) -> None:
    """Stand-in for your own data: a forest-fire graph in SNAP format."""
    rng = np.random.default_rng(2024)
    n, src, dst = generators.forest_fire(800, 0.35, rng)
    from repro.graph.digraph import DiGraph

    io.write_edge_list(
        DiGraph.from_arrays(n, src, dst), path,
        weighted=False, header="demo forest-fire graph",
    )


def main() -> None:
    with tempfile.NamedTemporaryFile(suffix=".txt", delete=False) as tmp:
        write_demo_edge_list(tmp.name)
        topology = io.read_edge_list(tmp.name, undirected=True)
    print(f"Loaded custom graph: {topology}")

    model = diffusion.WC
    graph = model.weighted(topology)
    k = 10

    # --- Alg. 3: walk IMM's epsilon spectrum until spread degrades -------
    framework = IMFramework(graph, model, mc_simulations=500)
    trace = framework.run(
        "IMM",
        k,
        parameter_spectrum=[
            {"epsilon": 0.1, "rr_scale": 0.05},
            {"epsilon": 0.3, "rr_scale": 0.05},
            {"epsilon": 0.5, "rr_scale": 0.05},
            {"epsilon": 0.9, "rr_scale": 0.05},
        ],
        rng=np.random.default_rng(0),
    )
    print("\nIMM across its epsilon spectrum:")
    print(render_table(trace.records))
    print(f"Converged choice: {trace.chosen_parameters}")

    # --- Sec. 5.1.1: tune EaSyIM's path length ---------------------------
    tuning = tune_parameter(
        "EaSyIM", "path_length", [6, 4, 3, 2, 1], graph, model, k,
        mc_simulations=500, rng=np.random.default_rng(1),
    )
    print(f"\n{tuning.table()}")

    # --- A roster under one budget ---------------------------------------
    print("\nRoster comparison (10s budget each):")
    records = []
    roster = {
        "IMM": {"epsilon": 0.5, "rr_scale": 0.5},
        "EaSyIM": {"path_length": tuning.optimal_value or 3},
        "PMC": {"num_snapshots": 50},
        "DegreeDiscount": {},
        "CELF": {"mc_simulations": 20},
    }
    for name, params in roster.items():
        record, __ = run_with_budget(
            algorithms.make(name, **params), graph, k, model,
            rng=np.random.default_rng(2),
            time_limit_seconds=10.0, track_memory=True,
        )
        if record.ok:
            record.spread = diffusion.monte_carlo_spread(
                graph, record.seeds, model, r=500, rng=np.random.default_rng(3)
            ).mean
        records.append(record)
    print(render_table(records))


if __name__ == "__main__":
    main()

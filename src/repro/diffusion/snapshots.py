"""Live-edge snapshots (possible worlds) of a weighted graph.

The coin-flip technique of Sec. 4.3: a snapshot retains each edge with
probability equal to its weight.  Under IC, the nodes reachable from S in a
snapshot are distributed exactly like the nodes activated by a cascade from
S, so averaging reachability over R snapshots estimates σ(S) — the
machinery behind StaticGreedy and PMC.

For LT the equivalent "possible world" keeps, per node, at most one
incoming edge chosen with probability proportional to its weight (Kempe et
al.'s live-edge construction); :func:`generate_lt_snapshot` implements it
and the property tests verify the distributional equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.digraph import DiGraph
from ._frontier import gather_edges
from .models import Dynamics

__all__ = [
    "Snapshot",
    "generate_ic_snapshot",
    "generate_lt_snapshot",
    "sample_live_masks",
    "strongly_connected_components",
]


@dataclass
class Snapshot:
    """One live-edge instantiation G_i of a weighted graph.

    ``live`` is a boolean mask over the graph's out-CSR edge order.
    """

    graph: DiGraph
    live: np.ndarray

    @property
    def num_live_edges(self) -> int:
        return int(self.live.sum())

    def reachable_from(self, sources: np.ndarray | list[int]) -> np.ndarray:
        """Mask of nodes reachable from ``sources`` along live edges."""
        sources = np.asarray(sources, dtype=np.int64)
        reached = np.zeros(self.graph.n, dtype=bool)
        if sources.size == 0:
            return reached
        reached[sources] = True
        frontier = np.unique(sources)
        out_ptr, out_dst = self.graph.out_ptr, self.graph.out_dst
        while frontier.size:
            eidx = gather_edges(out_ptr, frontier)
            if eidx.size == 0:
                break
            eidx = eidx[self.live[eidx]]
            nxt = out_dst[eidx]
            nxt = np.unique(nxt[~reached[nxt]])
            if nxt.size == 0:
                break
            reached[nxt] = True
            frontier = nxt
        return reached

    def reach_count(self, sources: np.ndarray | list[int]) -> int:
        """|R(sources)| in this snapshot."""
        return int(self.reachable_from(sources).sum())


def generate_ic_snapshot(graph: DiGraph, rng: np.random.Generator) -> Snapshot:
    """Retain each edge independently with probability equal to its weight."""
    live = rng.random(graph.m) < graph.out_w
    return Snapshot(graph, live)


def generate_lt_snapshot(graph: DiGraph, rng: np.random.Generator) -> Snapshot:
    """Per node, keep at most one incoming edge, chosen w.p. its weight."""
    live_in = np.zeros(graph.m, dtype=bool)
    draws = rng.random(graph.n)
    in_ptr, in_w = graph.in_ptr, graph.in_w
    for v in range(graph.n):
        lo, hi = int(in_ptr[v]), int(in_ptr[v + 1])
        if lo == hi:
            continue
        cumulative = np.cumsum(in_w[lo:hi])
        j = int(np.searchsorted(cumulative, draws[v], side="right"))
        if j < hi - lo:
            live_in[lo + j] = True
    # Translate the in-CSR mask to the out-CSR edge order the Snapshot uses.
    live = np.zeros(graph.m, dtype=bool)
    live[graph._in_perm[np.nonzero(live_in)[0]]] = True
    return Snapshot(graph, live)


def _mask_chunk(
    graph: DiGraph,
    dynamics: Dynamics,
    count: int,
    seed_sequence_state: dict,
) -> np.ndarray:
    """Worker for parallel presampling: ``count`` live-edge worlds.

    Module-level so it pickles; chunk-invariant operands (graph, dynamics)
    lead per the pool's shared-args convention, so the graph ships once
    per worker (shm arena when big enough).  The RNG is rebuilt from a
    spawned ``SeedSequence`` state, making chunk replay byte-identical.
    """
    rng = np.random.default_rng(np.random.SeedSequence(**seed_sequence_state))
    return sample_live_masks(graph, dynamics, count, rng)


def sample_live_masks(
    graph: DiGraph,
    dynamics: Dynamics,
    count: int,
    rng: np.random.Generator,
    budget=None,
    workers: int | None = None,
) -> np.ndarray:
    """Presample ``count`` live-edge worlds as one ``count×m`` boolean matrix.

    The single sampling point shared by StaticGreedy, PMC and the snapshot
    spread oracle.  Worlds are drawn row by row (one ``rng`` draw per
    world), so the stream matches ``count`` sequential calls of the
    per-snapshot generators exactly — swapping a per-world loop for this
    helper cannot change a seeded run.  ``budget`` (anything with
    ``check()``) is ticked once per world, mirroring the cooperative
    budget convention of :meth:`FlatRRPool.extend`.

    ``workers > 1`` fans the sampling out over the resilient worker pool
    with the graph travelling via the shared-args transport.  Worker
    streams are spawned from one ``SeedSequence`` draw, so parallel runs
    are reproducible for a fixed (count, workers) pair but draw from a
    different stream than the serial row-by-row loop (same contract as
    ``monte_carlo_spread(workers=...)``).  The default (``None``) keeps
    the serial, byte-identical path.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if workers is not None and workers > 1 and count > 1:
        return _parallel_masks(graph, dynamics, count, rng, workers)
    masks = np.empty((count, graph.m), dtype=bool)
    for i in range(count):
        if budget is not None:
            budget.check()
        if dynamics is Dynamics.IC:
            masks[i] = rng.random(graph.m) < graph.out_w
        elif dynamics is Dynamics.LT:
            masks[i] = generate_lt_snapshot(graph, rng).live
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unsupported dynamics {dynamics!r}")
    return masks


def _parallel_masks(
    graph: DiGraph,
    dynamics: Dynamics,
    count: int,
    rng: np.random.Generator,
    workers: int,
) -> np.ndarray:
    """Fan world presampling out over the resilient worker pool."""
    # Lazy: a top-level framework import from diffusion would be circular.
    from ..framework.pool import run_chunks

    base = int(rng.integers(0, 2**63 - 1))
    chunks = np.full(workers, count // workers, dtype=np.int64)
    chunks[: count % workers] += 1
    chunks = chunks[chunks > 0]
    states = [{"entropy": base, "spawn_key": (i,)} for i in range(len(chunks))]
    parts = run_chunks(
        _mask_chunk,
        [(int(c), s) for c, s in zip(chunks, states)],
        workers=len(chunks),
        label="snapshots.sample",
        shared=(graph, dynamics),
    )
    return np.concatenate(parts, axis=0)


def strongly_connected_components(snapshot: Snapshot) -> np.ndarray:
    """SCC ids of the snapshot's live subgraph (iterative Tarjan).

    Used by PMC: inside a live-edge world, all nodes of an SCC have
    identical reachability, so the world can be contracted to a DAG.
    Returns an array mapping node -> component id (0-based, in reverse
    topological discovery order).
    """
    graph = snapshot.graph
    n = graph.n
    out_ptr, out_dst = graph.out_ptr, graph.out_dst
    live = snapshot.live

    index = np.full(n, -1, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    comp = np.full(n, -1, dtype=np.int64)
    stack: list[int] = []
    next_index = 0
    next_comp = 0

    for root in range(n):
        if index[root] >= 0:
            continue
        # Each frame: (node, iterator position within its edge slice).
        work: list[list[int]] = [[root, int(out_ptr[root])]]
        index[root] = lowlink[root] = next_index
        next_index += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            v, eptr = work[-1]
            hi = int(out_ptr[v + 1])
            advanced = False
            while eptr < hi:
                e = eptr
                eptr += 1
                if not live[e]:
                    continue
                w = int(out_dst[e])
                if index[w] < 0:
                    work[-1][1] = eptr
                    index[w] = lowlink[w] = next_index
                    next_index += 1
                    stack.append(w)
                    on_stack[w] = True
                    work.append([w, int(out_ptr[w])])
                    advanced = True
                    break
                if on_stack[w]:
                    lowlink[v] = min(lowlink[v], index[w])
            if advanced:
                continue
            work.pop()
            if lowlink[v] == index[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp[w] = next_comp
                    if w == v:
                        break
                next_comp += 1
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
    return comp

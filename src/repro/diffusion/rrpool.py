"""Flat CSR-backed RR-set engine: sampling, storage and max-cover.

This is the hot path of every RR-sketch technique (RIS/TIM+/IMM/SSA,
Sec. 4.2 of the paper): sample reverse-reachable sets, hold them in a
pool, and greedily max-cover the pool.  The engine keeps the pool in two
compressed-sparse-row pairs instead of Python lists:

* set view  — ``set_ptr`` (``num_sets + 1``) / ``set_nodes``: the nodes
  of RR set ``i`` are ``set_nodes[set_ptr[i]:set_ptr[i + 1]]``.
* node view — ``node_ptr`` (``n + 1``) / ``node_sets``: the ids of the
  sets containing node ``v`` are ``node_sets[node_ptr[v]:node_ptr[v+1]]``
  (built lazily by one stable argsort, invalidated on append).

All four arrays are int64, so the pool's true memory footprint is just
:attr:`FlatRRPool.nbytes` — the quantity the Table-6 memory benchmark
wants, and impossible to read off a list-of-lists pool.

Sampling can fan out over a process pool (``workers > 1``) with worker
streams spawned from one ``SeedSequence``, mirroring
``monte_carlo_spread(workers=)``.  Determinism contract: a fixed
``(count, workers)`` pair on the same parent RNG state always produces
the same pool; serial (``workers in (None, 0, 1)``) and parallel pools
draw from different streams and agree only distributionally (see
``tests/test_rr_statistical.py``).

``greedy_max_cover`` is vectorized: per-node coverage counts live in one
int64 array updated with ``np.bincount`` over the members of newly
covered sets, so an iteration costs array ops instead of nested Python
loops.  It is seed-for-seed identical to the legacy list-based cover
(kept in :mod:`repro.diffusion.rrsets` as the reference implementation).
"""

from __future__ import annotations

import numpy as np

from ..graph.digraph import DiGraph
from ._frontier import gather_csr as _gather_csr
from .models import Dynamics

__all__ = ["FlatRRPool", "greedy_max_cover", "random_rr_set"]


def _tele():
    # Lazy: a top-level framework import from diffusion would be circular
    # (framework → runner → algorithm registry → diffusion engines).
    from ..framework.telemetry import current

    return current()


def random_rr_set(
    graph: DiGraph,
    dynamics: Dynamics,
    rng: np.random.Generator,
    root: int | None = None,
) -> tuple[np.ndarray, int]:
    """Sample one RR set; returns ``(nodes, width)``.

    ``width`` counts the in-edges examined while growing the set — the
    quantity TIM+ uses to estimate KPT (expected cascade cost).  Because
    every visited node has its in-edges examined exactly once, ``width``
    equals the sum of in-degrees over the returned set (a property-tested
    invariant).
    """
    if graph.n == 0:
        raise ValueError("graph has no nodes")
    if root is None:
        root = int(rng.integers(0, graph.n))
    in_ptr, in_src, in_w = graph.in_ptr, graph.in_src, graph.in_w
    visited = {root}
    width = 0

    if dynamics is Dynamics.IC:
        frontier = [root]
        while frontier:
            v = frontier.pop()
            lo, hi = int(in_ptr[v]), int(in_ptr[v + 1])
            width += hi - lo
            if lo == hi:
                continue
            coins = rng.random(hi - lo)
            hits = np.nonzero(coins < in_w[lo:hi])[0]
            for j in hits:
                u = int(in_src[lo + j])
                if u not in visited:
                    visited.add(u)
                    frontier.append(u)
        return np.fromiter(visited, dtype=np.int64, count=len(visited)), width

    if dynamics is Dynamics.LT:
        v = root
        while True:
            lo, hi = int(in_ptr[v]), int(in_ptr[v + 1])
            width += hi - lo
            if lo == hi:
                break
            cumulative = np.cumsum(in_w[lo:hi])
            j = int(np.searchsorted(cumulative, rng.random(), side="right"))
            if j >= hi - lo:
                break  # residual probability 1 - sum(w): no live in-edge
            u = int(in_src[lo + j])
            if u in visited:
                break  # walk closed a cycle; the set cannot grow further
            visited.add(u)
            v = u
        return np.fromiter(visited, dtype=np.int64, count=len(visited)), width

    raise ValueError(f"unsupported dynamics {dynamics!r}")  # pragma: no cover


def _sample_rr_chunk(
    graph: DiGraph,
    dynamics: Dynamics,
    count: int,
    seed_sequence_state: dict,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Worker for parallel sampling: ``count`` independent RR sets.

    Module-level so it pickles; the RNG is rebuilt from a spawned
    ``SeedSequence`` so parallel runs draw from well-separated streams.
    Returns ``(lengths, flat_nodes, widths)`` — cheap to ship back over
    the process pipe and appended to the pool as one chunk.
    """
    rng = np.random.default_rng(np.random.SeedSequence(**seed_sequence_state))
    lengths = np.empty(count, dtype=np.int64)
    widths = np.empty(count, dtype=np.int64)
    parts: list[np.ndarray] = []
    for i in range(count):
        nodes, width = random_rr_set(graph, dynamics, rng)
        lengths[i] = nodes.size
        widths[i] = width
        parts.append(nodes)
    flat = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    return lengths, flat, widths


class FlatRRPool:
    """A pool of RR sets held as two int64 CSR pairs.

    Appends are O(1) amortized: new sets accumulate in a pending list and
    are compacted into the flat arrays on the next read of a CSR view.
    The inverted node→sets index is rebuilt lazily after any append.
    """

    __slots__ = (
        "n",
        "total_width",
        "_ptr",
        "_nodes",
        "_widths",
        "_pending_nodes",
        "_pending_widths",
        "_node_ptr",
        "_node_sets",
        "_shm_segments",
    )

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.n = int(n)
        self.total_width = 0
        self._ptr = np.zeros(1, dtype=np.int64)
        self._nodes = np.empty(0, dtype=np.int64)
        self._widths = np.empty(0, dtype=np.int64)
        self._pending_nodes: list[np.ndarray] = []
        self._pending_widths: list[int] = []
        self._node_ptr: np.ndarray | None = None
        self._node_sets: np.ndarray | None = None
        # Segment names backing any shm-attached CSR views (set by
        # ``from_csr`` when the pool was reassembled from the arena).
        self._shm_segments: tuple[str, ...] = ()

    @classmethod
    def from_csr(
        cls,
        n: int,
        set_ptr: np.ndarray,
        set_nodes: np.ndarray,
        widths: np.ndarray,
        node_ptr: np.ndarray | None = None,
        node_sets: np.ndarray | None = None,
        shm_segments: tuple[str, ...] = (),
    ) -> "FlatRRPool":
        """Rebuild a pool directly from its CSR arrays (no resampling).

        The reassembly path of the shared-memory transport: a worker
        attaches the published set/node CSR views and wraps them back
        into a pool without copying.  ``shm_segments`` records which
        arrays are arena-backed so :attr:`nbytes_detail` can report the
        attached share explicitly.
        """
        pool = cls(n)
        pool._ptr = np.asarray(set_ptr)
        pool._nodes = np.asarray(set_nodes)
        pool._widths = np.asarray(widths)
        pool.total_width = int(pool._widths.sum())
        if (node_ptr is None) != (node_sets is None):
            raise ValueError("node_ptr and node_sets must come together")
        pool._node_ptr = None if node_ptr is None else np.asarray(node_ptr)
        pool._node_sets = None if node_sets is None else np.asarray(node_sets)
        pool._shm_segments = tuple(shm_segments)
        return pool

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------

    def add(self, nodes: np.ndarray, width: int = 0) -> None:
        """Append one RR set to the pool."""
        self._pending_nodes.append(np.asarray(nodes, dtype=np.int64))
        self._pending_widths.append(int(width))
        self.total_width += int(width)
        self._node_ptr = self._node_sets = None

    def _append_chunk(
        self, lengths: np.ndarray, flat: np.ndarray, widths: np.ndarray
    ) -> None:
        """Append a whole sampled chunk (one worker's output) at once."""
        self._compact()
        self._ptr = np.concatenate(
            [self._ptr, self._ptr[-1] + np.cumsum(lengths, dtype=np.int64)]
        )
        self._nodes = np.concatenate([self._nodes, flat])
        self._widths = np.concatenate([self._widths, widths])
        self.total_width += int(widths.sum())
        self._node_ptr = self._node_sets = None

    def absorb(self, other: "FlatRRPool") -> None:
        """Append every set of ``other`` (D-SSA's pool recycling)."""
        if other.n != self.n:
            raise ValueError("pools cover different node universes")
        other._compact()
        if len(other) == 0:
            return
        self._append_chunk(np.diff(other._ptr), other._nodes, other._widths)

    def extend(
        self,
        graph: DiGraph,
        dynamics: Dynamics,
        count: int,
        rng: np.random.Generator,
        workers: int | None = None,
        budget=None,
    ) -> None:
        """Sample ``count`` additional RR sets from ``graph``.

        ``workers > 1`` fans the sampling out over a process pool; each
        worker's stream is spawned from one ``SeedSequence`` drawn from
        ``rng``, so a fixed ``(count, workers)`` pair is reproducible.
        ``budget`` (anything with ``check()``) is ticked per set when
        serial and per returned chunk when parallel, so preemptive limits
        still interrupt long sampling phases.
        """
        if count <= 0:
            return
        tele = _tele()
        with tele.span("rrpool.sample"):
            if workers is not None and workers > 1 and count > 1:
                self._extend_parallel(graph, dynamics, count, rng, workers, budget)
            else:
                for __ in range(count):
                    if budget is not None:
                        budget.check()
                    nodes, width = random_rr_set(graph, dynamics, rng)
                    self.add(nodes, width)
        tele.count("rrpool.rr_sets", count)

    def _extend_parallel(
        self,
        graph: DiGraph,
        dynamics: Dynamics,
        count: int,
        rng: np.random.Generator,
        workers: int,
        budget,
    ) -> None:
        # Lazy for the same circular-import reason as _tele.
        from ..framework.pool import run_chunks

        base = int(rng.integers(0, 2**63 - 1))
        chunks = np.full(workers, count // workers, dtype=np.int64)
        chunks[: count % workers] += 1
        chunks = chunks[chunks > 0]
        states = [{"entropy": base, "spawn_key": (i,)} for i in range(len(chunks))]
        _tele().count("rrpool.worker_chunks", len(chunks))
        # Each chunk is fully determined by its spawn-key state, so the
        # resilient pool can replay lost chunks byte-identically; results
        # are committed in chunk order, keeping the pool layout identical
        # at any completion (or recovery) order.  The graph and dynamics
        # are chunk-invariant, so they ride the shared-args transport
        # (shm arena or one pickle per worker) instead of every tuple.
        parts = run_chunks(
            _sample_rr_chunk,
            [(int(c), s) for c, s in zip(chunks, states)],
            workers=len(chunks),
            label="rrpool.sample",
            tick=budget.check if budget is not None else None,
            shared=(graph, dynamics),
        )
        for lengths, flat, widths in parts:
            self._append_chunk(lengths, flat, widths)

    # ------------------------------------------------------------------
    # CSR views
    # ------------------------------------------------------------------

    def _compact(self) -> None:
        if not self._pending_nodes:
            return
        lens = np.fromiter(
            (a.size for a in self._pending_nodes),
            dtype=np.int64,
            count=len(self._pending_nodes),
        )
        self._ptr = np.concatenate([self._ptr, self._ptr[-1] + np.cumsum(lens)])
        self._nodes = np.concatenate([self._nodes, *self._pending_nodes])
        self._widths = np.concatenate(
            [self._widths, np.asarray(self._pending_widths, dtype=np.int64)]
        )
        self._pending_nodes = []
        self._pending_widths = []

    @property
    def set_ptr(self) -> np.ndarray:
        """Set-view CSR offsets (``num_sets + 1`` int64)."""
        self._compact()
        return self._ptr

    @property
    def set_nodes(self) -> np.ndarray:
        """Set-view CSR payload: node ids, grouped by set."""
        self._compact()
        return self._nodes

    @property
    def widths(self) -> np.ndarray:
        """Per-set width (in-edges examined while sampling it)."""
        self._compact()
        return self._widths

    @property
    def node_index(self) -> tuple[np.ndarray, np.ndarray]:
        """Inverted ``(node_ptr, node_sets)`` CSR, built lazily.

        Within a node's slice, set ids appear in insertion order (the
        argsort is stable), matching the legacy ``member_of`` lists.
        """
        if self._node_ptr is None:
            with _tele().span("rrpool.invert_index"):
                self._compact()
                set_ids = np.repeat(
                    np.arange(len(self), dtype=np.int64), np.diff(self._ptr)
                )
                order = np.argsort(self._nodes, kind="stable")
                self._node_sets = set_ids[order]
                counts = np.bincount(self._nodes, minlength=self.n)
                node_ptr = np.zeros(self.n + 1, dtype=np.int64)
                np.cumsum(counts, out=node_ptr[1:])
                self._node_ptr = node_ptr
        return self._node_ptr, self._node_sets

    def nodes_of(self, i: int) -> np.ndarray:
        """Node array of RR set ``i``."""
        ptr = self.set_ptr
        return self._nodes[ptr[i] : ptr[i + 1]]

    def sets_of(self, v: int) -> np.ndarray:
        """Ids of the RR sets containing node ``v``."""
        node_ptr, node_sets = self.node_index
        return node_sets[node_ptr[v] : node_ptr[v + 1]]

    def membership_counts(self) -> np.ndarray:
        """Number of pool sets containing each node (length ``n``)."""
        return np.bincount(self.set_nodes, minlength=self.n).astype(np.int64)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the CSR arrays, in bytes.

        Counts both the set view and, when materialized, the inverted
        node view — the real resident cost of the pool that Table-6-style
        memory benchmarks should charge the technique with.  Arena-backed
        views count too: attached pages are resident in this process even
        though they are shared, so excluding them would understate the
        fig-8 memory cells; :attr:`nbytes_detail` breaks out the shared
        portion for callers that want the private-copy cost alone.
        """
        self._compact()
        total = self._ptr.nbytes + self._nodes.nbytes + self._widths.nbytes
        if self._node_ptr is not None:
            total += self._node_ptr.nbytes + self._node_sets.nbytes
        return int(total)

    @property
    def nbytes_detail(self) -> dict[str, int]:
        """Byte accounting split by array family and backing store.

        ``set_view`` / ``node_index`` partition :attr:`nbytes` (the node
        index is 0 until its lazy build); ``shm_attached`` is the subset
        held in shared-memory views published by the arena rather than
        process-private arrays — nonzero only for pools reassembled via
        :meth:`from_csr` inside a worker.
        """
        from ..framework.shm import shm_segment_of  # lazy: import cycle

        self._compact()
        set_view = int(
            self._ptr.nbytes + self._nodes.nbytes + self._widths.nbytes
        )
        arrays = [self._ptr, self._nodes, self._widths]
        node_index = 0
        if self._node_ptr is not None:
            node_index = int(self._node_ptr.nbytes + self._node_sets.nbytes)
            arrays += [self._node_ptr, self._node_sets]
        attached = int(sum(
            a.nbytes for a in arrays if shm_segment_of(a) is not None
        ))
        return {
            "set_view": set_view,
            "node_index": node_index,
            "shm_attached": attached,
            "total": set_view + node_index,
        }

    def __len__(self) -> int:
        return self._ptr.shape[0] - 1 + len(self._pending_nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, sets={len(self)})"

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------

    def coverage_fraction(self, seeds: np.ndarray | list[int]) -> float:
        """Fraction of RR sets intersected by ``seeds`` (= σ(S)/n estimate)."""
        num_sets = len(self)
        if num_sets == 0:
            return 0.0
        seed_arr = np.asarray(seeds, dtype=np.int64)
        if seed_arr.size == 0:
            return 0.0
        node_ptr, node_sets = self.node_index
        covered = np.zeros(num_sets, dtype=bool)
        covered[_gather_csr(node_ptr, node_sets, seed_arr)] = True
        return float(covered.mean())


def pad_seeds(
    seeds: list[int], k: int, n: int, priority: np.ndarray
) -> list[int]:
    """Top ``seeds`` up to ``k`` with unseeded nodes by descending priority.

    Ties break toward the lower node id.  Mutates and returns ``seeds``.
    """
    order = np.lexsort(
        (np.arange(n), -np.asarray(priority, dtype=np.float64))
    )
    chosen = set(seeds)
    for u in order:
        if len(seeds) >= k:
            break
        u = int(u)
        if u not in chosen:
            seeds.append(u)
            chosen.add(u)
    return seeds


def greedy_max_cover(
    pool: FlatRRPool,
    k: int,
    pad_priority: np.ndarray | None = None,
) -> tuple[list[int], float]:
    """Greedy maximum coverage of the RR pool (Sec. 4.2 seed selection).

    Returns the chosen seeds and the fraction of sets covered.  Marginal
    coverage counts live in one int64 array; covering a seed's sets
    decrements the counts of their members via ``np.bincount``, so each
    of the ``k`` rounds is pure array work.

    When the pool is exhausted before ``k`` seeds are found, the answer
    is padded with the highest-priority unseeded nodes: ``pad_priority``
    should be the graph's out-degree array (what the reference codes pad
    by); when omitted, the pool's own membership counts — the best degree
    proxy the pool can compute without the graph — are used.
    """
    num_sets = len(pool)
    if num_sets == 0 or k <= 0:
        return [], 0.0
    with _tele().span("rrpool.max_cover"):
        n = pool.n
        set_ptr, set_nodes = pool.set_ptr, pool.set_nodes
        node_ptr, node_sets = pool.node_index
        count = np.bincount(set_nodes, minlength=n).astype(np.int64)
        covered = np.zeros(num_sets, dtype=bool)
        seeds: list[int] = []
        for __ in range(min(k, n)):
            v = int(count.argmax())
            if count[v] <= 0:
                priority = (
                    pad_priority
                    if pad_priority is not None
                    else pool.membership_counts()
                )
                pad_seeds(seeds, k, n, priority)
                break
            seeds.append(v)
            ids = node_sets[node_ptr[v] : node_ptr[v + 1]]
            newly = ids[~covered[ids]]
            covered[newly] = True
            members = _gather_csr(set_ptr, set_nodes, newly)
            if members.size:
                count -= np.bincount(members, minlength=n)
    return seeds[:k], float(covered.mean())

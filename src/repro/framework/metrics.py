"""Resource measurement and budget enforcement.

The paper's testbed policies — "DNF indicates that the algorithm did not
terminate even after 40 hours", "Crashed indicates that the algorithm
crashed due to running out of memory" (Table 3) — are reproduced here as
a :class:`ResourceBudget` that selection code checkpoints against, plus a
:func:`run_with_budget` harness that converts budget violations into
statuses instead of exceptions.

Memory is tracked with :mod:`tracemalloc` (peak traced allocation), which
slows Python by a small constant factor; it is optional for pure-runtime
benches.
"""

from __future__ import annotations

import time
import traceback
import tracemalloc
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from ..algorithms.base import BudgetExceeded, IMAlgorithm, SeedSelectionResult
from ..diffusion.models import PropagationModel
from ..graph.digraph import DiGraph
from . import telemetry as _telemetry
from .pool import PoolError

__all__ = [
    "ResourceBudget",
    "Measurement",
    "measure",
    "RunRecord",
    "run_with_budget",
    "STATUS_OK",
    "STATUS_DNF",
    "STATUS_CRASHED",
    "STATUS_FAILED",
    "STATUS_KILLED",
    "BUDGET_STATUSES",
    "FAILURE_STATUSES",
]

STATUS_OK = "OK"
STATUS_DNF = "DNF"
STATUS_CRASHED = "CRASHED"
#: Unexpected exception during selection; traceback in ``extras["failure"]``.
STATUS_FAILED = "FAILED"
#: The isolated worker died without reporting (hard kill, segfault, OOM kill).
STATUS_KILLED = "KILLED"

#: Resource verdicts — deterministic under a fixed budget, never retried,
#: and propagated to larger k by the sweep drivers (the paper's concession
#: for CELF/SIMPATH).
BUDGET_STATUSES = (STATUS_DNF, STATUS_CRASHED)
#: Possibly-transient verdicts, eligible for retry-with-reseed.
FAILURE_STATUSES = (STATUS_FAILED, STATUS_KILLED)


class ResourceBudget:
    """Time and memory ceilings checked cooperatively from inner loops."""

    def __init__(
        self,
        time_limit_seconds: float | None = None,
        memory_limit_mb: float | None = None,
    ) -> None:
        self.time_limit_seconds = time_limit_seconds
        self.memory_limit_mb = memory_limit_mb
        self._started_at: float | None = None

    def start(self) -> None:
        self._started_at = time.perf_counter()

    def elapsed(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.perf_counter() - self._started_at

    def check(self) -> None:
        """Raise :class:`BudgetExceeded` if either ceiling is breached."""
        if self.time_limit_seconds is not None and self._started_at is not None:
            if self.elapsed() > self.time_limit_seconds:
                raise BudgetExceeded(
                    STATUS_DNF,
                    f"exceeded time limit of {self.time_limit_seconds:.1f}s",
                )
        if self.memory_limit_mb is not None and tracemalloc.is_tracing():
            __, peak = tracemalloc.get_traced_memory()
            if peak / 1e6 > self.memory_limit_mb:
                raise BudgetExceeded(
                    STATUS_CRASHED,
                    f"exceeded memory limit of {self.memory_limit_mb:.0f} MB",
                )


@dataclass(frozen=True)
class Measurement:
    """Wall time and peak traced memory of a measured block."""

    elapsed_seconds: float
    peak_memory_mb: float | None


#: Active tracking ``measure()`` frames, innermost last.  tracemalloc has a
#: single process-wide peak, so a nested block's ``reset_peak()`` would
#: erase everything the enclosing block had accumulated; each frame records
#: the peak it clobbered (``outer_peak``) and the nested peaks reported to
#: it (``inner_peak``) so every level still reports its true maximum.
_MEASURE_FRAMES: list[dict[str, int]] = []


@contextmanager
def measure(track_memory: bool = True) -> Iterator[list[Measurement]]:
    """Context manager appending one :class:`Measurement` to the yielded list.

    Nesting is supported: an inner ``measure()`` restores the peak it
    stole from the enclosing block, so the outer measurement reports
    ``max`` over its whole window, not just the tail after the inner
    block's ``reset_peak()``.
    """
    sink: list[Measurement] = []
    was_tracing = tracemalloc.is_tracing()
    if track_memory and not was_tracing:
        tracemalloc.start()
    tracking = track_memory and tracemalloc.is_tracing()
    frame = {"outer_peak": 0, "inner_peak": 0}
    if tracking:
        __, frame["outer_peak"] = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        _MEASURE_FRAMES.append(frame)
    started = time.perf_counter()
    try:
        yield sink
    finally:
        elapsed = time.perf_counter() - started
        peak_mb: float | None = None
        if tracking:
            _MEASURE_FRAMES.pop()
            __, peak = tracemalloc.get_traced_memory()
            peak = max(peak, frame["inner_peak"])
            peak_mb = peak / 1e6
            if not was_tracing:
                tracemalloc.stop()
            elif _MEASURE_FRAMES:
                # Hand the enclosing frame everything its window actually
                # saw: its pre-reset peak plus this whole nested episode.
                parent = _MEASURE_FRAMES[-1]
                parent["inner_peak"] = max(
                    parent["inner_peak"], peak, frame["outer_peak"]
                )
        sink.append(Measurement(elapsed, peak_mb))


@dataclass
class RunRecord:
    """One (algorithm, dataset, model, k) cell of the paper's tables."""

    algorithm: str
    model: str
    k: int
    status: str
    seeds: list[int] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    peak_memory_mb: float | None = None
    spread: float | None = None
    spread_std: float | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def rr_pool_mb(self) -> float | None:
        """RR-pool CSR footprint in MB, when the technique reported one.

        tracemalloc peaks underestimate a pool that is populated and
        freed in phases; the flat engine reports the arrays' true size in
        ``extras["rr_pool_bytes"]``, surfaced here for memory benchmarks.
        """
        raw = self.extras.get("rr_pool_bytes")
        if raw is None:
            return None
        return float(raw) / 1e6

    def cell(self) -> str:
        """Table-3-style cell: spread/time/memory or DNF/Crashed."""
        if not self.ok:
            return self.status
        mem = f"{self.peak_memory_mb:.0f}MB" if self.peak_memory_mb is not None else "-"
        spread = f"{self.spread:.1f}" if self.spread is not None else "-"
        return f"{spread} / {self.elapsed_seconds:.2f}s / {mem}"


def run_with_budget(
    algorithm: IMAlgorithm,
    graph: DiGraph,
    k: int,
    model: PropagationModel,
    rng: np.random.Generator | None = None,
    time_limit_seconds: float | None = None,
    memory_limit_mb: float | None = None,
    track_memory: bool = True,
    telemetry: "_telemetry.Telemetry | None" = None,
) -> tuple[RunRecord, SeedSelectionResult | None]:
    """Run seed selection under a budget, mapping violations to statuses.

    Nothing an algorithm raises escapes as an exception: budget violations
    become ``DNF``/``CRASHED``, ``MemoryError`` becomes ``CRASHED``, and
    any other exception becomes ``FAILED`` with the traceback captured in
    ``extras["failure"]`` — one bad cell never aborts a sweep.

    ``telemetry`` activates a collecting handle around the selection call
    (root span ``select:<name>``) and stores its snapshot in
    ``extras["telemetry"]`` — even for failed cells, where the partial
    span tree shows which phase died.  ``None`` inherits whatever handle
    is already ambient (usually :data:`repro.framework.telemetry.NULL`),
    leaving records untouched.
    """
    if memory_limit_mb is not None and not track_memory:
        raise ValueError(
            "memory_limit_mb requires track_memory=True: the cooperative "
            "ceiling is enforced via tracemalloc, so with tracking off it "
            "would silently never fire"
        )
    rng = np.random.default_rng() if rng is None else rng
    budget = ResourceBudget(time_limit_seconds, memory_limit_mb)
    budget.start()
    result: SeedSelectionResult | None = None
    status = STATUS_OK
    detail: dict[str, Any] = {}
    activation = (
        _telemetry.activate(telemetry)
        if telemetry is not None
        else nullcontext(_telemetry.current())
    )
    with measure(track_memory=track_memory) as sink, activation as tele:
        try:
            with tele.span(f"select:{algorithm.name}"):
                result = algorithm.select(graph, k, model, rng=rng, budget=budget)
        except BudgetExceeded as exc:
            status = exc.status
            detail["budget_detail"] = exc.detail
        except MemoryError:
            status = STATUS_CRASHED
            detail["budget_detail"] = "MemoryError"
        except Exception as exc:
            status = STATUS_FAILED
            detail["failure"] = {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            }
            if isinstance(exc, PoolError):
                # Inner worker-pool failures (quarantined chunk, collapse
                # during serial downgrade) keep their structured detail so
                # a FAILED cell says *which* chunk poisoned it.
                detail["failure"]["pool"] = exc.details
    if telemetry is not None:
        detail["telemetry"] = telemetry.snapshot()
    m = sink[0]
    record = RunRecord(
        algorithm=algorithm.name,
        model=model.name,
        k=k,
        status=status,
        seeds=result.seeds if result else [],
        elapsed_seconds=m.elapsed_seconds,
        peak_memory_mb=m.peak_memory_mb,
        extras={**(result.extras if result else {}), **detail},
    )
    return record, result

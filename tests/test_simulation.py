"""Tests for Monte-Carlo spread estimation (Alg. 1 / Definition 6)."""

import numpy as np
import pytest

from repro.diffusion.models import IC, WC, Dynamics
from repro.diffusion.simulation import (
    DEFAULT_MC_SIMULATIONS,
    SpreadEstimate,
    monte_carlo_spread,
)
from repro.graph.digraph import DiGraph


class TestSpreadEstimate:
    def test_stderr(self):
        est = SpreadEstimate(mean=10.0, std=2.0, simulations=100)
        assert est.stderr == pytest.approx(0.2)

    def test_stderr_degenerate(self):
        assert np.isnan(SpreadEstimate(1.0, 0.0, 0).stderr)


class TestMonteCarlo:
    def test_default_simulations_is_10k(self):
        # Kempe et al.'s recommendation, followed by the paper.
        assert DEFAULT_MC_SIMULATIONS == 10_000

    def test_spread_at_least_seed_count(self, line_graph, rng):
        est = monte_carlo_spread(line_graph, [0, 3], Dynamics.IC, r=50, rng=rng)
        assert est.mean >= 2.0

    def test_spread_at_most_n(self, line_graph, rng):
        est = monte_carlo_spread(line_graph, [0], Dynamics.IC, r=50, rng=rng)
        assert est.mean <= line_graph.n

    def test_accepts_propagation_model(self, line_graph, rng):
        est = monte_carlo_spread(line_graph, [0], IC, r=20, rng=rng)
        assert est.simulations == 20

    def test_return_samples(self, line_graph, rng):
        est, samples = monte_carlo_spread(
            line_graph, [0], Dynamics.IC, r=30, rng=rng, return_samples=True
        )
        assert samples.shape == (30,)
        assert est.mean == pytest.approx(samples.mean())

    def test_invalid_r(self, line_graph, rng):
        with pytest.raises(ValueError):
            monte_carlo_spread(line_graph, [0], Dynamics.IC, r=0, rng=rng)

    def test_deterministic_graph_zero_variance(self, rng):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[1.0, 1.0])
        est = monte_carlo_spread(g, [0], Dynamics.IC, r=50, rng=rng)
        assert est.mean == 3.0
        assert est.std == 0.0

    def test_monotone_in_seed_set(self, two_cliques, rng):
        # σ(S) is monotone (Sec. 2.2): adding a seed cannot hurt.
        small = monte_carlo_spread(two_cliques, [0], Dynamics.IC, r=4000, rng=rng)
        large = monte_carlo_spread(two_cliques, [0, 3], Dynamics.IC, r=4000, rng=rng)
        assert large.mean >= small.mean - 3 * (small.stderr + large.stderr)

    def test_seeded_reproducibility(self, two_cliques):
        a = monte_carlo_spread(
            two_cliques, [0], Dynamics.IC, r=100, rng=np.random.default_rng(5)
        )
        b = monte_carlo_spread(
            two_cliques, [0], Dynamics.IC, r=100, rng=np.random.default_rng(5)
        )
        assert a.mean == b.mean

    def test_wc_easier_to_influence_low_degree(self, rng):
        # Under WC a node with a single in-neighbour is influenced w.p. 1.
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        wg = WC.weighted(g)
        est = monte_carlo_spread(wg, [0], WC, r=50, rng=rng)
        assert est.mean == 3.0

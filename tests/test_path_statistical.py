"""Path-proxy engine equivalence on a real dataset (fixed seeds).

Marked ``statistical`` like the RR/spread suites: heavier than the unit
tier, run standalone with ``pytest -m statistical -k path``.  The flat
engine claims byte-identical seed sets, so every assertion is exact.
"""

import numpy as np
import pytest

from repro.algorithms.irie import IRIE
from repro.algorithms.ldag import LDAG
from repro.algorithms.pmia import PMIA
from repro.datasets import catalog
from repro.diffusion.models import IC, WC, LT

pytestmark = pytest.mark.statistical

GOLDEN_NETHEPT = {
    ("PMIA", "IC"): [5, 3, 1, 9, 12, 0, 11, 31, 4, 33],
    ("PMIA", "WC"): [5, 3, 12, 1, 9, 11, 4, 31, 0, 6],
    ("LDAG", "LT"): [5, 3, 12, 1, 9, 11, 4, 0, 31, 6],
    ("IRIE", "WC"): [5, 3, 12, 1, 9, 11, 31, 4, 0, 6],
}

MODELS = {"IC": IC, "WC": WC, "LT": LT}
CLASSES = {"PMIA": PMIA, "LDAG": LDAG, "IRIE": IRIE}


@pytest.fixture(scope="module")
def nethept():
    return catalog.load("nethept")


def _weighted(nethept, model):
    return model.weighted(nethept, np.random.default_rng(0))


@pytest.mark.parametrize("name,model_name", sorted(GOLDEN_NETHEPT))
def test_path_engine_matches_legacy_on_nethept(name, model_name, nethept):
    model = MODELS[model_name]
    graph = _weighted(nethept, model)
    flat = CLASSES[name](engine="flat").select(
        graph, 10, model, rng=np.random.default_rng(0)
    )
    legacy = CLASSES[name](engine="legacy").select(
        graph, 10, model, rng=np.random.default_rng(0)
    )
    assert flat.seeds == legacy.seeds
    assert flat.seeds == GOLDEN_NETHEPT[(name, model_name)]


def test_path_workers_do_not_change_seeds(nethept):
    graph = _weighted(nethept, WC)
    serial = PMIA().select(graph, 10, WC, rng=np.random.default_rng(0))
    fanned = PMIA(path_workers=2).select(graph, 10, WC, rng=np.random.default_rng(0))
    assert fanned.seeds == serial.seeds

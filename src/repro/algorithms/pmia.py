"""PMIA — Prefix-excluding Maximum Influence Arborescence (Chen, Wang &
Wang, KDD'10).

The benchmarking paper excludes PMIA from its main roster because IRIE
dominates it ("we do not consider degree discount heuristics and PMIA as
IRIE outperforms them significantly", Sec. 4) — but it is the canonical
local score-estimation technique for IC and the conceptual parent of both
IRIE's influence-estimation step and LDAG, so the platform ships it for
completeness and for ablation against IRIE.

Machinery:

* ``MIIA(v, θ)`` — the maximum-influence in-arborescence of ``v``: the
  tree of best (max product-probability) paths into ``v``, pruned below
  θ (default 1/320).
* On a tree, IC activation probabilities are exact and linear-time:
  ``ap(x) = 1 − Π_{y: parent(y)=x} (1 − ap(y)·W(y,x))`` with seeds pinned
  at 1.
* The linear coefficient ``α(v,u) = ∂ap(v)/∂ap(u)`` follows the MIA
  recursion: α of the root is 1, and a child ``u`` of ``x`` receives
  ``α(v,x)·W(u,x)·Π_{siblings y}(1 − ap(y)·W(y,x))``, zero when ``x`` is a
  seed (its ap cannot change).
* Greedy selection maximizes ``IncInf(u) = Σ_v α(v,u)·(1 − ap_v(u))``.
  The *prefix-excluding* part: after a seed is chosen, the arborescences
  of affected roots are rebuilt with all seeds banned as interior nodes
  (their influence is already accounted for).
"""

from __future__ import annotations

import heapq
from typing import Any

import numpy as np

from ..diffusion import paths
from ..diffusion.models import Dynamics, PropagationModel
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm

__all__ = ["PMIA", "build_miia"]


class _Arborescence:
    """MIIA(root, θ): parent pointers toward the root + processing order."""

    __slots__ = ("root", "order", "parent", "weight", "children", "ap", "alpha")

    def __init__(
        self,
        root: int,
        order: list[int],
        parent: dict[int, int],
        weight: dict[int, float],
    ) -> None:
        self.root = root
        #: Nodes sorted farthest-first (leaves before the root).
        self.order = order
        #: parent[u] = next hop from u toward the root (root absent).
        self.parent = parent
        #: weight[u] = W(u, parent[u]).
        self.weight = weight
        self.children: dict[int, list[int]] = {u: [] for u in order}
        for u, x in parent.items():
            self.children[x].append(u)
        self.ap: dict[int, float] = {}
        self.alpha: dict[int, float] = {}

    @property
    def nodes(self) -> set[int]:
        return set(self.order)


def build_miia(
    graph: DiGraph,
    root: int,
    theta: float,
    blocked: np.ndarray | None = None,
) -> _Arborescence:
    """Max-probability in-arborescence of ``root``, pruned below ``theta``.

    ``blocked`` marks nodes that may not appear as *interior* nodes (the
    prefix exclusion: chosen seeds block influence paths through them).
    """
    best: dict[int, float] = {root: 1.0}
    parent: dict[int, int] = {}
    weight: dict[int, float] = {}
    settle_order: list[int] = []
    heap: list[tuple[float, int]] = [(-1.0, root)]
    while heap:
        neg_pp, x = heapq.heappop(heap)
        pp = -neg_pp
        # A node is pushed once per strict improvement, so stale entries
        # carry a pp below the final best[x]; comparing against best skips
        # them without a separate settled set (pushed values are strictly
        # increasing, so the equality fires exactly once per node).
        if pp < best[x]:
            continue
        settle_order.append(x)
        if blocked is not None and blocked[x] and x != root:
            continue  # a seed conducts nothing further upstream
        src, w = graph.in_neighbors(x)
        for y, wy in zip(src, w):
            y = int(y)
            nxt = pp * float(wy)
            if nxt >= theta and nxt > best.get(y, 0.0):
                best[y] = nxt
                parent[y] = x
                weight[y] = float(wy)
                heapq.heappush(heap, (-nxt, y))
    # Drop entries whose parent chain was superseded after their push —
    # parent/weight were overwritten on every improvement, so they are
    # consistent with `best`; order leaves-first = reverse settle order.
    order = list(reversed(settle_order))
    return _Arborescence(root, order, parent, weight)


class PMIA(IMAlgorithm):
    """Greedy over maximum-influence arborescences (IC model)."""

    name = "PMIA"
    supported = (Dynamics.IC,)
    external_parameter = None

    def __init__(
        self,
        theta: float = 1.0 / 320.0,
        engine: str = "flat",
        path_workers: int | None = None,
    ) -> None:
        if not 0.0 < theta <= 1.0:
            raise ValueError("theta must be in (0, 1]")
        if engine not in ("flat", "legacy"):
            raise ValueError("engine must be 'flat' or 'legacy'")
        self.theta = theta
        #: "flat" runs on the batched path-proxy engine (bit-identical
        #: seeds); "legacy" keeps the per-root dict/heap reference path.
        self.engine = engine
        self.path_workers = path_workers

    # -- tree dynamic programs -----------------------------------------

    @staticmethod
    def _forward_ap(arb: _Arborescence, in_seed: np.ndarray) -> None:
        """Exact IC activation probability on the tree (leaves first)."""
        ap: dict[int, float] = {}
        for x in arb.order:
            if in_seed[x]:
                ap[x] = 1.0
                continue
            miss = 1.0
            for y in arb.children[x]:
                miss *= 1.0 - ap[y] * arb.weight[y]
            ap[x] = 1.0 - miss
        arb.ap = ap

    @staticmethod
    def _backward_alpha(arb: _Arborescence, in_seed: np.ndarray) -> None:
        """α(root, u) by the MIA recursion (root first)."""
        alpha: dict[int, float] = {u: 0.0 for u in arb.order}
        if in_seed[arb.root]:
            arb.alpha = alpha
            return
        alpha[arb.root] = 1.0
        for x in reversed(arb.order):  # root towards the leaves
            ax = alpha[x]
            if ax == 0.0:
                continue
            if in_seed[x] and x != arb.root:
                continue
            kids = arb.children[x]
            if not kids:
                continue
            misses = [1.0 - arb.ap[y] * arb.weight[y] for y in kids]
            total_miss = 1.0
            for m in misses:
                total_miss *= m
            for y, miss_y in zip(kids, misses):
                # Product over siblings of y = total product / y's factor;
                # guard the miss_y == 0 case (a sibling with certain
                # activation) by recomputing directly.
                if miss_y > 1e-12:
                    siblings = total_miss / miss_y
                else:
                    siblings = 1.0
                    for z, miss_z in zip(kids, misses):
                        if z != y:
                            siblings *= miss_z
                alpha[y] = ax * arb.weight[y] * siblings
        arb.alpha = alpha

    def _gains(self, arb: _Arborescence, in_seed: np.ndarray) -> dict[int, float]:
        self._forward_ap(arb, in_seed)
        self._backward_alpha(arb, in_seed)
        return {
            u: arb.alpha[u] * (1.0 - arb.ap[u])
            for u in arb.order
            if not in_seed[u]
        }

    # -- selection -------------------------------------------------------

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        if self.engine == "flat":
            return self._select_flat(graph, k, budget)
        in_seed = np.zeros(graph.n, dtype=bool)
        arbs: list[_Arborescence] = []
        containing: list[set[int]] = [set() for __ in range(graph.n)]
        for v in range(graph.n):
            if v % 64 == 0:
                self._tick(budget)
            arb = build_miia(graph, v, self.theta)
            idx = len(arbs)
            arbs.append(arb)
            for u in arb.order:
                containing[u].add(idx)

        inc_inf = np.zeros(graph.n, dtype=np.float64)
        per_arb_gain: list[dict[int, float]] = []
        for arb in arbs:
            gains = self._gains(arb, in_seed)
            per_arb_gain.append(gains)
            for u, g in gains.items():
                inc_inf[u] += g

        seeds: list[int] = []
        for __ in range(k):
            self._tick(budget)
            s = int(np.where(in_seed, -np.inf, inc_inf).argmax())
            seeds.append(s)
            in_seed[s] = True
            # Prefix exclusion: rebuild every arborescence containing s
            # with the updated seed set banned from interior positions.
            for idx in sorted(containing[s]):
                for u, g in per_arb_gain[idx].items():
                    inc_inf[u] -= g
                old_nodes = arbs[idx].nodes
                rebuilt = build_miia(
                    graph, arbs[idx].root, self.theta, blocked=in_seed
                )
                arbs[idx] = rebuilt
                for u in old_nodes - rebuilt.nodes:
                    containing[u].discard(idx)
                for u in rebuilt.nodes - old_nodes:
                    containing[u].add(idx)
                gains = self._gains(rebuilt, in_seed)
                per_arb_gain[idx] = gains
                for u, g in gains.items():
                    inc_inf[u] += g
        return seeds, {
            "theta": self.theta,
            "avg_arborescence_size": float(
                np.mean([len(a.order) for a in arbs])
            ),
        }

    def _select_flat(
        self,
        graph: DiGraph,
        k: int,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        """Engine path: batched MIIA builds + vectorized tree DPs.

        Structurally the same greedy as the legacy loop — identical float
        expressions in identical accumulation order — with the per-root
        Dijkstra/dict walks replaced by the flat path-proxy engine and
        each round's prefix-exclusion rebuild batched over the dirty
        roots from the ``containing`` inverted index.
        """
        def tick() -> None:
            self._tick(budget)

        in_seed = np.zeros(graph.n, dtype=bool)
        store = paths.build_tree_store(
            graph, self.theta, workers=self.path_workers, tick=tick
        )
        inc_inf = np.zeros(graph.n, dtype=np.float64)
        per_gain = store.gains(list(range(len(store))), in_seed)
        for nodes, g in per_gain:
            np.add.at(inc_inf, nodes, g)

        seeds: list[int] = []
        for __ in range(k):
            self._tick(budget)
            s = int(np.where(in_seed, -np.inf, inc_inf).argmax())
            seeds.append(s)
            in_seed[s] = True
            dirty = store.dirty(s)
            store.rebuild(dirty, in_seed, tick=tick)
            new_gains = store.gains(dirty, in_seed)
            # Swap contributions per structure in index order, exactly the
            # legacy subtract-old / add-new interleaving.
            for idx, (nodes, g) in zip(dirty, new_gains):
                old_nodes, old_g = per_gain[idx]
                np.subtract.at(inc_inf, old_nodes, old_g)
                np.add.at(inc_inf, nodes, g)
                per_gain[idx] = (nodes, g)
        return seeds, {
            "theta": self.theta,
            "avg_arborescence_size": float(store.sizes().mean()),
        }

"""Statistical-equivalence tests for the flat RR engine.

Serial and parallel RR pools draw from different ``SeedSequence``
streams, so they can never be compared sample-for-sample — but they must
agree *distributionally*: same RR-set size law, same coverage estimates.
These tests pin that down with KS and chi-squared statistics on a seeded
power-law graph, plus exact-oracle convergence checks on tiny graphs.

Everything runs on fixed seeds, so the p-value assertions are
deterministic; the suite doubles as a standalone CI job via
``pytest -m statistical``.
"""

import numpy as np
import pytest

from repro.diffusion.models import Dynamics, WC
from repro.diffusion.rrpool import FlatRRPool, greedy_max_cover
from repro.diffusion.rrsets import greedy_max_cover_legacy
from repro.graph.digraph import DiGraph
from repro.graph.generators import build, powerlaw_configuration
from tests.oracles import exact_spread

stats = pytest.importorskip("scipy.stats")

pytestmark = pytest.mark.statistical

POOL_SIZE = 4000
P_FLOOR = 0.01  # deterministic under fixed seeds; guards distribution drift


@pytest.fixture(scope="module")
def powerlaw_graph():
    rng = np.random.default_rng(2024)
    return WC.weighted(build(powerlaw_configuration(250, 2.3, 4.0, rng)), rng)


def sample_pool(graph, dynamics, workers, seed=101, count=POOL_SIZE):
    pool = FlatRRPool(graph.n)
    pool.extend(
        graph, dynamics, count, np.random.default_rng(seed), workers=workers
    )
    return pool


def set_sizes(pool):
    return np.diff(pool.set_ptr)


class TestSerialVsParallelDistribution:
    @pytest.mark.parametrize("dynamics", [Dynamics.IC, Dynamics.LT])
    def test_rr_sizes_ks(self, powerlaw_graph, dynamics):
        serial = sample_pool(powerlaw_graph, dynamics, workers=None)
        parallel = sample_pool(powerlaw_graph, dynamics, workers=2)
        result = stats.ks_2samp(set_sizes(serial), set_sizes(parallel))
        assert result.pvalue > P_FLOOR

    @pytest.mark.parametrize("dynamics", [Dynamics.IC, Dynamics.LT])
    def test_coverage_chi_squared(self, powerlaw_graph, dynamics):
        """Covered/uncovered counts for a fixed seed set must be homogeneous."""
        serial = sample_pool(powerlaw_graph, dynamics, workers=None)
        parallel = sample_pool(powerlaw_graph, dynamics, workers=2)
        top = np.argsort(-powerlaw_graph.out_degree())[:5].tolist()
        table = []
        for pool in (serial, parallel):
            covered = int(round(pool.coverage_fraction(top) * len(pool)))
            table.append([covered, len(pool) - covered])
        chi2 = stats.chi2_contingency(np.array(table))
        assert chi2.pvalue > P_FLOOR

    @pytest.mark.parametrize("dynamics", [Dynamics.IC, Dynamics.LT])
    def test_size_histogram_chi_squared(self, powerlaw_graph, dynamics):
        """Binned RR-set size histograms must be homogeneous.

        Sizes are i.i.d. across sets (one draw per set), so a 2xB
        contingency chi-squared is a valid homogeneity test — unlike
        per-node membership counts, which are correlated within a set.
        """
        serial = sample_pool(powerlaw_graph, dynamics, workers=None)
        parallel = sample_pool(powerlaw_graph, dynamics, workers=2)
        s_sizes, p_sizes = set_sizes(serial), set_sizes(parallel)
        edges = np.unique(
            np.quantile(np.concatenate([s_sizes, p_sizes]), np.linspace(0, 1, 9))
        )
        edges[-1] += 1  # make the top bin right-inclusive
        s_hist, __ = np.histogram(s_sizes, bins=edges)
        p_hist, __ = np.histogram(p_sizes, bins=edges)
        chi2 = stats.chi2_contingency(np.array([s_hist, p_hist]))
        assert chi2.pvalue > P_FLOOR

    @pytest.mark.parametrize("dynamics", [Dynamics.IC, Dynamics.LT])
    def test_same_seeds_selected(self, powerlaw_graph, dynamics):
        """On a big enough pool, serial and parallel pools pick the same top seed."""
        serial = sample_pool(powerlaw_graph, dynamics, workers=None)
        parallel = sample_pool(powerlaw_graph, dynamics, workers=2)
        degree = powerlaw_graph.out_degree()
        s_seeds, __ = greedy_max_cover(serial, 1, pad_priority=degree)
        p_seeds, __ = greedy_max_cover(parallel, 1, pad_priority=degree)
        assert s_seeds == p_seeds


class TestFlatVsLegacyCover:
    """Flat-CSR max-cover must be byte-identical to the legacy list cover."""

    @pytest.mark.parametrize("seed", [11, 22, 33, 44, 55])
    def test_identical_seeds_on_randomized_pools(self, powerlaw_graph, seed):
        rng = np.random.default_rng(seed)
        dynamics = Dynamics.IC if seed % 2 else Dynamics.LT
        pool = FlatRRPool(powerlaw_graph.n)
        pool.extend(powerlaw_graph, dynamics, 1500, rng)
        k = int(rng.integers(1, 25))
        degree = powerlaw_graph.out_degree()
        flat_seeds, flat_cov = greedy_max_cover(pool, k, pad_priority=degree)
        legacy_seeds, legacy_cov = greedy_max_cover_legacy(
            pool, k, pad_priority=degree
        )
        assert flat_seeds == legacy_seeds
        assert flat_cov == legacy_cov


class TestOracleConvergence:
    """Borgs et al.'s identity against brute-force σ(S) on ≤10-node graphs."""

    ORACLE_POOL = 20_000

    @pytest.fixture
    def ten_node_graph(self):
        edges = [
            (0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5),
            (5, 6), (2, 7), (7, 8), (8, 9),
        ]
        return DiGraph.from_edges(10, edges, weights=[0.4] * len(edges))

    @pytest.mark.parametrize("dynamics", [Dynamics.IC, Dynamics.LT])
    @pytest.mark.parametrize("workers", [None, 2])
    def test_coverage_converges_to_exact_spread(
        self, ten_node_graph, dynamics, workers
    ):
        graph = ten_node_graph
        seeds = [0, 7]
        pool = sample_pool(graph, dynamics, workers, seed=5, count=self.ORACLE_POOL)
        fraction = pool.coverage_fraction(seeds)
        estimate = fraction * graph.n
        exact = exact_spread(graph, seeds, dynamics)
        # Coverage is a binomial proportion: se(σ̂) = n·sqrt(p(1-p)/T).
        stderr = graph.n * np.sqrt(
            max(fraction * (1.0 - fraction), 1e-12) / self.ORACLE_POOL
        )
        assert abs(estimate - exact) <= 3.0 * stderr

    @pytest.mark.parametrize("dynamics", [Dynamics.IC, Dynamics.LT])
    def test_diamond_graph_single_seed(self, diamond_graph, dynamics):
        pool = sample_pool(
            diamond_graph, dynamics, workers=None, seed=3, count=self.ORACLE_POOL
        )
        fraction = pool.coverage_fraction([0])
        estimate = fraction * diamond_graph.n
        exact = exact_spread(diamond_graph, [0], dynamics)
        stderr = diamond_graph.n * np.sqrt(
            max(fraction * (1.0 - fraction), 1e-12) / self.ORACLE_POOL
        )
        assert abs(estimate - exact) <= 3.0 * stderr

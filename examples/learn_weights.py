"""Learning influence probabilities from propagation traces.

Sec. 2.1 of the paper notes edge weights should ideally be *learned* from
propagation data, but no such data exists for public graphs — so the
whole benchmark falls back to model-assigned weights.  This example shows
the platform's learning substrate closing the loop on synthetic truth:

1. plant ground-truth weights on the nethept analogue,
2. simulate an action log (the WSDM'10 trace format),
3. learn weights back with three estimators,
4. check both weight fidelity and — what actually matters — whether seed
   selection on the learned graph still finds good seeds for the truth.

Run with:  python examples/learn_weights.py
"""

import numpy as np

from repro import algorithms, datasets, diffusion
from repro.learning import (
    bernoulli,
    generate_action_log,
    jaccard,
    partial_credits,
    seed_set_transfer,
    weight_error,
)


def main() -> None:
    topology = datasets.load("nethept")
    rng = np.random.default_rng(0)
    true_graph = topology.with_weights(rng.uniform(0.02, 0.3, topology.m))
    print(f"Ground truth: {topology} with U(0.02, 0.3) edge probabilities")

    log = generate_action_log(true_graph, num_actions=4000, rng=rng)
    print(
        f"Simulated action log: {len(log)} actions, mean cascade size "
        f"{log.mean_cascade_size():.1f}"
    )

    estimators = {
        "bernoulli": bernoulli,
        "jaccard": jaccard,
        "partial credits": partial_credits,
    }
    print(f"\n{'Estimator':<16} {'MAE':>7} {'RMSE':>7} {'corr':>6} {'coverage':>9}")
    print("-" * 50)
    learned_graphs = {}
    for name, estimator in estimators.items():
        learned = estimator(true_graph, log)
        learned_graphs[name] = learned
        err = weight_error(true_graph, learned)
        print(
            f"{name:<16} {err.mae:>7.4f} {err.rmse:>7.4f} "
            f"{err.correlation:>6.3f} {100 * err.coverage:>8.1f}%"
        )

    print("\nSeed-set transfer (EaSyIM, k=10, spreads on the TRUE graph):")
    for name, learned in learned_graphs.items():
        result = seed_set_transfer(
            true_graph,
            learned,
            diffusion.IC,
            algorithms.make("EaSyIM", path_length=3),
            k=10,
            rng=np.random.default_rng(1),
            mc_simulations=500,
        )
        print(
            f"  {name:<16} transferred {result['transferred_spread']:7.1f} "
            f"vs oracle {result['true_spread']:7.1f} "
            f"(ratio {result['transfer_ratio']:.2f})"
        )
    print(
        "\nTakeaway: even moderately noisy weight estimates preserve the"
        " seed ranking — task fidelity is more forgiving than weight"
        " fidelity."
    )


if __name__ == "__main__":
    main()

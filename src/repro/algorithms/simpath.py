"""SIMPATH (Goyal, Lu & Lakshmanan, ICDM'11) — LT-only path enumeration.

Under LT, the spread of a set decomposes over simple paths:

    σ(S) = Σ_{u ∈ S} σ^{V−S+u}(u),   σ^W(u) = Σ_{simple paths P from u in W} weight(P)

(the empty path contributes 1 — the seed itself).  SIMPATH-SPREAD
enumerates simple paths by backtracking DFS, pruning any prefix whose
weight falls below η (default 1e-3).

Seed selection is CELF-style with two of the original's optimizations:

* shared through-counts: while computing σ(S) once per iteration, the
  weight of the paths passing through every node x is accumulated, so
  σ^{V−x}(S) = σ(S) − through(x) comes for free;
* look-ahead: the top-ℓ queue candidates are (re-)evaluated per iteration.

The vertex-cover start-up trick is omitted (it changes constants, not
output).  The behaviour the paper diagnoses in M5 is reproduced: under
LT-uniform the edge weights are large on low-degree graphs, the pruned
path forest explodes, and SIMPATH falls far behind LDAG — it only looks
competitive under the parallel-edges LT weighting of its own evaluation.
"""

from __future__ import annotations

from typing import Any

import heapq
import itertools

import numpy as np

from ..diffusion.models import Dynamics, PropagationModel
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm

__all__ = ["SIMPATH", "simpath_spread"]


def simpath_spread(
    graph: DiGraph,
    source: int,
    allowed: np.ndarray,
    eta: float,
    through: np.ndarray | None = None,
    budget: Any = None,
) -> float:
    """σ^W(source): total weight of simple paths from ``source`` within W.

    ``allowed`` masks W (the source itself need not be in it).  When
    ``through`` is given, the weight of every enumerated path is added to
    ``through[x]`` for each non-source node x on it.
    """
    total = 1.0
    on_path = np.zeros(graph.n, dtype=bool)
    on_path[source] = True
    out_ptr, out_dst, out_w = graph.out_ptr, graph.out_dst, graph.out_w
    # Explicit stack of (node, edge cursor, prefix weight); ``path`` holds
    # the nodes of the current prefix in order.
    stack: list[list[float]] = [[source, out_ptr[source], 1.0]]
    path: list[int] = [source]
    steps = 0
    while stack:
        node, cursor, weight = stack[-1]
        node = int(node)
        cursor = int(cursor)
        hi = int(out_ptr[node + 1])
        advanced = False
        while cursor < hi:
            steps += 1
            if budget is not None and steps % 4096 == 0:
                budget.check()
            v = int(out_dst[cursor])
            pw = weight * float(out_w[cursor])
            cursor += 1
            if not allowed[v] or on_path[v] or pw < eta:
                continue
            total += pw
            if through is not None:
                # The whole path (source excluded) carries this weight:
                # removing any of its nodes removes the path.
                for x in path[1:]:
                    through[x] += pw
                through[v] += pw
            stack[-1][1] = cursor
            on_path[v] = True
            stack.append([v, out_ptr[v], pw])
            path.append(v)
            advanced = True
            break
        if not advanced:
            stack.pop()
            path.pop()
            on_path[node] = False
    return total


class SIMPATH(IMAlgorithm):
    """CELF-style greedy over SIMPATH-SPREAD evaluations."""

    name = "SIMPATH"
    supported = (Dynamics.LT,)
    external_parameter = None

    def __init__(self, eta: float = 1e-3, lookahead: int = 4) -> None:
        if not 0.0 < eta <= 1.0:
            raise ValueError("eta must be in (0, 1]")
        if lookahead < 1:
            raise ValueError("lookahead must be positive")
        self.eta = eta
        self.lookahead = lookahead

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        n = graph.n
        allowed = np.ones(n, dtype=bool)
        counter = itertools.count()
        cached = np.zeros(n, dtype=np.float64)
        heap: list[tuple[float, int, int, int]] = []
        for v in range(n):
            self._tick(budget)
            sigma_v = simpath_spread(graph, v, allowed, self.eta, budget=budget)
            cached[v] = sigma_v
            heapq.heappush(heap, (-sigma_v, next(counter), v, 0))

        seeds: list[int] = []
        in_seed = np.zeros(n, dtype=bool)
        sigma_s = 0.0
        through = np.zeros(n, dtype=np.float64)
        while heap and len(seeds) < k:
            neg_gain, __, v, round_tag = heapq.heappop(heap)
            if in_seed[v] or -neg_gain != cached[v]:
                continue
            if round_tag == len(seeds):
                seeds.append(v)
                in_seed[v] = True
                sigma_s += -neg_gain
                if len(seeds) < k:
                    # One σ(S) pass with through-counts for the next round.
                    allowed = ~in_seed
                    through[:] = 0.0
                    sigma_s = 0.0
                    for u in seeds:
                        self._tick(budget)
                        sigma_s += simpath_spread(
                            graph, u, allowed, self.eta, through=through, budget=budget
                        )
                continue
            # Re-evaluate this candidate (plus up to lookahead-1 more).
            batch = [(v, -neg_gain)]
            while heap and len(batch) < self.lookahead:
                ng2, __c, v2, __r = heap[0]
                if in_seed[v2] or -ng2 != cached[v2]:
                    heapq.heappop(heap)
                    continue
                heapq.heappop(heap)
                batch.append((v2, -ng2))
            allowed = ~in_seed
            for x, __old in batch:
                self._tick(budget)
                sigma_x = simpath_spread(graph, x, allowed, self.eta, budget=budget)
                # σ(S + x) = σ^{V−x}(S) + σ^{V−S}(x)
                gain = (sigma_s - through[x] + sigma_x) - sigma_s
                cached[x] = gain
                heapq.heappush(heap, (-gain, next(counter), x, len(seeds)))
        return seeds, {"eta": self.eta, "lookahead": self.lookahead}

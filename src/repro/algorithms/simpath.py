"""SIMPATH (Goyal, Lu & Lakshmanan, ICDM'11) — LT-only path enumeration.

Under LT, the spread of a set decomposes over simple paths:

    σ(S) = Σ_{u ∈ S} σ^{V−S+u}(u),   σ^W(u) = Σ_{simple paths P from u in W} weight(P)

(the empty path contributes 1 — the seed itself).  SIMPATH-SPREAD
enumerates simple paths by backtracking DFS, pruning any prefix whose
weight falls below η (default 1e-3).  The enumeration keeps its prefix
bookkeeping in flat parallel stacks (node / cursor / slice end / prefix
weight indexed by depth) rather than per-frame objects.

Seed selection is CELF-style with two of the original's optimizations:

* shared through-counts: while computing σ(S) once per iteration, the
  weight of the paths passing through every node x is accumulated, so
  σ^{V−x}(S) = σ(S) − through(x) comes for free;
* look-ahead: the top-ℓ queue candidates are (re-)evaluated per iteration.

The original's third optimization, the vertex-cover start-up, is
available as an opt-in (``vertex_cover=True``): only nodes of a
deterministic maximal-matching cover C are enumerated directly, and for
u ∉ C (whose out-neighbors all lie in C)

    σ(u) = 1 + Σ_{(u,v) ∈ E} w(u,v) · (σ(v) − through_v(u)),

with through_v(u) collected during v's enumeration.  It stays off by
default because the η-pruning then happens from v's perspective (paths
are kept when their v-suffix clears η, not the full u-path), which
perturbs the initial CELF ranking — opting in trades byte-identical
seeds for skipping the |V| − |C| start-up enumerations.  ``path_workers``
fans the start-up σ pass over a process pool (the per-source
enumerations are independent and deterministic, so the result is
identical at any worker count).

The behaviour the paper diagnoses in M5 is reproduced: under LT-uniform
the edge weights are large on low-degree graphs, the pruned path forest
explodes, and SIMPATH falls far behind LDAG — it only looks competitive
under the parallel-edges LT weighting of its own evaluation.
"""

from __future__ import annotations

from typing import Any

import heapq
import itertools

import numpy as np

from ..diffusion.models import Dynamics, PropagationModel
from ..diffusion.paths import _worker_chunks
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm

__all__ = ["SIMPATH", "simpath_spread", "vertex_cover"]


def simpath_spread(
    graph: DiGraph,
    source: int,
    allowed: np.ndarray,
    eta: float,
    through: np.ndarray | None = None,
    budget: Any = None,
) -> float:
    """σ^W(source): total weight of simple paths from ``source`` within W.

    ``allowed`` masks W (the source itself need not be in it).  When
    ``through`` is given, the weight of every enumerated path is added to
    ``through[x]`` for each non-source node x on it.
    """
    total = 1.0
    out_ptr, out_dst, out_w = graph.out_ptr, graph.out_dst, graph.out_w
    on_path = bytearray(graph.n)
    on_path[source] = 1
    # Flat parallel stacks indexed by depth; slots are reused across
    # backtracks instead of being reallocated.  ``path`` holds the nodes
    # of the current prefix in order.
    s_node = [source]
    s_cur = [int(out_ptr[source])]
    s_hi = [int(out_ptr[source + 1])]
    s_w = [1.0]
    path = [source]
    depth = 0
    steps = 0
    while depth >= 0:
        cursor = s_cur[depth]
        hi = s_hi[depth]
        weight = s_w[depth]
        advanced = False
        while cursor < hi:
            steps += 1
            if budget is not None and steps % 4096 == 0:
                budget.check()
            v = int(out_dst[cursor])
            pw = weight * float(out_w[cursor])
            cursor += 1
            if not allowed[v] or on_path[v] or pw < eta:
                continue
            total += pw
            if through is not None:
                # The whole path (source excluded) carries this weight:
                # removing any of its nodes removes the path.
                for x in path[1:]:
                    through[x] += pw
                through[v] += pw
            s_cur[depth] = cursor
            on_path[v] = 1
            depth += 1
            if depth == len(s_node):
                s_node.append(v)
                s_cur.append(int(out_ptr[v]))
                s_hi.append(int(out_ptr[v + 1]))
                s_w.append(pw)
            else:
                s_node[depth] = v
                s_cur[depth] = int(out_ptr[v])
                s_hi[depth] = int(out_ptr[v + 1])
                s_w[depth] = pw
            path.append(v)
            advanced = True
            break
        if not advanced:
            on_path[s_node[depth]] = 0
            path.pop()
            depth -= 1
    return total


def vertex_cover(graph: DiGraph) -> np.ndarray:
    """Deterministic maximal-matching vertex cover (boolean mask).

    Edges are scanned in CSR order; whenever neither endpoint is covered
    yet, both join the cover.  Every edge therefore has at least one
    covered endpoint, so the complement is an independent set whose
    out-neighbors all lie in the cover.
    """
    cov = bytearray(graph.n)
    ptr = graph.out_ptr.tolist()
    dst = graph.out_dst.tolist()
    for u in range(graph.n):
        for e in range(ptr[u], ptr[u + 1]):
            if cov[u]:
                break
            v = dst[e]
            if not cov[v]:
                cov[u] = 1
                cov[v] = 1
    return np.frombuffer(bytes(cov), dtype=np.uint8).astype(bool)


def _sigma_plain(graph: DiGraph, eta: float, nodes: np.ndarray,
                 budget: Any = None) -> np.ndarray:
    """σ(v) for each v in ``nodes`` over the full graph (worker-safe).

    Chunk-invariant operands lead — the pool's shared-args convention,
    so the graph ships once per worker (shm arena when big enough).
    """
    allowed = np.ones(graph.n, dtype=bool)
    return np.array([
        simpath_spread(graph, int(v), allowed, eta, budget=budget)
        for v in nodes
    ], dtype=np.float64)


def _sigma_cover(graph: DiGraph, eta: float, cov: np.ndarray,
                 vnodes: np.ndarray, budget: Any = None
                 ) -> tuple[np.ndarray, np.ndarray]:
    """σ(v) for covered nodes plus the independent-set contributions.

    Returns ``(sigmas, contrib)`` where ``contrib[u]`` accumulates
    ``w(u,v) · (σ(v) − through_v(u))`` over the processed v for every
    uncovered in-neighbor u — summable across chunks, so the pass fans
    out cleanly.  Chunk-invariant operands lead (shared-args convention).
    """
    n = graph.n
    allowed = np.ones(n, dtype=bool)
    in_ptr, in_src, in_w = graph.in_ptr, graph.in_src, graph.in_w
    sig = np.zeros(len(vnodes), dtype=np.float64)
    contrib = np.zeros(n, dtype=np.float64)
    tv = np.zeros(n, dtype=np.float64)
    for i, v in enumerate(vnodes):
        v = int(v)
        tv[:] = 0.0
        sv = simpath_spread(graph, v, allowed, eta, through=tv, budget=budget)
        sig[i] = sv
        lo, hi = int(in_ptr[v]), int(in_ptr[v + 1])
        us = in_src[lo:hi]
        keep = ~cov[us]
        if keep.any():
            um = us[keep]
            contrib[um] += in_w[lo:hi][keep] * (sv - tv[um])
    return sig, contrib


class SIMPATH(IMAlgorithm):
    """CELF-style greedy over SIMPATH-SPREAD evaluations."""

    name = "SIMPATH"
    supported = (Dynamics.LT,)
    external_parameter = None

    def __init__(self, eta: float = 1e-3, lookahead: int = 4,
                 vertex_cover: bool = False,
                 path_workers: int | None = None) -> None:
        if not 0.0 < eta <= 1.0:
            raise ValueError("eta must be in (0, 1]")
        if lookahead < 1:
            raise ValueError("lookahead must be positive")
        self.eta = eta
        self.lookahead = lookahead
        self.vertex_cover = vertex_cover
        self.path_workers = path_workers

    def _initial_sigmas(self, graph: DiGraph, budget: Budget | None) -> np.ndarray:
        """The start-up σ(v) pass: direct, cover-based, and/or fanned out."""
        n = graph.n
        workers = self.path_workers
        if self.vertex_cover:
            cov = vertex_cover(graph)
            vnodes = np.flatnonzero(cov)
            sigma = np.ones(n, dtype=np.float64)  # the empty path
            if workers is not None and workers > 1 and vnodes.size > 1:
                from ..framework.pool import run_chunks  # lazy: import cycle

                spans = _worker_chunks(vnodes.size, workers)
                parts = run_chunks(
                    _sigma_cover,
                    [(vnodes[lo:hi],) for lo, hi in spans],
                    workers=len(spans),
                    label="simpath.sigma_cover",
                    tick=lambda: self._tick(budget),
                    shared=(graph, self.eta, cov),
                )
                contrib = np.zeros(n, dtype=np.float64)
                for __, part in parts:
                    contrib += part
                sigma[vnodes] = np.concatenate([sig for sig, __ in parts])
            else:
                sig, contrib = _sigma_cover(graph, self.eta, cov, vnodes,
                                            budget=budget)
                sigma[vnodes] = sig
            rest = ~cov
            sigma[rest] += contrib[rest]
            return sigma
        if workers is not None and workers > 1 and n > 1:
            from ..framework.pool import run_chunks  # lazy: import cycle

            spans = _worker_chunks(n, workers)
            nodes = np.arange(n, dtype=np.int64)
            parts = run_chunks(
                _sigma_plain,
                [(nodes[lo:hi],) for lo, hi in spans],
                workers=len(spans),
                label="simpath.sigma_plain",
                tick=lambda: self._tick(budget),
                shared=(graph, self.eta),
            )
            return np.concatenate(parts)
        allowed = np.ones(n, dtype=bool)
        sigma = np.zeros(n, dtype=np.float64)
        for v in range(n):
            self._tick(budget)
            sigma[v] = simpath_spread(graph, v, allowed, self.eta, budget=budget)
        return sigma

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        n = graph.n
        counter = itertools.count()
        sigma0 = self._initial_sigmas(graph, budget)
        cached = sigma0.copy()
        heap: list[tuple[float, int, int, int]] = []
        for v in range(n):
            heapq.heappush(heap, (-float(sigma0[v]), next(counter), v, 0))

        seeds: list[int] = []
        in_seed = np.zeros(n, dtype=bool)
        sigma_s = 0.0
        through = np.zeros(n, dtype=np.float64)
        while heap and len(seeds) < k:
            neg_gain, __, v, round_tag = heapq.heappop(heap)
            if in_seed[v] or -neg_gain != cached[v]:
                continue
            if round_tag == len(seeds):
                seeds.append(v)
                in_seed[v] = True
                sigma_s += -neg_gain
                if len(seeds) < k:
                    # One σ(S) pass with through-counts for the next round.
                    allowed = ~in_seed
                    through[:] = 0.0
                    sigma_s = 0.0
                    for u in seeds:
                        self._tick(budget)
                        sigma_s += simpath_spread(
                            graph, u, allowed, self.eta, through=through, budget=budget
                        )
                continue
            # Re-evaluate this candidate (plus up to lookahead-1 more).
            batch = [(v, -neg_gain)]
            while heap and len(batch) < self.lookahead:
                ng2, __c, v2, __r = heap[0]
                if in_seed[v2] or -ng2 != cached[v2]:
                    heapq.heappop(heap)
                    continue
                heapq.heappop(heap)
                batch.append((v2, -ng2))
            allowed = ~in_seed
            for x, __old in batch:
                self._tick(budget)
                sigma_x = simpath_spread(graph, x, allowed, self.eta, budget=budget)
                # σ(S + x) = σ^{V−x}(S) + σ^{V−S}(x)
                gain = (sigma_s - through[x] + sigma_x) - sigma_s
                cached[x] = gain
                heapq.heappush(heap, (-gain, next(counter), x, len(seeds)))
        return seeds, {
            "eta": self.eta,
            "lookahead": self.lookahead,
            "vertex_cover": self.vertex_cover,
        }

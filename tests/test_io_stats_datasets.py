"""Tests for edge-list I/O, Table-1 statistics, and the dataset catalog."""

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    LARGE_DATASETS,
    SMALL_DATASETS,
    load,
    names,
    spec,
    summary,
    table1_rows,
)
from repro.graph.digraph import DiGraph
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.stats import bfs_distances, effective_diameter, graph_stats


class TestIO:
    def test_round_trip_weighted(self, tmp_path):
        g = DiGraph.from_edges(4, [(0, 1), (1, 2), (3, 0)], weights=[0.1, 0.2, 0.3])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        g2 = read_edge_list(path)
        assert g2 == g

    def test_round_trip_unweighted(self, tmp_path):
        g = DiGraph.from_edges(3, [(0, 1), (2, 1)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path, weighted=False)
        g2 = read_edge_list(path)
        assert g2.m == 2
        assert g2.weight(0, 1) == 1.0

    def test_comments_and_header(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# SNAP header\n# more\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.m == 2

    def test_sparse_ids_remapped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("100 200\n200 300\n")
        g = read_edge_list(path)
        assert g.n == 3
        assert g.m == 2

    def test_undirected_doubling(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        g = read_edge_list(path, undirected=True)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_bad_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_mixed_weighted_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.5\n1 2\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_header_written(self, tmp_path):
        g = DiGraph.from_edges(2, [(0, 1)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path, header="generated")
        assert path.read_text().startswith("# generated")


class TestStats:
    def test_bfs_distances_line(self, line_graph):
        d = bfs_distances(line_graph, 0)
        assert d.tolist() == [0, 1, 2, 3]

    def test_bfs_unreachable(self):
        g = DiGraph.from_edges(3, [(0, 1)])
        d = bfs_distances(g, 0)
        assert d[2] == -1

    def test_effective_diameter_line(self, line_graph):
        # Distances 1,2,3 between connected pairs; 90th pct close to 3 hops.
        diam = effective_diameter(line_graph)
        assert 2.0 <= diam <= 3.0

    def test_effective_diameter_empty(self):
        assert effective_diameter(DiGraph.from_edges(0, [])) == 0.0

    def test_graph_stats_undirected_convention(self):
        # 2 undirected edges stored as 4 arcs.
        g = DiGraph.from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1)])
        s = graph_stats(g, name="tiny", directed=False)
        assert s.m == 2
        assert s.avg_degree == pytest.approx(2 / 3)

    def test_graph_stats_directed(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        s = graph_stats(g, directed=True)
        assert s.m == 2
        assert s.avg_degree == pytest.approx(2 / 3)

    def test_row_renders(self):
        g = DiGraph.from_edges(3, [(0, 1)])
        row = graph_stats(g, name="x", directed=True).row()
        assert "x" in row


class TestCatalog:
    def test_all_eight_datasets_present(self):
        assert set(names()) == set(SMALL_DATASETS) | set(LARGE_DATASETS)
        assert len(DATASETS) == 8

    def test_load_is_deterministic_and_cached(self):
        g1 = load("nethept")
        g2 = load("nethept")
        assert g1 is g2  # lru_cache
        assert g1 == spec("nethept").generate()

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            spec("facebook")

    @pytest.mark.parametrize("name", SMALL_DATASETS)
    def test_small_analogues_shape(self, name):
        s = summary(name)
        assert s.n >= 1000
        assert s.m > 0
        # Average degree within 2x of the paper's value.
        assert 0.5 * s.avg_degree < DATASETS[name].paper_avg_degree * 2

    def test_directedness_matches_paper(self):
        assert not spec("orkut").directed
        assert spec("twitter").directed
        assert spec("livejournal").directed

    def test_undirected_analogues_symmetric(self):
        g = load("nethept")
        src = g.edge_src
        for j in range(0, g.m, max(g.m // 50, 1)):
            assert g.has_edge(int(g.out_dst[j]), int(src[j]))

    def test_table1_renders_all_rows(self):
        text = table1_rows()
        for name in names():
            assert name in text

    def test_orkut_denser_than_nethept(self):
        # The density gap drives the IC blow-up experiments.
        orkut = summary("orkut")
        nethept = summary("nethept")
        assert orkut.avg_degree > 5 * nethept.avg_degree

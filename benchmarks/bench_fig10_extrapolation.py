"""Figs. 10c-e — extrapolated vs MC spread for TIM+ and IMM against ε (M4).

TIM+/IMM report coverage-extrapolated spreads (F(S)·n).  The paper shows
(and Appendix A documents) that this estimate is inflated relative to the
true MC spread and — counter-intuitively — *increases* with ε, because
smaller pools over-fit the greedy max-cover seeds.

Workloads mirroring the paper's panels: nethept/IC, dblp/WC, hepph/LT.
"""

import numpy as np

from repro.algorithms import registry
from repro.diffusion.models import IC, LT, WC
from repro.framework.results import render_series

from _common import RR_SCALE, emit, evaluate_spread, once, weighted_dataset

EPSILONS = (0.2, 0.4, 0.6, 0.8, 1.0)
K = 25

PANELS = (
    ("nethept", IC, "Fig 10c"),
    ("dblp", WC, "Fig 10d"),
    ("hepph", LT, "Fig 10e"),
)


def test_fig10cde_extrapolated_vs_mc(benchmark):
    def experiment():
        panels = {}
        for dataset, model, label in PANELS:
            graph = weighted_dataset(dataset, model)
            series = {"TIM (extrap)": [], "TIM (sigma)": [],
                      "IMM (extrap)": [], "IMM (sigma)": []}
            for eps in EPSILONS:
                for name, tag in (("TIM+", "TIM"), ("IMM", "IMM")):
                    algo = registry.make(name, epsilon=eps, rr_scale=RR_SCALE)
                    res = algo.select(
                        graph, K, model, rng=np.random.default_rng(int(eps * 10))
                    )
                    series[f"{tag} (extrap)"].append(
                        round(res.extras["extrapolated_spread"], 1)
                    )
                    series[f"{tag} (sigma)"].append(
                        round(evaluate_spread(graph, res.seeds, model).mean, 1)
                    )
            panels[label] = (dataset, model.name, series)
        return panels

    panels = once(benchmark, experiment)
    text = "\n\n".join(
        render_series(
            "eps", list(EPSILONS), series,
            title=f"{label}: extrapolated vs MC spread — {dataset} ({model})",
        )
        for label, (dataset, model, series) in panels.items()
    )
    emit("fig10cde_extrapolation", text)

    # M4 part 1: the extrapolation is inflated relative to true sigma on
    # the clear majority of measurements.
    inflated = total = 0
    for __, (__d, __m, series) in panels.items():
        for tag in ("TIM", "IMM"):
            for ext, sig in zip(series[f"{tag} (extrap)"], series[f"{tag} (sigma)"]):
                total += 1
                if ext >= sig:
                    inflated += 1
    assert inflated / total >= 0.6

    # M4 part 2: the extrapolated value trends UP with eps while true
    # sigma does not (compare endpoints, averaged over panels).
    ext_growth = sigma_growth = 0.0
    for __, (__d, __m, series) in panels.items():
        for tag in ("TIM", "IMM"):
            ext = series[f"{tag} (extrap)"]
            sig = series[f"{tag} (sigma)"]
            ext_growth += ext[-1] - ext[0]
            sigma_growth += sig[-1] - sig[0]
    assert ext_growth > sigma_growth

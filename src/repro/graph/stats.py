"""Graph statistics reported in Table 1 of the paper.

Per dataset the paper reports: number of nodes ``n``, number of edges ``m``
(of the underlying network, before undirected doubling), type
(directed/undirected), average degree, and the 90th-percentile effective
diameter.  The effective diameter is approximated by BFS from a sample of
sources, as is standard for SNAP-scale graphs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .digraph import DiGraph

__all__ = ["GraphStats", "bfs_distances", "effective_diameter", "graph_stats"]


@dataclass(frozen=True)
class GraphStats:
    """One row of Table 1."""

    name: str
    n: int
    m: int
    directed: bool
    avg_degree: float
    effective_diameter: float

    def row(self) -> str:
        kind = "Directed" if self.directed else "Undirected"
        return (
            f"{self.name:<14} {self.n:>9,} {self.m:>11,} {kind:<10} "
            f"{self.avg_degree:>10.2f} {self.effective_diameter:>8.1f}"
        )


def bfs_distances(graph: DiGraph, source: int) -> np.ndarray:
    """Hop distances from ``source``; unreachable nodes get -1."""
    dist = np.full(graph.n, -1, dtype=np.int64)
    dist[source] = 0
    queue: deque[int] = deque([source])
    out_ptr, out_dst = graph.out_ptr, graph.out_dst
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in out_dst[out_ptr[u] : out_ptr[u + 1]]:
            if dist[v] < 0:
                dist[v] = du + 1
                queue.append(int(v))
    return dist


def effective_diameter(
    graph: DiGraph,
    percentile: float = 90.0,
    sample_size: int = 64,
    rng: np.random.Generator | None = None,
) -> float:
    """90th-percentile of pairwise hop distances, sampled via BFS.

    Interpolates within the distance histogram (the SNAP convention), which
    is why Table 1 reports fractional diameters such as 8.8.
    """
    if graph.n == 0:
        return 0.0
    rng = np.random.default_rng(0) if rng is None else rng
    sources = (
        np.arange(graph.n)
        if graph.n <= sample_size
        else rng.choice(graph.n, size=sample_size, replace=False)
    )
    all_d: list[np.ndarray] = []
    for s in sources:
        d = bfs_distances(graph, int(s))
        d = d[d > 0]
        if d.size:
            all_d.append(d)
    if not all_d:
        return 0.0
    dists = np.concatenate(all_d)
    hist = np.bincount(dists)
    cum = np.cumsum(hist).astype(np.float64)
    cum /= cum[-1]
    target = percentile / 100.0
    h = int(np.searchsorted(cum, target))
    if h == 0:
        return float(h)
    prev = cum[h - 1]
    span = cum[h] - prev
    frac = 0.0 if span <= 0 else (target - prev) / span
    return float(h - 1 + frac)


def graph_stats(
    graph: DiGraph,
    name: str = "",
    directed: bool = True,
    rng: np.random.Generator | None = None,
) -> GraphStats:
    """Compute a Table-1 row for ``graph``.

    For undirected networks stored as doubled arcs, ``m`` and average degree
    are reported for the underlying undirected edge set (arcs / 2), matching
    the paper's convention.
    """
    arcs = graph.m
    if directed:
        m = arcs
        avg_degree = arcs / graph.n if graph.n else 0.0
    else:
        m = arcs // 2
        avg_degree = m / graph.n if graph.n else 0.0
    return GraphStats(
        name=name,
        n=graph.n,
        m=m,
        directed=directed,
        avg_degree=avg_degree,
        effective_diameter=effective_diameter(graph, rng=rng),
    )

"""Action-log generation for influence-probability learning.

Sec. 2.1 of the benchmarking paper: "Ideally, the edge weights should be
learned from some training data and such efforts exist [Goyal et al.
WSDM'10; Goyal et al. PVLDB'11; Kutzkov et al. KDD'13].  However ... such
a rich set of training data is not readily available for the wide variety
of publicly available networks."  This package closes that gap for the
platform with a synthetic substitute: cascades simulated under known
ground-truth weights produce the (user, action, time) logs the learning
papers assume, so estimators can be validated against the truth.

An :class:`ActionLog` stores, per action, the activation time step of
every participating user — the standard trace format of Goyal et al.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..diffusion.independent_cascade import simulate_ic_times
from ..graph.digraph import DiGraph

__all__ = ["ActionLog", "generate_action_log"]


@dataclass
class ActionLog:
    """Propagation traces: one ``{user: time}`` map per action."""

    n: int
    actions: list[dict[int, int]] = field(default_factory=list)

    def add(self, activations: dict[int, int]) -> None:
        if any(not 0 <= u < self.n for u in activations):
            raise ValueError("user id out of range")
        self.actions.append(dict(activations))

    def __len__(self) -> int:
        return len(self.actions)

    def participation_counts(self) -> np.ndarray:
        """A_u: the number of actions each user performed."""
        counts = np.zeros(self.n, dtype=np.int64)
        for action in self.actions:
            for u in action:
                counts[u] += 1
        return counts

    def mean_cascade_size(self) -> float:
        if not self.actions:
            return 0.0
        return float(np.mean([len(a) for a in self.actions]))


def generate_action_log(
    graph: DiGraph,
    num_actions: int,
    rng: np.random.Generator,
    seeds_per_action: int = 1,
) -> ActionLog:
    """Simulate ``num_actions`` IC cascades under the graph's true weights.

    Each action starts from ``seeds_per_action`` uniformly random initiators
    and records the activation time of every user it reaches — exactly the
    trace format a platform operator would export from real propagation
    data.
    """
    if num_actions < 0:
        raise ValueError("num_actions must be non-negative")
    if not 1 <= seeds_per_action <= max(graph.n, 1):
        raise ValueError("seeds_per_action out of range")
    log = ActionLog(graph.n)
    for __ in range(num_actions):
        seeds = rng.choice(graph.n, size=seeds_per_action, replace=False)
        times = simulate_ic_times(graph, seeds, rng)
        activations = {
            int(u): int(times[u]) for u in np.nonzero(times >= 0)[0]
        }
        log.add(activations)
    return log

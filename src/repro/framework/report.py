"""Aggregate bench outputs into a single reproduction report.

Every benchmark writes its rendered table/series under
``benchmarks/results/<experiment>.txt``.  This module stitches those files
into one markdown document ordered like the paper's evaluation, so the
full reproduction status is reviewable at a glance (and EXPERIMENTS.md can
embed it).  Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

import os
import pathlib
from typing import Iterable

__all__ = ["EXPERIMENT_ORDER", "collect_results", "render_report"]

#: Canonical ordering and human titles, following the paper's evaluation.
EXPERIMENT_ORDER: tuple[tuple[str, str], ...] = (
    ("fig01a_imm_ic_vs_wc", "Fig. 1a — IMM under IC vs WC (motivation)"),
    ("fig01bc_easyim_vs_imm", "Fig. 1b-c — EaSyIM vs IMM time & memory"),
    ("table1_datasets", "Table 1 — dataset summary"),
    ("fig04abc_mc_simulations", "Fig. 4a-c — MC-simulation tuning"),
    ("fig04de_imrank_rounds", "Fig. 4d-e — IMRank scoring-round tuning"),
    ("fig04fg_snapshots", "Fig. 4f-g — snapshot-count tuning"),
    ("fig04hij_epsilon", "Fig. 4h-j — epsilon tuning"),
    ("fig15_16_appendix_sweeps", "Figs. 15-16 — appendix tuning sweeps"),
    ("table2_optimal_parameters", "Table 2 — optimal parameters"),
    ("fig05_imrank_rounds", "Fig. 5 — IMRank spread vs scoring rounds"),
    ("fig06_quality", "Fig. 6 — spread vs #seeds"),
    ("fig07_runtime", "Fig. 7 — running time vs #seeds"),
    ("fig08_memory", "Fig. 8 — memory vs #seeds"),
    ("table3_large_datasets", "Table 3 — large datasets at k=200"),
    ("fig09ab_13_celf_vs_celfpp", "Figs. 9a-b & 13 — CELF vs CELF++ (M1)"),
    ("fig09cde_celf_mc_quality", "Fig. 9c-e — CELF spread vs MC count (M2)"),
    ("fig10ab_table4_simpath_ldag", "Fig. 10a-b & Table 4 — SIMPATH vs LDAG (M5)"),
    ("fig10ab_quality_parity", "Fig. 10a-b — LDAG/SIMPATH quality parity"),
    ("fig10cde_extrapolation", "Fig. 10c-e — extrapolated vs MC spread (M4)"),
    ("fig10f_imrank_convergence", "Fig. 10f — IMRank stopping criteria (M7)"),
    ("fig11_skyline", "Fig. 11 — skyline and decision tree"),
    ("fig12_mc_convergence", "Fig. 12 — MC convergence"),
    ("table5_support_matrix", "Table 5 — model support"),
    ("evolution_ssa", "Evolution — SSA/D-SSA/SKIM/PMIA join the platform"),
    ("robustness_randomness", "Robustness — run-to-run variance"),
    ("robustness_weight_scheme", "Robustness — across weight schemes"),
    ("ablation_celf_laziness", "Ablation — CELF laziness"),
    ("ablation_pmc_scc", "Ablation — PMC SCC contraction"),
    ("ablation_simpath_eta", "Ablation — SIMPATH pruning threshold"),
    ("ablation_imm_pool_reuse", "Ablation — IMM pool reuse"),
)


def collect_results(results_dir: str | os.PathLike) -> dict[str, str]:
    """Read every ``*.txt`` under ``results_dir``, recursively.

    Top-level files are keyed by stem (matching :data:`EXPERIMENT_ORDER`);
    files in subdirectories are keyed by their slash-joined relative path
    sans suffix (``journals/sweep1``), so a bench that organizes outputs
    into folders still surfaces in the report.
    """
    directory = pathlib.Path(results_dir)
    found: dict[str, str] = {}
    if not directory.is_dir():
        return found
    for path in sorted(directory.rglob("*.txt")):
        relative = path.relative_to(directory).with_suffix("")
        found["/".join(relative.parts)] = path.read_text().rstrip()
    return found


def render_report(
    results_dir: str | os.PathLike,
    order: Iterable[tuple[str, str]] = EXPERIMENT_ORDER,
) -> str:
    """One markdown document covering every produced experiment.

    Experiments without a results file are listed as *not yet run*;
    results files without a known title — new benches, nested artifacts —
    are appended in an "Unlisted artifacts" section so nothing silently
    disappears from the report.
    """
    results = collect_results(results_dir)
    lines = ["# Reproduction report", ""]
    seen: set[str] = set()
    for stem, title in order:
        lines.append(f"## {title}")
        lines.append("")
        if stem in results:
            lines.append("```")
            lines.append(results[stem])
            lines.append("```")
            seen.add(stem)
        else:
            lines.append(f"*not yet run — `pytest benchmarks/ --benchmark-only` "
                         f"produces `{stem}.txt`*")
        lines.append("")
    extras = sorted(set(results) - seen)
    if extras:
        lines.append("## Unlisted artifacts")
        lines.append("")
        lines.append("*results files with no entry in `EXPERIMENT_ORDER` — new "
                     "benches land here until they are given a canonical slot*")
        lines.append("")
        for stem in extras:
            lines.append(f"### {stem}")
            lines.append("")
            lines.append("```")
            lines.append(results[stem])
            lines.append("```")
            lines.append("")
    return "\n".join(lines)

"""Tests for the reproduction-report aggregator."""

import pathlib

import pytest

from repro.framework.report import EXPERIMENT_ORDER, collect_results, render_report


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "fig06_quality.txt").write_text("spread table\n")
    (tmp_path / "mystery_extra.txt").write_text("surprise\n")
    nested = tmp_path / "profiles"
    nested.mkdir()
    (nested / "trace_summary.txt").write_text("phase breakdown\n")
    return tmp_path


class TestCollect:
    def test_reads_all_txt(self, results_dir):
        results = collect_results(results_dir)
        assert results["fig06_quality"] == "spread table"
        assert "mystery_extra" in results

    def test_nested_artifacts_keyed_by_relative_path(self, results_dir):
        results = collect_results(results_dir)
        assert results["profiles/trace_summary"] == "phase breakdown"

    def test_missing_dir(self, tmp_path):
        assert collect_results(tmp_path / "nope") == {}


class TestRender:
    def test_produced_section_embedded(self, results_dir):
        report = render_report(results_dir)
        assert "Fig. 6 — spread vs #seeds" in report
        assert "spread table" in report

    def test_missing_sections_marked(self, results_dir):
        report = render_report(results_dir)
        assert report.count("not yet run") == len(EXPERIMENT_ORDER) - 1

    def test_unknown_outputs_appended(self, results_dir):
        report = render_report(results_dir)
        assert "Unlisted artifacts" in report
        assert "mystery_extra" in report
        assert "surprise" in report

    def test_nested_artifacts_not_dropped(self, results_dir):
        report = render_report(results_dir)
        assert "profiles/trace_summary" in report
        assert "phase breakdown" in report

    def test_cli_report_to_file(self, results_dir, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        code = main([
            "report", "--results-dir", str(results_dir),
            "--output", str(out),
        ])
        assert code == 0
        assert "Reproduction report" in out.read_text()

    def test_cli_report_to_stdout(self, results_dir, capsys):
        from repro.cli import main

        assert main(["report", "--results-dir", str(results_dir)]) == 0
        assert "Reproduction report" in capsys.readouterr().out

"""Edge-case and failure-injection tests across the whole algorithm zoo.

Degenerate inputs every production library must survive: edgeless graphs,
fully disconnected components, k = n, single-node graphs, and weight
extremes (all-zero, all-one).
"""

import numpy as np
import pytest

from repro.algorithms import registry
from repro.diffusion.models import IC, LT, WC
from repro.diffusion.simulation import monte_carlo_spread
from repro.graph.digraph import DiGraph

FAST = {
    "CELF": {"mc_simulations": 5},
    "CELF++": {"mc_simulations": 5},
    "GREEDY": {"mc_simulations": 5},
    "RIS": {"num_rr_sets": 200},
    "TIM+": {"epsilon": 0.5, "rr_scale": 0.01, "max_rr_sets": 500},
    "IMM": {"epsilon": 0.5, "rr_scale": 0.01, "max_rr_sets": 500},
    "StaticGreedy": {"num_snapshots": 10},
    "PMC": {"num_snapshots": 10},
    "EaSyIM": {"path_length": 2},
}

ALL_NAMES = tuple(registry.BENCHMARKED) + ("GREEDY", "RIS", "Degree",
                                           "SingleDiscount", "DegreeDiscount",
                                           "PageRank")


def _model_for(name):
    algo = registry.make(name)
    return IC if algo.supports(IC) else LT


def _make(name):
    return registry.make(name, **FAST.get(name, {}))


@pytest.mark.parametrize("name", ALL_NAMES)
def test_edgeless_graph(name, rng):
    graph = IC.weighted(DiGraph.from_edges(6, []))
    model = _model_for(name)
    res = _make(name).select(graph, 3, model, rng=rng)
    assert len(set(res.seeds)) == 3


@pytest.mark.parametrize("name", ALL_NAMES)
def test_k_equals_n(name, rng):
    g = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)], weights=[0.5] * 3)
    model = _model_for(name)
    res = _make(name).select(g, 4, model, rng=rng)
    assert sorted(res.seeds) == [0, 1, 2, 3]


@pytest.mark.parametrize("name", ALL_NAMES)
def test_disconnected_components(name, rng):
    # Two components; with k=2 any sensible technique seeds both or at
    # least returns valid distinct seeds.
    g = DiGraph.from_edges(
        6, [(0, 1), (1, 2), (3, 4), (4, 5)], weights=[0.9] * 4
    )
    model = _model_for(name)
    res = _make(name).select(g, 2, model, rng=rng)
    assert len(set(res.seeds)) == 2


@pytest.mark.parametrize("name", ALL_NAMES)
def test_single_node(name, rng):
    g = DiGraph.from_edges(1, [])
    model = _model_for(name)
    res = _make(name).select(g, 1, model, rng=rng)
    assert res.seeds == [0]


class TestWeightExtremes:
    def test_zero_weights_spread_is_k(self, rng):
        g = DiGraph.from_edges(5, [(0, 1), (1, 2), (2, 3)], weights=[0.0] * 3)
        est = monte_carlo_spread(g, [0, 4], IC, r=50, rng=rng)
        assert est.mean == 2.0
        assert est.std == 0.0

    def test_unit_weights_full_reach(self, rng):
        g = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)], weights=[1.0] * 3)
        for model in (IC, LT):
            est = monte_carlo_spread(g, [0], model, r=20, rng=rng)
            assert est.mean == 4.0

    def test_rr_algorithms_on_zero_weights(self, rng):
        g = DiGraph.from_edges(5, [(0, 1), (1, 2)], weights=[0.0, 0.0])
        res = registry.make("IMM", epsilon=0.5, rr_scale=0.01,
                            max_rr_sets=200).select(g, 2, IC, rng=rng)
        assert len(res.seeds) == 2

    def test_wc_on_star_is_deterministic(self, rng):
        # Hub points at 5 leaves, each with in-degree 1 => weight 1.0.
        g = WC.weighted(DiGraph.from_edges(6, [(0, i) for i in range(1, 6)]))
        est = monte_carlo_spread(g, [0], WC, r=20, rng=rng)
        assert est.mean == 6.0

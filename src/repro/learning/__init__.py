"""Influence-probability learning: traces, estimators, evaluation.

The data-driven alternative to the model-based weight schemes of
Sec. 2.1 — see :mod:`repro.learning.traces` for why the paper could not
take this route and how this package simulates it instead.
"""

from .estimators import bernoulli, jaccard, partial_credits
from .evaluate import WeightError, seed_set_transfer, weight_error
from .traces import ActionLog, generate_action_log

__all__ = [
    "bernoulli",
    "jaccard",
    "partial_credits",
    "WeightError",
    "seed_set_transfer",
    "weight_error",
    "ActionLog",
    "generate_action_log",
]

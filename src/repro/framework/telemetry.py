"""Structured observability: hierarchical spans, counters, JSONL traces.

The paper's deliverable is *measurement* — every table cell is a
(spread, time, memory) triple — and a disputed cell is only as defensible
as the instrumentation behind it.  This module gives every engine a
first-class place to record *why* a cell costs what it costs:

* **Spans** — phase timings as a tree (e.g. ``select:PMIA →
  paths.build_structures → paths.dijkstra_batch``).  Spans of the same
  name under the same parent merge: ``elapsed`` accumulates and ``calls``
  counts occurrences, so a hot phase entered thousands of times stays one
  node.
* **Counters** — named monotone totals (RR sets sampled, σ evaluations,
  gain-cache hits/misses, frontier expansions, worker-pool chunks).
* **JSONL trace sink** — :func:`write_trace` appends one self-describing
  event per line; :func:`summarize_trace` renders the per-phase
  breakdown (``python -m repro trace PATH`` on the CLI).

Overhead contract
-----------------
Telemetry is **off by default** and zero-overhead when off: the ambient
handle (:func:`current`) is the :data:`NULL` singleton whose ``span()``
returns a shared no-op context manager and whose ``count()`` is a pass —
no allocation, no clock read, and *never* an RNG draw.  Instrumented code
therefore produces byte-identical seed sets and statistically untouched
timings whether or not a real handle is active (asserted by
``tests/test_telemetry.py``).  Call sites are placed at *phase*
granularity (per sampling batch, per Dijkstra batch, per σ evaluation),
never per edge or per coin flip.

This module deliberately imports nothing from :mod:`repro` so the
diffusion engines can reach :func:`current` lazily without import cycles.
Activation is process-local: an isolated worker collects into its own
handle and ships the snapshot back through the existing record pipe
(see :mod:`repro.framework.isolation`).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL",
    "current",
    "activate",
    "new_node",
    "write_trace",
    "read_trace",
    "summarize_trace",
]


# ----------------------------------------------------------------------
# Ambient handle

class _NullSpan:
    """Reusable no-op context manager — the off-path cost of a span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Disabled telemetry: every operation is a no-op.

    The singleton :data:`NULL` is the ambient default, so instrumented
    hot paths pay one attribute lookup and one no-op call when telemetry
    is off — nothing else.
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, n: int = 1) -> None:
        return None

    def snapshot(self) -> None:
        return None


NULL = NullTelemetry()

_ACTIVE: "Telemetry | NullTelemetry" = NULL


def current() -> "Telemetry | NullTelemetry":
    """The ambient telemetry handle (:data:`NULL` unless activated)."""
    return _ACTIVE


@contextmanager
def activate(telemetry: "Telemetry | None") -> Iterator["Telemetry | NullTelemetry"]:
    """Make ``telemetry`` the ambient handle for the enclosed block.

    ``None`` activates :data:`NULL` (useful for uniform call sites).
    Activations nest; the previous handle is restored even on exceptions.
    Process-local and not thread-safe — matching the engines themselves,
    which parallelize via subprocesses, never threads.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry if telemetry is not None else NULL
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# Collecting handle

def new_node() -> dict[str, Any]:
    """A fresh span-tree node: ``{"elapsed", "calls", "children"}``."""
    return {"elapsed": 0.0, "calls": 0, "children": {}}


class Telemetry:
    """A collecting handle: span tree + counters, snapshot-able to JSON.

    The span tree is plain dicts (see :func:`new_node`) so a snapshot is
    JSON-able as-is and survives the isolation subprocess pipe and
    ``save_records``/``load_records`` without a custom codec.
    """

    enabled = True

    def __init__(self, label: str | None = None) -> None:
        self.label = label
        self.counters: dict[str, int] = {}
        self._root: dict[str, Any] = new_node()
        self._stack: list[dict[str, Any]] = [self._root]

    # -- spans ----------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator["Telemetry"]:
        """Time a phase; same-named spans under one parent merge.

        Direct recursion into the same node double-counts the nested
        time under itself — instrument recursive phases at their entry
        point only.
        """
        parent = self._stack[-1]
        node = parent["children"].get(name)
        if node is None:
            node = new_node()
            parent["children"][name] = node
        self._stack.append(node)
        started = time.perf_counter()
        try:
            yield self
        finally:
            node["elapsed"] += time.perf_counter() - started
            node["calls"] += 1
            self._stack.pop()

    # -- counters -------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named counter (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + int(n)

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-able view: ``{"label", "spans", "counters"}``.

        ``spans`` maps top-level span names to nodes.  The returned
        structure is a deep copy — mutating it never corrupts the handle.
        """
        return {
            "label": self.label,
            "spans": _copy_tree(self._root["children"]),
            "counters": dict(self.counters),
        }

    def absorb(self, snapshot: dict[str, Any] | None, under: str | None = None) -> None:
        """Merge another handle's snapshot (e.g. an isolated child's).

        ``under`` nests the absorbed spans below a named node — useful
        when one session handle aggregates many cells — whose elapsed
        grows by the absorbed top-level total.  Counters always merge
        into the flat counter table.
        """
        if not snapshot:
            return
        spans = snapshot.get("spans") or {}
        dest = self._root
        if under is not None:
            node = dest["children"].get(under)
            if node is None:
                node = new_node()
                dest["children"][under] = node
            node["elapsed"] += sum(child["elapsed"] for child in spans.values())
            node["calls"] += 1
            dest = node
        _merge_tree(dest["children"], spans)
        for name, value in (snapshot.get("counters") or {}).items():
            self.count(name, value)


def _copy_tree(children: dict[str, Any]) -> dict[str, Any]:
    return {
        name: {
            "elapsed": float(node["elapsed"]),
            "calls": int(node["calls"]),
            "children": _copy_tree(node.get("children") or {}),
        }
        for name, node in children.items()
    }


def _merge_tree(dest: dict[str, Any], src: dict[str, Any]) -> None:
    for name, node in src.items():
        into = dest.get(name)
        if into is None:
            dest[name] = {
                "elapsed": float(node["elapsed"]),
                "calls": int(node["calls"]),
                "children": _copy_tree(node.get("children") or {}),
            }
        else:
            into["elapsed"] += float(node["elapsed"])
            into["calls"] += int(node["calls"])
            _merge_tree(into["children"], node.get("children") or {})


# ----------------------------------------------------------------------
# JSONL trace sink

def _walk_spans(children: dict[str, Any], prefix: str, out: list[dict]) -> None:
    for name, node in children.items():
        path = f"{prefix}/{name}" if prefix else name
        out.append(
            {
                "type": "span",
                "path": path,
                "elapsed": float(node["elapsed"]),
                "calls": int(node["calls"]),
            }
        )
        _walk_spans(node.get("children") or {}, path, out)


def write_trace(
    path,
    snapshot: dict[str, Any] | None,
    cell: str | None = None,
    record=None,
) -> int:
    """Append one telemetry snapshot as JSONL events; returns lines written.

    Events carry ``cell`` (an opaque label, e.g. the journal cell key) so
    one file can hold a whole sweep.  ``record`` — anything with
    ``algorithm``/``status``/``elapsed_seconds``/``k`` attributes, i.e. a
    :class:`~repro.framework.metrics.RunRecord` — adds a ``record`` event
    that anchors the spans to the measured cell (the summarizer reports
    per-phase coverage against it).  Appending is line-atomic enough for
    the same crash-tolerance contract as the checkpoint journal: a torn
    trailing line is skipped by :func:`read_trace`.
    """
    events: list[dict[str, Any]] = []
    if snapshot:
        label = snapshot.get("label")
        if label:
            events.append({"type": "meta", "label": label})
        _walk_spans(snapshot.get("spans") or {}, "", events)
        for name, value in sorted((snapshot.get("counters") or {}).items()):
            events.append({"type": "counter", "name": name, "value": int(value)})
    if record is not None:
        events.append(
            {
                "type": "record",
                "algorithm": getattr(record, "algorithm", None),
                "status": getattr(record, "status", None),
                "k": getattr(record, "k", None),
                "elapsed_seconds": float(getattr(record, "elapsed_seconds", 0.0)),
            }
        )
    if not events:
        return 0
    with open(path, "a") as handle:
        for event in events:
            if cell is not None:
                event["cell"] = cell
            handle.write(json.dumps(event) + "\n")
    return len(events)


def read_trace(path) -> list[dict[str, Any]]:
    """Parse a JSONL trace, skipping blank or torn lines."""
    events: list[dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict) and "type" in event:
                events.append(event)
    return events


def summarize_trace(path) -> str:
    """Human-readable per-phase breakdown of a JSONL trace.

    Aggregates spans by path across every cell in the file, sums the
    counters, and — when ``record`` events are present — reports how much
    of each recorded ``elapsed_seconds`` the top-level spans cover (the
    instrumentation-completeness check of the trace-smoke CI step).
    """
    events = read_trace(path)
    spans: dict[str, dict[str, float]] = {}
    counters: dict[str, int] = {}
    records: list[dict[str, Any]] = []
    for event in events:
        kind = event.get("type")
        if kind == "span":
            agg = spans.setdefault(event["path"], {"elapsed": 0.0, "calls": 0})
            agg["elapsed"] += float(event.get("elapsed", 0.0))
            agg["calls"] += int(event.get("calls", 0))
        elif kind == "counter":
            name = event["name"]
            counters[name] = counters.get(name, 0) + int(event.get("value", 0))
        elif kind == "record":
            records.append(event)
    lines = [f"Trace: {path}", f"  events: {len(events)}, cells with records: {len(records)}"]
    if spans:
        lines.append("")
        lines.append("Spans (aggregated over cells)")
        width = max(len(p) for p in spans) + 2
        lines.append(f"  {'path'.ljust(width)}{'elapsed_s':>10}  {'calls':>8}")
        children_of: dict[str, list[str]] = {}
        for p in spans:
            parent = p.rsplit("/", 1)[0] if "/" in p else ""
            children_of.setdefault(parent, []).append(p)
        emitted: set[str] = set()

        def emit(parent: str, depth: int) -> None:
            for p in sorted(
                children_of.get(parent, ()), key=lambda q: -spans[q]["elapsed"]
            ):
                emitted.add(p)
                label = ("  " * depth) + p.rsplit("/", 1)[-1]
                lines.append(
                    f"  {label.ljust(width)}{spans[p]['elapsed']:>10.4f}"
                    f"  {int(spans[p]['calls']):>8}"
                )
                emit(p, depth + 1)

        emit("", 0)
        # Orphans (a child whose parent event was torn away) still show.
        for p in sorted(set(spans) - emitted):
            lines.append(
                f"  {p.ljust(width)}{spans[p]['elapsed']:>10.4f}"
                f"  {int(spans[p]['calls']):>8}"
            )
    if counters:
        lines.append("")
        lines.append("Counters")
        width = max(len(name) for name in counters) + 2
        for name in sorted(counters):
            lines.append(f"  {name.ljust(width)}{counters[name]}")
    if records:
        top_level = sum(
            agg["elapsed"] for p, agg in spans.items()
            if "/" not in p and p.startswith("select")
        )
        recorded = sum(r.get("elapsed_seconds") or 0.0 for r in records)
        lines.append("")
        if recorded > 0:
            lines.append(
                f"Coverage: select spans {top_level:.4f}s over "
                f"{recorded:.4f}s recorded ({100.0 * top_level / recorded:.1f}%)"
            )
        else:
            lines.append("Coverage: recorded elapsed is zero")
    return "\n".join(lines)

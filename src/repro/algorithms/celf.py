"""CELF and CELF++ — lazy-forward greedy (Sec. 4.1).

Both exploit submodularity: a node's marginal gain can only shrink as the
seed set grows, so a stale queue entry whose cached gain already trails the
current best need never be re-evaluated.

* CELF (Leskovec et al., KDD'07) keeps one cached gain per node.
* CELF++ (Goyal et al., WWW'11) additionally caches ``mg2`` — the node's
  marginal gain w.r.t. S ∪ {prev_best} — so that when ``prev_best`` is the
  seed just picked, the fresh gain is available without re-simulating.

Myth M1 machinery: both classes count *node lookups* (spread estimations)
per iteration, the execution-environment-independent metric of Appendix C.
CELF++'s look-ahead costs extra simulation work per lookup, which is why
its wall-clock time ends up on par with CELF despite slightly fewer
lookups — the behaviour the paper demonstrates in Figs. 9a-b/13.

Gain queries go through a pluggable spread oracle plus a marginal-gain
memo (:mod:`repro.diffusion.oracle`).  With a deterministic backend the
memo turns repeated (seed set, node) queries — including CELF++-style
look-ahead gains resurfacing later — into cache hits, so ``lookups``
counts true evaluations.  ``spread_oracle=None`` preserves the historical
per-cascade draw order byte for byte.  The ``sketch`` backend lets CELF
seed its queue from reach upper bounds instead of an n-node evaluation
scan (the first pop of each bound entry triggers the real evaluation).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any

import numpy as np

from ..diffusion.models import Dynamics, PropagationModel
from ..diffusion.simulation import DEFAULT_MC_SIMULATIONS
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm, SpreadOracleMixin

__all__ = ["CELF", "CELFpp"]

#: Queue-round sentinel for entries holding a sketch bound, not a gain.
_BOUND_ROUND = -1


def _tele():
    # Lazy: algorithms are imported by the registry during framework
    # import, so a top-level framework import here would be circular.
    from ..framework.telemetry import current

    return current()


class CELF(SpreadOracleMixin, IMAlgorithm):
    """Cost-Effective Lazy Forward selection."""

    name = "CELF"
    supported = (Dynamics.IC, Dynamics.LT)
    external_parameter = "#MC Simulations"

    def __init__(
        self,
        mc_simulations: int = DEFAULT_MC_SIMULATIONS,
        spread_oracle: str | None = None,
        mc_batch: int | None = None,
        mc_workers: int | None = None,
        num_worlds: int | None = None,
        sketch_k: int = 8,
    ) -> None:
        self._init_oracle(
            mc_simulations, spread_oracle, mc_batch, mc_workers, num_worlds, sketch_k
        )

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        oracle, cache = self._build_oracle(graph, model, rng, budget)
        tele = _tele()
        counter = itertools.count()
        heap: list[tuple[float, int, int, int]] = []  # (-gain, tiebreak, node, round)
        cached = np.zeros(graph.n, dtype=np.float64)
        lookups = [0]
        with tele.span("celf.build_queue"):
            if oracle.provides_bounds:
                # Sketch backend: enqueue cheap upper bounds; a bound entry is
                # never picked directly — its first pop evaluates for real.
                for v in range(graph.n):
                    bound = oracle.gain_bound(v)
                    cached[v] = bound
                    heapq.heappush(heap, (-bound, next(counter), v, _BOUND_ROUND))
            else:
                for v in range(graph.n):
                    self._tick(budget)
                    before = cache.misses
                    gain = cache.gain(oracle, v)
                    cached[v] = gain
                    lookups[0] += cache.misses - before
                    heapq.heappush(heap, (-gain, next(counter), v, 0))

        seeds: list[int] = []
        in_seed = np.zeros(graph.n, dtype=bool)
        stale_pops = 0
        with tele.span("celf.lazy_forward"):
            while heap and len(seeds) < k:
                neg_gain, __, v, round_tag = heapq.heappop(heap)
                if in_seed[v] or -neg_gain != cached[v]:
                    stale_pops += 1
                    continue  # stale duplicate entry
                if round_tag == len(seeds):
                    # Gain is fresh for the current seed set: pick it.
                    seeds.append(v)
                    in_seed[v] = True
                    oracle.commit(v, -neg_gain)
                    if len(lookups) <= len(seeds) and len(seeds) < k:
                        lookups.append(0)
                    continue
                self._tick(budget)
                before = cache.misses
                gain = cache.gain(oracle, v)
                cached[v] = gain
                lookups[-1] += cache.misses - before
                heapq.heappush(heap, (-gain, next(counter), v, len(seeds)))
        tele.count("celf.stale_pops", stale_pops)
        return seeds, {
            "node_lookups_per_iteration": lookups[: max(len(seeds), 1)],
            "estimated_spread": oracle.committed_sigma,
            **self._oracle_extras(oracle, cache),
        }


class CELFpp(SpreadOracleMixin, IMAlgorithm):
    """CELF++ with the prev-best look-ahead optimization."""

    name = "CELF++"
    supported = (Dynamics.IC, Dynamics.LT)
    external_parameter = "#MC Simulations"

    def __init__(
        self,
        mc_simulations: int = DEFAULT_MC_SIMULATIONS,
        spread_oracle: str | None = None,
        mc_batch: int | None = None,
        mc_workers: int | None = None,
        num_worlds: int | None = None,
        sketch_k: int = 8,
    ) -> None:
        self._init_oracle(
            mc_simulations, spread_oracle, mc_batch, mc_workers, num_worlds, sketch_k
        )

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        oracle, cache = self._build_oracle(graph, model, rng, budget)
        tele = _tele()
        counter = itertools.count()
        # Entry state per node: mg1 (gain wrt S), prev_best (the best node
        # seen when mg1 was computed), mg2 (gain wrt S + prev_best), flag
        # (|S| at computation time).
        mg1 = np.zeros(graph.n, dtype=np.float64)
        mg2 = np.zeros(graph.n, dtype=np.float64)
        prev_best = np.full(graph.n, -1, dtype=np.int64)
        flag = np.zeros(graph.n, dtype=np.int64)

        heap: list[tuple[float, int, int]] = []
        lookups = [0]
        cur_best = -1
        cur_best_gain = -np.inf
        with tele.span("celfpp.build_queue"):
            for v in range(graph.n):
                self._tick(budget)
                before = cache.misses
                mg1[v] = cache.gain(oracle, v)
                lookups[0] += cache.misses - before
                prev_best[v] = cur_best
                if cur_best >= 0:
                    # Look-ahead: gain of v given the current front-runner is
                    # also computed now — the extra work CELF++ banks on.  Via
                    # the memo it becomes the hit serving v's next re-lookup.
                    mg2[v] = cache.gain(
                        oracle, v, extra=[cur_best], extra_gain=cur_best_gain
                    )
                else:
                    mg2[v] = mg1[v]
                if mg1[v] > cur_best_gain:
                    cur_best_gain, cur_best = mg1[v], v
                heapq.heappush(heap, (-mg1[v], next(counter), v))

        seeds: list[int] = []
        last_seed = -1
        cur_best = -1
        cur_best_gain = -np.inf
        in_seed = np.zeros(graph.n, dtype=bool)
        stale_pops = 0
        with tele.span("celfpp.lazy_forward"):
            while heap and len(seeds) < k:
                neg_gain, __, v = heapq.heappop(heap)
                if in_seed[v] or -neg_gain != mg1[v]:
                    stale_pops += 1
                    continue  # stale duplicate entry
                if flag[v] == len(seeds):
                    seeds.append(v)
                    in_seed[v] = True
                    oracle.commit(v, mg1[v])
                    last_seed = v
                    cur_best, cur_best_gain = -1, -np.inf
                    if len(lookups) <= len(seeds) and len(seeds) < k:
                        lookups.append(0)
                    continue
                if prev_best[v] == last_seed and flag[v] == len(seeds) - 1:
                    # The saving: mg2 was computed against exactly this seed set.
                    # With a deterministic backend the look-ahead landed in the
                    # memo under this very (seed set, node) key, so the same
                    # answer comes back as a hit — still zero true evaluations.
                    mg1[v] = cache.gain(oracle, v) if oracle.deterministic else mg2[v]
                else:
                    self._tick(budget)
                    before = cache.misses
                    mg1[v] = cache.gain(oracle, v)
                    lookups[-1] += cache.misses - before
                    prev_best[v] = cur_best
                    if cur_best >= 0 and cur_best != v:
                        mg2[v] = cache.gain(
                            oracle, v, extra=[cur_best], extra_gain=cur_best_gain
                        )
                    else:
                        mg2[v] = mg1[v]
                flag[v] = len(seeds)
                if mg1[v] > cur_best_gain:
                    cur_best_gain, cur_best = mg1[v], v
                heapq.heappush(heap, (-mg1[v], next(counter), v))
        tele.count("celfpp.stale_pops", stale_pops)
        return seeds, {
            "node_lookups_per_iteration": lookups[: max(len(seeds), 1)],
            "estimated_spread": oracle.committed_sigma,
            **self._oracle_extras(oracle, cache),
        }

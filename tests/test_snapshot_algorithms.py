"""Tests for the snapshot family: StaticGreedy and PMC."""

import numpy as np
import pytest

from repro.algorithms.pmc import PMC, contract_snapshot
from repro.algorithms.static_greedy import StaticGreedy, snapshot_adjacency
from repro.diffusion.models import IC, LT
from repro.graph.digraph import DiGraph


@pytest.fixture
def hub_graph():
    edges = [(0, i) for i in range(1, 8)] + [(8, 9)]
    return DiGraph.from_edges(10, edges, weights=[0.9] * 7 + [0.9])


class TestSnapshotAdjacency:
    def test_respects_live_mask(self):
        g = DiGraph.from_edges(3, [(0, 1), (0, 2)])
        adj = snapshot_adjacency(g, np.array([True, False]))
        assert len(adj) == 3
        assert adj[0].tolist() in ([1], [2])
        live_targets = adj[0].tolist()
        assert len(live_targets) == 1

    def test_all_live(self):
        g = DiGraph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        adj = snapshot_adjacency(g, np.ones(3, dtype=bool))
        assert sorted(adj[0].tolist()) == [1, 2]
        assert adj[1].tolist() == [2]
        assert adj[2].tolist() == []


class TestStaticGreedy:
    def test_finds_hub(self, hub_graph, rng):
        res = StaticGreedy(num_snapshots=60).select(hub_graph, 1, IC, rng=rng)
        assert res.seeds == [0]

    def test_second_seed_from_other_component(self, hub_graph, rng):
        res = StaticGreedy(num_snapshots=60).select(hub_graph, 2, IC, rng=rng)
        assert res.seeds[0] == 0
        assert res.seeds[1] == 8

    def test_rejects_lt(self, hub_graph, rng):
        with pytest.raises(ValueError):
            StaticGreedy(num_snapshots=10).select(hub_graph, 1, LT, rng=rng)

    def test_estimated_spread_close_to_truth(self, hub_graph, rng):
        res = StaticGreedy(num_snapshots=200).select(hub_graph, 1, IC, rng=rng)
        # sigma({0}) = 1 + 7 * 0.9 = 7.3
        assert res.extras["estimated_spread"] == pytest.approx(7.3, abs=0.5)

    def test_invalid_snapshots(self):
        with pytest.raises(ValueError):
            StaticGreedy(num_snapshots=0)


class TestContractSnapshot:
    def test_cycle_contracts(self):
        g = DiGraph.from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 3)])
        comp, sizes, dag_adj = contract_snapshot(g, np.ones(4, dtype=bool))
        assert comp[0] == comp[1]
        assert sizes[comp[0]] == 2
        # DAG edge from {0,1} component to 2's component.
        assert comp[2] in dag_adj[comp[0]].tolist()

    def test_dead_edges_removed(self):
        g = DiGraph.from_edges(2, [(0, 1)])
        __, __s, dag_adj = contract_snapshot(g, np.zeros(1, dtype=bool))
        assert all(a.size == 0 for a in dag_adj)

    def test_sizes_sum_to_n(self, hub_graph):
        __, sizes, __a = contract_snapshot(
            hub_graph, np.ones(hub_graph.m, dtype=bool)
        )
        assert sizes.sum() == hub_graph.n


class TestPMC:
    def test_finds_hub(self, hub_graph, rng):
        res = PMC(num_snapshots=60).select(hub_graph, 1, IC, rng=rng)
        assert res.seeds == [0]

    def test_matches_static_greedy_seeds(self, hub_graph):
        sg = StaticGreedy(num_snapshots=100).select(
            hub_graph, 2, IC, rng=np.random.default_rng(4)
        )
        pmc = PMC(num_snapshots=100).select(
            hub_graph, 2, IC, rng=np.random.default_rng(4)
        )
        assert set(sg.seeds) == set(pmc.seeds)

    def test_giant_scc_handled(self, rng):
        # A dense cycle where every snapshot keeps most edges: the whole
        # graph contracts to nearly one component.
        edges = [(i, (i + 1) % 20) for i in range(20)]
        g = DiGraph.from_edges(20, edges, weights=[0.95] * 20)
        res = PMC(num_snapshots=30).select(g, 2, IC, rng=rng)
        assert len(res.seeds) == 2

    def test_rejects_lt(self, hub_graph, rng):
        with pytest.raises(ValueError):
            PMC(num_snapshots=10).select(hub_graph, 1, LT, rng=rng)

    def test_estimated_spread_close_to_truth(self, hub_graph, rng):
        res = PMC(num_snapshots=200).select(hub_graph, 1, IC, rng=rng)
        assert res.extras["estimated_spread"] == pytest.approx(7.3, abs=0.5)

    def test_invalid_snapshots(self):
        with pytest.raises(ValueError):
            PMC(num_snapshots=-1)

"""Terminal line charts for the paper-figure series.

The benchmarks print their data as aligned columns; for eyeballing the
*shape* of a figure (crossovers, blow-ups) a picture helps even in a
terminal.  :func:`line_chart` renders multiple series against a shared x
axis with per-series marker characters and an optional log-scaled y axis
(most of the paper's time/memory figures are log-scale).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["line_chart"]

_MARKERS = "ox+*#@%&"


def _transform(value: float, log_scale: bool) -> float:
    if log_scale:
        return math.log10(max(value, 1e-12))
    return value


def line_chart(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float | None]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    log_y: bool = False,
) -> str:
    """Render series as an ASCII chart; ``None`` points are skipped.

    Values must be positive when ``log_y`` is set.  Each series gets the
    next marker from ``oxX*#@%&``; a legend is appended.
    """
    if not xs:
        raise ValueError("xs must be non-empty")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")

    points: list[tuple[int, float, float]] = []  # (series idx, x, y)
    for idx, (name, ys) in enumerate(series.items()):
        for x, y in zip(xs, ys):
            if y is None:
                continue
            points.append((idx, float(x), _transform(float(y), log_y)))
    if not points:
        return f"{title}\n(no data)"

    x_lo, x_hi = min(xs), max(xs)
    y_values = [p[2] for p in points]
    y_lo, y_hi = min(y_values), max(y_values)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for __ in range(height)]
    for idx, x, y in points:
        col = int(round((x - x_lo) / x_span * (width - 1)))
        row = int(round((y - y_lo) / y_span * (height - 1)))
        row = height - 1 - row  # terminal rows grow downward
        marker = _MARKERS[idx % len(_MARKERS)]
        cell = grid[row][col]
        grid[row][col] = "*" if cell not in (" ", marker) else marker

    def y_label(value: float) -> str:
        raw = 10**value if log_y else value
        return f"{raw:10.3g}"

    lines = []
    if title:
        lines.append(title)
    top_label, bottom_label = y_label(y_hi), y_label(y_lo)
    for i, row in enumerate(grid):
        label = top_label if i == 0 else (bottom_label if i == height - 1 else " " * 10)
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(f"{'':10}  x: {x_lo:g} .. {x_hi:g}"
                 + ("   (log y)" if log_y else ""))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 10 + "  " + legend)
    return "\n".join(lines)

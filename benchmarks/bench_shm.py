"""Transport bench for the shared-memory arena (``repro.framework.shm``).

Every parallel engine fans out through ``run_chunks`` with its
chunk-invariant operands (graph CSR, RR-pool CSR, snapshot masks) in the
``shared`` tuple.  Those operands have two transports:

* **pickle** — the shared tuple is pickled once and every worker
  unpickles a private copy in its initializer (the pre-arena behaviour,
  forced with ``REPRO_SHM_DISABLE=1``);
* **arena** — big ndarrays are published into ``/dev/shm`` segments and
  workers attach zero-copy views by name (``REPRO_SHM_MIN_BYTES=0``
  opens the arena regardless of payload size).

The measured baseline is the **per-chunk** shape every engine used
before the substrate: the graph rode inside every chunk tuple, so the
call queue pickled it per chunk and every worker unpickled a fresh
private copy per chunk.

This bench demonstrates the three claims the substrate makes, on the
largest bundled graph (``livejournal``):

1. the dispatch payload is O(1) in graph size — a few hundred bytes of
   ``ShmRef`` descriptors instead of the multi-megabyte CSR pickle,
   shown by comparing payload bytes across two graph sizes;
2. dispatch time drops versus per-chunk shipping, because workers
   attach once instead of unpickling per chunk;
3. per-worker private memory drops, because the CSR pages are mapped
   shared instead of copied — measured from inside each worker via
   ``/proc/self/smaps_rollup`` (private KB) and ``ru_maxrss``.

On Linux the executor forks, so the per-worker pickle fallback also
reaches workers zero-copy (initializer args are inherited
copy-on-write); its row is reported for completeness and is expected
to sit close to the arena.  The arena's additional value over the
fallback is structural: named segments survive executor respawns
(workers re-attach by name) and do not depend on the fork start
method.

A byte-identity check pins the contract that makes the arena safe to
leave on by default: the RR engine produces the exact same pool under
either transport.

Knobs: ``REPRO_BENCH_SHM_CHUNKS`` (default 12), ``REPRO_BENCH_SHM_WORKERS``
(default 4), ``REPRO_BENCH_SHM_REPEATS`` (default 3),
``REPRO_BENCH_SHM_RR`` (RR sets for the identity check, default 800).
"""

from __future__ import annotations

import contextlib
import os
import pickle
import resource
import time

import numpy as np

from _common import emit, once, weighted_dataset
from repro.diffusion.models import WC
from repro.diffusion.rrpool import FlatRRPool
from repro.framework.pool import run_chunks
from repro.framework.shm import export_shared
from repro.framework.telemetry import Telemetry, activate

CHUNKS = int(os.environ.get("REPRO_BENCH_SHM_CHUNKS", "12") or "12")
WORKERS = int(os.environ.get("REPRO_BENCH_SHM_WORKERS", "4") or "4")
REPEATS = int(os.environ.get("REPRO_BENCH_SHM_REPEATS", "3") or "3")
RR_SETS = int(os.environ.get("REPRO_BENCH_SHM_RR", "800") or "800")


@contextlib.contextmanager
def _env(**overrides):
    saved = {k: os.environ.get(k) for k in overrides}
    os.environ.update(overrides)
    try:
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


#: Transport modes as env overrides.  The arena run pins MIN_BYTES=0 so
#: the result does not depend on whether the graph clears the default
#: 1 MiB threshold; the pickle run forces the legacy path.
MODES = {
    "pickle": {"REPRO_SHM_DISABLE": "1", "REPRO_SHM_MIN_BYTES": "0"},
    "arena": {"REPRO_SHM_DISABLE": "", "REPRO_SHM_MIN_BYTES": "0"},
}


def _worker_memory_kb() -> tuple[int, int]:
    """(private KB, peak RSS KB) of the calling process.

    Private = ``Private_Clean + Private_Dirty`` from smaps_rollup — the
    memory this worker owns exclusively, which is where a pickled CSR
    copy lands and where an attached shm view does not.
    """
    private = 0
    try:
        with open("/proc/self/smaps_rollup") as fh:
            for line in fh:
                if line.startswith(("Private_Clean:", "Private_Dirty:")):
                    private += int(line.split()[1])
    except OSError:  # pragma: no cover - non-Linux fallback
        private = -1
    return private, resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _touch_chunk(graph, idx):
    """Trivial chunk: page in the CSR, report this worker's memory."""
    checksum = int(graph.out_dst.sum()) + int(graph.in_src.sum())
    checksum += int(graph.out_ptr[-1]) + float(graph.out_w.sum()) > 0
    private, peak = _worker_memory_kb()
    return os.getpid(), int(checksum), private, peak


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _payload_bytes(graph) -> tuple[int, int]:
    """(pickle bytes, arena payload bytes) for shared=(graph,)."""
    blob = len(pickle.dumps((graph,), protocol=pickle.HIGHEST_PROTOCOL))
    with _env(**MODES["arena"]):
        payload, arena = export_shared((graph,), label="bench")
        try:
            assert arena is not None, "arena refused the export"
            ref = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        finally:
            if arena is not None:
                arena.close()
    return blob, ref


def _dispatch_round(graph, mode: str):
    """One timed fan-out under ``mode``; returns (seconds, mem rows).

    ``per-chunk`` reproduces the pre-substrate engines: the graph rides
    in every chunk tuple and is pickled through the call queue per
    chunk.  The other modes hoist it into ``shared`` and pick the
    transport via the env switches.
    """
    if mode == "per-chunk":
        args = [(graph, i) for i in range(CHUNKS)]
        run = lambda: run_chunks(_touch_chunk, args, workers=WORKERS)  # noqa: E731
        env = {}
    else:
        args = [(i,) for i in range(CHUNKS)]
        run = lambda: run_chunks(  # noqa: E731
            _touch_chunk, args, workers=WORKERS, shared=(graph,)
        )
        env = MODES[mode]
    with _env(**env):
        best, rows = None, None
        for __ in range(REPEATS):
            out, dt = _timed(run)
            if best is None or dt < best:
                best, rows = dt, out
    per_pid: dict[int, tuple[int, int]] = {}
    for pid, __, private, peak in rows:
        got = per_pid.get(pid, (0, 0))
        per_pid[pid] = (max(got[0], private), max(got[1], peak))
    checksums = {c for __, c, *_ in rows}
    assert len(checksums) == 1, "workers disagree on the CSR checksum"
    private_kb = max(p for p, __ in per_pid.values())
    peak_kb = max(r for __, r in per_pid.values())
    return best, len(per_pid), private_kb, peak_kb


def _rr_pool_bytes(graph, mode: str) -> bytes:
    """Flattened bytes of a parallel RR pool built under ``mode``."""
    with _env(**MODES[mode]):
        pool = FlatRRPool(graph.n)
        pool.extend(graph, WC.dynamics, RR_SETS,
                    np.random.default_rng(5), workers=WORKERS)
    return (pool.set_ptr.tobytes() + pool.set_nodes.tobytes()
            + pool.widths.tobytes())


def _run():
    cores = len(os.sched_getaffinity(0))
    graph = weighted_dataset("livejournal", WC)
    small = weighted_dataset("nethept", WC)
    lines = [
        f"config: chunks={CHUNKS} workers={WORKERS} repeats={REPEATS} "
        f"rr_sets={RR_SETS} cores={cores}",
        f"graph: livejournal n={graph.n:,} m={graph.m:,}",
        "",
    ]

    # -- dispatch payload: O(1) in graph size ---------------------------
    blob_small, ref_small = _payload_bytes(small)
    blob_large, ref_large = _payload_bytes(graph)
    lines += [
        "shared-args payload (shared=(graph,)):",
        f"  nethept      pickle {blob_small:>12,} B   arena {ref_small:>8,} B",
        f"  livejournal  pickle {blob_large:>12,} B   arena {ref_large:>8,} B",
        f"  pickle grows x{blob_large / blob_small:.1f} with the graph; "
        f"arena payload x{ref_large / ref_small:.2f} (descriptors only)",
        f"  legacy per-chunk cost at {CHUNKS} chunks: "
        f"{blob_large * CHUNKS / 1e6:,.1f} MB on the queue; "
        f"arena total: {ref_large * WORKERS / 1e3:.1f} KB",
        "",
    ]

    # -- dispatch time + per-worker memory ------------------------------
    rounds = {m: _dispatch_round(graph, m)
              for m in ("per-chunk", "pickle", "arena")}
    lines.append(
        f"fan-out of {CHUNKS} trivial chunks over {WORKERS} workers "
        f"(best of {REPEATS}):"
    )
    for m, (dt, seen, priv, peak) in rounds.items():
        lines.append(
            f"  {m:<16}  {dt:8.3f} s   worker private {priv / 1024:7.1f} MB"
            f"   peak rss {peak / 1024:7.1f} MB   ({seen} workers seen)"
        )
    t_legacy, __, priv_legacy, peak_legacy = rounds["per-chunk"]
    t_arena, __, priv_arena, peak_arena = rounds["arena"]
    speedup = t_legacy / t_arena
    saved_kb = priv_legacy - priv_arena
    lines += [
        f"  arena vs per-chunk: dispatch speedup x{speedup:.2f}   "
        f"private-memory saving {max(0, saved_kb) / 1024:.1f} MB/worker   "
        f"peak-rss saving {max(0, peak_legacy - peak_arena) / 1024:.1f} MB",
        "  (pickle fallback rides fork copy-on-write here, so it tracks "
        "the arena; see module docstring)",
    ]
    if cores < 2:
        lines.append(
            "  (single-core machine: workers run time-sliced, so the "
            "timing isolates transport overhead, not parallel speedup)"
        )
    lines.append("")

    # -- byte-identity across transports --------------------------------
    tele = Telemetry()
    with activate(tele):
        arena_pool = _rr_pool_bytes(graph, "arena")
    pickle_pool = _rr_pool_bytes(graph, "pickle")
    identical = arena_pool == pickle_pool
    lines += [
        f"RR engine ({RR_SETS} sets, workers={WORKERS}):",
        f"  pool byte-identical across transports: {identical}",
        f"  arena telemetry: segments="
        f"{tele.counters.get('shm.publish_segments', 0)} "
        f"published={tele.counters.get('shm.publish_bytes', 0):,} B "
        f"attaches={tele.counters.get('shm.attach', 0)}",
    ]
    assert identical, "transports must be byte-identical"
    assert tele.counters.get("pool.transport_shm", 0) >= 1
    return lines, speedup, saved_kb


def test_shm_engine(benchmark):
    lines, speedup, saved_kb = once(benchmark, _run)
    emit("shm_engine", "\n".join(lines))
    assert speedup > 1.0, (
        f"arena dispatch slower than per-chunk pickling (x{speedup:.2f})"
    )
    assert saved_kb > 0, "arena did not reduce per-worker private memory"

"""Table 3 — the scalable techniques on the four large datasets at k = 200.

Workload: livejournal / orkut / twitter / friendster analogues, the four
techniques the paper carries forward (PMC and EaSyIM under IC; PMC, IMM
and EaSyIM under WC; TIM+ and EaSyIM under LT), k = 200, spread reported
as a percentage of nodes as in the paper.  Budgets (20 s / 200 MB traced)
stand in for the paper's 40-hour / 256 GB walls and produce the same DNF /
Crashed vocabulary.
"""

from repro.algorithms import registry
from repro.diffusion.models import IC, LT, WC

from _common import (
    bench_journal,
    emit,
    evaluate_spread,
    once,
    run_cell,
    scaled_params,
    weighted_dataset,
)

K = 200
DATASETS = ("livejournal", "orkut", "twitter", "friendster")
ROSTER = {
    "IC": ("PMC", "EaSyIM"),
    "WC": ("PMC", "IMM", "EaSyIM"),
    "LT": ("TIM+", "EaSyIM"),
}
TIME_LIMIT = 30.0
MEMORY_LIMIT = 200.0
#: PMC's per-world SCC contraction is the pure-Python bottleneck at this
#: scale; 10 worlds keeps the k=200 run inside the budget (the paper runs
#: 200+ on C++).
PMC_SNAPSHOTS = 10


def _cell(name, dataset, model, journal=None):
    graph = weighted_dataset(dataset, model)
    params = scaled_params(name, model)
    params.pop("mc_simulations", None)
    if name == "PMC":
        params["num_snapshots"] = PMC_SNAPSHOTS
    algo = registry.make(name, **params)

    def score(record):
        est = evaluate_spread(graph, record.seeds, model, r=100)
        record.spread = est.mean

    return run_cell(
        algo,
        graph,
        K,
        model,
        time_limit=TIME_LIMIT,
        memory_limit_mb=MEMORY_LIMIT,
        journal=journal,
        scope=dataset,
        params=params,
        score=score,
    )


def test_table3_large_datasets(benchmark):
    journal = bench_journal("table3_large_datasets")

    def experiment():
        cells = {}
        for dataset in DATASETS:
            for model in (IC, WC, LT):
                for name in ROSTER[model.name]:
                    cells[(dataset, model.name, name)] = _cell(
                        name, dataset, model, journal=journal
                    )
        return cells

    cells = once(benchmark, experiment)

    lines = [
        f"Table 3: performance at k={K} on the large analogues "
        f"(budget {TIME_LIMIT:.0f}s / {MEMORY_LIMIT:.0f}MB traced)",
        f"{'Dataset':<12} {'Model':<5} {'Algorithm':<8} "
        f"{'Spread %':>9} {'Time (s)':>9} {'Mem (MB)':>9} {'Status':>8}",
        "-" * 66,
    ]
    for (dataset, model_name, name), record in cells.items():
        graph = weighted_dataset(dataset, IC)
        if record.ok:
            pct = 100.0 * record.spread / graph.n
            lines.append(
                f"{dataset:<12} {model_name:<5} {name:<8} {pct:>8.2f}% "
                f"{record.elapsed_seconds:>9.2f} "
                f"{(record.peak_memory_mb or 0):>9.2f} {record.status:>8}"
            )
        else:
            lines.append(
                f"{dataset:<12} {model_name:<5} {name:<8} {'-':>9} "
                f"{record.elapsed_seconds:>9.2f} {'-':>9} {record.status:>8}"
            )
    emit("table3_large_datasets", "\n".join(lines))

    # EaSyIM has the lowest memory footprint wherever it finishes.
    for dataset in DATASETS:
        for model_name, roster in ROSTER.items():
            finished = {
                n: cells[(dataset, model_name, n)].peak_memory_mb
                for n in roster
                if cells[(dataset, model_name, n)].ok
            }
            if "EaSyIM" in finished and len(finished) > 1:
                others = [v for k_, v in finished.items() if k_ != "EaSyIM"]
                assert finished["EaSyIM"] <= min(others) * 2.0 + 1.0

    # At least one cell must exercise the budget machinery or everything
    # completed — both acceptable at this scale; record which happened.
    statuses = {r.status for r in cells.values()}
    assert statuses <= {"OK", "DNF", "CRASHED"}

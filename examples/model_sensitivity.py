"""Myth M6 hands-on: "WC is equivalent to IC" — it is not.

WC *is* an instance of the Independent Cascade dynamics, but with weights
1/|In(v)| instead of a constant: low-degree users become easy targets and
hubs become hard ones.  This example runs the same technique on the same
topology under IC (W = 0.1), WC and LT and shows how the chosen seeds,
the reached audience and the cost all change — the reason benchmark
claims about "IC" made only under WC do not transfer.

Run with:  python examples/model_sensitivity.py
"""

import numpy as np

from repro import algorithms, datasets, diffusion


def main() -> None:
    topology = datasets.load("hepph")
    k = 15
    print(f"Topology: {topology}; k = {k}; technique: EaSyIM\n")
    print(f"{'Model':<6} {'Seeds (top 5)':<28} {'Spread':>8} {'% nodes':>8} "
          f"{'Time (s)':>9}")
    print("-" * 64)

    seed_sets = {}
    for model in diffusion.STANDARD_MODELS:
        graph = model.weighted(topology, np.random.default_rng(0))
        algo = algorithms.make("EaSyIM", path_length=3)
        result = algo.select(graph, k, model, rng=np.random.default_rng(1))
        estimate = diffusion.monte_carlo_spread(
            graph, result.seeds, model, r=1000, rng=np.random.default_rng(2)
        )
        seed_sets[model.name] = set(result.seeds)
        print(
            f"{model.name:<6} {str(result.seeds[:5]):<28} "
            f"{estimate.mean:>8.1f} {100 * estimate.mean / graph.n:>7.1f}% "
            f"{result.elapsed_seconds:>9.3f}"
        )

    overlap = seed_sets["IC"] & seed_sets["WC"]
    print(
        f"\nIC and WC agree on {len(overlap)}/{k} seeds — same dynamics, "
        f"different model. Claims proven only under WC say little about IC."
    )

    # The blow-up mechanism behind Figs. 1a/8: RR-set sizes under IC vs WC.
    from repro.diffusion import Dynamics, random_rr_set

    rng = np.random.default_rng(3)
    for model in (diffusion.IC, diffusion.WC):
        graph = model.weighted(topology)
        sizes = [
            random_rr_set(graph, Dynamics.IC, rng)[0].size for __ in range(200)
        ]
        print(
            f"Average RR-set size under {model.name}: {np.mean(sizes):8.1f} "
            f"nodes (max {max(sizes)})"
        )
    print(
        "Constant-weight IC on a dense graph is epidemic: every RR set "
        "swallows a chunk of the graph, which is exactly why TIM+/IMM "
        "exhaust memory under IC while cruising under WC."
    )


if __name__ == "__main__":
    main()

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-datasets``            the catalog with Table-1 statistics
``support-matrix``           Table 5 (models supported per algorithm)
``recommend``                the Fig.-11b decision tree
``select``                   run one technique on a dataset and score it
``tune``                     the Sec.-5.1.1 optimal-parameter procedure
``report``                   aggregate benchmarks/results into markdown
``serve``                    resident influence-query server (repro.serving)
``trace``                    summarize a JSONL telemetry trace

Examples::

    python -m repro select --dataset nethept --model WC \
        --algorithm IMM --k 20 --param epsilon=0.5 --param rr_scale=0.05
    python -m repro recommend --model LT
    python -m repro tune --dataset nethept --model WC --algorithm EaSyIM \
        --parameter path_length --spectrum 6,4,3,2,1 --k 10
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import algorithms, datasets, diffusion
from .framework import (
    CheckpointJournal,
    IsolationConfig,
    RetryPolicy,
    Telemetry,
    activate,
    cell_key,
    execute_cell,
    recommend,
    render_report,
    shards_env,
    summarize_trace,
    tune_parameter,
    write_trace,
)
from .serving import DEFAULT_PORT, ServingConfig, run_server

__all__ = ["main", "build_parser"]


def _parse_value(text: str):
    """Best-effort literal: int, then float, then raw string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_params(items: list[str] | None) -> dict:
    params = {}
    for item in items or []:
        if "=" not in item:
            raise SystemExit(f"--param expects key=value, got {item!r}")
        key, __, value = item.partition("=")
        params[key] = _parse_value(value)
    return params


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Influence-maximization benchmarking platform"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-datasets", help="catalog with Table-1 statistics")
    sub.add_parser("support-matrix", help="Table 5: model support")

    rec = sub.add_parser("recommend", help="Fig.-11b decision tree")
    rec.add_argument("--model", required=True, choices=["IC", "WC", "LT", "TV"])
    rec.add_argument("--memory-constrained", action="store_true")

    sel = sub.add_parser("select", help="run one technique and score it")
    sel.add_argument("--dataset", required=True)
    sel.add_argument("--model", required=True, choices=["IC", "WC", "TV", "LT", "LT-random"])
    sel.add_argument("--algorithm", required=True)
    sel.add_argument("--k", type=int, required=True)
    sel.add_argument("--param", action="append", metavar="KEY=VALUE")
    sel.add_argument("--rr-workers", type=int, default=None, metavar="N",
                     help="processes for parallel RR-set sampling (flat CSR "
                          "engine); only meaningful for the RR-sketch family "
                          "(RIS/TIM+/IMM/SSA/D-SSA), ignored elsewhere")
    sel.add_argument("--mc", type=int, default=1000, help="simulations for sigma(S)")
    sel.add_argument("--spread-oracle", default=None, metavar="BACKEND",
                     choices=list(diffusion.ORACLE_BACKENDS),
                     help="sigma(S) backend for the MC greedy family "
                          "(GREEDY/CELF/CELF++): serial (legacy per-cascade), "
                          "batched (vectorized multi-cascade MC), snapshot "
                          "(presampled live-edge worlds), sketch (snapshot + "
                          "bottom-k gain bounds); ignored elsewhere")
    sel.add_argument("--mc-batch", type=int, default=None, metavar="B",
                     help="cascades per vectorized kernel call, for both the "
                          "selection oracle (when accepted) and the scoring "
                          "estimate")
    sel.add_argument("--mc-workers", type=int, default=None, metavar="N",
                     help="processes for the Monte-Carlo simulations, for both "
                          "the selection oracle (when accepted) and the "
                          "scoring estimate; matches --rr-workers for the "
                          "sketch family")
    sel.add_argument("--path-workers", type=int, default=None, metavar="N",
                     help="processes for the path-proxy engine's batched "
                          "structure builds; only meaningful for the path "
                          "family (PMIA/LDAG/IRIE/SIMPATH), ignored "
                          "elsewhere; the engine is deterministic, so the "
                          "selected seeds are identical at any worker count")
    sel.add_argument("--seed", type=int, default=0, help="RNG seed")
    sel.add_argument("--time-limit", type=float, default=None)
    sel.add_argument("--memory-limit-mb", type=float, default=None)
    sel.add_argument("--isolate", action="store_true",
                     help="run selection in a killable subprocess: the time "
                          "limit becomes a preemptive deadline (DNF) and the "
                          "memory limit an rlimit ceiling (CRASHED)")
    sel.add_argument("--retries", type=int, default=1, metavar="N",
                     help="attempts for transient FAILED/KILLED cells, each "
                          "on a derived RNG (default 1 = no retry)")
    sel.add_argument("--pool-retries", type=int, default=None, metavar="N",
                     help="per-chunk retry budget for the resilient worker "
                          "pool under any parallel engine (--rr-workers/"
                          "--mc-workers/--path-workers); a chunk failing "
                          "this many times is quarantined and the cell "
                          "FAILED (default: REPRO_BENCH_POOL_RETRIES or 4)")
    sel.add_argument("--shards", type=int, default=None, metavar="S",
                     help="partition-aware shard count for the resilient "
                          "worker pool's fan-out: chunks execute in S "
                          "round-robin waves and the path engine groups "
                          "sources by an edge-cut partition; pure "
                          "scheduling, so seeds and spreads stay "
                          "byte-identical at any S (default: "
                          "REPRO_BENCH_SHARDS or 1)")
    sel.add_argument("--resume", default=None, metavar="JOURNAL",
                     help="JSONL checkpoint journal; a cell already recorded "
                          "there is not re-run")
    sel.add_argument("--trace", default=None, metavar="PATH",
                     help="append a JSONL telemetry trace (phase spans and "
                          "engine counters) for this cell; summarize with "
                          "'python -m repro trace PATH'")

    tune = sub.add_parser("tune", help="Sec.-5.1.1 parameter tuning")
    tune.add_argument("--dataset", required=True)
    tune.add_argument("--model", required=True, choices=["IC", "WC", "TV", "LT", "LT-random"])
    tune.add_argument("--algorithm", required=True)
    tune.add_argument("--parameter", required=True)
    tune.add_argument("--spectrum", required=True,
                      help="comma-separated values, most accurate first")
    tune.add_argument("--k", type=int, required=True)
    tune.add_argument("--mc", type=int, default=500)
    tune.add_argument("--seed", type=int, default=0)

    report = sub.add_parser("report", help="aggregate bench results")
    report.add_argument("--results-dir", default="benchmarks/results")
    report.add_argument("--output", default=None,
                        help="write to a file instead of stdout")

    serve = sub.add_parser(
        "serve", help="resident influence-query server (repro.serving)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help=f"TCP port (default {DEFAULT_PORT}; 0 = ephemeral)")
    serve.add_argument("--datasets", default=None, metavar="A,B,...",
                       help="restrict the bundled catalog (default: all)")
    serve.add_argument("--catalog-dir", default=None, metavar="DIR",
                       help="serve every *.npz graph in DIR (save_npz format), "
                            "named by file stem")
    serve.add_argument("--cache-mb", type=float, default=256.0, metavar="MB",
                       help="byte budget for warm artifacts (RR pools, "
                            "oracles, selections); 0 = unbounded")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="executor threads for engine work (1 keeps "
                            "per-phase engine telemetry)")
    serve.add_argument("--coalesce-ms", type=float, default=2.0, metavar="MS",
                       help="window for batching concurrent sigma queries "
                            "into one oracle evaluation")
    serve.add_argument("--worlds", type=int, default=200, metavar="R",
                       help="default live-edge worlds per sigma oracle")
    serve.add_argument("--oracle", default="snapshot",
                       choices=["snapshot", "sketch", "batched"],
                       help="default sigma backend for sigma/gain queries")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="append serving.* telemetry as JSONL on shutdown "
                            "(inspect via 'repro trace PATH')")

    trace = sub.add_parser("trace", help="summarize a JSONL telemetry trace")
    trace.add_argument("path", help="trace file written via --trace or "
                                    "REPRO_BENCH_TRACE")
    return parser


def _cmd_list_datasets() -> int:
    print(datasets.table1_rows())
    return 0


def _cmd_support_matrix() -> int:
    print(algorithms.support_matrix())
    return 0


def _cmd_recommend(args) -> int:
    choice = recommend(args.model, memory_constrained=args.memory_constrained)
    constraint = "scarce" if args.memory_constrained else "ample"
    print(f"{args.model} with {constraint} memory -> {choice}")
    return 0


def _cmd_select(args) -> int:
    model = diffusion.model_by_name(args.model)
    graph = model.weighted(datasets.load(args.dataset), np.random.default_rng(0))
    params = _parse_params(args.param)
    if args.rr_workers is not None and args.rr_workers > 1:
        if algorithms.registry.accepts_parameter(args.algorithm, "rr_workers"):
            params.setdefault("rr_workers", args.rr_workers)
        else:
            print(f"note: {args.algorithm} does not sample RR sets; "
                  "--rr-workers ignored")
    if args.spread_oracle is not None:
        if algorithms.registry.accepts_parameter(args.algorithm, "spread_oracle"):
            params.setdefault("spread_oracle", args.spread_oracle)
        else:
            print(f"note: {args.algorithm} does not take a spread oracle; "
                  "--spread-oracle ignored")
    if args.path_workers is not None and args.path_workers > 1:
        if algorithms.registry.accepts_parameter(args.algorithm, "path_workers"):
            params.setdefault("path_workers", args.path_workers)
        else:
            print(f"note: {args.algorithm} does not build path structures; "
                  "--path-workers ignored")
    for flag, name in (("mc_batch", "--mc-batch"), ("mc_workers", "--mc-workers")):
        value = getattr(args, flag)
        if value is not None and value > 1:
            if algorithms.registry.accepts_parameter(args.algorithm, flag):
                params.setdefault(flag, value)
            # No note when rejected: both flags still shape the scoring
            # estimate below, so they are never wholly ignored.
    algo = algorithms.make(args.algorithm, **params)
    journal = CheckpointJournal(args.resume) if args.resume else None
    key = cell_key(args.algorithm, params, args.k,
                   model=args.model, scope=args.dataset)
    tele = Telemetry(label=key) if args.trace else None
    if journal is not None and key in journal:
        record = journal.get(key)
        print(f"resumed   : cached {record.status} cell from {args.resume}")
    else:
        record, __ = execute_cell(
            algo,
            graph,
            args.k,
            model,
            rng=np.random.default_rng(args.seed),
            config=IsolationConfig(
                enabled=args.isolate,
                time_limit_seconds=args.time_limit,
                memory_limit_mb=args.memory_limit_mb,
                track_memory=args.memory_limit_mb is not None,
                telemetry=tele is not None,
                pool_retries=args.pool_retries,
                shards=args.shards,
            ),
            retry=RetryPolicy(max_attempts=max(1, args.retries)),
        )
        if journal is not None:
            journal.record(key, record)
    if tele is not None:
        # Selection phases were collected inside the (possibly isolated)
        # cell; fold its snapshot into this session's handle so scoring
        # spans land in the same trace.
        tele.absorb(record.extras.get("telemetry"))
    if not record.ok:
        line = f"{args.algorithm} on {args.dataset}/{args.model}: {record.status}"
        failure = record.extras.get("failure")
        if isinstance(failure, dict) and failure.get("type"):
            line += f" ({failure['type']})"
        print(line)
        if tele is not None:
            write_trace(args.trace, tele.snapshot(), cell=key, record=record)
            print(f"trace     : {args.trace}")
        return 1
    with activate(tele) as t, t.span("score"), shards_env(args.shards):
        estimate = diffusion.monte_carlo_spread(
            graph, record.seeds, model, r=args.mc,
            rng=np.random.default_rng(args.seed + 1),
            workers=args.mc_workers, batch=args.mc_batch,
        )
    print(f"algorithm : {args.algorithm}")
    print(f"dataset   : {args.dataset} ({graph.n} nodes, {graph.m} arcs)")
    print(f"model     : {args.model}")
    print(f"seeds     : {record.seeds}")
    print(f"time      : {record.elapsed_seconds:.3f}s")
    print(f"spread    : {estimate.mean:.1f} +/- {estimate.stderr:.1f} "
          f"({args.mc} simulations)")
    if tele is not None:
        events = write_trace(args.trace, tele.snapshot(), cell=key, record=record)
        print(f"trace     : {args.trace} ({events} events)")
    return 0


def _cmd_tune(args) -> int:
    model = diffusion.model_by_name(args.model)
    graph = model.weighted(datasets.load(args.dataset), np.random.default_rng(0))
    spectrum = [_parse_value(v) for v in args.spectrum.split(",")]
    result = tune_parameter(
        args.algorithm,
        args.parameter,
        spectrum,
        graph,
        model,
        args.k,
        mc_simulations=args.mc,
        rng=np.random.default_rng(args.seed),
    )
    print(result.table())
    return 0


def _cmd_serve(args) -> int:
    datasets_opt = None
    if args.datasets:
        datasets_opt = tuple(
            name.strip() for name in args.datasets.split(",") if name.strip()
        )
    cache_bytes = None if args.cache_mb <= 0 else int(args.cache_mb * (1 << 20))
    config = ServingConfig(
        host=args.host,
        port=args.port,
        datasets=datasets_opt,
        catalog_dir=args.catalog_dir,
        cache_bytes=cache_bytes,
        workers=args.workers,
        coalesce_ms=args.coalesce_ms,
        default_worlds=args.worlds,
        default_oracle=args.oracle,
        trace=args.trace,
    )
    return run_server(config, announce=print)


def _cmd_trace(args) -> int:
    print(summarize_trace(args.path))
    return 0


def _cmd_report(args) -> int:
    text = render_report(args.results_dir)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list-datasets": lambda: _cmd_list_datasets(),
        "support-matrix": lambda: _cmd_support_matrix(),
        "recommend": lambda: _cmd_recommend(args),
        "select": lambda: _cmd_select(args),
        "tune": lambda: _cmd_tune(args),
        "report": lambda: _cmd_report(args),
        "serve": lambda: _cmd_serve(args),
        "trace": lambda: _cmd_trace(args),
    }
    return handlers[args.command]()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Fig. 11 — the concluding skyline and decision tree.

(a) Measures (quality, time, memory) for a representative roster on the
hepph analogue under WC, classifies each technique onto the three pillars
and verifies the paper's conclusion: nobody stands on all three.

(b) Prints the decision tree's recommendations.
"""

import numpy as np

from repro.algorithms import registry
from repro.diffusion.models import WC
from repro.framework.metrics import run_with_budget
from repro.framework.skyline import PillarScores, classify_pillars, recommend, skyline

from _common import emit, evaluate_spread, once, scaled_params, weighted_dataset

K = 25
ROSTER = ("CELF", "IMM", "TIM+", "PMC", "StaticGreedy", "IRIE", "EaSyIM", "IMRank1")


def test_fig11_skyline_and_decision_tree(benchmark):
    graph = weighted_dataset("hepph", WC)

    def experiment():
        scores = []
        for name in ROSTER:
            params = scaled_params(name, WC)
            params.pop("mc_simulations", None)
            if name == "CELF":
                params["mc_simulations"] = 10
            record, __ = run_with_budget(
                registry.make(name, **params),
                graph,
                K,
                WC,
                rng=np.random.default_rng(11),
                time_limit_seconds=60.0,
                track_memory=True,
            )
            if not record.ok:
                continue
            spread = evaluate_spread(graph, record.seeds, WC).mean
            scores.append(
                PillarScores(
                    name=name,
                    quality=spread,
                    time_seconds=record.elapsed_seconds,
                    memory_mb=record.peak_memory_mb or 0.0,
                )
            )
        return scores

    scores = once(benchmark, experiment)
    pillars = classify_pillars(scores)
    frontier = {s.name for s in skyline(scores)}

    lines = [
        "Fig 11a: pillar classification (hepph analogue, WC, k=25)",
        f"{'Algorithm':<14} {'Spread':>8} {'Time (s)':>9} {'Mem (MB)':>9} "
        f"{'Pillars':>8} {'Skyline':>8}",
        "-" * 62,
    ]
    for s in scores:
        lines.append(
            f"{s.name:<14} {s.quality:>8.1f} {s.time_seconds:>9.3f} "
            f"{s.memory_mb:>9.2f} {''.join(sorted(pillars[s.name])):>8} "
            f"{'yes' if s.name in frontier else '':>8}"
        )
    lines.append("")
    lines.append("Fig 11b decision tree:")
    for model_name in ("LT", "WC", "IC"):
        lines.append(f"  {model_name}, ample memory    -> {recommend(model_name)}")
    lines.append(f"  any model, scarce memory -> "
                 f"{recommend('IC', memory_constrained=True)}")
    emit("fig11_skyline", "\n".join(lines))

    assert scores, "at least some techniques must finish"
    # The paper's conclusion: no single state-of-the-art technique.
    assert all(len(p) < 3 for p in pillars.values()), pillars
    assert frontier, "the skyline is non-empty"
    assert recommend("WC") == "IMM"

"""Tests for process-parallel Monte-Carlo spread estimation."""

import numpy as np
import pytest

from repro.diffusion.models import Dynamics, WC
from repro.diffusion.simulation import monte_carlo_spread
from repro.graph.digraph import DiGraph


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(0)
    g = DiGraph.from_arrays(
        80, rng.integers(0, 80, 320), rng.integers(0, 80, 320)
    )
    return WC.weighted(g)


class TestParallelMC:
    def test_parallel_matches_serial_statistically(self, graph):
        serial = monte_carlo_spread(
            graph, [0, 1, 2], WC, r=600, rng=np.random.default_rng(1)
        )
        parallel = monte_carlo_spread(
            graph, [0, 1, 2], WC, r=600, rng=np.random.default_rng(2), workers=3
        )
        # Same estimator, independent randomness: agree within joint error.
        tolerance = 4 * (serial.stderr + parallel.stderr)
        assert parallel.mean == pytest.approx(serial.mean, abs=tolerance)

    def test_reproducible_for_fixed_seed_and_workers(self, graph):
        a = monte_carlo_spread(
            graph, [3], WC, r=100, rng=np.random.default_rng(5), workers=2
        )
        b = monte_carlo_spread(
            graph, [3], WC, r=100, rng=np.random.default_rng(5), workers=2
        )
        assert a.mean == b.mean
        assert a.std == b.std

    def test_exact_sample_count(self, graph):
        # r not divisible by workers still yields exactly r samples.
        __, samples = monte_carlo_spread(
            graph, [0], WC, r=101, rng=np.random.default_rng(3),
            workers=4, return_samples=True,
        )
        assert samples.shape == (101,)

    def test_more_workers_than_samples(self, graph):
        estimate = monte_carlo_spread(
            graph, [0], WC, r=2, rng=np.random.default_rng(4), workers=8
        )
        assert estimate.simulations == 2

    def test_workers_one_is_serial(self, graph):
        a = monte_carlo_spread(
            graph, [0], WC, r=50, rng=np.random.default_rng(6), workers=1
        )
        b = monte_carlo_spread(
            graph, [0], WC, r=50, rng=np.random.default_rng(6)
        )
        assert a.mean == b.mean

    def test_lt_dynamics_supported(self, graph):
        from repro.diffusion.models import LT

        lt_graph = LT.weighted(
            DiGraph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        )
        estimate = monte_carlo_spread(
            lt_graph, [0], Dynamics.LT, r=40,
            rng=np.random.default_rng(7), workers=2,
        )
        assert estimate.mean == 5.0  # weight-1 chain activates fully

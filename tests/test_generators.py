"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.digraph import DiGraph


def build(edge_arrays):
    n, src, dst = edge_arrays
    return DiGraph.from_arrays(n, src, dst)


class TestSymmetrize:
    def test_adds_reverse_arcs(self):
        n, src, dst = generators.symmetrize(
            3, np.array([0, 1]), np.array([1, 2])
        )
        g = DiGraph.from_arrays(n, src, dst)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.has_edge(1, 2) and g.has_edge(2, 1)


class TestErdosRenyi:
    def test_size_roughly_matches_p(self, rng):
        g = build(generators.erdos_renyi(200, 0.02, rng))
        expected = 0.02 * 200 * 199
        assert 0.5 * expected < g.m < 1.5 * expected

    def test_zero_p_gives_empty(self, rng):
        g = build(generators.erdos_renyi(50, 0.0, rng))
        assert g.m == 0

    def test_invalid_p_raises(self, rng):
        with pytest.raises(ValueError):
            generators.erdos_renyi(10, 1.5, rng)

    def test_undirected_mode_symmetric(self, rng):
        g = build(generators.erdos_renyi(60, 0.05, rng, directed=False))
        for u, v, __ in list(g.edges())[:50]:
            assert g.has_edge(v, u)


class TestPreferentialAttachment:
    def test_edge_count(self, rng):
        g = build(generators.preferential_attachment(200, 3, rng))
        # ~3 undirected edges per added node, doubled into arcs.
        assert g.m == pytest.approx(2 * 3 * (200 - 3), rel=0.05)

    def test_heavy_tail(self, rng):
        g = build(generators.preferential_attachment(500, 2, rng))
        degrees = g.out_degree()
        assert degrees.max() > 5 * np.median(degrees[degrees > 0])

    def test_invalid_params_raise(self, rng):
        with pytest.raises(ValueError):
            generators.preferential_attachment(3, 5, rng)

    def test_deterministic_with_seed(self):
        a = generators.preferential_attachment(100, 2, np.random.default_rng(5))
        b = generators.preferential_attachment(100, 2, np.random.default_rng(5))
        assert np.array_equal(a[1], b[1]) and np.array_equal(a[2], b[2])


class TestWattsStrogatz:
    def test_degree_regular_without_rewiring(self, rng):
        g = build(generators.watts_strogatz(30, 2, 0.0, rng, directed=True))
        assert (g.out_degree() == 2).all()

    def test_rewiring_changes_structure(self):
        a = build(generators.watts_strogatz(40, 2, 0.0, np.random.default_rng(1), directed=True))
        b = build(generators.watts_strogatz(40, 2, 0.9, np.random.default_rng(1), directed=True))
        assert a != b

    def test_invalid_params_raise(self, rng):
        with pytest.raises(ValueError):
            generators.watts_strogatz(4, 2, 0.1, rng)


class TestPowerlawConfiguration:
    def test_average_degree_in_band(self, rng):
        g = build(generators.powerlaw_configuration(400, 2.3, 8.0, rng))
        avg = g.m / g.n
        assert 4.0 < avg < 12.0

    def test_heavy_in_degree_tail(self, rng):
        g = build(generators.powerlaw_configuration(400, 2.1, 10.0, rng))
        in_deg = g.in_degree()
        assert in_deg.max() > 4 * max(np.median(in_deg), 1)

    def test_too_small_raises(self, rng):
        with pytest.raises(ValueError):
            generators.powerlaw_configuration(1, 2.3, 5.0, rng)


class TestForestFire:
    def test_connected_growth(self, rng):
        g = build(generators.forest_fire(100, 0.3, rng))
        # Every node after the first links to at least one predecessor.
        assert (g.out_degree()[1:] >= 1).all()

    def test_higher_forward_prob_denser(self):
        sparse = build(generators.forest_fire(150, 0.1, np.random.default_rng(3)))
        dense = build(generators.forest_fire(150, 0.6, np.random.default_rng(3)))
        assert dense.m > sparse.m

    def test_invalid_prob_raises(self, rng):
        with pytest.raises(ValueError):
            generators.forest_fire(10, 1.0, rng)

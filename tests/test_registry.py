"""Tests for the algorithm registry and Table-5 support matrix."""

import pytest

from repro.algorithms import registry
from repro.algorithms.imrank import IMRank
from repro.diffusion.models import IC, LT, WC, Dynamics


class TestMake:
    def test_all_registered_names_instantiate(self):
        for name in registry.ALGORITHMS:
            algo = registry.make(name)
            assert algo.name in (name, "IMRank1", "IMRank2")

    def test_parameter_override(self):
        algo = registry.make("CELF", mc_simulations=42)
        assert algo.mc_simulations == 42

    def test_imrank_variants_keep_l(self):
        algo = registry.make("IMRank2", scoring_rounds=5)
        assert isinstance(algo, IMRank)
        assert algo.l == 2
        assert algo.scoring_rounds == 5

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            registry.make("MAGIC")


class TestSupportMatrix:
    """Table 5's exact content."""

    TABLE5 = {
        "CELF": (True, True),
        "CELF++": (True, True),
        "EaSyIM": (True, True),
        "IMRank1": (True, False),
        "IMRank2": (True, False),
        "IRIE": (True, False),
        "PMC": (True, False),
        "StaticGreedy": (True, False),
        "TIM+": (True, True),
        "IMM": (True, True),
        "SIMPATH": (False, True),
        "LDAG": (False, True),
    }

    @pytest.mark.parametrize("name,expected", sorted(TABLE5.items()))
    def test_matches_paper(self, name, expected):
        ic, lt = expected
        assert registry.supports(name, Dynamics.IC) == ic
        assert registry.supports(name, Dynamics.LT) == lt

    def test_wc_counts_as_ic(self):
        # WC is an instance of the IC dynamics (myth M6).
        assert registry.supports("PMC", WC)
        assert not registry.supports("LDAG", WC)

    def test_render_includes_all_benchmarked(self):
        text = registry.support_matrix()
        for name in registry.BENCHMARKED:
            assert name in text


class TestOptimalParameters:
    def test_table2_values(self):
        assert registry.optimal_parameters("TIM+", "IC") == {"epsilon": 0.05}
        assert registry.optimal_parameters("IMM", "WC") == {"epsilon": 0.1}
        assert registry.optimal_parameters("CELF", "LT") == {"mc_simulations": 10000}
        assert registry.optimal_parameters("PMC", "IC") == {"num_snapshots": 200}

    def test_accepts_model_object(self):
        assert registry.optimal_parameters("IMM", WC) == {"epsilon": 0.1}

    def test_missing_combo_is_empty(self):
        assert registry.optimal_parameters("LDAG", "LT") == {}
        assert registry.optimal_parameters("PMC", "LT") == {}

    def test_make_tuned(self):
        algo = registry.make_tuned("IMM", IC, rr_scale=0.01)
        assert algo.epsilon == 0.05
        assert algo.rr_scale == 0.01

    def test_benchmarked_list_has_eleven_techniques(self):
        # Eleven techniques; IMRank contributes two variants.
        assert len(registry.BENCHMARKED) == 12
        base_names = {n.rstrip("12") for n in registry.BENCHMARKED}
        assert len(base_names) == 11

"""PMC — Pruned Monte-Carlo simulations (Ohsaka et al., AAAI'14) — Sec. 4.3.

Same snapshot-averaging idea as StaticGreedy, plus the two prunings that
give PMC its scalability edge:

1. **SCC contraction.**  Inside a live-edge world, all nodes of a strongly
   connected component have identical reachability, so each snapshot is
   contracted to a DAG of components weighted by component size.  Under
   constant-weight IC on dense graphs (the regime where RR-set methods
   blow up, M6) a giant component absorbs most of the graph and the DAG
   becomes tiny — exactly why PMC is the one technique that survives IC on
   the paper's large datasets (Table 3).
2. **Dead-component marking.**  Once a component is covered by the chosen
   seeds, marginal BFS never expands it again (its downstream is covered
   too), so later iterations get progressively cheaper.
"""

from __future__ import annotations

from collections import deque
from typing import Any

import heapq
import itertools

import numpy as np

from ..diffusion.models import Dynamics, PropagationModel
from ..diffusion.snapshots import (
    Snapshot,
    sample_live_masks,
    strongly_connected_components,
)
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm

__all__ = ["PMC", "contract_snapshot"]


def contract_snapshot(
    graph: DiGraph, live: np.ndarray
) -> tuple[np.ndarray, np.ndarray, list[np.ndarray]]:
    """SCC-contract one snapshot.

    Returns ``(comp, sizes, dag_adj)`` where ``comp`` maps node -> component
    id, ``sizes`` is the node count per component and ``dag_adj[c]`` lists
    the distinct successor components of ``c``.
    """
    comp = strongly_connected_components(Snapshot(graph, live))
    num_comps = int(comp.max()) + 1 if comp.size else 0
    sizes = np.bincount(comp, minlength=num_comps)
    live_idx = np.nonzero(live)[0]
    csrc = comp[graph.edge_src[live_idx]]
    cdst = comp[graph.out_dst[live_idx]]
    keep = csrc != cdst
    csrc, cdst = csrc[keep], cdst[keep]
    dag_adj: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * num_comps
    if csrc.size:
        key = csrc * num_comps + cdst
        key = np.unique(key)
        csrc, cdst = key // num_comps, key % num_comps
        counts = np.zeros(num_comps, dtype=np.int64)
        np.add.at(counts, csrc, 1)
        splits = np.cumsum(counts)[:-1]
        dag_adj = np.split(cdst, splits)
    return comp, sizes, dag_adj


def _marginal_comp_reach(
    dag_adj: list[np.ndarray], dead: np.ndarray, start: int
) -> list[int]:
    """Components newly reachable from ``start``, skipping dead ones."""
    if dead[start]:
        return []
    seen = {start}
    reached = [start]
    queue: deque[int] = deque([start])
    while queue:
        c = queue.popleft()
        for d in dag_adj[c]:
            d = int(d)
            if d in seen or dead[d]:
                continue
            seen.add(d)
            reached.append(d)
            queue.append(d)
    return reached


class PMC(IMAlgorithm):
    """Pruned MC greedy over SCC-contracted snapshot DAGs."""

    name = "PMC"
    supported = (Dynamics.IC,)
    external_parameter = "#Snapshots"

    def __init__(self, num_snapshots: int = 200) -> None:
        if num_snapshots < 1:
            raise ValueError("num_snapshots must be positive")
        self.num_snapshots = num_snapshots

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        # Shared world sampler (same RNG stream as the historical per-world
        # loop, so seeded runs are unchanged).
        masks = sample_live_masks(graph, Dynamics.IC, self.num_snapshots, rng, budget)
        worlds = [contract_snapshot(graph, masks[i]) for i in range(self.num_snapshots)]
        dead = [np.zeros(sizes.shape[0], dtype=bool) for __, sizes, __a in worlds]
        # Nodes in the same component of a world have identical reach there;
        # memoize per (world, component) and invalidate when seeds change.
        memo: list[dict[int, int]] = [{} for __ in worlds]

        def gain(v: int) -> float:
            total = 0
            for (comp, sizes, dag_adj), dd, mm in zip(worlds, dead, memo):
                c0 = int(comp[v])
                cached_reach = mm.get(c0)
                if cached_reach is None:
                    cached_reach = sum(
                        int(sizes[c])
                        for c in _marginal_comp_reach(dag_adj, dd, c0)
                    )
                    mm[c0] = cached_reach
                total += cached_reach
            return total / len(worlds)

        counter = itertools.count()
        cached = np.zeros(graph.n, dtype=np.float64)
        heap: list[tuple[float, int, int, int]] = []
        for v in range(graph.n):
            if v % 64 == 0:
                self._tick(budget)
            g = gain(v)
            cached[v] = g
            heapq.heappush(heap, (-g, next(counter), v, 0))

        seeds: list[int] = []
        in_seed = np.zeros(graph.n, dtype=bool)
        estimated = 0.0
        while heap and len(seeds) < k:
            neg_gain, __, v, round_tag = heapq.heappop(heap)
            if in_seed[v] or -neg_gain != cached[v]:
                continue
            if round_tag == len(seeds):
                seeds.append(v)
                in_seed[v] = True
                estimated += -neg_gain
                for (comp, __s, dag_adj), dd, mm in zip(worlds, dead, memo):
                    for c in _marginal_comp_reach(dag_adj, dd, int(comp[v])):
                        dd[c] = True
                    mm.clear()
                continue
            self._tick(budget)
            g = gain(v)
            cached[v] = g
            heapq.heappush(heap, (-g, next(counter), v, len(seeds)))
        return seeds, {
            "num_snapshots": self.num_snapshots,
            "estimated_spread": estimated,
        }

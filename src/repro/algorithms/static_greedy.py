"""StaticGreedy (Cheng et al., CIKM'13) — Sec. 4.3.

Generates R live-edge snapshots *once*, then runs lazy greedy where a
node's gain is its average marginal reachability across snapshots.  Reusing
the same snapshots for every iteration removes the sampling noise that
plagues per-iteration MC greedy ("solving the scalability-accuracy
dilemma"), but the reach computations are on the raw snapshot graphs —
no SCC contraction — which is why PMC overtakes it on large or dense
inputs (Sec. 5.5; the paper could not even run SG on its large datasets).

Because a covered node's reachable set is already fully covered, marginal
BFS stops at covered nodes — marginal gains shrink rapidly across
iterations, the property lazy evaluation feeds on.

The reach computations are served by the snapshot spread oracle
(:class:`repro.diffusion.oracle.SnapshotOracle`): all worlds advance in
one vectorized multi-world BFS instead of R Python BFS walks.  World
sampling goes through :func:`repro.diffusion.snapshots.sample_live_masks`
— the same stream as the historical per-snapshot loop, and the gains are
exact per-world counts either way, so seeded runs are unchanged.
:func:`snapshot_adjacency` / :func:`_marginal_reach` remain the scalar
reference implementation (SKIM and the property tests use them).
"""

from __future__ import annotations

from collections import deque
from typing import Any

import heapq
import itertools

import numpy as np

from ..diffusion.models import Dynamics, PropagationModel
from ..diffusion.oracle import SnapshotOracle
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm

__all__ = ["StaticGreedy", "snapshot_adjacency"]


def snapshot_adjacency(graph: DiGraph, live: np.ndarray) -> list[np.ndarray]:
    """Per-node live out-neighbour arrays for one snapshot."""
    counts = np.zeros(graph.n, dtype=np.int64)
    live_idx = np.nonzero(live)[0]
    src = graph.edge_src[live_idx]
    np.add.at(counts, src, 1)
    splits = np.cumsum(counts)[:-1]
    return np.split(graph.out_dst[live_idx], splits)


def _marginal_reach(
    adj: list[np.ndarray], covered: np.ndarray, source: int
) -> list[int]:
    """Nodes newly reachable from ``source``, stopping at covered nodes."""
    if covered[source]:
        return []
    reached = [source]
    seen = {source}
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        for v in adj[u]:
            v = int(v)
            if v in seen or covered[v]:
                continue
            seen.add(v)
            reached.append(v)
            queue.append(v)
    return reached


class StaticGreedy(IMAlgorithm):
    """Snapshot-averaged lazy greedy (the SG of the paper's figures)."""

    name = "StaticGreedy"
    supported = (Dynamics.IC,)
    external_parameter = "#Snapshots"

    def __init__(self, num_snapshots: int = 250) -> None:
        if num_snapshots < 1:
            raise ValueError("num_snapshots must be positive")
        self.num_snapshots = num_snapshots

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        oracle = SnapshotOracle(graph, model, self.num_snapshots, rng, budget=budget)

        counter = itertools.count()
        cached = np.zeros(graph.n, dtype=np.float64)
        heap: list[tuple[float, int, int, int]] = []
        for v in range(graph.n):
            if v % 64 == 0:
                self._tick(budget)
            g = oracle.gain(v)
            cached[v] = g
            heapq.heappush(heap, (-g, next(counter), v, 0))

        seeds: list[int] = []
        in_seed = np.zeros(graph.n, dtype=bool)
        while heap and len(seeds) < k:
            neg_gain, __, v, round_tag = heapq.heappop(heap)
            if in_seed[v] or -neg_gain != cached[v]:
                continue
            if round_tag == len(seeds):
                seeds.append(v)
                in_seed[v] = True
                oracle.commit(v, -neg_gain)
                continue
            self._tick(budget)
            g = oracle.gain(v)
            cached[v] = g
            heapq.heappush(heap, (-g, next(counter), v, len(seeds)))
        return seeds, {
            "num_snapshots": self.num_snapshots,
            "estimated_spread": oracle.committed_sigma,
            "sigma_evaluations": oracle.evaluations,
        }

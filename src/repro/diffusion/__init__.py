"""Diffusion substrate: models, cascade simulators, MC estimation, worlds."""

from .models import (
    IC,
    LT,
    LT_RANDOM,
    STANDARD_MODELS,
    TV,
    WC,
    Dynamics,
    PropagationModel,
    model_by_name,
    weighted_graph,
)
from .independent_cascade import simulate_ic, simulate_ic_times
from .linear_threshold import simulate_lt
from .batched import batched_cascades, simulate_ic_batch, simulate_lt_batch
from .simulation import (
    DEFAULT_MC_SIMULATIONS,
    SpreadEstimate,
    monte_carlo_spread,
    simulate_spread,
)
from .snapshots import (
    Snapshot,
    generate_ic_snapshot,
    generate_lt_snapshot,
    sample_live_masks,
    strongly_connected_components,
)
from .oracle import (
    ORACLE_BACKENDS,
    BatchedMCOracle,
    GainCache,
    SequentialMCOracle,
    SketchOracle,
    SnapshotOracle,
    SpreadOracle,
    make_oracle,
)
from .paths import (
    DagStore,
    LocalDag,
    LocalTree,
    PathBatch,
    TreeStore,
    batched_max_prob_paths,
    build_dag_store,
    build_tree_store,
)
from .opinion import (
    OpinionEstimate,
    assign_opinions,
    monte_carlo_opinion_spread,
    simulate_opinion_spread,
)
from .rrpool import FlatRRPool
from .rrsets import RRCollection, greedy_max_cover, greedy_max_cover_legacy, random_rr_set

__all__ = [
    "IC",
    "LT",
    "LT_RANDOM",
    "STANDARD_MODELS",
    "TV",
    "WC",
    "Dynamics",
    "PropagationModel",
    "model_by_name",
    "weighted_graph",
    "simulate_ic",
    "simulate_ic_times",
    "simulate_lt",
    "batched_cascades",
    "simulate_ic_batch",
    "simulate_lt_batch",
    "DEFAULT_MC_SIMULATIONS",
    "SpreadEstimate",
    "monte_carlo_spread",
    "simulate_spread",
    "Snapshot",
    "generate_ic_snapshot",
    "generate_lt_snapshot",
    "sample_live_masks",
    "strongly_connected_components",
    "ORACLE_BACKENDS",
    "BatchedMCOracle",
    "GainCache",
    "SequentialMCOracle",
    "SketchOracle",
    "SnapshotOracle",
    "SpreadOracle",
    "make_oracle",
    "OpinionEstimate",
    "assign_opinions",
    "monte_carlo_opinion_spread",
    "simulate_opinion_spread",
    "DagStore",
    "FlatRRPool",
    "LocalDag",
    "LocalTree",
    "PathBatch",
    "TreeStore",
    "batched_max_prob_paths",
    "build_dag_store",
    "build_tree_store",
    "RRCollection",
    "greedy_max_cover",
    "greedy_max_cover_legacy",
    "random_rr_set",
]

"""Integration tests: every benchmarked algorithm through the framework.

Runs each (algorithm, model) pair of Table 5 end-to-end on a small scaled
graph — seed selection, decoupled MC spread, and a sanity check that each
technique clears the random-seed baseline.
"""

import numpy as np
import pytest

from repro.algorithms import registry
from repro.diffusion.models import IC, LT, WC, Dynamics
from repro.diffusion.simulation import monte_carlo_spread
from repro.framework.runner import IMFramework
from repro.graph.digraph import DiGraph

K = 5
MC = 300

#: Cheap parameterizations for pure-Python integration runs.
FAST_PARAMS = {
    "CELF": {"mc_simulations": 20},
    "CELF++": {"mc_simulations": 20},
    "GREEDY": {"mc_simulations": 10},
    "RIS": {"num_rr_sets": 1000},
    "TIM+": {"epsilon": 0.5, "rr_scale": 0.02},
    "IMM": {"epsilon": 0.5, "rr_scale": 0.02},
    "StaticGreedy": {"num_snapshots": 40},
    "PMC": {"num_snapshots": 40},
    "EaSyIM": {"path_length": 3},
}


@pytest.fixture(scope="module")
def topology():
    rng = np.random.default_rng(42)
    # Power-law-ish: preferential attachment, doubled arcs.
    from repro.graph.generators import preferential_attachment

    n, src, dst = preferential_attachment(150, 2, rng)
    return DiGraph.from_arrays(n, src, dst)


@pytest.fixture(scope="module")
def weighted(topology):
    return {m.name: m.weighted(topology) for m in (IC, WC, LT)}


def all_pairs():
    for name in registry.BENCHMARKED:
        algo = registry.make(name)
        for model in (IC, WC, LT):
            if algo.supports(model):
                yield name, model


@pytest.mark.parametrize(
    "name,model", list(all_pairs()), ids=lambda p: str(p)
)
def test_pair_end_to_end(name, model, weighted):
    graph = weighted[model.name]
    params = FAST_PARAMS.get(name, {})
    algo = registry.make(name, **params)
    rng = np.random.default_rng(7)
    result = algo.select(graph, K, model, rng=rng)
    assert len(result.seeds) == K
    assert len(set(result.seeds)) == K

    spread = monte_carlo_spread(graph, result.seeds, model, r=MC, rng=rng)
    assert spread.mean >= K  # seeds themselves count

    # Every technique must clear the uniform-random baseline.
    random_seeds = list(rng.choice(graph.n, size=K, replace=False))
    baseline = monte_carlo_spread(graph, random_seeds, model, r=MC, rng=rng)
    assert spread.mean >= baseline.mean * 0.9


def test_framework_runs_every_ok_algorithm(weighted):
    fw = IMFramework(weighted["WC"], WC, mc_simulations=100)
    for name in ("IMM", "EaSyIM", "Degree"):
        params = FAST_PARAMS.get(name)
        trace = fw.run(
            name, 3, [params] if params else None, rng=np.random.default_rng(1)
        )
        assert trace.chosen.ok
        assert trace.chosen.spread >= 3.0


def test_seed_prefix_property(weighted):
    """seeds[:k'] of a greedy technique equals its answer for smaller k'."""
    graph = weighted["WC"]
    rng_a = np.random.default_rng(5)
    rng_b = np.random.default_rng(5)
    big = registry.make("EaSyIM", path_length=3).select(graph, 5, WC, rng=rng_a)
    small = registry.make("EaSyIM", path_length=3).select(graph, 2, WC, rng=rng_b)
    assert big.seeds[:2] == small.seeds


def test_wc_and_ic_pick_different_seeds_sometimes(weighted):
    """M6's root: WC and constant-IC are different models and the same
    technique may choose different seeds under them."""
    rng = np.random.default_rng(3)
    ic_res = registry.make("PMC", num_snapshots=60).select(
        weighted["IC"], 5, IC, rng=rng
    )
    wc_res = registry.make("PMC", num_snapshots=60).select(
        weighted["WC"], 5, WC, rng=rng
    )
    # Not asserting inequality of every element — just that the model is
    # actually plumbed through (weights differ, so estimated spread does).
    assert ic_res.extras["estimated_spread"] != wc_res.extras["estimated_spread"]

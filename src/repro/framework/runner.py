"""IMFramework — the generalized IM module of Alg. 3.

The paper's central methodological move: *decouple* seed selection from
spread computation so every technique is judged by the same unbiased MC
estimate (Sec. 5.1, "Computing expected spread"), and sweep each
technique's external parameter spectrum from most to least accurate,
stopping at the cheapest setting whose spread has not degraded
(Sec. 3.1.3).

Execution is hardened (see :mod:`repro.framework.isolation`): each pass
can run process-isolated under preemptive budgets, transient failures can
be retried on derived RNGs, and completed cells can be journaled so a
killed spectrum walk resumes without re-running finished work.
"""

from __future__ import annotations

import dataclasses
import os
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..algorithms import registry
from ..algorithms.base import IMAlgorithm
from ..diffusion.models import PropagationModel
from ..diffusion.simulation import SpreadEstimate, monte_carlo_spread
from ..graph.digraph import DiGraph
from . import telemetry as _telemetry
from .convergence import converged
from .isolation import IsolationConfig, RetryPolicy, derive_rng, execute_cell
from .metrics import RunRecord
from .results import CheckpointJournal, cell_key

__all__ = ["FrameworkTrace", "IMFramework"]


@dataclass
class FrameworkTrace:
    """Everything observed across the parameter spectrum of one run.

    ``chosen_index`` stays ``-1`` when no configuration completed OK; the
    ``chosen*`` accessors then raise :class:`LookupError` instead of
    silently reporting a failed run as the chosen configuration — inspect
    :attr:`failure` (or :attr:`records`) for what went wrong.
    """

    algorithm: str
    model: str
    k: int
    records: list[RunRecord] = field(default_factory=list)
    estimates: list[SpreadEstimate] = field(default_factory=list)
    parameters: list[dict[str, Any]] = field(default_factory=list)
    chosen_index: int = -1

    def _require_chosen(self) -> int:
        if self.chosen_index < 0:
            statuses = [r.status for r in self.records]
            raise LookupError(
                f"no configuration of {self.algorithm} completed OK "
                f"(statuses: {statuses}); inspect trace.records or trace.failure"
            )
        return self.chosen_index

    @property
    def chosen(self) -> RunRecord:
        return self.records[self._require_chosen()]

    @property
    def chosen_estimate(self) -> SpreadEstimate:
        return self.estimates[self._require_chosen()]

    @property
    def chosen_parameters(self) -> dict[str, Any]:
        return self.parameters[self._require_chosen()]

    @property
    def failure(self) -> RunRecord | None:
        """First non-OK record of the walk, or None if everything ran."""
        for record in self.records:
            if not record.ok:
                return record
        return None


class IMFramework:
    """Alg. 3: seed selection + decoupled spread computation + convergence.

    Parameters
    ----------
    graph:
        Weighted graph (already carrying the model's edge weights).
    model:
        The propagation model the weights correspond to.
    mc_simulations:
        ``r`` of Alg. 3 — simulations for the decoupled spread estimate.
    tolerance_std:
        Convergence band width in standard deviations (Sec. 5.1.1 uses 1).
    isolation:
        Optional :class:`IsolationConfig`; when given it governs how each
        selection pass executes (subprocess + preemptive budgets).  When
        omitted, passes run cooperatively in-process under the framework's
        ``time_limit_seconds``/``memory_limit_mb``.
    retry:
        Optional :class:`RetryPolicy` for transient ``FAILED``/``KILLED``
        cells.
    journal:
        Optional :class:`CheckpointJournal` (or a path) — completed cells
        are appended and a rerun skips them.  ``journal_scope`` (e.g. a
        dataset name) widens the cell keys when one journal spans sweeps.
    rr_workers:
        When > 1, injected as the ``rr_workers`` constructor parameter of
        every technique that accepts it (the RR-sketch family), fanning
        RR-set sampling out over a process pool.  Because parallel pools
        draw from different streams than serial ones, the value is part
        of each journal cell key — cells journaled at one worker count
        are not silently reused at another.
    mc_workers / mc_batch:
        Execution shape of the decoupled spread estimate (Sec. 5.1's
        10K-simulation protocol): fan the simulations over a process pool
        and/or run them through the batched multi-cascade kernels.  Both
        are also injected into the constructor of every technique that
        accepts them (the MC greedy family), like ``rr_workers``.
    spread_oracle:
        σ(S) backend name (see :data:`repro.diffusion.ORACLE_BACKENDS`)
        injected into every technique that accepts it.  Oracle-backed
        runs draw from different streams than the legacy per-cascade
        path, so the value lands in the spectrum params and therefore in
        each journal cell key.
    path_workers:
        When > 1, injected into every technique that accepts it (the
        path-proxy family: PMIA / LDAG / IRIE / SIMPATH), fanning the
        batched structure builds over a process pool.  The path engine
        is deterministic — results are identical at any worker count —
        so, unlike ``rr_workers``, the value carries no journal-key
        implications (it still lands in the spectrum params, which is
        harmless but means cells journaled with and without fan-out are
        keyed apart).
    telemetry:
        Optional :class:`~repro.framework.telemetry.Telemetry` session
        handle.  When given, every selection pass collects per-phase
        spans and counters into ``RunRecord.extras["telemetry"]`` (also
        across the isolation subprocess boundary), each cell's snapshot
        is absorbed into this handle, and the decoupled MC scoring runs
        under a ``score`` span.  ``None`` (the default) keeps the no-op
        fast path: seed sets and timings are byte-identical to a build
        without telemetry.
    """

    def __init__(
        self,
        graph: DiGraph,
        model: PropagationModel,
        mc_simulations: int = 10_000,
        tolerance_std: float = 1.0,
        time_limit_seconds: float | None = None,
        memory_limit_mb: float | None = None,
        track_memory: bool = False,
        isolation: IsolationConfig | None = None,
        retry: RetryPolicy | None = None,
        journal: CheckpointJournal | str | os.PathLike | None = None,
        journal_scope: str | None = None,
        rr_workers: int | None = None,
        mc_workers: int | None = None,
        mc_batch: int | None = None,
        spread_oracle: str | None = None,
        path_workers: int | None = None,
        telemetry: "_telemetry.Telemetry | None" = None,
    ) -> None:
        self.graph = graph
        self.model = model
        self.mc_simulations = mc_simulations
        self.tolerance_std = tolerance_std
        self.time_limit_seconds = time_limit_seconds
        self.memory_limit_mb = memory_limit_mb
        # The cooperative memory ceiling is tracemalloc-based; a limit
        # without tracking would silently never fire (run_with_budget
        # rejects that combination outright).
        self.track_memory = track_memory or memory_limit_mb is not None
        self.isolation = isolation
        self.retry = retry
        if journal is not None and not isinstance(journal, CheckpointJournal):
            journal = CheckpointJournal(journal)
        self.journal = journal
        self.journal_scope = journal_scope
        self.rr_workers = rr_workers
        self.mc_workers = mc_workers
        self.mc_batch = mc_batch
        self.spread_oracle = spread_oracle
        self.path_workers = path_workers
        self.telemetry = telemetry

    # ------------------------------------------------------------------

    def _isolation_config(self) -> IsolationConfig:
        collect = self.telemetry is not None
        if self.isolation is not None:
            if collect and not self.isolation.telemetry:
                return dataclasses.replace(self.isolation, telemetry=True)
            return self.isolation
        return IsolationConfig(
            enabled=False,
            time_limit_seconds=self.time_limit_seconds,
            memory_limit_mb=self.memory_limit_mb,
            track_memory=self.track_memory,
            telemetry=collect,
        )

    def evaluate(
        self,
        algorithm: IMAlgorithm,
        k: int,
        rng: np.random.Generator | None = None,
    ) -> RunRecord:
        """One Alg.-3 inner pass: select seeds, then estimate σ(S) by MC.

        Selection and MC estimation run on independently derived child
        RNGs so the spread estimate is never correlated with the
        technique's own selection randomness.
        """
        rng = np.random.default_rng() if rng is None else rng
        select_rng = derive_rng(rng, 0)
        mc_rng = derive_rng(rng, 1)
        record, __ = execute_cell(
            algorithm,
            self.graph,
            k,
            self.model,
            rng=select_rng,
            config=self._isolation_config(),
            retry=self.retry,
        )
        if self.telemetry is not None:
            self.telemetry.absorb(record.extras.get("telemetry"))
        if record.ok:
            activation = (
                _telemetry.activate(self.telemetry)
                if self.telemetry is not None
                else nullcontext(_telemetry.current())
            )
            with activation as tele, tele.span("score"):
                estimate = monte_carlo_spread(
                    self.graph, record.seeds, self.model, r=self.mc_simulations,
                    rng=mc_rng, workers=self.mc_workers, batch=self.mc_batch,
                )
            record.spread = estimate.mean
            record.spread_std = estimate.std
        return record

    def run(
        self,
        algorithm_name: str,
        k: int,
        parameter_spectrum: Sequence[dict[str, Any]] | None = None,
        rng: np.random.Generator | None = None,
    ) -> FrameworkTrace:
        """Full Alg. 3: walk the spectrum until convergence fails.

        ``parameter_spectrum`` must be ordered from most to least accurate
        (α_1 first).  With ``None`` (parameter-free techniques) a single
        default-configured pass runs.  Each pass gets an independently
        derived child RNG, and journaled cells are reused instead of
        re-executed.
        """
        rng = np.random.default_rng() if rng is None else rng
        spectrum = list(parameter_spectrum) if parameter_spectrum else [{}]
        injected: dict[str, Any] = {}
        if self.rr_workers is not None and self.rr_workers > 1:
            injected["rr_workers"] = self.rr_workers
        if self.mc_workers is not None and self.mc_workers > 1:
            injected["mc_workers"] = self.mc_workers
        if self.mc_batch is not None and self.mc_batch > 1:
            injected["mc_batch"] = self.mc_batch
        if self.spread_oracle is not None:
            injected["spread_oracle"] = self.spread_oracle
        if self.path_workers is not None and self.path_workers > 1:
            injected["path_workers"] = self.path_workers
        injected = {
            name: value
            for name, value in injected.items()
            if registry.accepts_parameter(algorithm_name, name)
        }
        if injected:
            spectrum = [{**injected, **params} for params in spectrum]
        trace = FrameworkTrace(algorithm=algorithm_name, model=self.model.name, k=k)
        best_estimate: SpreadEstimate | None = None
        for i, params in enumerate(spectrum):
            key = cell_key(
                algorithm_name, params, k,
                model=self.model.name, scope=self.journal_scope,
            )
            if self.journal is not None and key in self.journal:
                record = self.journal.get(key)
            else:
                algorithm = registry.make(algorithm_name, **params)
                record = self.evaluate(algorithm, k, rng=derive_rng(rng, i))
                if self.journal is not None:
                    self.journal.record(key, record)
            estimate = SpreadEstimate(
                mean=record.spread if record.spread is not None else float("-inf"),
                std=record.spread_std or 0.0,
                simulations=self.mc_simulations,
            )
            trace.records.append(record)
            trace.estimates.append(estimate)
            trace.parameters.append(dict(params))
            if not record.ok:
                break
            if best_estimate is None:
                best_estimate = estimate
                trace.chosen_index = i
                continue
            if converged(best_estimate, estimate, self.tolerance_std):
                trace.chosen_index = i
            else:
                break
        return trace

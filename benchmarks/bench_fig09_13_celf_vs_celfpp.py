"""Figs. 9a-b, 9c-e and 13 — the CELF vs CELF++ myths (M1, M2).

(a-b) Twelve independent runs of CELF and CELF++ at k = 50 on the nethept
analogue under WC and LT: the running times interleave — neither technique
dominates (M1: "CELF++ is 35% faster" debunked).

(13) The same twelve runs scored by *average node lookups per iteration*,
the environment-independent metric of Appendix C: CELF++ looks slightly
better, but pays for each lookup with extra look-ahead simulations.

(c-e) CELF's spread at 1K/10K/20K MC simulations vs IMM (M2: CELF is only
a gold standard if its MC count grows with k).  Scaled counts {5, 20, 100}
play the roles of {1K, 10K, 20K}.
"""

import numpy as np

from repro.algorithms import registry
from repro.diffusion.models import IC, LT, WC
from repro.framework.results import render_series

from _common import RR_SCALE, emit, evaluate_spread, once, weighted_dataset

RUNS = 12
K = 15
MC_PER_ESTIMATE = 5


def test_fig9ab_13_independent_runs(benchmark):
    def experiment():
        data = {}
        for model in (WC, LT):
            graph = weighted_dataset("nethept", model)
            for name in ("CELF", "CELF++"):
                times, lookups = [], []
                for run in range(RUNS):
                    algo = registry.make(name, mc_simulations=MC_PER_ESTIMATE)
                    res = algo.select(
                        graph, K, model, rng=np.random.default_rng(1000 + run)
                    )
                    times.append(res.elapsed_seconds)
                    per_iter = res.extras["node_lookups_per_iteration"]
                    # Appendix C averages lookups over iterations 2..k (the
                    # first iteration always scans all n nodes).
                    lookups.append(float(np.mean(per_iter[1:])))
                data[(model.name, name)] = (times, lookups)
        return data

    data = once(benchmark, experiment)
    blocks = []
    for model_name in ("WC", "LT"):
        times = {
            name: [round(t, 2) for t in data[(model_name, name)][0]]
            for name in ("CELF", "CELF++")
        }
        blocks.append(render_series(
            "run", list(range(1, RUNS + 1)), times,
            title=f"Fig 9{'a' if model_name == 'WC' else 'b'}: "
                  f"running time (s), 12 runs, nethept ({model_name})",
        ))
        looks = {
            name: [round(v, 2) for v in data[(model_name, name)][1]]
            for name in ("CELF", "CELF++")
        }
        blocks.append(render_series(
            "run", list(range(1, RUNS + 1)), looks,
            title=f"Fig 13: avg node lookups/iteration, nethept ({model_name})",
        ))
    summary = []
    for model_name in ("WC", "LT"):
        for name in ("CELF", "CELF++"):
            times, lookups = data[(model_name, name)]
            summary.append(
                f"{model_name} {name:<7} time {np.mean(times):.2f}s "
                f"(sd {np.std(times, ddof=1):.2f}) | lookups "
                f"{np.mean(lookups):.2f} (sd {np.std(lookups, ddof=1):.2f})"
            )
    blocks.append("\n".join(summary))
    emit("fig09ab_13_celf_vs_celfpp", "\n\n".join(blocks))

    # M1: average times within ~35% of each other — no clear winner.
    for model_name in ("WC", "LT"):
        celf = np.mean(data[(model_name, "CELF")][0])
        celfpp = np.mean(data[(model_name, "CELF++")][0])
        assert celfpp > 0.65 * celf, "CELF++ must NOT be 35% faster"
    # Fig 13: CELF++'s lookups are not (much) higher than CELF's.
    for model_name in ("WC", "LT"):
        celf = np.mean(data[(model_name, "CELF")][1])
        celfpp = np.mean(data[(model_name, "CELF++")][1])
        assert celfpp <= celf * 1.25


def test_fig9cde_celf_spread_vs_mc_count(benchmark):
    mc_counts = (5, 20, 100)  # scaled analogues of 1K / 10K / 20K

    def experiment():
        blocks = {}
        k_grid = (5, 10, 25)
        for model in (IC, WC, LT):
            graph = weighted_dataset("nethept", model)
            series = {}
            imm = registry.make("IMM", epsilon=0.5, rr_scale=RR_SCALE)
            series["IMM"] = []
            for k in k_grid:
                res = imm.select(graph, k, model, rng=np.random.default_rng(k))
                series["IMM"].append(
                    round(evaluate_spread(graph, res.seeds, model).mean, 1)
                )
            for r in mc_counts:
                label = f"CELF, r={r}"
                series[label] = []
                for k in k_grid:
                    res = registry.make("CELF", mc_simulations=r).select(
                        graph, k, model, rng=np.random.default_rng(k)
                    )
                    series[label].append(
                        round(evaluate_spread(graph, res.seeds, model).mean, 1)
                    )
            blocks[model.name] = (k_grid, series)
        return blocks

    blocks = once(benchmark, experiment)
    text = "\n\n".join(
        render_series(
            "k", list(k_grid), series,
            title=f"Fig 9c-e: CELF spread vs #MC sims, nethept ({model_name})",
        )
        for model_name, (k_grid, series) in blocks.items()
    )
    emit("fig09cde_celf_mc_quality", text)

    # M2's shape: at the largest k, high-MC CELF beats low-MC CELF.
    improvements = 0
    for model_name, (k_grid, series) in blocks.items():
        low = series[f"CELF, r={mc_counts[0]}"][-1]
        high = series[f"CELF, r={mc_counts[-1]}"][-1]
        if high >= low:
            improvements += 1
    assert improvements >= 2, "more MC simulations must generally help"

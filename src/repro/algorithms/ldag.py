"""LDAG — Local Directed Acyclic Graphs (Chen, Yuan & Zhang, ICDM'10).

The classic LT-only score-estimation technique (Sec. 4.4, "local").  Two
facts make it work:

1. Computing exact influence under LT is #P-hard on general graphs but
   *linear-time on DAGs*: activation probabilities satisfy
   ``ap(x) = Σ_{y ∈ In(x)} ap(y) · W(y, x)``.
2. Influence decays fast with distance, so for each node ``v`` it suffices
   to consider a small local DAG ``LDAG(v, η)`` of nodes whose
   max-probability path to ``v`` is at least η (default 1/320).

For each DAG the linearity gives closed-form marginal gains: with
``α_v(u) = ∂ap(v)/∂ap(u)`` (one backward pass) and ``ap_v(u)`` (one forward
pass), the gain of seeding ``u`` is ``Σ_v α_v(u) · (1 − ap_v(u))``.  After
a seed is picked, only the DAGs containing it are recomputed.

The paper's finding (M5, Table 4): this local machinery is *faster and more
robust* than SIMPATH's path enumeration across LT weight schemes — the
opposite of SIMPATH's published claim.
"""

from __future__ import annotations

import heapq
from typing import Any

import numpy as np

from ..diffusion import paths
from ..diffusion.models import Dynamics, PropagationModel
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm

__all__ = ["LDAG", "build_ldag"]


class _LocalDAG:
    """LDAG(v, η): nodes, intra-DAG edges, and a valid processing order."""

    __slots__ = ("root", "nodes", "order", "in_edges", "ap", "alpha")

    def __init__(
        self,
        root: int,
        order: list[int],
        in_edges: dict[int, list[tuple[int, float]]],
    ) -> None:
        self.root = root
        # ``order`` sorts nodes by decreasing distance-to-root, so every
        # edge goes from later-to-earlier is False: edges go from a node
        # farther from the root to one nearer, i.e. forward in ``order``.
        self.order = order
        self.nodes = set(order)
        self.in_edges = in_edges
        self.ap: dict[int, float] = {}
        self.alpha: dict[int, float] = {}


def build_ldag(graph: DiGraph, root: int, eta: float) -> _LocalDAG:
    """Construct LDAG(root, η) via max-probability-path Dijkstra.

    A node ``u`` enters the DAG when its best path probability to ``root``
    is >= η; the DAG keeps every graph edge (y, x) between members whose
    path probabilities strictly increase toward the root, which guarantees
    acyclicity.
    """
    # Dijkstra on the reverse graph maximizing the product of weights.
    # The settle order is the distance ranking: settled earlier = nearer to
    # the root (ties included), which breaks pp ties consistently.
    best: dict[int, float] = {root: 1.0}
    settle_rank: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(-1.0, root)]
    while heap:
        neg_pp, x = heapq.heappop(heap)
        pp = -neg_pp
        # Stale entries (superseded by a later strict improvement) carry
        # pp < best[x]; the comparison skips them without a settled-set
        # membership probe (push values strictly increase per node).
        if pp < best[x]:
            continue
        settle_rank[x] = len(settle_rank)
        src, w = graph.in_neighbors(x)
        for y, wy in zip(src, w):
            y = int(y)
            nxt = pp * float(wy)
            if nxt >= eta and nxt > best.get(y, 0.0):
                best[y] = nxt
                heapq.heappush(heap, (-nxt, y))

    # Farthest-first processing order (descending settle rank); every kept
    # edge (y, x) has rank(y) > rank(x), so it points forward in ``order``
    # and the kept edge set is acyclic with the root last.
    order = sorted(settle_rank, key=lambda u: settle_rank[u], reverse=True)
    in_edges: dict[int, list[tuple[int, float]]] = {u: [] for u in settle_rank}
    for x in settle_rank:
        src, w = graph.in_neighbors(x)
        for y, wy in zip(src, w):
            y = int(y)
            if y in settle_rank and settle_rank[y] > settle_rank[x]:
                in_edges[x].append((y, float(wy)))
    return _LocalDAG(root, order, in_edges)


class LDAG(IMAlgorithm):
    """Greedy seed selection over per-node local DAGs (LT model)."""

    name = "LDAG"
    supported = (Dynamics.LT,)
    external_parameter = None

    def __init__(
        self,
        eta: float = 1.0 / 320.0,
        engine: str = "flat",
        path_workers: int | None = None,
    ) -> None:
        if not 0.0 < eta <= 1.0:
            raise ValueError("eta must be in (0, 1]")
        if engine not in ("flat", "legacy"):
            raise ValueError("engine must be 'flat' or 'legacy'")
        self.eta = eta
        #: "flat" runs on the batched path-proxy engine (bit-identical
        #: seeds); "legacy" keeps the per-root dict/heap reference path.
        self.engine = engine
        self.path_workers = path_workers

    # -- per-DAG dynamic programs ------------------------------------

    @staticmethod
    def _forward_ap(dag: _LocalDAG, in_seed: np.ndarray) -> None:
        """ap(x) for the current seed set: seeds have ap = 1."""
        ap: dict[int, float] = {}
        for x in dag.order:  # farthest first: all in-DAG parents come earlier
            if in_seed[x]:
                ap[x] = 1.0
                continue
            total = 0.0
            for y, wy in dag.in_edges[x]:
                total += ap[y] * wy
            ap[x] = min(total, 1.0)
        dag.ap = ap

    @staticmethod
    def _backward_alpha(dag: _LocalDAG, in_seed: np.ndarray) -> None:
        """α(u) = ∂ap(root)/∂ap(u); propagation stops at seeds."""
        alpha: dict[int, float] = {u: 0.0 for u in dag.order}
        if in_seed[dag.root]:
            # ap(root) is pinned at 1; nothing can change it.
            dag.alpha = alpha
            return
        alpha[dag.root] = 1.0
        for x in reversed(dag.order):  # nearest-to-root first
            ax = alpha[x]
            if ax == 0.0:
                continue
            if in_seed[x] and x != dag.root:
                # A seed's ap is pinned at 1: derivatives do not pass it.
                continue
            for y, wy in dag.in_edges[x]:
                alpha[y] += ax * wy
        dag.alpha = alpha

    def _dag_gains(self, dag: _LocalDAG, in_seed: np.ndarray) -> dict[int, float]:
        """Marginal gain contribution of each DAG member."""
        self._forward_ap(dag, in_seed)
        self._backward_alpha(dag, in_seed)
        return {
            u: dag.alpha[u] * (1.0 - dag.ap[u])
            for u in dag.order
            if not in_seed[u]
        }

    # -- main selection -------------------------------------------------

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        if self.engine == "flat":
            return self._select_flat(graph, k, budget)
        in_seed = np.zeros(graph.n, dtype=bool)
        dags: list[_LocalDAG] = []
        containing: list[list[int]] = [[] for __ in range(graph.n)]
        for v in range(graph.n):
            if v % 64 == 0:
                self._tick(budget)
            dag = build_ldag(graph, v, self.eta)
            idx = len(dags)
            dags.append(dag)
            for u in dag.nodes:
                containing[u].append(idx)

        # Global incremental-influence scores: IncInf[u] = Σ_DAGs gain.
        inc_inf = np.zeros(graph.n, dtype=np.float64)
        per_dag_gain: list[dict[int, float]] = []
        for dag in dags:
            gains = self._dag_gains(dag, in_seed)
            per_dag_gain.append(gains)
            for u, g in gains.items():
                inc_inf[u] += g

        seeds: list[int] = []
        total_dag_nodes = sum(len(d.nodes) for d in dags)
        for __ in range(k):
            self._tick(budget)
            masked = np.where(in_seed, -np.inf, inc_inf)
            s = int(masked.argmax())
            seeds.append(s)
            in_seed[s] = True
            # Only DAGs containing s change; swap their gain contributions.
            for idx in containing[s]:
                for u, g in per_dag_gain[idx].items():
                    inc_inf[u] -= g
                gains = self._dag_gains(dags[idx], in_seed)
                per_dag_gain[idx] = gains
                for u, g in gains.items():
                    inc_inf[u] += g
        return seeds, {
            "eta": self.eta,
            "total_dag_nodes": total_dag_nodes,
            "avg_dag_size": total_dag_nodes / max(graph.n, 1),
        }

    def _select_flat(
        self,
        graph: DiGraph,
        k: int,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        """Engine path: batched LDAG builds + vectorized LT sweeps.

        Same greedy as the legacy loop with identical float accumulation
        order; the DAG topology is static (no prefix exclusion), so each
        round only re-sweeps the dirty structures from ``containing``.
        """
        def tick() -> None:
            self._tick(budget)

        in_seed = np.zeros(graph.n, dtype=bool)
        store = paths.build_dag_store(
            graph, self.eta, workers=self.path_workers, tick=tick
        )
        inc_inf = np.zeros(graph.n, dtype=np.float64)
        per_gain = store.gains(list(range(len(store))), in_seed)
        for nodes, g in per_gain:
            np.add.at(inc_inf, nodes, g)

        seeds: list[int] = []
        total_dag_nodes = int(store.sizes().sum())
        for __ in range(k):
            self._tick(budget)
            masked = np.where(in_seed, -np.inf, inc_inf)
            s = int(masked.argmax())
            seeds.append(s)
            in_seed[s] = True
            dirty = store.dirty(s)
            new_gains = store.gains(dirty, in_seed)
            for idx, (nodes, g) in zip(dirty, new_gains):
                old_nodes, old_g = per_gain[idx]
                np.subtract.at(inc_inf, old_nodes, old_g)
                np.add.at(inc_inf, nodes, g)
                per_gain[idx] = (nodes, g)
        return seeds, {
            "eta": self.eta,
            "total_dag_nodes": total_dag_nodes,
            "avg_dag_size": total_dag_nodes / max(graph.n, 1),
        }

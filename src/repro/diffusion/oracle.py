"""Spread oracles: interchangeable σ(S) backends for the greedy family.

Every simulation-based technique in the paper's line-up (GREEDY, CELF,
CELF++, StaticGreedy, PMC) reduces to the same query stream: marginal
gains σ(S ∪ {v}) − σ(S) against a slowly growing committed seed set, plus
occasional σ evaluations of arbitrary sets.  A :class:`SpreadOracle`
answers that stream; four backends trade accuracy structure for speed:

``serial``
    One fresh Monte-Carlo cascade at a time on the caller's RNG — the
    historical behaviour, kept byte-identical so seeded runs and golden
    tests are unaffected when no oracle is requested.
``batched``
    Fresh Monte Carlo through the vectorized multi-cascade kernels
    (:mod:`repro.diffusion.batched`), with the per-query RNG *derived from
    the query content*, so a repeated query returns the identical estimate
    and memoization is transparent.
``snapshot``
    The coin-flip technique of Sec. 4.3 generalized: presample R live-edge
    worlds once (shared sampler with StaticGreedy/PMC in
    :mod:`repro.diffusion.snapshots`) and answer every query by cached
    per-world reachability.  Marginal gains BFS only the *uncovered*
    region, so CELF's queue re-evaluations stop re-sampling and get
    cheaper as the seed set grows.
``sketch``
    The snapshot backend plus per-world bottom-k reachability sketches
    (Cohen's pruned rank-order construction), giving O(1)
    approximate-but-cheap gain upper bounds that let lazy greedy skip
    exact evaluations whose bound cannot win.

On top, :class:`GainCache` memoizes gains keyed by (frozen seed set,
node).  With a deterministic backend the cache is exact and transparent
— enabling it cannot change any algorithm's output, only turn repeated
lookups into hits (the M1 "node lookups" metric then counts true
evaluations).  With the stochastic ``serial`` backend the cache is
bypassed, because replaying a cached value would shift the shared RNG
stream and silently change seeded runs.
"""

from __future__ import annotations

import abc
import os
from collections import OrderedDict
from typing import Any, Sequence

import numpy as np

from ..graph.digraph import DiGraph
from ._frontier import gather_edges
from .models import Dynamics, PropagationModel
from .simulation import monte_carlo_spread
from .snapshots import sample_live_masks

__all__ = [
    "ORACLE_BACKENDS",
    "BoundedMemo",
    "SpreadOracle",
    "SequentialMCOracle",
    "BatchedMCOracle",
    "SnapshotOracle",
    "SketchOracle",
    "GainCache",
    "make_oracle",
]

#: CLI / constructor spelling of each backend.
ORACLE_BACKENDS = ("serial", "batched", "snapshot", "sketch")

DEFAULT_MC_BATCH = 64

#: Default entry bound for the oracle memo caches.  Generous enough that a
#: batch selection run (at most a few k·n gain queries) never evicts — the
#: byte-identity contract of the memoized greedy family is untouched — but
#: finite, so a resident server answering an unbounded query stream holds
#: a bounded working set.
DEFAULT_MEMO_ENTRIES = 1 << 16


def _env_entries(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    try:
        return int(raw) if raw else default
    except ValueError:
        return default


class BoundedMemo:
    """LRU-bounded mapping used by every oracle-side memo cache.

    A plain dict here is a slow memory leak in a long-lived process: each
    distinct (seed set, node) or seed-set key is kept forever, which is
    invisible in one batch run and unbounded in a server answering
    millions of queries.  ``max_entries`` (env-tunable per cache) bounds
    the working set; eviction is least-recently-used, so the hot keys of
    a greedy run — the committed-prefix queries — stay resident.
    """

    __slots__ = ("max_entries", "counter", "evictions", "_data")

    def __init__(
        self,
        max_entries: int | None = None,
        *,
        env: str | None = None,
        counter: str | None = None,
    ) -> None:
        if max_entries is None:
            max_entries = (
                _env_entries(env, DEFAULT_MEMO_ENTRIES)
                if env
                else DEFAULT_MEMO_ENTRIES
            )
        self.max_entries = max(1, int(max_entries))
        self.counter = counter
        self.evictions = 0
        self._data: OrderedDict[Any, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def get(self, key, default=None):
        try:
            value = self._data[key]
        except KeyError:
            return default
        self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        data = self._data
        if key in data:
            data[key] = value
            data.move_to_end(key)
            return
        data[key] = value
        if len(data) > self.max_entries:
            data.popitem(last=False)
            self.evictions += 1
            if self.counter is not None:
                _tele().count(self.counter)

    def clear(self) -> None:
        self._data.clear()


def _tele():
    # Lazy: a top-level framework import from diffusion would be circular
    # (framework → runner → algorithm registry → diffusion engines).
    from ..framework.telemetry import current

    return current()


def _dynamics_of(model: PropagationModel | Dynamics) -> Dynamics:
    return model.dynamics if isinstance(model, PropagationModel) else model


def _seed_key(nodes) -> tuple[int, ...]:
    """Canonical (sorted, deduplicated) key for a seed set."""
    return tuple(sorted({int(v) for v in nodes}))


class SpreadOracle(abc.ABC):
    """σ(S) and marginal-gain backend shared by the greedy family.

    The oracle tracks the *committed* seed set — the seeds an algorithm
    has definitively picked — because every backend can answer gains
    against the committed set far more cheaply than against an arbitrary
    one.  ``deterministic`` declares whether a repeated query returns the
    identical answer; only deterministic backends are safe to memoize.
    """

    name: str = "abstract"
    deterministic: bool = False
    #: Whether :meth:`gain_bound` returns usable bounds (sketch backend).
    provides_bounds: bool = False

    def __init__(self) -> None:
        self.committed: list[int] = []
        self.committed_sigma: float = 0.0
        #: True σ evaluations performed (the cost metric of Appendix C).
        self.evaluations: int = 0

    def _tick_evaluation(self) -> None:
        self.evaluations += 1
        _tele().count("oracle.sigma_evaluations")

    @abc.abstractmethod
    def evaluate(self, nodes: Sequence[int]) -> float:
        """σ of an arbitrary seed set (one true evaluation)."""

    def evaluate_many(self, seed_sets: Sequence[Sequence[int]]) -> list[float]:
        """σ of several seed sets in one call.

        The base implementation loops; backends that can amortize work
        across sets (shared cache pass, shared world state) override it.
        The serving layer's request coalescer funnels concurrent σ
        queries through here, so one override turns N client requests
        into one oracle evaluation.
        """
        return [self.evaluate(s) for s in seed_sets]

    @abc.abstractmethod
    def gain(
        self, v: int, extra: Sequence[int] = (), extra_gain: float = 0.0
    ) -> float:
        """Marginal gain of ``v`` w.r.t. committed ∪ ``extra``.

        ``extra_gain`` — the caller's estimate of σ(S ∪ extra) − σ(S) —
        is the baseline correction backends without a deterministic σ
        cache (the serial backend) subtract; deterministic backends
        recompute the baseline themselves and ignore it.
        """

    def gain_bound(self, v: int) -> float | None:
        """Cheap upper bound on any future gain of ``v``, or None."""
        return None

    def commit(self, v: int, gain: float | None = None) -> None:
        """Record that ``v`` joined the seed set with the given gain."""
        if gain is None:
            gain = self.gain(v)
        self.committed.append(int(v))
        self.committed_sigma += float(gain)

    def stats(self) -> dict:
        return {"backend": self.name, "evaluations": self.evaluations}


class SequentialMCOracle(SpreadOracle):
    """The historical per-cascade path: fresh MC on the caller's RNG.

    Draw order is identical to the pre-oracle algorithms (one
    ``monte_carlo_spread`` call per gain, on the shared generator), so a
    seeded run through this backend reproduces the legacy seed sets byte
    for byte.  Not deterministic per query — the stream advances — hence
    never memoized.
    """

    name = "serial"
    deterministic = False

    def __init__(
        self,
        graph: DiGraph,
        model: PropagationModel | Dynamics,
        r: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.graph = graph
        self.model = model
        self.r = int(r)
        self.rng = rng

    def evaluate(self, nodes: Sequence[int]) -> float:
        self._tick_evaluation()
        return monte_carlo_spread(
            self.graph, list(nodes), self.model, r=self.r, rng=self.rng
        ).mean

    def gain(
        self, v: int, extra: Sequence[int] = (), extra_gain: float = 0.0
    ) -> float:
        baseline = self.committed_sigma + float(extra_gain)
        return self.evaluate(self.committed + list(extra) + [int(v)]) - baseline


class BatchedMCOracle(SpreadOracle):
    """Vectorized multi-cascade MC with content-derived RNG streams.

    The generator for a query is spawned from ``(entropy, seed-set key)``,
    so σ of a given set is a pure function of the oracle's construction
    seed — repeated queries agree exactly, committed-set baselines are
    cached, and the memo cache is transparent.  ``workers > 1`` reuses
    the ``SeedSequence``-spawned process pool of ``monte_carlo_spread``
    for cross-batch parallelism.
    """

    name = "batched"
    deterministic = True

    def __init__(
        self,
        graph: DiGraph,
        model: PropagationModel | Dynamics,
        r: int,
        rng: np.random.Generator,
        batch: int = DEFAULT_MC_BATCH,
        workers: int | None = None,
    ) -> None:
        super().__init__()
        self.graph = graph
        self.model = model
        self.r = int(r)
        self.batch = max(1, int(batch))
        self.workers = workers
        self._entropy = int(rng.integers(0, 2**63 - 1))
        self._sigma_cache = BoundedMemo(
            env="REPRO_SIGMA_CACHE_MAX", counter="oracle.sigma_cache_evictions"
        )

    def _sigma(self, key: tuple[int, ...]) -> float:
        if not key:
            return 0.0
        cached = self._sigma_cache.get(key)
        if cached is not None:
            return cached
        query_rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self._entropy, spawn_key=key)
        )
        value = monte_carlo_spread(
            self.graph,
            list(key),
            self.model,
            r=self.r,
            rng=query_rng,
            batch=self.batch,
            workers=self.workers,
        ).mean
        self._tick_evaluation()
        self._sigma_cache.put(key, value)
        return value

    def evaluate(self, nodes: Sequence[int]) -> float:
        return self._sigma(_seed_key(nodes))

    def gain(
        self, v: int, extra: Sequence[int] = (), extra_gain: float = 0.0
    ) -> float:
        base = self.committed + list(extra)
        return self._sigma(_seed_key(base + [int(v)])) - self._sigma(_seed_key(base))


class SnapshotOracle(SpreadOracle):
    """σ(S) by cached reachability over R presampled live-edge worlds.

    All worlds advance together: per BFS level the out-edges of the union
    frontier are gathered once and masked per world by the ``R×m`` live
    matrix — the same batching trick as the multi-cascade MC kernels, with
    coin flips replaced by the presampled worlds.  The committed seed
    set's per-world reachability (``covered``) persists, so marginal-gain
    BFS stops at covered nodes (anything beyond them is already covered)
    and iterations get progressively cheaper — the StaticGreedy/PMC
    property, now available to CELF/CELF++/GREEDY.
    """

    name = "snapshot"
    deterministic = True

    def __init__(
        self,
        graph: DiGraph,
        model: PropagationModel | Dynamics,
        num_worlds: int,
        rng: np.random.Generator,
        budget=None,
    ) -> None:
        super().__init__()
        if num_worlds < 1:
            raise ValueError("num_worlds must be positive")
        self.graph = graph
        self.num_worlds = int(num_worlds)
        with _tele().span("oracle.snapshot_sample"):
            self.live = sample_live_masks(
                graph, _dynamics_of(model), self.num_worlds, rng, budget=budget
            )
        self.covered = np.zeros((self.num_worlds, graph.n), dtype=bool)
        self._sigma_cache = BoundedMemo(
            env="REPRO_SIGMA_CACHE_MAX", counter="oracle.sigma_cache_evictions"
        )

    # -- multi-world reachability --------------------------------------

    def _reach(self, sources: Sequence[int], blocked: np.ndarray) -> np.ndarray:
        """Per-world mask of nodes newly reachable from ``sources``.

        Blocked nodes neither count nor propagate: a node reachable only
        through a blocked node is itself already covered (reachability is
        transitive within a world), so stopping there is exact.
        """
        newly = np.zeros_like(self.covered)
        src_idx = np.asarray(list(sources), dtype=np.int64)
        if src_idx.size == 0:
            return newly
        newly[:, src_idx] = True
        newly &= ~blocked
        frontier = newly.copy()
        out_ptr, out_dst = self.graph.out_ptr, self.graph.out_dst
        while frontier.any():
            union = np.nonzero(frontier.any(axis=0))[0]
            eidx = gather_edges(out_ptr, union)
            if eidx.size == 0:
                break
            counts = out_ptr[union + 1] - out_ptr[union]
            src = np.repeat(union, counts)
            hit = frontier[:, src] & self.live[:, eidx]
            w_idx, e_pos = np.nonzero(hit)
            if w_idx.size == 0:
                break
            cand = np.zeros_like(newly)
            cand[w_idx, out_dst[eidx][e_pos]] = True
            cand &= ~blocked & ~newly
            if not cand.any():
                break
            newly |= cand
            frontier = cand
        return newly

    # -- oracle interface ----------------------------------------------

    def evaluate(self, nodes: Sequence[int]) -> float:
        key = _seed_key(nodes)
        if not key:
            return 0.0
        cached = self._sigma_cache.get(key)
        if cached is not None:
            return cached
        self._tick_evaluation()
        blocked = np.zeros_like(self.covered)
        value = float(self._reach(key, blocked).sum()) / self.num_worlds
        self._sigma_cache.put(key, value)
        return value

    def evaluate_many(self, seed_sets: Sequence[Sequence[int]]) -> list[float]:
        """σ of several sets in one oracle call.

        One pass resolves cache hits, dedups repeated sets, and runs the
        reach kernel once per distinct miss under a single
        ``oracle.sigma_batch`` span.  Values are bitwise identical to
        per-set :meth:`evaluate` calls: the BFS is boolean and the final
        division is the same integer-sum / R.
        """
        keys = [_seed_key(s) for s in seed_sets]
        out: list[float | None] = [None] * len(keys)
        misses: list[tuple[int, ...]] = []
        for i, key in enumerate(keys):
            if not key:
                out[i] = 0.0
                continue
            cached = self._sigma_cache.get(key)
            if cached is not None:
                out[i] = cached
            elif key not in misses:
                misses.append(key)
        if misses:
            with _tele().span("oracle.sigma_batch"):
                values = self._sigma_batch(misses)
            _tele().count("oracle.batch_evaluations")
            for key, value in zip(misses, values):
                self.evaluations += 1
                _tele().count("oracle.sigma_evaluations")
                self._sigma_cache.put(key, value)
            resolved = dict(zip(misses, values))
            for i, key in enumerate(keys):
                if out[i] is None:
                    out[i] = resolved[key]
        return [float(v) for v in out]

    def _sigma_batch(self, keys: list[tuple[int, ...]]) -> list[float]:
        """Evaluate several seed sets inside one oracle call.

        Each set runs the same per-world reach kernel as
        :meth:`evaluate` (frontier cost scales with that set's *own*
        reachable edges).  A single stacked ``B × R``-row BFS was tried
        here and rejected: it gathers the **union** frontier's edge
        columns for every row, which loses badly when the coalesced sets
        are disjoint — the common serving mix.  The batch win is in the
        caller: one coalescing window, one artifact lock, one executor
        hop and one σ-memo pass for the whole batch.
        """
        blocked = np.zeros_like(self.covered)
        return [
            float(self._reach(key, blocked).sum()) / self.num_worlds
            for key in keys
        ]

    @property
    def nbytes(self) -> int:
        """Resident bytes of the warm artifact (the serving LRU's unit)."""
        return sum(self.nbytes_detail().values())

    def nbytes_detail(self) -> dict[str, int]:
        """Byte breakdown of the presampled state, mirroring
        :meth:`FlatRRPool.nbytes_detail`."""
        return {
            "live_worlds": int(self.live.nbytes),
            "covered": int(self.covered.nbytes),
        }

    def gain(
        self, v: int, extra: Sequence[int] = (), extra_gain: float = 0.0
    ) -> float:
        self._tick_evaluation()
        blocked = self.covered
        if extra:
            blocked = blocked | self._reach(extra, self.covered)
        newly = self._reach([int(v)], blocked)
        return float(newly.sum()) / self.num_worlds

    def commit(self, v: int, gain: float | None = None) -> None:
        newly = self._reach([int(v)], self.covered)
        exact = float(newly.sum()) / self.num_worlds
        self.covered |= newly
        self.committed.append(int(v))
        # Per-world identity: sum of committed marginals == world-average
        # σ of the committed set, regardless of the gain the caller saw.
        self.committed_sigma += exact
        self._sigma_cache.clear()


def _bottom_k_reach_estimates(
    n: int,
    rptr: np.ndarray,
    rpred: np.ndarray,
    ranks: np.ndarray,
    k: int,
) -> np.ndarray:
    """Per-node reach-size estimates in one world via bottom-k sketches.

    Cohen's pruned construction: process nodes in increasing rank order
    and reverse-BFS each rank to every node that reaches it, pruning at
    nodes whose sketch already holds k smaller ranks (their predecessors
    received those ranks through them already).  A node visited fewer
    than k times has its reach counted exactly; otherwise the kth-smallest
    rank gives the classic (k−1)/rank_k estimator.
    """
    cnt = np.zeros(n, dtype=np.int64)
    kth = np.full(n, np.inf)
    mark = np.full(n, -1, dtype=np.int64)
    full_nodes = 0
    for bfs_id, w in enumerate(np.argsort(ranks, kind="stable")):
        if full_nodes == n:
            break
        w = int(w)
        rank_w = ranks[w]
        stack = [w]
        mark[w] = bfs_id
        while stack:
            u = stack.pop()
            if cnt[u] >= k:
                continue  # sketch full: prune, predecessors already served
            cnt[u] += 1
            if cnt[u] == k:
                kth[u] = rank_w
                full_nodes += 1
            for p in rpred[rptr[u] : rptr[u + 1]]:
                p = int(p)
                if mark[p] != bfs_id:
                    mark[p] = bfs_id
                    stack.append(p)
    estimates = cnt.astype(np.float64)
    full = cnt >= k
    if full.any():
        estimates[full] = np.maximum((k - 1) / kth[full], float(k))
    return estimates


class SketchOracle(SnapshotOracle):
    """Snapshot oracle + bottom-k sketch upper bounds on gains.

    Marginal gains under snapshot reuse only shrink as the seed set grows
    (submodularity, per world), so a node's world-average *total* reach
    bounds every gain it will ever post.  The sketches estimate that
    reach in O(k·m) per world at build time; ``slack`` inflates the
    estimate to absorb sketch error.  Bounds are approximate, not proofs:
    lazy greedy using them trades the exactness guarantee for skipped
    evaluations (quantified in ``benchmarks/bench_spread_engine.py``).
    """

    name = "sketch"
    deterministic = True
    provides_bounds = True

    def __init__(
        self,
        graph: DiGraph,
        model: PropagationModel | Dynamics,
        num_worlds: int,
        rng: np.random.Generator,
        budget=None,
        sketch_k: int = 8,
        slack: float = 1.25,
    ) -> None:
        super().__init__(graph, model, num_worlds, rng, budget=budget)
        if sketch_k < 2:
            raise ValueError("sketch_k must be at least 2")
        self.sketch_k = int(sketch_k)
        self.slack = float(slack)
        with _tele().span("oracle.sketch_bounds"):
            self._bounds = self._build_bounds(rng, budget)

    def _build_bounds(self, rng: np.random.Generator, budget) -> np.ndarray:
        graph, n = self.graph, self.graph.n
        in_ptr, in_src = graph.in_ptr, graph.in_src
        owners = np.repeat(np.arange(n, dtype=np.int64), np.diff(in_ptr))
        totals = np.zeros(n, dtype=np.float64)
        for i in range(self.num_worlds):
            if budget is not None:
                budget.check()
            # Reverse adjacency of world i: in-CSR edges whose out-order
            # twin is live.  in-CSR is grouped by destination, so the
            # filtered arrays are already a valid CSR payload.
            live_in = self.live[i][graph._in_perm]
            idx = np.nonzero(live_in)[0]
            rptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(np.bincount(owners[idx], minlength=n), out=rptr[1:])
            totals += _bottom_k_reach_estimates(
                n, rptr, in_src[idx], rng.random(n), self.sketch_k
            )
        return totals / self.num_worlds * self.slack

    def gain_bound(self, v: int) -> float | None:
        return float(self._bounds[int(v)])

    def nbytes_detail(self) -> dict[str, int]:
        detail = super().nbytes_detail()
        detail["sketch_bounds"] = int(self._bounds.nbytes)
        return detail


class GainCache:
    """Marginal-gain memo keyed by (frozen seed set, node).

    Shared by GREEDY/CELF/CELF++: with a deterministic oracle, a repeated
    (S, v) query — including CELF++'s look-ahead gains resurfacing after
    their ``prev_best`` was picked — becomes a hit instead of a true
    evaluation.  With a stochastic oracle the cache deliberately bypasses
    itself: replaying a memoized value would skip RNG draws and silently
    change every subsequent estimate of a seeded run.

    The memo is bounded (``REPRO_GAIN_CACHE_MAX`` entries, LRU): in a
    resident server every distinct (seed set, node) pair ever queried
    would otherwise be kept for the life of the process.  The default
    bound is far above what one selection run generates, so batch-path
    hit patterns — and therefore seeds — are unchanged.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        self._memo = BoundedMemo(
            max_entries,
            env="REPRO_GAIN_CACHE_MAX",
            counter="oracle.gain_cache_evictions",
        )
        self.hits = 0
        self.misses = 0

    def gain(
        self,
        oracle: SpreadOracle,
        v: int,
        extra: Sequence[int] = (),
        extra_gain: float = 0.0,
    ) -> float:
        if not oracle.deterministic:
            self.misses += 1
            _tele().count("oracle.gain_cache_misses")
            return oracle.gain(v, extra, extra_gain)
        key = (_seed_key(oracle.committed + list(extra)), int(v))
        cached = self._memo.get(key)
        if cached is not None:
            self.hits += 1
            _tele().count("oracle.gain_cache_hits")
            return cached
        self.misses += 1
        _tele().count("oracle.gain_cache_misses")
        value = oracle.gain(v, extra, extra_gain)
        self._memo.put(key, value)
        return value

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._memo),
            "evictions": self._memo.evictions,
        }


def make_oracle(
    spec: "str | SpreadOracle | None",
    graph: DiGraph,
    model: PropagationModel | Dynamics,
    rng: np.random.Generator,
    *,
    mc_simulations: int,
    mc_batch: int | None = None,
    mc_workers: int | None = None,
    num_worlds: int | None = None,
    sketch_k: int = 8,
    budget=None,
) -> SpreadOracle:
    """Resolve a backend spec (CLI string, instance, or None) to an oracle.

    ``None`` keeps the byte-identical legacy path unless a batched/worker
    knob was set, in which case the content-keyed batched backend is the
    natural owner of those knobs.  ``num_worlds`` defaults to
    ``mc_simulations`` so snapshot noise is comparable to the MC noise
    the algorithm was configured for.
    """
    if isinstance(spec, SpreadOracle):
        return spec
    if spec is None:
        wants_batched = (mc_batch or 0) > 1 or (mc_workers or 0) > 1
        spec = "batched" if wants_batched else "serial"
    name = str(spec).lower()
    if name in ("serial", "sequential"):
        return SequentialMCOracle(graph, model, mc_simulations, rng)
    if name in ("batched", "mc"):
        return BatchedMCOracle(
            graph,
            model,
            mc_simulations,
            rng,
            batch=mc_batch or DEFAULT_MC_BATCH,
            workers=mc_workers,
        )
    worlds = num_worlds if num_worlds is not None else mc_simulations
    if name == "snapshot":
        return SnapshotOracle(graph, model, worlds, rng, budget=budget)
    if name == "sketch":
        return SketchOracle(
            graph, model, worlds, rng, budget=budget, sketch_k=sketch_k
        )
    raise ValueError(
        f"unknown spread oracle {spec!r}; options: {', '.join(ORACLE_BACKENDS)}"
    )

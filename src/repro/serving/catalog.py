"""Graph catalog for the serving layer: load once, weight per model.

A batch run pays graph generation and model weighting per invocation; a
resident server pays them once.  :class:`ServingCatalog` owns that warm
state: the base topologies (named analogues from
:mod:`repro.datasets` plus any ``*.npz`` graphs dropped in a catalog
directory) and the per-(dataset, model) weighted views every query
resolves against.

Weighting uses the same fixed generator (``default_rng(0)``) as the
``repro select`` CLI path, so a served answer is byte-comparable to the
batch harness on the same pinned seeds — the equivalence
``tests/test_serving.py`` asserts.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from ..graph.digraph import DiGraph
from ..graph.io import load_npz

__all__ = ["ServingCatalog", "graph_nbytes"]


def graph_nbytes(graph: DiGraph) -> int:
    """Resident bytes of a CSR graph (both adjacency directions)."""
    arrays = (
        graph.out_ptr, graph.out_dst, graph.out_w,
        graph.in_ptr, graph.in_src, graph.in_w, graph._in_perm,
    )
    return int(sum(a.nbytes for a in arrays))


class ServingCatalog:
    """Named graphs served warm, with per-model weighted views.

    ``datasets`` restricts the bundled analogues (default: all of them);
    ``catalog_dir`` adds every ``*.npz`` file in a directory as a graph
    named by its stem (written via :func:`repro.graph.io.save_npz`).
    Base graphs load eagerly in :meth:`warm` — "the catalog loads once"
    — and weighted views materialize on first use per model.
    """

    def __init__(
        self,
        datasets: tuple[str, ...] | None = None,
        catalog_dir: str | None = None,
    ) -> None:
        from ..datasets import load as load_dataset, names as dataset_names

        bundled = dataset_names()
        if datasets is not None:
            unknown = [d for d in datasets if d not in bundled]
            if unknown:
                raise KeyError(
                    f"unknown datasets {unknown}; bundled: {', '.join(bundled)}"
                )
            bundled = tuple(datasets)
        self._loaders: dict[str, Callable[[], DiGraph]] = {
            name: (lambda name=name: load_dataset(name)) for name in bundled
        }
        if catalog_dir is not None:
            for fname in sorted(os.listdir(catalog_dir)):
                if not fname.endswith(".npz"):
                    continue
                path = os.path.join(catalog_dir, fname)
                self._loaders[fname[: -len(".npz")]] = (
                    lambda path=path: load_npz(path)
                )
        self._graphs: dict[str, DiGraph] = {}
        self._weighted: dict[tuple[str, str], DiGraph] = {}

    def names(self) -> tuple[str, ...]:
        return tuple(self._loaders)

    def warm(self) -> int:
        """Load every catalog graph; returns total resident bytes."""
        for name in self._loaders:
            self.graph(name)
        return self.nbytes

    @property
    def nbytes(self) -> int:
        total = sum(graph_nbytes(g) for g in self._graphs.values())
        total += sum(graph_nbytes(g) for g in self._weighted.values())
        return int(total)

    def graph(self, name: str) -> DiGraph:
        """The base (unweighted) topology for ``name``."""
        try:
            loader = self._loaders[name]
        except KeyError:
            raise KeyError(
                f"dataset {name!r} not in catalog; "
                f"options: {', '.join(self._loaders)}"
            ) from None
        graph = self._graphs.get(name)
        if graph is None:
            graph = self._graphs[name] = loader()
        return graph

    def weighted(self, name: str, model_name: str):
        """``(weighted graph, model)`` for a (dataset, model) pair.

        The weighting RNG is pinned to ``default_rng(0)`` — the CLI's
        convention — so serving answers and batch answers share edges.
        """
        from ..diffusion import model_by_name

        model = model_by_name(model_name)
        key = (name, model.name)
        graph = self._weighted.get(key)
        if graph is None:
            graph = model.weighted(self.graph(name), np.random.default_rng(0))
            self._weighted[key] = graph
        return graph, model

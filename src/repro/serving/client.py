"""Blocking client for the influence-query server (tests, benchmarks, CLI).

One TCP connection, newline-delimited JSON both ways.  Requests carry
monotonically increasing ids; :meth:`ServingClient.request_many` writes a
whole batch before reading any response, so pipelined σ queries land
inside the server's coalescing window and come back as one batched
oracle evaluation — the idiom the coalescing tests and benchmark use.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Sequence

__all__ = ["ServingClient", "ServingError"]


class ServingError(RuntimeError):
    """Server answered ``ok: false``; carries the server-side type."""

    def __init__(self, error: dict[str, Any]) -> None:
        self.type = str(error.get("type", "Error"))
        super().__init__(f"{self.type}: {error.get('message', '')}")


class ServingClient:
    """Synchronous line-protocol client; usable as a context manager."""

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self.host = host
        self.port = int(port)
        self._sock = socket.create_connection((host, self.port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # -- transport ------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, op: str, **fields: Any) -> Any:
        return self.request_many([dict(fields, op=op)])[0]

    def request_many(self, requests: Sequence[dict[str, Any]]) -> list[Any]:
        """Pipeline a batch: write all requests, then collect all replies.

        Replies may arrive out of order (each request is its own server
        task); they are matched back to requests by id.
        """
        ids = []
        for request in requests:
            rid = self._next_id
            self._next_id += 1
            ids.append(rid)
            line = json.dumps(dict(request, id=rid)) + "\n"
            self._file.write(line.encode())
        self._file.flush()
        by_id: dict[int, dict] = {}
        for __ in requests:
            line = self._file.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            response = json.loads(line)
            by_id[response.get("id")] = response
        out = []
        for rid in ids:
            response = by_id[rid]
            if not response.get("ok"):
                raise ServingError(response.get("error") or {})
            out.append(response.get("result"))
        return out

    # -- endpoints ------------------------------------------------------

    def ping(self) -> str:
        return self.request("ping")

    def catalog(self) -> list[dict[str, Any]]:
        return self.request("catalog")

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    def topk(
        self,
        dataset: str,
        model: str,
        algorithm: str,
        k: int,
        params: dict[str, Any] | None = None,
        seed: int = 0,
    ) -> dict[str, Any]:
        return self.request(
            "topk", dataset=dataset, model=model, algorithm=algorithm,
            k=k, params=params or {}, seed=seed,
        )

    def sigma(
        self,
        dataset: str,
        model: str,
        seeds: Sequence[int],
        oracle: str | None = None,
        worlds: int | None = None,
        seed: int = 0,
    ) -> dict[str, Any]:
        return self.request("sigma", **self._sigma_fields(
            dataset, model, seeds, oracle, worlds, seed
        ))

    def sigma_many(
        self,
        dataset: str,
        model: str,
        seed_sets: Sequence[Sequence[int]],
        oracle: str | None = None,
        worlds: int | None = None,
        seed: int = 0,
    ) -> list[dict[str, Any]]:
        """Pipelined σ batch — lands in one server coalescing window."""
        return self.request_many([
            dict(self._sigma_fields(dataset, model, s, oracle, worlds, seed),
                 op="sigma")
            for s in seed_sets
        ])

    def gain(
        self,
        dataset: str,
        model: str,
        node: int,
        seeds: Sequence[int] = (),
        oracle: str | None = None,
        worlds: int | None = None,
        seed: int = 0,
    ) -> dict[str, Any]:
        fields = self._sigma_fields(dataset, model, seeds, oracle, worlds, seed)
        fields["node"] = int(node)
        return self.request("gain", **fields)

    def shutdown(self) -> str:
        return self.request("shutdown")

    @staticmethod
    def _sigma_fields(dataset, model, seeds, oracle, worlds, seed) -> dict:
        fields: dict[str, Any] = {
            "dataset": dataset,
            "model": model,
            "seeds": [int(s) for s in seeds],
            "seed": int(seed),
        }
        if oracle is not None:
            fields["oracle"] = oracle
        if worlds is not None:
            fields["worlds"] = int(worlds)
        return fields

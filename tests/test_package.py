"""Package-level surface tests: public API exports and the core alias."""

import repro
import repro.core as core
import repro.framework as framework


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackages_exported(self):
        for name in ("algorithms", "datasets", "diffusion", "framework", "graph"):
            assert hasattr(repro, name)

    def test_core_aliases_framework(self):
        # repro.core re-exports the platform (the paper's contribution).
        assert core.IMFramework is framework.IMFramework
        assert core.tune_parameter is framework.tune_parameter
        assert core.recommend is framework.recommend

    def test_all_lists_resolve(self):
        import importlib

        for module_name in (
            "repro.graph",
            "repro.datasets",
            "repro.diffusion",
            "repro.algorithms",
            "repro.framework",
            "repro.core",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name}"

    def test_docstrings_on_public_modules(self):
        import importlib

        for module_name in (
            "repro",
            "repro.graph.digraph",
            "repro.graph.weights",
            "repro.diffusion.simulation",
            "repro.algorithms.base",
            "repro.framework.runner",
        ):
            module = importlib.import_module(module_name)
            assert module.__doc__ and len(module.__doc__) > 40

"""Chaos suite: engines under injected worker faults stay byte-identical.

The resilient pool's core claim is that process-level failures are
*invisible* in results: every chunk is replayable from its SeedSequence
spawn key, and results commit in chunk-index order, so a run where 10-30%
of chunks are killed / hung / corrupted selects exactly the same seeds as
a fault-free run — the faults only show up in the ``pool.*`` telemetry
counters.  These tests pin that end-to-end through the RR-sketch engine
(RIS, IMM), the MC greedy family (CELF), and the raw spread estimator.

Fault schedules are deterministic (``sha256(seed:index:attempt)``), so
each test's injector seed is chosen to make specific chunks fault on
specific attempts — the assertions are exact, not probabilistic.
"""

import os

import numpy as np
import pytest

from repro.algorithms.celf import CELF
from repro.algorithms.imm import IMM
from repro.algorithms.ris import RIS
from repro.diffusion.models import WC
from repro.diffusion.simulation import monte_carlo_spread
from repro.framework.isolation import IsolationConfig, execute_cell
from repro.framework.metrics import STATUS_FAILED
from repro.framework.pool import ChunkFaultInjector
from repro.framework.shm import SEGMENT_PREFIX
from repro.framework.telemetry import Telemetry, activate
from repro.graph.digraph import DiGraph
from repro.graph.generators import build, powerlaw_configuration

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="process pools need fork/spawn support"
)


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(7)
    return WC.weighted(build(powerlaw_configuration(120, 2.3, 4.0, rng)), rng)


@pytest.fixture(scope="module")
def small_graph():
    gen = np.random.default_rng(5)
    g = DiGraph.from_arrays(20, gen.integers(0, 20, 70), gen.integers(0, 20, 70))
    return WC.weighted(g, np.random.default_rng(5))


def select_seeds(algo, graph, k, rng_seed=11):
    return algo.select(graph, k, WC, rng=np.random.default_rng(rng_seed)).seeds


class TestByteIdenticalUnderFaults:
    def test_ris_under_worker_kills(self, graph):
        baseline = select_seeds(RIS(num_rr_sets=900, rr_workers=3), graph, 5)
        tele = Telemetry()
        # seed 84 @ rate .15: chunk 2 of 3 is killed on attempt 0 only.
        with activate(tele), ChunkFaultInjector(mode="kill", rate=0.15, seed=84):
            faulted = select_seeds(RIS(num_rr_sets=900, rr_workers=3), graph, 5)
        assert faulted == baseline
        # Whether sibling chunks deliver before the broken pool is detected
        # is a race, so only the restart (not the salvage count) is exact
        # here; deterministic salvage is pinned in test_resilient_pool.py.
        assert tele.counters["pool.worker_restarts"] >= 1

    def test_imm_under_corrupt_results(self, graph):
        algo = lambda: IMM(epsilon=0.5, rr_scale=0.02, rr_workers=3)  # noqa: E731
        baseline = select_seeds(algo(), graph, 5)
        tele = Telemetry()
        # seed 0 @ rate .3: chunks 1 and 2 return corrupted payloads on
        # attempt 0; the checksum mismatch forces a retry.
        with activate(tele), ChunkFaultInjector(mode="corrupt", rate=0.3, seed=0):
            faulted = select_seeds(algo(), graph, 5)
        assert faulted == baseline
        assert tele.counters["pool.corrupt_results"] >= 2
        assert tele.counters["pool.chunk_retries"] >= 2

    def test_celf_under_worker_kills(self, small_graph):
        algo = lambda: CELF(mc_simulations=8, mc_workers=2)  # noqa: E731
        baseline = select_seeds(algo(), small_graph, 3)
        tele = Telemetry()
        # seed 28 @ rate .2: chunk 0 of every 2-chunk sigma evaluation is
        # killed on attempt 0 — each oracle call collapses once and replays.
        with activate(tele), ChunkFaultInjector(mode="kill", rate=0.2, seed=28):
            faulted = select_seeds(algo(), small_graph, 3)
        assert faulted == baseline
        assert tele.counters["pool.worker_restarts"] >= 1

    def test_mc_spread_samples_identical_under_hangs(self, small_graph):
        def run():
            return monte_carlo_spread(
                small_graph, [0, 3], WC, r=40,
                rng=np.random.default_rng(9), workers=2, return_samples=True,
            )[1]

        baseline = run()
        tele = Telemetry()
        # seed 53 @ rate .3: chunk 1 of 2 hangs on attempt 0; the stall
        # timeout reclaims the worker and the chunk replays.
        with activate(tele), ChunkFaultInjector(
            mode="hang", rate=0.3, seed=53, hang_seconds=30.0, stall_timeout=0.75
        ):
            faulted = run()
        np.testing.assert_array_equal(faulted, baseline)
        assert tele.counters["pool.worker_restarts"] >= 1

    def test_full_ris_imm_celf_run_at_ten_percent_kills(self, graph, small_graph):
        """The acceptance scenario: a 10% kill rate across a whole sweep."""
        baseline = [
            select_seeds(RIS(num_rr_sets=900, rr_workers=3), graph, 5),
            select_seeds(IMM(epsilon=0.5, rr_scale=0.02, rr_workers=3), graph, 5),
            select_seeds(CELF(mc_simulations=8, mc_workers=2), small_graph, 3),
        ]
        tele = Telemetry()
        with activate(tele), ChunkFaultInjector(mode="kill", rate=0.1, seed=84):
            faulted = [
                select_seeds(RIS(num_rr_sets=900, rr_workers=3), graph, 5),
                select_seeds(IMM(epsilon=0.5, rr_scale=0.02, rr_workers=3), graph, 5),
                select_seeds(CELF(mc_simulations=8, mc_workers=2), small_graph, 3),
            ]
        assert faulted == baseline
        assert tele.counters["pool.worker_restarts"] >= 2


class TestDegradationLadder:
    def test_engine_downgrades_to_serial_when_restarts_exhausted(
        self, graph, monkeypatch
    ):
        baseline = select_seeds(RIS(num_rr_sets=600, rr_workers=3), graph, 4)
        monkeypatch.setenv("REPRO_POOL_MAX_RESTARTS", "0")
        tele = Telemetry()
        with activate(tele), ChunkFaultInjector(mode="kill", rate=1.0, seed=0):
            faulted = select_seeds(RIS(num_rr_sets=600, rr_workers=3), graph, 4)
        assert faulted == baseline
        assert tele.counters["pool.serial_downgrades"] >= 1

    def test_nested_fanout_inside_isolation_runs_serial(self, graph):
        """A daemonic isolated worker cannot spawn children: the pool must
        degrade to serial chunk execution, byte-identical to parallel."""
        def cell(isolate):
            return execute_cell(
                RIS(num_rr_sets=600, rr_workers=3),
                graph,
                4,
                WC,
                rng=np.random.default_rng(11),
                config=IsolationConfig(enabled=isolate, telemetry=True),
            )

        baseline_record, baseline = cell(isolate=False)
        record, result = cell(isolate=True)
        assert baseline_record.ok and record.ok, record.extras.get("failure")
        assert result.seeds == baseline.seeds
        counters = record.extras["telemetry"]["counters"]
        assert counters.get("pool.nested_serial", 0) >= 1

    def test_quarantine_surfaces_as_failed_cell(self, graph):
        """An unrecoverable chunk fails the *cell*, never the sweep."""
        with ChunkFaultInjector(mode="raise", rate=1.0, seed=0):
            record, result = execute_cell(
                RIS(num_rr_sets=400, rr_workers=2),
                graph,
                3,
                WC,
                rng=np.random.default_rng(1),
                config=IsolationConfig(enabled=False, pool_retries=1),
            )
        assert result is None
        assert record.status == STATUS_FAILED
        pool_detail = record.extras["failure"]["pool"]
        assert pool_detail["failed_attempts"] == 1
        assert pool_detail["label"] == "rrpool.sample"


def _shm_leftovers():
    try:
        return [f for f in os.listdir("/dev/shm") if f.startswith(SEGMENT_PREFIX)]
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


class TestArenaChaosSuite:
    """Faults with the shared-memory arena armed (REPRO_SHM_MIN_BYTES=0).

    The transport must be invisible twice over: results are byte-identical
    to the default-transport fault-free baseline, and every recovery rung
    — respawn (workers *re-attach* the published segments, visible as
    extra ``shm.attach`` events from the cold caches), pickle fallback,
    serial downgrade (no transport at all) — leaves no ``/dev/shm``
    leftovers behind.
    """

    def test_ris_kills_reattach_arena(self, monkeypatch):
        # A graph big enough that its CSR arrays clear the per-array
        # inline threshold, so segments are actually published.
        rng = np.random.default_rng(17)
        big = WC.weighted(
            build(powerlaw_configuration(900, 2.3, 4.0, rng)), rng
        )
        baseline = select_seeds(RIS(num_rr_sets=600, rr_workers=3), big, 5)
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        tele = Telemetry()
        # seed 84 @ rate .15: one chunk killed on attempt 0 (as in the
        # transport-free twin above), forcing an executor respawn.
        with activate(tele), ChunkFaultInjector(mode="kill", rate=0.15, seed=84):
            faulted = select_seeds(RIS(num_rr_sets=600, rr_workers=3), big, 5)
        assert faulted == baseline
        assert tele.counters["pool.transport_shm"] >= 1
        assert tele.counters["shm.publish_segments"] >= 1
        assert tele.counters["pool.worker_restarts"] >= 1
        # The respawned generation attached the segments afresh instead of
        # receiving a graph copy: attach events outnumber the single
        # attach one surviving worker set would report.
        assert tele.counters["shm.attach"] >= 2
        assert not _shm_leftovers()

    def test_imm_corrupt_results_with_arena(self, graph, monkeypatch):
        algo = lambda: IMM(epsilon=0.5, rr_scale=0.02, rr_workers=3)  # noqa: E731
        baseline = select_seeds(algo(), graph, 5)
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        tele = Telemetry()
        # seed 0 @ rate .3: two chunks return corrupted payloads and retry.
        with activate(tele), ChunkFaultInjector(mode="corrupt", rate=0.3, seed=0):
            faulted = select_seeds(algo(), graph, 5)
        assert faulted == baseline
        assert tele.counters["pool.transport_shm"] >= 1
        assert tele.counters["pool.chunk_retries"] >= 2
        assert not _shm_leftovers()

    def test_celf_kills_with_arena(self, small_graph, monkeypatch):
        algo = lambda: CELF(mc_simulations=8, mc_workers=2)  # noqa: E731
        baseline = select_seeds(algo(), small_graph, 3)
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        tele = Telemetry()
        # seed 28 @ rate .2: chunk 0 of every sigma evaluation is killed.
        with activate(tele), ChunkFaultInjector(mode="kill", rate=0.2, seed=28):
            faulted = select_seeds(algo(), small_graph, 3)
        assert faulted == baseline
        assert tele.counters["pool.transport_shm"] >= 1
        assert tele.counters["pool.worker_restarts"] >= 1
        assert not _shm_leftovers()

    def test_pickle_fallback_rung_under_kills(self, graph, monkeypatch):
        """REPRO_SHM_DISABLE forces the pickle rung; faults stay invisible."""
        baseline = select_seeds(RIS(num_rr_sets=900, rr_workers=3), graph, 5)
        monkeypatch.setenv("REPRO_SHM_DISABLE", "1")
        tele = Telemetry()
        with activate(tele), ChunkFaultInjector(mode="kill", rate=0.15, seed=84):
            faulted = select_seeds(RIS(num_rr_sets=900, rr_workers=3), graph, 5)
        assert faulted == baseline
        assert tele.counters["pool.transport_pickle"] >= 1
        assert "pool.transport_shm" not in tele.counters
        assert not _shm_leftovers()

    def test_serial_downgrade_rung_with_arena(self, graph, monkeypatch):
        """Restarts exhausted under a 100% kill rate: the serial rung runs
        on the original objects and the arena still unlinks."""
        baseline = select_seeds(RIS(num_rr_sets=600, rr_workers=3), graph, 4)
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        monkeypatch.setenv("REPRO_POOL_MAX_RESTARTS", "0")
        tele = Telemetry()
        with activate(tele), ChunkFaultInjector(mode="kill", rate=1.0, seed=0):
            faulted = select_seeds(RIS(num_rr_sets=600, rr_workers=3), graph, 4)
        assert faulted == baseline
        assert tele.counters["pool.serial_downgrades"] >= 1
        assert tele.counters["pool.transport_shm"] >= 1
        assert not _shm_leftovers()

    def test_sharded_arena_run_under_kills(self, graph, monkeypatch):
        """Sharding, arena and faults composed: still byte-identical."""
        from repro.framework.pool import shards_env

        baseline = select_seeds(RIS(num_rr_sets=900, rr_workers=3), graph, 5)
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        tele = Telemetry()
        with activate(tele), shards_env(3), ChunkFaultInjector(
            mode="kill", rate=0.15, seed=84
        ):
            faulted = select_seeds(RIS(num_rr_sets=900, rr_workers=3), graph, 5)
        assert faulted == baseline
        assert tele.counters["pool.shards"] >= 3
        assert tele.counters["pool.transport_shm"] >= 1
        assert not _shm_leftovers()

"""Benchmark evolution: Stop-and-Stare (SSA / D-SSA) joins the platform.

The paper's concluding section: "a highly promising technique has been
published in SIGMOD 2016 [Stop-and-Stare]. Unfortunately, we could not
include the technique in our study ... our benchmarking study will also
evolve with the inclusion of more recent techniques."  This bench is that
evolution: SSA and D-SSA run through the identical pipeline as TIM+/IMM
(same datasets, same decoupled MC scoring, same budget) plus SKIM and
PMIA, the two referenced-but-excluded techniques, for completeness.

Workload: nethept and hepph analogues under WC (the model where the
RR-set race is sharpest), k in {10, 25, 50}.
"""

import numpy as np

from repro.algorithms import registry
from repro.diffusion.models import WC
from repro.framework.metrics import run_with_budget
from repro.framework.results import render_series

from _common import RR_SCALE, emit, evaluate_spread, once, weighted_dataset

K_GRID = (10, 25, 50)
ROSTER = {
    "TIM+": {"epsilon": 0.5, "rr_scale": RR_SCALE},
    "IMM": {"epsilon": 0.5, "rr_scale": RR_SCALE},
    "SSA": {"epsilon": 0.5, "rr_scale": RR_SCALE},
    "D-SSA": {"epsilon": 0.5, "rr_scale": RR_SCALE},
    "SKIM": {"num_instances": 24, "sketch_k": 12},
    "PMIA": {},
}


def test_evolution_ssa_vs_rr_family(benchmark):
    def experiment():
        panels = {}
        for dataset in ("nethept", "hepph"):
            graph = weighted_dataset(dataset, WC)
            spread_series = {name: [] for name in ROSTER}
            time_series = {name: [] for name in ROSTER}
            for name, params in ROSTER.items():
                for k in K_GRID:
                    record, __ = run_with_budget(
                        registry.make(name, **params),
                        graph, k, WC,
                        rng=np.random.default_rng(k),
                        time_limit_seconds=30.0,
                        track_memory=False,
                    )
                    if record.ok:
                        est = evaluate_spread(graph, record.seeds, WC)
                        spread_series[name].append(round(est.mean, 1))
                        time_series[name].append(round(record.elapsed_seconds, 3))
                    else:
                        spread_series[name].append(record.status)
                        time_series[name].append(record.status)
            panels[dataset] = (spread_series, time_series)
        return panels

    panels = once(benchmark, experiment)
    blocks = []
    for dataset, (spread_series, time_series) in panels.items():
        blocks.append(render_series(
            "k", list(K_GRID), spread_series,
            title=f"Evolution: spread vs k — {dataset} (WC)",
        ))
        blocks.append(render_series(
            "k", list(K_GRID), time_series,
            title=f"Evolution: time (s) vs k — {dataset} (WC)",
        ))
    emit("evolution_ssa", "\n\n".join(blocks))

    # The stop-and-stare family must match the RR incumbents' quality.
    for dataset, (spread_series, __t) in panels.items():
        for k_idx in range(len(K_GRID)):
            imm = spread_series["IMM"][k_idx]
            for name in ("SSA", "D-SSA"):
                got = spread_series[name][k_idx]
                if isinstance(got, float) and isinstance(imm, float):
                    assert got >= 0.8 * imm, (dataset, name, K_GRID[k_idx])

"""Tests for the global score-estimation techniques: IRIE and EaSyIM."""

import numpy as np
import pytest

from repro.algorithms.easyim import EaSyIM
from repro.algorithms.irie import IRIE, max_probability_paths
from repro.diffusion.models import IC, LT, WC
from repro.graph.digraph import DiGraph


@pytest.fixture
def hub_graph():
    edges = [(0, i) for i in range(1, 8)] + [(8, 9)]
    return IC.weighted(DiGraph.from_edges(10, edges))


class TestMaxProbabilityPaths:
    def test_single_edge(self):
        g = DiGraph.from_edges(2, [(0, 1)], weights=[0.4])
        pp = max_probability_paths(g, 0, threshold=0.01)
        assert pp == {1: pytest.approx(0.4)}

    def test_path_products(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.5, 0.5])
        pp = max_probability_paths(g, 0, threshold=0.01)
        assert pp[1] == pytest.approx(0.5)
        assert pp[2] == pytest.approx(0.25)

    def test_threshold_prunes(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.1, 0.1])
        pp = max_probability_paths(g, 0, threshold=0.05)
        assert 1 in pp
        assert 2 not in pp  # 0.01 < 0.05

    def test_takes_best_path(self):
        g = DiGraph.from_edges(
            3, [(0, 1), (0, 2), (1, 2)], weights=[0.9, 0.1, 0.9]
        )
        pp = max_probability_paths(g, 0, threshold=0.01)
        assert pp[2] == pytest.approx(0.81)  # via 1, not the direct 0.1 edge

    def test_source_excluded(self):
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)], weights=[0.5, 0.5])
        pp = max_probability_paths(g, 0, threshold=0.01)
        assert 0 not in pp


class TestIRIE:
    def test_finds_hub(self, hub_graph, rng):
        res = IRIE().select(hub_graph, 1, IC, rng=rng)
        assert res.seeds == [0]

    def test_discount_diversifies_seeds(self, hub_graph, rng):
        res = IRIE().select(hub_graph, 2, IC, rng=rng)
        assert res.seeds[0] == 0
        assert res.seeds[1] == 8  # AP discount pushes away from 0's leaves

    def test_rejects_lt(self, hub_graph, rng):
        with pytest.raises(ValueError):
            IRIE().select(hub_graph, 1, LT, rng=rng)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            IRIE(alpha=1.5)

    def test_rank_rewards_two_hop_reach(self, rng):
        # 0 -> 1 -> 2 vs 3 -> 4: node 0 has the same out-degree as 3 but a
        # longer downstream chain, so IR must rank it higher.
        g = IC.weighted(DiGraph.from_edges(5, [(0, 1), (1, 2), (3, 4)]))
        res = IRIE().select(g, 1, IC, rng=rng)
        assert res.seeds == [0]


class TestEaSyIM:
    def test_finds_hub(self, hub_graph, rng):
        res = EaSyIM(path_length=3).select(hub_graph, 1, IC, rng=rng)
        assert res.seeds == [0]

    def test_supports_both_models(self, two_cliques, rng):
        for model in (IC, LT):
            res = EaSyIM(path_length=2).select(two_cliques, 1, model, rng=rng)
            assert len(res.seeds) == 1

    def test_score_discounts_selected_seeds(self, rng):
        # Chain 0 -> 1 -> 2; after seeding 1, node 0's path through 1 is
        # discounted, so an independent edge 3 -> 4 wins the second slot.
        g = IC.weighted(DiGraph.from_edges(5, [(0, 1), (1, 2), (3, 4)]))
        res = EaSyIM(path_length=3).select(g, 2, IC, rng=rng)
        assert res.seeds[0] == 0
        assert res.seeds[1] in (1, 3)

    def test_longer_paths_change_scores(self, rng):
        # With ℓ=1 both 0 and 3 score equally (one out-edge each); ℓ=2
        # separates them through the second hop.
        g = IC.weighted(DiGraph.from_edges(5, [(0, 1), (1, 2), (3, 4)]))
        short = EaSyIM(path_length=1)._scores(
            g, np.ones(5, dtype=bool), g.edge_src
        )
        long = EaSyIM(path_length=2)._scores(
            g, np.ones(5, dtype=bool), g.edge_src
        )
        assert short[0] == pytest.approx(short[3])
        assert long[0] > long[3]

    def test_exact_path_weights(self):
        # Scores under ℓ=2 on a known graph: s(0) = w01*(1 + w12).
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.5, 0.25])
        scores = EaSyIM(path_length=2)._scores(
            g, np.ones(3, dtype=bool), g.edge_src
        )
        assert scores[0] == pytest.approx(0.5 * 1.25)
        assert scores[1] == pytest.approx(0.25)
        assert scores[2] == 0.0

    def test_invalid_path_length(self):
        with pytest.raises(ValueError):
            EaSyIM(path_length=0)

    def test_wc_hub_selection(self, rng):
        g = WC.weighted(DiGraph.from_edges(6, [(0, i) for i in range(1, 6)]))
        res = EaSyIM(path_length=2).select(g, 1, WC, rng=rng)
        assert res.seeds == [0]

"""SKIM — Sketch-based Influence Maximization (Cohen, Delling, Pajor &
Werneck, CIKM'14).

The benchmarking paper leaves SKIM out because "TIM+ has been shown to
possess better quality while being similar in running times" (Sec. 4);
it is included here as the sketch-based representative so that claim can
be tested on the platform.

The idea: work over ℓ live-edge instances of the graph.  Each
(node, instance) pair draws a uniform rank; processing pairs in
increasing rank order, a reverse BFS from each pair increments a counter
(a *combined reachability sketch*) on every node that reaches it.  The
first node whose counter hits the sketch size ``sketch_k`` is — with
bottom-k-sketch guarantees — an (approximate) influence maximizer.  Its
covered (node, instance) pairs are removed (residual problem) and the
procedure repeats for the next seed.

This implementation keeps the algorithmic skeleton (rank-ordered pair
stream, counter threshold, residual coverage) and simplifies the
engineering: counters restart per seed selection instead of being patched
incrementally.  Behaviour — near-linear total work on sparse live-edge
worlds, quality slightly below the RR-set methods — matches the paper's
characterization.
"""

from __future__ import annotations

from collections import deque
from typing import Any

import numpy as np

from ..diffusion.models import Dynamics, PropagationModel
from ..diffusion.snapshots import generate_lt_snapshot
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm
from .static_greedy import snapshot_adjacency

__all__ = ["SKIM"]


def _reverse_adjacency(graph: DiGraph, live: np.ndarray) -> list[np.ndarray]:
    """Per-node live *in*-neighbour arrays for one snapshot."""
    live_idx = np.nonzero(live)[0]
    src = graph.edge_src[live_idx]
    dst = graph.out_dst[live_idx]
    order = np.argsort(dst, kind="stable")
    src, dst = src[order], dst[order]
    counts = np.zeros(graph.n, dtype=np.int64)
    np.add.at(counts, dst, 1)
    splits = np.cumsum(counts)[:-1]
    return np.split(src, splits)


class SKIM(IMAlgorithm):
    """Combined bottom-k reachability sketches over live-edge instances."""

    name = "SKIM"
    supported = (Dynamics.IC, Dynamics.LT)
    external_parameter = "#Instances"

    def __init__(self, num_instances: int = 32, sketch_k: int = 16) -> None:
        if num_instances < 1:
            raise ValueError("num_instances must be positive")
        if sketch_k < 1:
            raise ValueError("sketch_k must be positive")
        self.num_instances = num_instances
        self.sketch_k = sketch_k

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        n, ell = graph.n, self.num_instances
        forward: list[list[np.ndarray]] = []
        backward: list[list[np.ndarray]] = []
        for __ in range(ell):
            self._tick(budget)
            if model.dynamics is Dynamics.IC:
                live = rng.random(graph.m) < graph.out_w
            else:
                live = generate_lt_snapshot(graph, rng).live
            forward.append(snapshot_adjacency(graph, live))
            backward.append(_reverse_adjacency(graph, live))

        # One uniform rank per (node, instance) pair; the stream visits
        # pairs in increasing rank.
        ranks = rng.random(n * ell)
        stream = np.argsort(ranks)
        covered = np.zeros(n * ell, dtype=bool)

        def pair(node: int, instance: int) -> int:
            return instance * n + node

        seeds: list[int] = []
        in_seed = np.zeros(n, dtype=bool)
        total_covered = 0
        while len(seeds) < k:
            self._tick(budget)
            counter = np.zeros(n, dtype=np.int64)
            chosen = -1
            # Phase 1: stream pairs until some node's sketch fills up.
            for p in stream:
                if covered[p]:
                    continue
                instance, node = divmod(int(p), n)
                # Reverse BFS: every u reaching (node, instance) gets +1.
                seen = {node}
                queue: deque[int] = deque([node])
                while queue:
                    x = queue.popleft()
                    if not in_seed[x]:
                        counter[x] += 1
                        if counter[x] >= self.sketch_k:
                            chosen = x
                            break
                    for y in backward[instance][x]:
                        y = int(y)
                        if y not in seen:
                            seen.add(y)
                            queue.append(y)
                if chosen >= 0:
                    break
            if chosen < 0:
                # Sketches never filled: residual influence is tiny.
                # Fall back to the node covering the most remaining pairs.
                chosen = int(np.where(in_seed, -np.inf, counter).argmax())
                if in_seed[chosen]:
                    remaining = [u for u in range(n) if not in_seed[u]]
                    chosen = remaining[0]
            seeds.append(chosen)
            in_seed[chosen] = True
            # Phase 2: mark everything the new seed covers in every world.
            for instance in range(ell):
                seen2 = {chosen}
                queue = deque([chosen])
                while queue:
                    x = queue.popleft()
                    p = pair(x, instance)
                    if not covered[p]:
                        covered[p] = True
                        total_covered += 1
                    for y in forward[instance][x]:
                        y = int(y)
                        if y not in seen2:
                            seen2.add(y)
                            queue.append(y)
        return seeds, {
            "num_instances": ell,
            "sketch_k": self.sketch_k,
            "estimated_spread": total_covered / ell,
        }

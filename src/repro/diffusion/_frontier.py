"""Vectorized gathering of the out-edges of a node frontier.

Shared by the cascade simulators: given CSR pointers and a set of frontier
nodes, produce the flat index array of every edge leaving the frontier in a
single numpy expression (no per-node Python loop).
"""

from __future__ import annotations

import numpy as np

__all__ = ["gather_edges"]


def gather_edges(ptr: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Indices (into the CSR edge arrays) of all edges leaving ``nodes``."""
    starts = ptr[nodes]
    counts = ptr[nodes + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # For each edge slot, its offset within its node's slice, then shift by
    # the slice start: classic CSR expansion without a Python loop.
    ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + within

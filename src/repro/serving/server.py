"""The influence-query server: warm artifacts behind an asyncio front.

``repro serve`` turns the batch harness into a resident service.  One
process loads the graph catalog once, then answers concurrent queries
over a newline-delimited JSON protocol (stdlib ``asyncio.start_server``;
no dependencies):

``topk``
    ``k`` seeds for (dataset, model, algorithm, params, seed).  The RR
    baseline keeps its sampled :class:`FlatRRPool` warm, so any ``k`` is
    a vectorized max-cover over the cached index; every other technique
    caches its finished selection, warm for all ``k' <= k`` via the
    greedy prefix property.  Either way a warm query never re-runs
    selection — the Cohen-style "seed selection is an index lookup"
    pivot.
``sigma``
    σ(S) from a warm deterministic oracle (snapshot live-edge worlds by
    default).  Concurrent requests against the same oracle **coalesce**:
    the first arrival waits one coalescing window and the whole batch is
    answered by a single ``evaluate_many`` — one artifact-lock
    acquisition, one executor hop, one shared σ-memo pass.
``gain``
    Marginal gain of ``v`` given ``S`` from the same warm oracle.

Plus ``ping`` / ``catalog`` / ``stats`` / ``shutdown`` housekeeping.

Failure semantics: a bad request errors only its own response envelope
(``ok: false`` with a message); the connection and server live on.  An
artifact build is single-flighted — concurrent cold requests for the
same key share one construction.  Heavy work runs on a thread executor
(``workers`` threads); with the default single worker, engine telemetry
(``oracle.*``, ``rrpool.*`` spans/counters) is collected per task and
folded into the server's handle, so ``repro trace`` shows engine cost
under each ``serving.*`` phase.  With ``workers > 1`` engine-internal
telemetry is skipped (the ambient handle is process-global and its span
stack is not thread-safe); per-artifact locks still serialize access to
any one oracle, so results are unaffected — only attribution coarsens
to the ``serving.*`` layer.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Awaitable, Callable

import numpy as np

from ..framework.telemetry import Telemetry, activate, new_node, write_trace
from .artifacts import Artifact, ArtifactLRU, artifact_key
from .catalog import ServingCatalog

__all__ = [
    "DEFAULT_PORT",
    "ServingConfig",
    "ServingRequestError",
    "InfluenceServer",
    "ServerHandle",
    "run_server",
    "start_in_thread",
]

DEFAULT_PORT = 7477

#: σ backends a resident server may use: repeated queries must return
#: identical answers, so the stateful shared-stream serial backend is out.
SERVABLE_ORACLES = ("batched", "snapshot", "sketch")


class ServingRequestError(ValueError):
    """A malformed or unanswerable request (reported, never fatal)."""


@dataclass
class ServingConfig:
    """Knobs for one server instance (see README "Serving layer")."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is on the instance
    datasets: tuple[str, ...] | None = None
    catalog_dir: str | None = None
    cache_bytes: int | None = 256 << 20
    workers: int = 1
    coalesce_ms: float = 2.0
    default_worlds: int = 200
    default_oracle: str = "snapshot"
    trace: str | None = None


class _SigmaBatch:
    """One in-flight coalesced σ batch: (seed set, future) pairs."""

    __slots__ = ("items",)

    def __init__(self) -> None:
        self.items: list[tuple[list[int], asyncio.Future]] = []


class InfluenceServer:
    """Catalog + artifact LRU + asyncio protocol front."""

    def __init__(self, config: ServingConfig | None = None) -> None:
        self.config = config or ServingConfig()
        if self.config.workers < 1:
            raise ValueError("workers must be positive")
        self.telemetry = Telemetry(label="serving")
        self.catalog = ServingCatalog(
            datasets=self.config.datasets, catalog_dir=self.config.catalog_dir
        )
        self.cache = ArtifactLRU(self.config.cache_bytes, telemetry=self.telemetry)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-serve"
        )
        # Engine-internal telemetry needs the ambient handle, which is
        # process-global: only safe with a single executor thread.
        self._engine_telemetry = self.config.workers == 1
        self._builds: dict[str, asyncio.Future] = {}
        self._batches: dict[str, _SigmaBatch] = {}
        self._locks: dict[str, asyncio.Lock] = {}
        self._server: asyncio.AbstractServer | None = None
        self._stop: asyncio.Event | None = None
        self._closed = False
        self.host = self.config.host
        self.port: int | None = None
        self._started_at: float | None = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        self._stop = asyncio.Event()
        started = time.perf_counter()
        loaded = self.catalog.warm()
        self._absorb_span("serving.catalog_load", time.perf_counter() - started)
        self.telemetry.count("serving.catalog_bytes", loaded)
        self._server = await asyncio.start_server(
            self._on_client, self.config.host, self.config.port
        )
        self.port = int(self._server.sockets[0].getsockname()[1])
        self._started_at = time.monotonic()

    def request_stop(self) -> None:
        """Ask the serve loop to shut down (idempotent, loop-thread only)."""
        if self._stop is not None:
            self._stop.set()

    async def wait_stopped(self) -> None:
        """Block until a shutdown request, then tear everything down."""
        assert self._stop is not None, "start() first"
        try:
            await self._stop.wait()
        finally:
            await self.shutdown()

    async def shutdown(self) -> None:
        """Close the listener, drain the executor, drop shm attachments."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=True)
        from ..framework import shm

        shm.detach_all()
        if self.config.trace:
            write_trace(self.config.trace, self.telemetry.snapshot(), cell="serve")

    # -- protocol -------------------------------------------------------

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        cancelled = False
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                # One task per request line: pipelined requests on one
                # connection run concurrently (and their σ calls coalesce).
                task = asyncio.ensure_future(
                    self._handle_line(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:
            # Server torn down mid-connection: drop in-flight requests.
            cancelled = True
        finally:
            if tasks:
                if cancelled:
                    for task in tasks:
                        task.cancel()
                try:
                    await asyncio.gather(*tasks, return_exceptions=True)
                except asyncio.CancelledError:  # pragma: no cover
                    pass
            try:
                writer.close()
                if not cancelled:
                    # The loop is closing on cancellation; don't re-await.
                    await writer.wait_closed()
            except Exception:  # pragma: no cover - best-effort close
                pass

    async def _handle_line(
        self, line: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        rid = None
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ServingRequestError("request must be a JSON object")
            rid = request.get("id")
            result = await self._dispatch(request)
            response: dict[str, Any] = {"id": rid, "ok": True, "result": result}
        except Exception as exc:
            self.telemetry.count("serving.errors")
            response = {
                "id": rid,
                "ok": False,
                "error": {"type": type(exc).__name__, "message": str(exc)},
            }
        payload = (json.dumps(response) + "\n").encode()
        async with write_lock:
            writer.write(payload)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, request: dict[str, Any]) -> Any:
        op = request.get("op")
        handler: Callable[[dict], Awaitable[Any]] | None = {
            "ping": self._op_ping,
            "catalog": self._op_catalog,
            "stats": self._op_stats,
            "topk": self._op_topk,
            "sigma": self._op_sigma,
            "gain": self._op_gain,
            "shutdown": self._op_shutdown,
        }.get(op)
        if handler is None:
            raise ServingRequestError(f"unknown op {op!r}")
        self.telemetry.count("serving.requests")
        self.telemetry.count(f"serving.{op}_requests")
        started = time.perf_counter()
        try:
            return await handler(request)
        finally:
            self._absorb_span(f"serving.{op}", time.perf_counter() - started)

    # -- endpoint handlers ----------------------------------------------

    async def _op_ping(self, request: dict) -> str:
        return "pong"

    async def _op_catalog(self, request: dict) -> list[dict[str, Any]]:
        out = []
        for name in self.catalog.names():
            graph = self.catalog.graph(name)
            out.append({"dataset": name, "n": graph.n, "m": graph.m})
        return out

    async def _op_stats(self, request: dict) -> dict[str, Any]:
        uptime = (
            time.monotonic() - self._started_at if self._started_at else 0.0
        )
        return {
            "datasets": list(self.catalog.names()),
            "catalog_bytes": self.catalog.nbytes,
            "cache": self.cache.stats(),
            "counters": dict(self.telemetry.counters),
            "uptime_seconds": float(uptime),
            "workers": self.config.workers,
        }

    async def _op_shutdown(self, request: dict) -> str:
        loop = asyncio.get_running_loop()
        # Respond first, stop on the next tick.
        loop.call_soon(self.request_stop)
        return "stopping"

    async def _op_topk(self, request: dict) -> dict[str, Any]:
        dataset = self._field(request, "dataset")
        model_name = self._field(request, "model")
        algorithm = self._field(request, "algorithm")
        k = int(self._field(request, "k"))
        if k < 0:
            raise ServingRequestError("k must be non-negative")
        params = dict(request.get("params") or {})
        seed = int(request.get("seed", 0))
        graph, model = self.catalog.weighted(dataset, model_name)
        if algorithm == "RIS" and "width_budget" not in params:
            return await self._topk_rrpool(
                dataset, model_name, graph, model, k, params, seed
            )
        return await self._topk_selection(
            dataset, model_name, graph, model, algorithm, k, params, seed
        )

    async def _topk_rrpool(
        self, dataset, model_name, graph, model, k, params, seed
    ) -> dict[str, Any]:
        """RIS through a warm pool: sample once, max-cover per query.

        The pool is sampled exactly as ``RIS._select`` would on a fresh
        ``default_rng(seed)``, and ``greedy_max_cover`` is read-only, so
        the answer is byte-identical to the batch path for *every* ``k``
        — without resampling after the first query.
        """
        from ..diffusion.rrpool import FlatRRPool, greedy_max_cover

        num_rr_sets = int(params.get("num_rr_sets", 10_000))
        rr_workers = params.get("rr_workers")
        key = artifact_key(
            "rrpool", dataset, model_name,
            num_rr_sets=num_rr_sets, rr_workers=rr_workers, seed=seed,
        )

        def build() -> FlatRRPool:
            pool = FlatRRPool(graph.n)
            pool.extend(
                graph, model.dynamics, num_rr_sets,
                np.random.default_rng(seed), workers=rr_workers,
            )
            return pool

        entry, warm = await self._artifact(key, "rrpool", build)
        if warm:
            self.telemetry.count("serving.topk_warm")
        pad = graph.out_degree()
        seeds, coverage = await self._run_engine(
            "serving.max_cover",
            lambda: greedy_max_cover(entry.payload, k, pad_priority=pad),
        )
        return {
            "seeds": [int(s) for s in seeds],
            "k": k,
            "warm": warm,
            "algorithm": "RIS",
            "coverage_fraction": float(coverage),
            "artifact": entry.key,
        }

    async def _topk_selection(
        self, dataset, model_name, graph, model, algorithm, k, params, seed
    ) -> dict[str, Any]:
        """Any technique through its cached selection result.

        Seed-list prefixes are meaningful for every technique in the
        registry (see ``SeedSelectionResult``), so one cached run at
        budget ``k`` serves every smaller budget warm; a larger budget
        rebuilds and replaces the entry.
        """
        from .. import algorithms

        key = artifact_key(
            "selection", dataset, model_name,
            algorithm=algorithm, seed=seed, **params,
        )
        entry = self.cache.get(key)
        warm = entry is not None and entry.payload.k >= k
        if warm:
            self.telemetry.count("serving.topk_warm")
            result = entry.payload
        else:
            def build(budget: int):
                def run():
                    algo = algorithms.make(algorithm, **params)
                    return algo.select(
                        graph, budget, model, rng=np.random.default_rng(seed)
                    )

                async def construct():
                    started = time.perf_counter()
                    selected = await self._run_engine("serving.select", run)
                    self.cache.put(
                        Artifact.wrap(
                            key, "selection", selected,
                            time.perf_counter() - started,
                        )
                    )
                    return selected

                return construct

            result = await self._single_flight(key, build(k))
            if result.k < k:
                # A concurrent smaller-budget request won the flight;
                # rebuild at our budget (prefixes only go downward).
                result = await build(k)()
        return {
            "seeds": [int(s) for s in result.seeds[:k]],
            "k": k,
            "warm": warm,
            "algorithm": algorithm,
            "artifact": key,
        }

    async def _op_sigma(self, request: dict) -> dict[str, Any]:
        seeds = self._seed_list(request, "seeds")
        entry, warm, akey = await self._oracle_artifact(request)
        value, batched = await self._coalesced_sigma(akey, entry, seeds)
        return {
            "sigma": float(value),
            "warm": warm,
            "batched": batched,
            "artifact": akey,
        }

    async def _op_gain(self, request: dict) -> dict[str, Any]:
        node = int(self._field(request, "node"))
        seeds = self._seed_list(request, "seeds")
        entry, warm, akey = await self._oracle_artifact(request)
        oracle = entry.payload
        async with self._lock(akey):
            value = await self._run_engine(
                "serving.gain_eval", lambda: oracle.gain(node, extra=seeds)
            )
        return {
            "gain": float(value),
            "node": node,
            "warm": warm,
            "artifact": akey,
        }

    # -- artifact plumbing ----------------------------------------------

    async def _oracle_artifact(self, request: dict):
        dataset = self._field(request, "dataset")
        model_name = self._field(request, "model")
        backend = str(request.get("oracle", self.config.default_oracle))
        worlds = int(request.get("worlds", self.config.default_worlds))
        seed = int(request.get("seed", 0))
        if backend not in SERVABLE_ORACLES:
            raise ServingRequestError(
                f"oracle {backend!r} is not servable (repeated queries must "
                f"be deterministic); options: {', '.join(SERVABLE_ORACLES)}"
            )
        graph, model = self.catalog.weighted(dataset, model_name)
        key = artifact_key(
            "oracle", dataset, model_name,
            backend=backend, worlds=worlds, seed=seed,
        )

        def build():
            from ..diffusion.oracle import make_oracle

            return make_oracle(
                backend, graph, model, np.random.default_rng(seed),
                mc_simulations=worlds,
            )

        entry, warm = await self._artifact(key, "oracle", build)
        return entry, warm, key

    async def _artifact(
        self, key: str, kind: str, build: Callable[[], Any]
    ) -> tuple[Artifact, bool]:
        """Cache lookup with single-flighted construction on miss."""
        entry = self.cache.get(key)
        if entry is not None:
            return entry, True

        async def construct() -> Artifact:
            started = time.perf_counter()
            payload = await self._run_engine("serving.build", build)
            artifact = Artifact.wrap(
                key, kind, payload, time.perf_counter() - started
            )
            self.cache.put(artifact)
            self.telemetry.count("serving.artifact_built_bytes", artifact.nbytes)
            return artifact

        return await self._single_flight(key, construct), False

    async def _single_flight(
        self, key: str, factory: Callable[[], Awaitable]
    ):
        """Share one in-flight construction among concurrent requesters."""
        pending = self._builds.get(key)
        if pending is None:
            pending = asyncio.ensure_future(factory())
            self._builds[key] = pending
            pending.add_done_callback(lambda __: self._builds.pop(key, None))
        else:
            self.telemetry.count("serving.build_coalesced")
        return await asyncio.shield(pending)

    async def _coalesced_sigma(
        self, akey: str, entry: Artifact, seeds: list[int]
    ) -> tuple[float, int]:
        """Join (or lead) the coalescing window for one oracle's σ queries.

        The first request for an artifact opens a batch and sleeps one
        window; every request arriving meanwhile joins it.  The leader
        then answers the whole batch with **one** ``evaluate_many`` —
        for the snapshot family, one stacked multi-world BFS.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        batch = self._batches.get(akey)
        if batch is not None:
            batch.items.append((seeds, future))
            value = await future
            return value, len(batch.items)
        batch = _SigmaBatch()
        batch.items.append((seeds, future))
        self._batches[akey] = batch
        try:
            await asyncio.sleep(self.config.coalesce_ms / 1000.0)
        finally:
            self._batches.pop(akey, None)
        sets = [s for s, __ in batch.items]
        self.telemetry.count("serving.coalesced_batches")
        self.telemetry.count("serving.coalesced_requests", len(sets))
        oracle = entry.payload
        try:
            async with self._lock(akey):
                values = await self._run_engine(
                    "serving.sigma_eval", lambda: oracle.evaluate_many(sets)
                )
        except Exception as exc:
            for __, fut in batch.items:
                if not fut.done():
                    fut.set_exception(exc)
            return await future, len(sets)  # re-raises for the leader too
        for (__, fut), value in zip(batch.items, values):
            if not fut.done():
                fut.set_result(value)
        return await future, len(sets)

    def _lock(self, key: str) -> asyncio.Lock:
        """Per-artifact lock: one evaluation at a time on any one oracle."""
        lock = self._locks.get(key)
        if lock is None:
            lock = self._locks[key] = asyncio.Lock()
        return lock

    # -- execution + telemetry ------------------------------------------

    async def _run_engine(self, label: str | None, fn: Callable[[], Any]):
        """Run blocking engine work on the executor, fold telemetry back.

        With a single worker the task runs under its own collecting
        handle; its spans land as children of ``label`` in the server's
        tree, so ``repro trace`` shows engine phases under each serving
        phase.
        """
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        if self._engine_telemetry:
            def call():
                handle = Telemetry()
                with activate(handle):
                    value = fn()
                return value, handle.snapshot()
        else:
            def call():
                return fn(), None

        value, snapshot = await loop.run_in_executor(self._executor, call)
        if label is not None:
            self._absorb_span(
                label, time.perf_counter() - started, snapshot
            )
        return value

    def _absorb_span(
        self, label: str, elapsed: float, snapshot: dict | None = None
    ) -> None:
        """Merge one timed phase (plus engine sub-spans) into the handle."""
        node = new_node()
        node["elapsed"] = float(elapsed)
        node["calls"] = 1
        if snapshot:
            node["children"] = snapshot.get("spans") or {}
        self.telemetry.absorb(
            {
                "spans": {label: node},
                "counters": (snapshot or {}).get("counters") or {},
            }
        )

    # -- request parsing -------------------------------------------------

    @staticmethod
    def _field(request: dict, name: str):
        try:
            return request[name]
        except KeyError:
            raise ServingRequestError(f"missing field {name!r}") from None

    @classmethod
    def _seed_list(cls, request: dict, name: str) -> list[int]:
        raw = cls._field(request, name)
        if not isinstance(raw, (list, tuple)):
            raise ServingRequestError(f"{name!r} must be a list of node ids")
        return [int(v) for v in raw]


# ----------------------------------------------------------------------
# Entry points

def run_server(
    config: ServingConfig | None = None,
    announce: Callable[[str], None] | None = None,
) -> int:
    """Blocking entry point used by ``repro serve``."""
    async def main() -> None:
        server = InfluenceServer(config)
        await server.start()
        if announce is not None:
            announce(
                f"serving {', '.join(server.catalog.names())} on "
                f"{server.host}:{server.port} "
                f"(cache {server.config.cache_bytes or 'unbounded'} bytes, "
                f"{server.config.workers} worker(s))"
            )
        try:
            await server.wait_stopped()
        finally:
            await server.shutdown()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0


class ServerHandle:
    """A server running on its own thread/event loop (tests, benchmarks)."""

    def __init__(
        self,
        server: InfluenceServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    def client(self, **kwargs):
        from .client import ServingClient

        return ServingClient(self.host, self.port, **kwargs)

    def stop(self, timeout: float = 30.0) -> None:
        """Request shutdown and join the serve thread (idempotent)."""
        if self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self.server.request_stop)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_in_thread(
    config: ServingConfig | None = None, timeout: float = 60.0
) -> ServerHandle:
    """Start a server on a daemon thread; returns once it is listening."""
    holder: dict[str, Any] = {}
    ready = threading.Event()

    def runner() -> None:
        async def main() -> None:
            server = InfluenceServer(config)
            try:
                await server.start()
            except Exception as exc:
                holder["error"] = exc
                ready.set()
                return
            holder["server"] = server
            holder["loop"] = asyncio.get_running_loop()
            ready.set()
            await server.wait_stopped()

        try:
            asyncio.run(main())
        except Exception as exc:  # pragma: no cover - crash surface
            holder.setdefault("error", exc)
            ready.set()

    thread = threading.Thread(target=runner, name="repro-serving", daemon=True)
    thread.start()
    if not ready.wait(timeout):
        raise TimeoutError("serving thread did not come up")
    if "error" in holder:
        raise holder["error"]
    return ServerHandle(holder["server"], holder["loop"], thread)

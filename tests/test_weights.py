"""Unit tests for the Sec. 2.1 edge-weight schemes."""

import numpy as np
import pytest

from repro.graph import weights
from repro.graph.digraph import DiGraph


@pytest.fixture
def triangle():
    return DiGraph.from_edges(3, [(0, 1), (1, 2), (2, 0), (0, 2)])


class TestConstant:
    def test_all_edges_get_p(self, triangle):
        g = weights.constant(triangle, 0.07)
        assert np.allclose(g.out_w, 0.07)

    def test_default_not_applied_here(self, triangle):
        g = weights.constant(triangle, 0.1)
        assert g.weight(0, 1) == 0.1

    def test_invalid_p_raises(self, triangle):
        with pytest.raises(ValueError):
            weights.constant(triangle, 1.5)
        with pytest.raises(ValueError):
            weights.constant(triangle, -0.1)


class TestWeightedCascade:
    def test_weight_is_inverse_in_degree(self, triangle):
        g = weights.weighted_cascade(triangle)
        # node 2 has in-edges from 1 and 0 -> 1/2 each
        assert g.weight(1, 2) == pytest.approx(0.5)
        assert g.weight(0, 2) == pytest.approx(0.5)
        # node 1 has a single in-edge -> weight 1
        assert g.weight(0, 1) == pytest.approx(1.0)

    def test_incoming_sums_are_one(self, triangle):
        g = weights.weighted_cascade(triangle)
        sums = weights.incoming_weight_sums(g)
        for v in range(3):
            if g.in_degree(v) > 0:
                assert sums[v] == pytest.approx(1.0)

    def test_high_degree_nodes_harder_to_influence(self):
        g = DiGraph.from_edges(5, [(0, 4), (1, 4), (2, 4), (3, 4), (0, 1)])
        g = weights.weighted_cascade(g)
        assert g.weight(0, 4) == pytest.approx(0.25)
        assert g.weight(0, 1) == pytest.approx(1.0)


class TestTrivalency:
    def test_values_from_set(self, triangle, rng):
        g = weights.trivalency(triangle, rng=rng)
        assert set(np.round(g.out_w, 6)) <= {0.001, 0.01, 0.1}

    def test_custom_values(self, triangle, rng):
        g = weights.trivalency(triangle, values=(0.5,), rng=rng)
        assert np.allclose(g.out_w, 0.5)

    def test_empty_values_raise(self, triangle, rng):
        with pytest.raises(ValueError):
            weights.trivalency(triangle, values=(), rng=rng)

    def test_invalid_values_raise(self, triangle, rng):
        with pytest.raises(ValueError):
            weights.trivalency(triangle, values=(2.0,), rng=rng)

    def test_deterministic_under_seed(self, triangle):
        g1 = weights.trivalency(triangle, rng=np.random.default_rng(9))
        g2 = weights.trivalency(triangle, rng=np.random.default_rng(9))
        assert np.array_equal(g1.out_w, g2.out_w)


class TestLTUniform:
    def test_same_formula_as_wc(self, triangle):
        wc = weights.weighted_cascade(triangle)
        lt = weights.lt_uniform(triangle)
        assert np.allclose(wc.out_w, lt.out_w)


class TestLTRandom:
    def test_incoming_sums_normalized(self, rng):
        g = DiGraph.from_edges(
            6, [(0, 3), (1, 3), (2, 3), (0, 4), (1, 4), (5, 0)]
        )
        g = weights.lt_random(g, rng=rng)
        sums = weights.incoming_weight_sums(g)
        for v in range(6):
            if g.in_degree(v) > 0:
                assert sums[v] == pytest.approx(1.0)

    def test_weights_positive(self, triangle, rng):
        g = weights.lt_random(triangle, rng=rng)
        assert (g.out_w > 0).all()

    def test_different_seeds_differ(self, triangle):
        g1 = weights.lt_random(triangle, rng=np.random.default_rng(1))
        g2 = weights.lt_random(triangle, rng=np.random.default_rng(2))
        assert not np.allclose(g1.out_w, g2.out_w)


class TestIncomingSums:
    def test_empty_graph(self):
        g = DiGraph.from_edges(3, [])
        assert weights.incoming_weight_sums(g).tolist() == [0.0, 0.0, 0.0]

    def test_matches_manual_sum(self):
        g = DiGraph.from_edges(3, [(0, 2), (1, 2)], weights=[0.3, 0.4])
        sums = weights.incoming_weight_sums(g)
        assert sums[2] == pytest.approx(0.7)
        assert sums[0] == 0.0

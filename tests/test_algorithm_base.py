"""Tests for the IMAlgorithm interface contract and budget plumbing."""

import numpy as np
import pytest

from repro.algorithms.base import BudgetExceeded, IMAlgorithm
from repro.algorithms.heuristics import Degree
from repro.diffusion.models import IC, LT, Dynamics
from repro.framework.metrics import ResourceBudget
from repro.graph.digraph import DiGraph


@pytest.fixture
def small_graph():
    return IC.weighted(DiGraph.from_edges(5, [(0, 1), (0, 2), (1, 3), (3, 4)]))


class _BadCount(IMAlgorithm):
    name = "bad-count"
    supported = (Dynamics.IC,)

    def _select(self, graph, k, model, rng, budget):
        return list(range(k + 1)), {}


class _Duplicates(IMAlgorithm):
    name = "dupes"
    supported = (Dynamics.IC,)

    def _select(self, graph, k, model, rng, budget):
        return [0] * k, {}


class TestContract:
    def test_result_fields(self, small_graph, rng):
        res = Degree().select(small_graph, 2, IC, rng=rng)
        assert res.algorithm == "Degree"
        assert res.model == "IC"
        assert res.k == 2
        assert res.elapsed_seconds >= 0.0
        assert all(isinstance(s, int) for s in res.seeds)

    def test_negative_k_rejected(self, small_graph, rng):
        with pytest.raises(ValueError):
            Degree().select(small_graph, -1, IC, rng=rng)

    def test_k_larger_than_n_rejected(self, small_graph, rng):
        with pytest.raises(ValueError):
            Degree().select(small_graph, 10, IC, rng=rng)

    def test_k_zero_allowed(self, small_graph, rng):
        res = Degree().select(small_graph, 0, IC, rng=rng)
        assert res.seeds == []

    def test_unsupported_model_rejected(self, small_graph, rng):
        from repro.algorithms.irie import IRIE

        with pytest.raises(ValueError):
            IRIE().select(small_graph, 1, LT, rng=rng)

    def test_wrong_seed_count_caught(self, small_graph, rng):
        with pytest.raises(AssertionError):
            _BadCount().select(small_graph, 2, IC, rng=rng)

    def test_duplicate_seeds_caught(self, small_graph, rng):
        with pytest.raises(AssertionError):
            _Duplicates().select(small_graph, 2, IC, rng=rng)

    def test_supports_accepts_model_or_dynamics(self):
        algo = Degree()
        assert algo.supports(IC)
        assert algo.supports(Dynamics.LT)


class TestBudget:
    def test_time_budget_raises_dnf(self):
        budget = ResourceBudget(time_limit_seconds=0.0)
        budget.start()
        with pytest.raises(BudgetExceeded) as err:
            budget.check()
        assert err.value.status == "DNF"

    def test_unlimited_budget_never_raises(self):
        budget = ResourceBudget()
        budget.start()
        budget.check()

    def test_elapsed_before_start(self):
        assert ResourceBudget().elapsed() == 0.0

    def test_tick_with_none_is_noop(self):
        IMAlgorithm._tick(None)

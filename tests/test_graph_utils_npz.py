"""Tests for graph utilities and npz serialization."""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.io import load_npz, save_npz
from repro.graph.utils import (
    degree_summary,
    induced_subgraph,
    largest_component,
    sample_nodes_subgraph,
    weakly_connected_components,
)


@pytest.fixture
def two_islands():
    return DiGraph.from_edges(
        6, [(0, 1), (1, 2), (2, 0), (3, 4)], weights=[0.1, 0.2, 0.3, 0.4]
    )


class TestComponents:
    def test_weak_components(self, two_islands):
        comp = weakly_connected_components(two_islands)
        assert comp[0] == comp[1] == comp[2]
        assert comp[3] == comp[4]
        assert comp[0] != comp[3]
        assert comp[5] not in (comp[0], comp[3])

    def test_direction_ignored(self):
        g = DiGraph.from_edges(2, [(1, 0)])
        comp = weakly_connected_components(g)
        assert comp[0] == comp[1]

    def test_largest_component(self, two_islands):
        largest = largest_component(two_islands)
        assert largest.n == 3
        assert largest.m == 3

    def test_largest_component_empty(self):
        g = DiGraph.from_edges(0, [])
        assert largest_component(g).n == 0


class TestDegreeSummary:
    def test_regular_graph_zero_gini(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        summary = degree_summary(g)
        assert summary.gini_out == pytest.approx(0.0)
        assert summary.mean_out == 1.0

    def test_hub_graph_high_gini(self):
        g = DiGraph.from_edges(10, [(0, i) for i in range(1, 10)])
        summary = degree_summary(g)
        assert summary.gini_out > 0.8
        assert summary.max_out == 9
        assert summary.median_out == 0.0

    def test_empty_graph(self):
        summary = degree_summary(DiGraph.from_edges(0, []))
        assert summary.mean_out == 0.0


class TestInducedSubgraph:
    def test_keeps_internal_edges(self, two_islands):
        sub = induced_subgraph(two_islands, np.array([0, 1, 2]))
        assert sub.n == 3
        assert sub.m == 3
        assert sub.weight(0, 1) == pytest.approx(0.1)

    def test_drops_boundary_edges(self, two_islands):
        sub = induced_subgraph(two_islands, np.array([2, 3]))
        assert sub.n == 2
        assert sub.m == 0

    def test_remapping_order(self, two_islands):
        sub = induced_subgraph(two_islands, np.array([3, 4]))
        # 3 -> id 0, 4 -> id 1; edge 3->4 becomes 0->1.
        assert sub.has_edge(0, 1)

    def test_duplicate_nodes_rejected(self, two_islands):
        with pytest.raises(ValueError):
            induced_subgraph(two_islands, np.array([0, 0]))

    def test_sampled_subgraph_size(self, two_islands, rng):
        sub = sample_nodes_subgraph(two_islands, 4, rng)
        assert sub.n == 4

    def test_sample_size_validated(self, two_islands, rng):
        with pytest.raises(ValueError):
            sample_nodes_subgraph(two_islands, 99, rng)


class TestNpz:
    def test_round_trip(self, two_islands, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(two_islands, path)
        loaded = load_npz(path)
        assert loaded == two_islands

    def test_empty_graph_round_trip(self, tmp_path):
        g = DiGraph.from_edges(4, [])
        path = tmp_path / "empty.npz"
        save_npz(g, path)
        loaded = load_npz(path)
        assert loaded.n == 4
        assert loaded.m == 0

    def test_weights_preserved_exactly(self, tmp_path, rng):
        g = DiGraph.from_arrays(
            20, rng.integers(0, 20, 60), rng.integers(0, 20, 60),
            rng.uniform(0, 1, 60),
        )
        path = tmp_path / "w.npz"
        save_npz(g, path)
        assert np.array_equal(load_npz(path).out_w, g.out_w)

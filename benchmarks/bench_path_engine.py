"""Path-proxy engine — structure-build and greedy throughput vs legacy.

Not a paper figure: this bench validates the batched path-proxy layer the
MIA/LDAG family (PMIA / LDAG / IRIE) now runs on.  Two workloads on the
largest catalog dataset:

* **structure build** — every MIIA arborescence (PMIA, WC analogue) and
  every LDAG (LDAG, LT analogue) of the graph, legacy per-root dict/heap
  loop vs the batched kernel vs the kernel fanned over ``path_workers``
  processes;
* **greedy selection** — full k-seed selection per technique,
  ``engine="legacy"`` vs ``engine="flat"``, with the decoupled MC spread
  as the quality column.  The engine is a bit-identical drop-in, so the
  seed sets must agree exactly — the bench asserts it.

Knobs:

* ``REPRO_BENCH_PATH_DATASET``  catalog dataset (default ``livejournal``)
* ``REPRO_BENCH_PATH_K``        seeds per selection (default 10)
* ``REPRO_BENCH_PATH_WORKERS``  worker column fan-out (default 2)

The >= 5x structure-build speedup is asserted only at full scale (the
default livejournal dataset); smoke runs on smaller datasets exercise
the plumbing without the floor.
"""

import os
import time

import numpy as np

from repro.algorithms.irie import IRIE
from repro.algorithms.ldag import LDAG, build_ldag
from repro.algorithms.pmia import PMIA, build_miia
from repro.datasets import catalog
from repro.diffusion.models import WC, LT
from repro.diffusion.paths import build_dag_store, build_tree_store

from _common import BENCH_PATH_WORKERS, emit, evaluate_spread, once

DATASET = os.environ.get("REPRO_BENCH_PATH_DATASET", "livejournal")
K = int(os.environ.get("REPRO_BENCH_PATH_K", "10") or "10")
WORKERS = BENCH_PATH_WORKERS if BENCH_PATH_WORKERS > 1 else 2
THRESHOLD = 1.0 / 320.0
SPEEDUP_FLOOR = 5.0
FULL_SCALE_DATASET = "livejournal"


def _build_rows(graph_wc, graph_lt):
    rows = []
    for label, graph, legacy_build, store_build in (
        ("PMIA trees", graph_wc, build_miia, build_tree_store),
        ("LDAG dags", graph_lt, build_ldag, build_dag_store),
    ):
        start = time.perf_counter()
        for v in range(graph.n):
            legacy_build(graph, v, THRESHOLD)
        t_legacy = time.perf_counter() - start
        start = time.perf_counter()
        store_build(graph, THRESHOLD)
        t_flat = time.perf_counter() - start
        start = time.perf_counter()
        store_build(graph, THRESHOLD, workers=WORKERS)
        t_fanned = time.perf_counter() - start
        rows.append((label, graph.n, t_legacy, t_flat, t_fanned))
    return rows


def _greedy_rows(graph_wc, graph_lt):
    rows = []
    for cls, model, graph in ((PMIA, WC, graph_wc), (LDAG, LT, graph_lt),
                              (IRIE, WC, graph_wc)):
        start = time.perf_counter()
        legacy = cls(engine="legacy").select(
            graph, K, model, rng=np.random.default_rng(0)
        )
        t_legacy = time.perf_counter() - start
        start = time.perf_counter()
        flat = cls(engine="flat").select(
            graph, K, model, rng=np.random.default_rng(0)
        )
        t_flat = time.perf_counter() - start
        assert flat.seeds == legacy.seeds, (
            f"{cls.name}: flat engine diverged from legacy seeds"
        )
        quality = evaluate_spread(graph, flat.seeds, model).mean
        rows.append((cls.name, model.name, t_legacy, t_flat, quality))
    return rows


def _run():
    base = catalog.load(DATASET)
    graph_wc = WC.weighted(base, np.random.default_rng(0))
    graph_lt = LT.weighted(base, np.random.default_rng(0))
    lines = [
        f"path-proxy engine on {DATASET} (n={base.n}, m={base.m}), "
        f"threshold 1/320, k={K}, worker column = {WORKERS} processes",
        "",
        "structure build (all roots):",
        f"{'structures':<12} {'count':>8} {'legacy':>9} {'engine':>9} "
        f"{'speedup':>8} {'+workers':>9}",
    ]
    min_speedup = float("inf")
    for label, count, t_legacy, t_flat, t_fanned in _build_rows(graph_wc, graph_lt):
        speedup = t_legacy / t_flat if t_flat > 0 else float("inf")
        min_speedup = min(min_speedup, speedup)
        lines.append(
            f"{label:<12} {count:>8,} {t_legacy:>8.2f}s {t_flat:>8.2f}s "
            f"x{speedup:>7.2f} {t_fanned:>8.2f}s"
        )
    lines += [
        "",
        f"greedy selection (k={K}, identical seed sets asserted):",
        f"{'technique':<10} {'model':>6} {'legacy':>9} {'engine':>9} "
        f"{'speedup':>8} {'MC spread':>10}",
    ]
    for name, model_name, t_legacy, t_flat, quality in _greedy_rows(
        graph_wc, graph_lt
    ):
        speedup = t_legacy / t_flat if t_flat > 0 else float("inf")
        lines.append(
            f"{name:<10} {model_name:>6} {t_legacy:>8.2f}s {t_flat:>8.2f}s "
            f"x{speedup:>7.2f} {quality:>10.1f}"
        )
    return lines, min_speedup


def test_path_engine(benchmark):
    lines, min_build_speedup = once(benchmark, _run)
    emit("path_engine", "\n".join(lines))
    if DATASET == FULL_SCALE_DATASET:
        assert min_build_speedup >= SPEEDUP_FLOOR, (
            f"structure-build speedup only x{min_build_speedup:.2f} over the "
            f"legacy per-root loops (floor x{SPEEDUP_FLOOR})"
        )

"""Figs. 6, 7 and 8 — spread, running time and memory vs number of seeds.

One sweep over (dataset x model x algorithm x k) drives Figs. 6 and 7,
exactly like the paper's main evaluation: every technique selects seeds
under a common time budget, then the decoupled MC estimate scores the
seed set.  Fig. 8 runs as a second, smaller pass with tracemalloc enabled
(tracing roughly doubles Python's runtime, so mixing it into the timing
sweep would distort Fig. 7).

Workload: the four small-dataset analogues (nethept, hepph, dblp,
youtube), the three standard models, k in {10, 25, 50}.  Algorithm
rosters per model mirror the paper's panels, including its scalability
concessions: CELF/CELF++ run only on the nethept analogue ("CELF and
CELF++ do not scale beyond HepPh"); SIMPATH gets the same budget as
everyone else and earns its DNFs honestly.  A run that violates the
budget is reported as DNF/CRASHED and larger k values are skipped (cost
grows with k).
"""

import numpy as np

from repro.algorithms import registry
from repro.diffusion.models import IC, LT, WC
from repro.framework.metrics import RunRecord, run_with_budget
from repro.framework.results import render_series

from _common import emit, evaluate_spread, once, scaled_params, weighted_dataset

K_GRID = (10, 25, 50)
DATASETS = ("nethept", "hepph", "dblp", "youtube")
TIME_LIMIT = 15.0
MEMORY_LIMIT_MB = 300.0
MEMORY_K = 50

IC_ROSTER = (
    "CELF", "CELF++", "TIM+", "IMM", "PMC", "StaticGreedy",
    "IRIE", "EaSyIM", "IMRank1", "IMRank2",
)
LT_ROSTER = ("CELF", "CELF++", "LDAG", "SIMPATH", "TIM+", "IMM", "EaSyIM")
NETHEPT_ONLY = {"CELF", "CELF++"}

#: (dataset, model, algorithm, k) -> RunRecord; shared by figs 6 and 7.
SWEEP: dict[tuple[str, str, str, int], RunRecord] = {}
#: (dataset, model, algorithm) -> RunRecord with memory, for fig 8.
MEMORY_SWEEP: dict[tuple[str, str, str], RunRecord] = {}


def _roster(model):
    return LT_ROSTER if model is LT else IC_ROSTER


def _cells():
    for dataset in DATASETS:
        for model in (IC, WC, LT):
            for name in _roster(model):
                if name in NETHEPT_ONLY and dataset != "nethept":
                    continue
                yield dataset, model, name


def _params(name, model):
    params = scaled_params(name, model)
    params.pop("mc_simulations", None)
    if name in ("CELF", "CELF++"):
        params["mc_simulations"] = 10
    if name in ("PMC", "StaticGreedy"):
        params["num_snapshots"] = 25
    return params


def _run_sweep():
    for dataset, model, name in _cells():
        graph = weighted_dataset(dataset, model)
        params = _params(name, model)
        last_status = "OK"
        for k in K_GRID:
            key = (dataset, model.name, name, k)
            if last_status != "OK":
                SWEEP[key] = RunRecord(name, model.name, k, last_status)
                continue
            record, __ = run_with_budget(
                registry.make(name, **params),
                graph,
                k,
                model,
                rng=np.random.default_rng(k),
                time_limit_seconds=TIME_LIMIT,
                track_memory=False,
            )
            if record.ok:
                est = evaluate_spread(graph, record.seeds, model)
                record.spread = est.mean
                record.spread_std = est.std
            SWEEP[key] = record
            last_status = record.status
    return SWEEP


def _figure(title, fmt):
    blocks = []
    for dataset in DATASETS:
        for model in (IC, WC, LT):
            series = {}
            for name in _roster(model):
                if name in NETHEPT_ONLY and dataset != "nethept":
                    continue
                values = []
                for k in K_GRID:
                    record = SWEEP[(dataset, model.name, name, k)]
                    values.append(fmt(record) if record.ok else record.status)
                series[name] = values
            blocks.append(
                render_series(
                    "k", list(K_GRID), series,
                    title=f"{title} — {dataset} ({model.name})",
                )
            )
    return "\n\n".join(blocks)


def test_fig6_quality(benchmark):
    once(benchmark, _run_sweep)
    text = _figure("Fig 6: spread vs #seeds", lambda r: round(r.spread, 1))
    emit("fig06_quality", text)

    ok = [r for r in SWEEP.values() if r.ok]
    assert ok, "at least some cells must finish"
    # Spread grows with k for every technique that finished all ks.
    for dataset, model, name in _cells():
        records = [SWEEP[(dataset, model.name, name, k)] for k in K_GRID]
        if all(r.ok for r in records):
            assert records[-1].spread >= records[0].spread * 0.95, (
                dataset, model.name, name,
            )


def test_fig7_running_time(benchmark):
    def render():
        return _figure("Fig 7: running time (s) vs #seeds",
                       lambda r: round(r.elapsed_seconds, 3))

    text = once(benchmark, render)
    emit("fig07_runtime", text)

    # The paper's headline ordering wherever both finish: sampling (IMM)
    # beats explicit simulation (CELF) by a wide margin.
    for model in (IC, WC):
        celf = SWEEP[("nethept", model.name, "CELF", 25)]
        imm = SWEEP[("nethept", model.name, "IMM", 25)]
        if celf.ok and imm.ok:
            assert imm.elapsed_seconds < celf.elapsed_seconds
    # SIMPATH must not beat LDAG under LT-uniform on the larger analogues
    # (myth M5) — either it DNFs or it is slower.
    for dataset in ("dblp", "youtube"):
        ldag = SWEEP[(dataset, "LT", "LDAG", 25)]
        simpath = SWEEP[(dataset, "LT", "SIMPATH", 25)]
        if ldag.ok:
            assert (not simpath.ok) or (
                simpath.elapsed_seconds >= 0.5 * ldag.elapsed_seconds
            )


def test_fig8_memory(benchmark):
    def run_memory_pass():
        for dataset, model, name in _cells():
            graph = weighted_dataset(dataset, model)
            record, __ = run_with_budget(
                registry.make(name, **_params(name, model)),
                graph,
                MEMORY_K,
                model,
                rng=np.random.default_rng(MEMORY_K),
                time_limit_seconds=2 * TIME_LIMIT,  # tracing ~halves speed
                memory_limit_mb=MEMORY_LIMIT_MB,
                track_memory=True,
            )
            MEMORY_SWEEP[(dataset, model.name, name)] = record
        return MEMORY_SWEEP

    once(benchmark, run_memory_pass)
    blocks = []
    for dataset in DATASETS:
        for model in (IC, WC, LT):
            series = {}
            for name in _roster(model):
                key = (dataset, model.name, name)
                if key not in MEMORY_SWEEP:
                    continue
                r = MEMORY_SWEEP[key]
                # RR-sketch techniques also report their pool's flat-CSR
                # footprint; the real resident cost is whichever is larger
                # (tracemalloc can miss a pool freed before the peak).
                footprint = max(r.peak_memory_mb or 0.0, r.rr_pool_mb or 0.0)
                series[name] = [round(footprint, 2) if r.ok else r.status]
            blocks.append(render_series(
                "k", [MEMORY_K], series,
                title=f"Fig 8: peak traced memory (MB) — {dataset} ({model.name})",
            ))
    emit("fig08_memory", "\n\n".join(blocks))

    # EaSyIM is the most memory-frugal technique wherever it finished —
    # within a whisker (numpy scratch arrays) of the minimum.
    for dataset in DATASETS:
        for model in (IC, WC, LT):
            finished = {
                name: MEMORY_SWEEP[(dataset, model.name, name)].peak_memory_mb
                for name in _roster(model)
                if (dataset, model.name, name) in MEMORY_SWEEP
                and MEMORY_SWEEP[(dataset, model.name, name)].ok
            }
            if "EaSyIM" in finished and len(finished) > 1:
                floor = min(finished.values())
                assert finished["EaSyIM"] <= max(2.0 * floor, floor + 1.0), (
                    dataset, model.name, finished,
                )

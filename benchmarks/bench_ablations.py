"""Ablation benches for the design choices the paper's analysis singles out.

Not figures from the paper, but the mechanisms its myths rest on, each
isolated:

* **CELF laziness** (Sec. 4.1) — lookups of lazy CELF vs exhaustive
  GREEDY at identical MC counts.
* **PMC's SCC contraction** (Sec. 4.3) — PMC vs StaticGreedy on an
  epidemic constant-weight IC workload, where snapshots collapse into a
  giant component.
* **SIMPATH's pruning threshold** (Sec. 4.4) — runtime and quality as η
  varies; the path-enumeration explosion M5 hinges on.
* **IMM's pool reuse** (Sec. 4.2) — RR sets drawn by IMM (martingale,
  one reused pool) vs TIM+ (fresh pools per phase) for the same ε.
"""

import numpy as np

from repro.algorithms import registry
from repro.diffusion.models import IC, LT, WC
from repro.framework.metrics import run_with_budget
from repro.framework.results import render_series

from _common import RR_SCALE, emit, evaluate_spread, once, weighted_dataset


def test_ablation_celf_laziness(benchmark):
    """Lazy evaluation cuts spread estimations without changing picks."""
    graph = weighted_dataset("nethept", WC)
    k = 5

    def experiment():
        greedy = registry.make("GREEDY", mc_simulations=10).select(
            graph, k, WC, rng=np.random.default_rng(0)
        )
        celf = registry.make("CELF", mc_simulations=10).select(
            graph, k, WC, rng=np.random.default_rng(0)
        )
        return greedy, celf

    greedy, celf = once(benchmark, experiment)
    g_lookups = sum(greedy.extras["node_lookups_per_iteration"])
    c_lookups = sum(celf.extras["node_lookups_per_iteration"])
    emit(
        "ablation_celf_laziness",
        f"GREEDY lookups: {g_lookups}\nCELF lookups:   {c_lookups}\n"
        f"saving: {100 * (1 - c_lookups / g_lookups):.1f}%\n"
        f"GREEDY seeds: {greedy.seeds}\nCELF seeds:   {celf.seeds}",
    )
    assert c_lookups < g_lookups
    # Iteration 1 is identical (full scan); savings appear after.
    assert (
        celf.extras["node_lookups_per_iteration"][0]
        == greedy.extras["node_lookups_per_iteration"][0]
    )


def test_ablation_pmc_scc_contraction(benchmark):
    """SCC contraction is what lets PMC survive epidemic IC snapshots."""
    graph = weighted_dataset("hepph", IC)  # dense + W=0.1 => giant SCCs
    k = 10

    def experiment():
        rows = {}
        for name in ("PMC", "StaticGreedy"):
            record, __ = run_with_budget(
                registry.make(name, num_snapshots=25),
                graph, k, IC,
                rng=np.random.default_rng(1),
                time_limit_seconds=30.0,
                track_memory=False,
            )
            rows[name] = record
        return rows

    rows = once(benchmark, experiment)
    lines = [
        f"{name}: {r.status}, {r.elapsed_seconds:.2f}s"
        for name, r in rows.items()
    ]
    emit("ablation_pmc_scc", "\n".join(lines))
    pmc, sg = rows["PMC"], rows["StaticGreedy"]
    assert pmc.ok, "contracted DAGs must make the epidemic workload feasible"
    if sg.ok:
        assert pmc.elapsed_seconds < sg.elapsed_seconds


def test_ablation_simpath_eta(benchmark):
    """Loosening η explodes SIMPATH's path forest; tightening hurts little."""
    graph = weighted_dataset("nethept", LT)
    k = 5

    def experiment():
        etas = (1e-1, 1e-2, 1e-3)
        times, spreads, statuses = [], [], []
        for eta in etas:
            record, __ = run_with_budget(
                registry.make("SIMPATH", eta=eta),
                graph, k, LT,
                rng=np.random.default_rng(2),
                time_limit_seconds=30.0,
                track_memory=False,
            )
            statuses.append(record.status)
            times.append(round(record.elapsed_seconds, 3))
            spreads.append(
                round(evaluate_spread(graph, record.seeds, LT).mean, 1)
                if record.ok else None
            )
        return etas, times, spreads, statuses

    etas, times, spreads, statuses = once(benchmark, experiment)
    emit(
        "ablation_simpath_eta",
        render_series(
            "eta", list(etas),
            {"time (s)": times, "spread": spreads, "status": statuses},
            title="SIMPATH pruning threshold ablation (nethept, LT)",
        ),
    )
    finished = [t for t, s in zip(times, statuses) if s == "OK"]
    assert finished, "the loosest threshold must finish"
    # Cost is monotone in path-forest size (smaller eta => more paths).
    assert finished == sorted(finished)


def test_ablation_imm_pool_reuse(benchmark):
    """IMM reuses one martingale pool; TIM+ resamples — count the sets."""
    graph = weighted_dataset("hepph", WC)
    k = 25

    def experiment():
        # rr_scale 0.05 keeps both pools large enough that the comparison
        # measures pool *reuse*, not small-sample noise.
        tim = registry.make("TIM+", epsilon=0.3, rr_scale=0.05).select(
            graph, k, WC, rng=np.random.default_rng(3)
        )
        imm = registry.make("IMM", epsilon=0.3, rr_scale=0.05).select(
            graph, k, WC, rng=np.random.default_rng(3)
        )
        return tim, imm

    tim, imm = once(benchmark, experiment)
    tim_spread = evaluate_spread(graph, tim.seeds, WC).mean
    imm_spread = evaluate_spread(graph, imm.seeds, WC).mean
    emit(
        "ablation_imm_pool_reuse",
        f"TIM+ final-pool sets: {tim.extras['num_rr_sets']} "
        f"(plus estimation/refinement pools), spread {tim_spread:.1f}\n"
        f"IMM  total sets:      {imm.extras['num_rr_sets']}, "
        f"spread {imm_spread:.1f}",
    )
    # Equal-epsilon quality parity: the paper's premise for comparing them.
    assert imm_spread >= 0.75 * tim_spread

"""Tests for the experiment drivers and the ASCII chart renderer."""

import numpy as np
import pytest

from repro.diffusion.models import WC
from repro.framework.asciiplot import line_chart
from repro.framework.experiments import (
    SweepConfig,
    head_to_head,
    memory_sweep,
    pillar_scores,
    quality_sweep,
)
from repro.graph.digraph import DiGraph


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(0)
    g = DiGraph.from_arrays(
        60, rng.integers(0, 60, 240), rng.integers(0, 60, 240)
    )
    return WC.weighted(g)


ROSTER = {
    "EaSyIM": {"path_length": 2},
    "Degree": {},
}


class TestQualitySweep:
    def test_all_cells_present(self, graph):
        config = SweepConfig(k_grid=(2, 4), mc_simulations=50)
        results = quality_sweep(graph, WC, ROSTER, config)
        assert set(results) == {
            ("EaSyIM", 2), ("EaSyIM", 4), ("Degree", 2), ("Degree", 4)
        }
        assert all(r.ok and r.spread is not None for r in results.values())

    def test_budget_propagates_failures(self, graph):
        config = SweepConfig(
            k_grid=(2, 4), mc_simulations=20, time_limit_seconds=0.001
        )
        results = quality_sweep(
            graph, WC, {"CELF": {"mc_simulations": 500}}, config
        )
        assert results[("CELF", 2)].status == "DNF"
        # The larger k was skipped, not re-run.
        assert results[("CELF", 4)].status == "DNF"
        assert results[("CELF", 4)].elapsed_seconds == 0.0

    def test_no_propagation_when_disabled(self, graph):
        config = SweepConfig(
            k_grid=(2, 4), mc_simulations=20,
            time_limit_seconds=0.001, propagate_failures=False,
        )
        results = quality_sweep(
            graph, WC, {"CELF": {"mc_simulations": 500}}, config
        )
        assert results[("CELF", 4)].elapsed_seconds > 0.0

    def test_deterministic_under_seed(self, graph):
        config = SweepConfig(k_grid=(3,), mc_simulations=30, seed=5)
        a = quality_sweep(graph, WC, ROSTER, config)
        b = quality_sweep(graph, WC, ROSTER, config)
        assert a[("Degree", 3)].seeds == b[("Degree", 3)].seeds
        assert a[("Degree", 3)].spread == b[("Degree", 3)].spread


class TestMemorySweep:
    def test_memory_recorded(self, graph):
        config = SweepConfig(mc_simulations=30)
        results = memory_sweep(graph, WC, ROSTER, 3, config)
        assert all(r.peak_memory_mb is not None for r in results.values())


class TestHeadToHead:
    def test_run_counts(self, graph):
        outcomes = head_to_head(
            graph, WC,
            ("EaSyIM", {"path_length": 2}), ("Degree", {}),
            k=3, runs=4,
        )
        assert len(outcomes["EaSyIM"]) == 4
        assert len(outcomes["Degree"]) == 4

    def test_invalid_runs(self, graph):
        with pytest.raises(ValueError):
            head_to_head(graph, WC, ("Degree", {}), ("Degree", {}), 2, runs=0)


class TestPillarScores:
    def test_scores_shape(self, graph):
        config = SweepConfig(mc_simulations=30)
        scores = pillar_scores(graph, WC, ROSTER, 3, config)
        assert {s.name for s in scores} == set(ROSTER)
        assert all(s.quality > 0 for s in scores)


class TestLineChart:
    def test_contains_markers_and_legend(self):
        chart = line_chart([1, 2], {"alpha": [1.0, 2.0], "beta": [2.0, 1.0]})
        assert "o=alpha" in chart
        assert "x=beta" in chart

    def test_log_scale_annotation(self):
        chart = line_chart([1, 2], {"a": [1, 1000]}, log_y=True)
        assert "(log y)" in chart

    def test_none_points_skipped(self):
        chart = line_chart([1, 2, 3], {"a": [1.0, None, 3.0]})
        assert chart  # renders without error

    def test_all_none_series(self):
        chart = line_chart([1], {"a": [None]}, title="t")
        assert "(no data)" in chart

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], {"a": [1.0]})

    def test_empty_x_raises(self):
        with pytest.raises(ValueError):
            line_chart([], {})

    def test_flat_series_renders(self):
        chart = line_chart([1, 2, 3], {"a": [5.0, 5.0, 5.0]})
        assert "o" in chart

    def test_collision_marker(self):
        chart = line_chart([1], {"a": [1.0], "b": [1.0]})
        assert "*" in chart

"""Spread-oracle engine — CELF σ-evaluation throughput across backends.

Not a paper figure: this bench validates the batched spread-oracle layer
the MC greedy family (GREEDY/CELF/CELF++) now runs on.  It runs the same
CELF workload (k seeds on a power-law WC analogue) against each backend
and measures σ-evaluation throughput:

* ``serial``   — the legacy per-cascade Monte-Carlo loop (baseline),
* ``batched``  — vectorized multi-cascade MC kernels,
* ``snapshot`` — presampled live-edge worlds with covered-mask reuse,
* ``sketch``   — snapshot + bottom-k gain bounds seeding the lazy queue.

Each backend's seeds are re-scored with the decoupled MC estimate so the
throughput numbers come with a quality column (the backends answer the
same query stream; serial/batched differ only in sampling noise, the
world-reuse backends trade per-iteration noise for a fixed world sample).

Knobs:

* ``REPRO_BENCH_SPREAD_SIMS``   simulations / worlds per σ estimate
                                (default 100; CI smoke shrinks it)
* ``REPRO_BENCH_SPREAD_NODES``  graph size (default 500)

The >= 10x throughput speedup (best accelerated backend vs the serial
loop) is asserted only at full scale; at smoke scale constant overheads
dominate and only the plumbing is exercised.
"""

import os
import time

import numpy as np

from repro.algorithms import registry
from repro.diffusion.models import WC
from repro.graph.generators import build, powerlaw_configuration

from _common import emit, evaluate_spread, once

SIMS = int(os.environ.get("REPRO_BENCH_SPREAD_SIMS", "100") or "100")
N_NODES = int(os.environ.get("REPRO_BENCH_SPREAD_NODES", "500") or "500")
K = 10
MC_BATCH = 64
SPEEDUP_FLOOR = 10.0
FULL_SCALE = (100, 500)  # (SIMS, N_NODES) at which the floor is asserted

BACKENDS = [
    ("serial", {"spread_oracle": "serial"}),
    ("batched", {"spread_oracle": "batched", "mc_batch": MC_BATCH}),
    ("snapshot", {"spread_oracle": "snapshot", "num_worlds": SIMS}),
    ("sketch", {"spread_oracle": "sketch", "num_worlds": SIMS}),
]


def _graph():
    rng = np.random.default_rng(7)
    return WC.weighted(build(powerlaw_configuration(N_NODES, 2.3, 6.0, rng)), rng)


def _run():
    graph = _graph()
    lines = [
        f"CELF workload: k={K}, sigma estimated from {SIMS} "
        f"simulations/worlds, graph n={graph.n} m={graph.m} "
        f"(power-law WC analogue)",
        "",
        f"{'backend':<10} {'time':>9} {'sigma evals':>12} {'evals/s':>10} "
        f"{'speedup':>8} {'cache hits':>11} {'MC spread':>10}",
    ]
    base_throughput = None
    best_speedup = 0.0
    for name, params in BACKENDS:
        algo = registry.make("CELF", mc_simulations=SIMS, **params)
        start = time.perf_counter()
        result = algo.select(graph, K, WC, rng=np.random.default_rng(5))
        elapsed = time.perf_counter() - start
        evals = result.extras["sigma_evaluations"]
        throughput = evals / elapsed if elapsed > 0 else float("inf")
        if base_throughput is None:
            base_throughput = throughput
            speedup = 1.0
        else:
            speedup = throughput / base_throughput
            best_speedup = max(best_speedup, speedup)
        quality = evaluate_spread(graph, result.seeds, WC).mean
        lines.append(
            f"{name:<10} {elapsed:8.3f}s {evals:>12,} {throughput:>10,.0f} "
            f"x{speedup:>7.2f} {result.extras['gain_cache_hits']:>11,} "
            f"{quality:>10.1f}"
        )
    return lines, best_speedup


def test_spread_engine(benchmark):
    lines, best_speedup = once(benchmark, _run)
    emit("spread_engine", "\n".join(lines))
    if (SIMS, N_NODES) >= FULL_SCALE:
        assert best_speedup >= SPEEDUP_FLOOR, (
            f"best accelerated backend only x{best_speedup:.2f} over the "
            f"serial per-cascade loop (floor x{SPEEDUP_FLOOR})"
        )

"""Figs. 10a-b and Table 4 — SIMPATH vs LDAG across LT weight schemes (M5).

SIMPATH's own evaluation used the LT "parallel edges" model, where the
consolidated multigraph weights are small and path enumeration stays
cheap.  Under LT-uniform (1/|In(v)| — weight 1.0 on in-degree-1 nodes!)
the pruned path forest explodes and LDAG dominates.  This bench runs both
techniques on:

* the nethept analogue under LT-uniform ("Nethept"),
* the same topology under LT-parallel-edges with random multiplicities
  ("Nethept-P"),
* the dblp analogue under LT-uniform ("DBLP"),

and prints a Table-4-style grid plus Fig-10a/b time-vs-k series.
"""

import numpy as np

from repro.algorithms import registry
from repro.diffusion.models import LT
from repro.framework.metrics import run_with_budget
from repro.framework.results import render_series
from repro.graph.multigraph import MultiDiGraph, consolidate

from _common import emit, evaluate_spread, once, weighted_dataset

K_GRID = (10, 25, 50)
TIME_LIMIT = 25.0


def parallel_edges_variant(name: str, seed: int = 7):
    """The dataset's topology re-weighted by LT parallel edges.

    Each arc gets a random call multiplicity in 1..5, mimicking the
    phone-call multigraphs of the SIMPATH evaluation.
    """
    from repro.datasets import load

    graph = load(name)
    rng = np.random.default_rng(seed)
    mg = MultiDiGraph(graph.n)
    src = graph.edge_src
    for j in range(graph.m):
        mg.add_edge(int(src[j]), int(graph.out_dst[j]), count=int(rng.integers(1, 6)))
    return consolidate(mg)


def _series(graph, label):
    rows = {}
    for name in ("LDAG", "SIMPATH"):
        times = []
        status = "OK"
        for k in K_GRID:
            if status != "OK":
                times.append(status)
                continue
            record, __ = run_with_budget(
                registry.make(name),
                graph,
                k,
                LT,
                rng=np.random.default_rng(k),
                time_limit_seconds=TIME_LIMIT,
                track_memory=False,
            )
            status = record.status
            times.append(round(record.elapsed_seconds, 3) if record.ok else status)
        rows[name] = times
    return render_series(
        "k", list(K_GRID), rows,
        title=f"Fig 10a-b / Table 4: LDAG vs SIMPATH time (s) — {label}",
    ), rows


def test_fig10ab_table4_ldag_vs_simpath(benchmark):
    def experiment():
        outputs = {}
        workloads = [
            ("Nethept (LT-uniform)", weighted_dataset("nethept", LT)),
            ("Nethept-P (LT-parallel)", parallel_edges_variant("nethept")),
            ("DBLP (LT-uniform)", weighted_dataset("dblp", LT)),
        ]
        for label, graph in workloads:
            outputs[label] = _series(graph, label)
        return outputs

    outputs = once(benchmark, experiment)
    emit(
        "fig10ab_table4_simpath_ldag",
        "\n\n".join(text for text, __ in outputs.values()),
    )

    def final_time(rows, name):
        value = rows[name][-1]
        return value if isinstance(value, float) else float("inf")

    # Table 4's verdict: LDAG is at least as fast as SIMPATH at k_max on
    # every workload, and strictly dominant under LT-uniform.
    for label, (__, rows) in outputs.items():
        assert final_time(rows, "LDAG") <= final_time(rows, "SIMPATH") * 1.5, label
    uniform_rows = outputs["DBLP (LT-uniform)"][1]
    assert final_time(uniform_rows, "LDAG") < final_time(uniform_rows, "SIMPATH")


def test_fig10ab_quality_parity(benchmark):
    """Comparable spread (the race is about time) + path-engine speedup.

    The quality column doubles as the parity check for the vectorized
    path-proxy engine: LDAG is run on both engines, the seed sets must be
    identical, and the elapsed times give the engine's speedup on the
    Table-4 workload.
    """

    def experiment():
        import time

        graph = weighted_dataset("nethept", LT)
        spreads = {}
        engine_times = {}
        seeds = {}
        for engine in ("legacy", "flat"):
            start = time.perf_counter()
            res = registry.make("LDAG", engine=engine).select(
                graph, 25, LT, rng=np.random.default_rng(3)
            )
            engine_times[engine] = time.perf_counter() - start
            seeds[engine] = res.seeds
        spreads["LDAG"] = evaluate_spread(graph, seeds["flat"], LT).mean
        res = registry.make("SIMPATH").select(
            graph, 25, LT, rng=np.random.default_rng(3)
        )
        spreads["SIMPATH"] = evaluate_spread(graph, res.seeds, LT).mean
        return spreads, engine_times, seeds

    spreads, engine_times, seeds = once(benchmark, experiment)
    speedup = engine_times["legacy"] / engine_times["flat"]
    emit(
        "fig10ab_quality_parity",
        "\n".join(f"{n}: spread {v:.1f}" for n, v in spreads.items())
        + (
            f"\nLDAG path engine: legacy {engine_times['legacy']:.2f}s, "
            f"flat {engine_times['flat']:.2f}s (x{speedup:.2f}), "
            f"identical seeds: {seeds['flat'] == seeds['legacy']}"
        ),
    )
    assert seeds["flat"] == seeds["legacy"]
    assert abs(spreads["LDAG"] - spreads["SIMPATH"]) < 0.2 * max(
        spreads.values()
    )

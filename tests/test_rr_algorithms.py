"""Tests for the RR-set family: RIS, TIM+ and IMM."""

import numpy as np
import pytest

from repro.algorithms.imm import IMM
from repro.algorithms.ris import RIS, log_comb
from repro.algorithms.tim import TIMPlus
from repro.diffusion.models import IC, LT, WC
from repro.diffusion.simulation import monte_carlo_spread
from repro.graph.digraph import DiGraph


@pytest.fixture
def hub_graph():
    """A dominant hub: 0 reaches 1..9 with high probability."""
    edges = [(0, i) for i in range(1, 10)] + [(10, 11), (12, 13)]
    weights = [0.9] * 9 + [0.9, 0.9]
    return DiGraph.from_edges(14, edges, weights=weights)


class TestLogComb:
    def test_known_values(self):
        assert log_comb(5, 2) == pytest.approx(np.log(10))
        assert log_comb(10, 0) == pytest.approx(0.0)
        assert log_comb(10, 10) == pytest.approx(0.0)

    def test_out_of_range(self):
        assert log_comb(5, 7) == float("-inf")


class TestRIS:
    def test_finds_hub(self, hub_graph, rng):
        res = RIS(num_rr_sets=2000).select(hub_graph, 1, IC, rng=rng)
        assert res.seeds == [0]

    def test_extras_reported(self, hub_graph, rng):
        res = RIS(num_rr_sets=500).select(hub_graph, 2, IC, rng=rng)
        assert res.extras["num_rr_sets"] == 500
        assert res.extras["total_width"] > 0
        assert 0.0 <= res.extras["coverage_fraction"] <= 1.0

    def test_width_budget_stops_early(self, hub_graph, rng):
        res = RIS(num_rr_sets=100000, width_budget=50).select(
            hub_graph, 1, IC, rng=rng
        )
        assert res.extras["num_rr_sets"] < 100000

    def test_supports_lt(self, two_cliques, rng):
        res = RIS(num_rr_sets=500).select(two_cliques, 1, LT, rng=rng)
        assert len(res.seeds) == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RIS(num_rr_sets=0)


class TestTIMPlus:
    def test_finds_hub(self, hub_graph, rng):
        res = TIMPlus(epsilon=0.3, rr_scale=0.05).select(hub_graph, 1, IC, rng=rng)
        assert res.seeds == [0]

    def test_kpt_positive(self, hub_graph, rng):
        res = TIMPlus(epsilon=0.5, rr_scale=0.05).select(hub_graph, 2, IC, rng=rng)
        assert res.extras["kpt"] >= 1.0
        assert res.extras["kpt_plus"] >= res.extras["kpt"]

    def test_smaller_epsilon_more_rr_sets(self, hub_graph):
        tight = TIMPlus(epsilon=0.2, rr_scale=0.02, max_rr_sets=None).select(
            hub_graph, 2, IC, rng=np.random.default_rng(3)
        )
        loose = TIMPlus(epsilon=0.8, rr_scale=0.02, max_rr_sets=None).select(
            hub_graph, 2, IC, rng=np.random.default_rng(3)
        )
        assert tight.extras["theta"] > loose.extras["theta"]

    def test_extrapolated_spread_reported(self, hub_graph, rng):
        res = TIMPlus(epsilon=0.5, rr_scale=0.05).select(hub_graph, 1, IC, rng=rng)
        assert res.extras["extrapolated_spread"] > 0

    def test_k_zero(self, hub_graph, rng):
        res = TIMPlus(epsilon=0.5, rr_scale=0.05).select(hub_graph, 0, IC, rng=rng)
        assert res.seeds == []

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            TIMPlus(epsilon=0.0)

    def test_max_rr_sets_caps(self, hub_graph, rng):
        res = TIMPlus(epsilon=0.1, max_rr_sets=50).select(hub_graph, 2, IC, rng=rng)
        assert res.extras["num_rr_sets"] <= 50


class TestIMM:
    def test_finds_hub(self, hub_graph, rng):
        res = IMM(epsilon=0.3, rr_scale=0.05).select(hub_graph, 1, IC, rng=rng)
        assert res.seeds == [0]

    def test_lower_bound_at_least_one(self, hub_graph, rng):
        res = IMM(epsilon=0.5, rr_scale=0.05).select(hub_graph, 2, IC, rng=rng)
        assert res.extras["lower_bound"] >= 1.0
        assert res.extras["sampling_phases"] >= 1

    def test_smaller_epsilon_more_rr_sets(self, hub_graph):
        tight = IMM(epsilon=0.2, rr_scale=0.02, max_rr_sets=None).select(
            hub_graph, 2, IC, rng=np.random.default_rng(3)
        )
        loose = IMM(epsilon=0.9, rr_scale=0.02, max_rr_sets=None).select(
            hub_graph, 2, IC, rng=np.random.default_rng(3)
        )
        assert tight.extras["num_rr_sets"] > loose.extras["num_rr_sets"]

    def test_supports_both_dynamics(self, two_cliques, rng):
        for model in (IC, LT):
            res = IMM(epsilon=0.5, rr_scale=0.05).select(two_cliques, 1, model, rng=rng)
            assert len(res.seeds) == 1

    def test_quality_close_to_mc_truth(self, hub_graph, rng):
        """IMM's seeds achieve near-best spread at moderate epsilon."""
        res = IMM(epsilon=0.3, rr_scale=0.2).select(hub_graph, 2, IC, rng=rng)
        got = monte_carlo_spread(hub_graph, res.seeds, IC, r=2000, rng=rng).mean
        best = monte_carlo_spread(hub_graph, [0, 10], IC, r=2000, rng=rng).mean
        assert got >= 0.9 * best

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            IMM(epsilon=-0.1)


class TestExtrapolationMyth:
    def test_extrapolated_spread_inflated_vs_mc(self, rng):
        """M4: the self-reported coverage extrapolation over-estimates σ."""
        g = WC.weighted(
            DiGraph.from_arrays(
                60,
                np.random.default_rng(0).integers(0, 60, 300),
                np.random.default_rng(1).integers(0, 60, 300),
            )
        )
        inflations = []
        for seed in range(5):
            res = IMM(epsilon=0.9, rr_scale=0.05).select(
                g, 5, WC, rng=np.random.default_rng(seed)
            )
            mc = monte_carlo_spread(
                g, res.seeds, WC, r=2000, rng=np.random.default_rng(seed + 100)
            )
            inflations.append(res.extras["extrapolated_spread"] - mc.mean)
        assert np.mean(inflations) > 0

"""Table 1 — dataset summary.

Workload: all eight scaled analogues; statistics computed exactly as the
paper reports them (n, m of the underlying network, type, average degree,
90th-percentile effective diameter) with the paper's original numbers
printed alongside for comparison.
"""

from repro.datasets import table1_rows

from _common import emit, once


def test_table1_dataset_summary(benchmark):
    text = once(benchmark, table1_rows)
    emit("table1_datasets", text)
    assert "nethept" in text and "friendster" in text

"""Tests for the structured observability layer.

Three contracts are asserted end-to-end:

* **Zero overhead when off** — with no handle active, instrumented code
  produces byte-identical seed sets and untouched ``Measurement``s.
* **Subprocess transparency** — spans collected inside an isolated child
  come home through the existing record pipe, nested under the
  ``select:<name>`` root, and survive ``save_records``/``load_records``.
* **Counter fidelity** — ``oracle.gain_cache_misses`` equals the M1
  node-lookup totals the greedy family already reports, and the JSONL
  trace's per-phase elapsed covers the recorded wall time.
"""

import json

import numpy as np
import pytest

from repro.algorithms.celf import CELF
from repro.algorithms.heuristics import Degree
from repro.diffusion.models import IC, WC
from repro.framework.isolation import IsolationConfig, execute_cell, isolation_supported
from repro.framework.metrics import run_with_budget
from repro.framework.results import load_records, save_records
from repro.framework.runner import IMFramework
from repro.framework.telemetry import (
    NULL,
    NullTelemetry,
    Telemetry,
    activate,
    current,
    read_trace,
    summarize_trace,
    write_trace,
)
from repro.graph.digraph import DiGraph

needs_isolation = pytest.mark.skipif(
    not isolation_supported(), reason="multiprocessing unavailable"
)


@pytest.fixture
def graph():
    gen = np.random.default_rng(7)
    g = DiGraph.from_arrays(30, gen.integers(0, 30, 120), gen.integers(0, 30, 120))
    return WC.weighted(g)


# ----------------------------------------------------------------------
# Handle unit behaviour


class TestHandle:
    def test_ambient_default_is_null(self):
        assert current() is NULL
        assert isinstance(current(), NullTelemetry)
        assert not current().enabled

    def test_null_is_total_noop(self):
        span = NULL.span("anything")
        with span:
            pass
        assert NULL.snapshot() is None
        assert NULL.count("x", 5) is None

    def test_activate_restores_previous(self):
        tele = Telemetry()
        with activate(tele) as active:
            assert active is tele
            assert current() is tele
            inner = Telemetry()
            with activate(inner):
                assert current() is inner
            assert current() is tele
        assert current() is NULL

    def test_activate_none_forces_null(self):
        with activate(Telemetry()):
            with activate(None):
                assert current() is NULL

    def test_activate_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with activate(Telemetry()):
                raise RuntimeError("boom")
        assert current() is NULL

    def test_spans_nest_and_merge(self):
        tele = Telemetry(label="unit")
        for __ in range(3):
            with tele.span("outer"):
                with tele.span("inner"):
                    pass
        snap = tele.snapshot()
        outer = snap["spans"]["outer"]
        assert outer["calls"] == 3
        inner = outer["children"]["inner"]
        assert inner["calls"] == 3
        assert outer["elapsed"] >= inner["elapsed"] >= 0.0
        assert snap["label"] == "unit"

    def test_counters_accumulate(self):
        tele = Telemetry()
        tele.count("rr_sets")
        tele.count("rr_sets", 9)
        assert tele.snapshot()["counters"] == {"rr_sets": 10}

    def test_snapshot_is_a_deep_copy(self):
        tele = Telemetry()
        with tele.span("a"):
            pass
        snap = tele.snapshot()
        snap["spans"]["a"]["calls"] = 999
        assert tele.snapshot()["spans"]["a"]["calls"] == 1

    def test_snapshot_is_jsonable(self):
        tele = Telemetry(label="x")
        with tele.span("a"), tele.span("b"):
            tele.count("c", 2)
        round_tripped = json.loads(json.dumps(tele.snapshot()))
        assert round_tripped["spans"]["a"]["children"]["b"]["calls"] == 1

    def test_absorb_merges_spans_and_counters(self):
        child = Telemetry(label="child")
        with child.span("select:X"):
            child.count("evals", 4)
        parent = Telemetry(label="parent")
        parent.absorb(child.snapshot())
        parent.absorb(child.snapshot())
        snap = parent.snapshot()
        assert snap["spans"]["select:X"]["calls"] == 2
        assert snap["counters"]["evals"] == 8

    def test_absorb_under_nests(self):
        child = Telemetry()
        with child.span("select:X"):
            pass
        parent = Telemetry()
        parent.absorb(child.snapshot(), under="cell-0")
        spans = parent.snapshot()["spans"]
        assert "select:X" in spans["cell-0"]["children"]

    def test_absorb_none_is_noop(self):
        parent = Telemetry()
        parent.absorb(None)
        assert parent.snapshot()["spans"] == {}


# ----------------------------------------------------------------------
# Zero overhead when off


class TestNoOpPath:
    def test_seeds_byte_identical_with_and_without_telemetry(self, graph):
        baseline, __ = run_with_budget(
            CELF(mc_simulations=5), graph, 3, IC,
            rng=np.random.default_rng(11), track_memory=False,
        )
        traced, __ = run_with_budget(
            CELF(mc_simulations=5), graph, 3, IC,
            rng=np.random.default_rng(11), track_memory=False,
            telemetry=Telemetry(),
        )
        assert traced.seeds == baseline.seeds
        assert traced.extras["node_lookups_per_iteration"] == (
            baseline.extras["node_lookups_per_iteration"]
        )

    def test_off_record_carries_no_telemetry(self, graph):
        record, __ = run_with_budget(
            Degree(), graph, 2, IC,
            rng=np.random.default_rng(0), track_memory=False,
        )
        assert "telemetry" not in record.extras

    def test_measurement_untouched_by_instrumentation(self, graph):
        # The ambient NULL handle must not add tracemalloc'd allocations:
        # two identical runs, one executed while a *different* Telemetry
        # object merely exists, report the same peak.
        record_a, __ = run_with_budget(
            Degree(), graph, 2, IC, rng=np.random.default_rng(0),
        )
        unused = Telemetry()  # noqa: F841 -- existence must not matter
        record_b, __ = run_with_budget(
            Degree(), graph, 2, IC, rng=np.random.default_rng(0),
        )
        assert record_b.seeds == record_a.seeds
        assert record_b.peak_memory_mb == pytest.approx(
            record_a.peak_memory_mb, rel=0.25, abs=0.5
        )

    def test_run_with_budget_inherits_ambient_handle(self, graph):
        # telemetry=None must not suppress a handle the caller activated.
        session = Telemetry()
        with activate(session):
            record, __ = run_with_budget(
                Degree(), graph, 2, IC,
                rng=np.random.default_rng(0), track_memory=False,
            )
        assert "telemetry" not in record.extras  # only explicit handles attach
        assert "select:Degree" in session.snapshot()["spans"]


# ----------------------------------------------------------------------
# Collection through run_with_budget / isolation


class TestCollection:
    def test_snapshot_attached_with_root_span(self, graph):
        tele = Telemetry()
        record, __ = run_with_budget(
            CELF(mc_simulations=5), graph, 3, IC,
            rng=np.random.default_rng(1), track_memory=False, telemetry=tele,
        )
        snap = record.extras["telemetry"]
        root = snap["spans"]["select:CELF"]
        assert root["calls"] == 1
        assert {"celf.build_queue", "celf.lazy_forward"} <= set(root["children"])
        assert snap["counters"]["oracle.gain_cache_misses"] > 0

    def test_failed_cell_keeps_partial_spans(self, graph):
        tele = Telemetry()
        record, __ = run_with_budget(
            CELF(mc_simulations=5000), graph, 5, IC,
            rng=np.random.default_rng(1), track_memory=False,
            time_limit_seconds=0.05, telemetry=tele,
        )
        assert not record.ok
        assert "select:CELF" in record.extras["telemetry"]["spans"]

    def test_gain_cache_misses_match_m1_lookups(self, graph):
        # Serial oracle: every gain query is a true evaluation, so the
        # counter must equal the Appendix-C node-lookup totals exactly.
        tele = Telemetry()
        record, __ = run_with_budget(
            CELF(mc_simulations=5), graph, 3, IC,
            rng=np.random.default_rng(2), track_memory=False, telemetry=tele,
        )
        counters = record.extras["telemetry"]["counters"]
        lookups = record.extras["node_lookups_per_iteration"]
        assert counters["oracle.gain_cache_misses"] == sum(lookups)
        assert counters["oracle.gain_cache_misses"] == (
            record.extras["gain_cache_misses"]
        )
        assert counters["oracle.sigma_evaluations"] == (
            record.extras["sigma_evaluations"]
        )

    @needs_isolation
    def test_spans_cross_subprocess_boundary(self, graph):
        record, __ = execute_cell(
            CELF(mc_simulations=5), graph, 2, IC,
            rng=np.random.default_rng(3),
            config=IsolationConfig(
                enabled=True, time_limit_seconds=120.0, telemetry=True
            ),
        )
        assert record.ok
        snap = record.extras["telemetry"]
        root = snap["spans"]["select:CELF"]
        assert "celf.lazy_forward" in root["children"]
        assert snap["counters"]["oracle.sigma_evaluations"] > 0

    def test_counters_round_trip_through_save_load(self, graph, tmp_path):
        tele = Telemetry()
        record, __ = run_with_budget(
            CELF(mc_simulations=5), graph, 2, IC,
            rng=np.random.default_rng(4), track_memory=False, telemetry=tele,
        )
        path = tmp_path / "records.json"
        save_records([record], path)
        (loaded,) = load_records(path)
        assert loaded.extras["telemetry"] == record.extras["telemetry"]

    def test_framework_session_handle_absorbs_cells(self, graph):
        session = Telemetry(label="session")
        fw = IMFramework(graph, IC, mc_simulations=20, telemetry=session)
        trace = fw.run("Degree", 2, rng=np.random.default_rng(5))
        assert trace.chosen.ok
        snap = session.snapshot()
        assert "select:Degree" in snap["spans"]
        assert "score" in snap["spans"]
        assert snap["counters"]["mc.simulations"] >= 20

    def test_framework_without_handle_stays_clean(self, graph):
        fw = IMFramework(graph, IC, mc_simulations=20)
        trace = fw.run("Degree", 2, rng=np.random.default_rng(5))
        assert "telemetry" not in trace.chosen.extras

    def test_sweep_config_knob(self, graph):
        from repro.framework.experiments import SweepConfig, quality_sweep

        config = SweepConfig(k_grid=(2,), mc_simulations=10, telemetry=True)
        results = quality_sweep(graph, IC, {"Degree": {}}, config=config)
        record = results[("Degree", 2)]
        assert "select:Degree" in record.extras["telemetry"]["spans"]


# ----------------------------------------------------------------------
# JSONL trace sink


class TestTraceSink:
    def _snapshot(self):
        tele = Telemetry(label="cell-a")
        with tele.span("select:X"):
            with tele.span("x.phase"):
                pass
        tele.count("x.things", 7)
        return tele.snapshot()

    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        written = write_trace(path, self._snapshot(), cell="cell-a")
        events = read_trace(path)
        assert len(events) == written
        by_type = {e["type"] for e in events}
        assert {"meta", "span", "counter"} <= by_type
        paths = {e["path"] for e in events if e["type"] == "span"}
        assert paths == {"select:X", "select:X/x.phase"}
        assert all(e["cell"] == "cell-a" for e in events)

    def test_appends_across_cells(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, self._snapshot(), cell="a")
        write_trace(path, self._snapshot(), cell="b")
        cells = {e["cell"] for e in read_trace(path)}
        assert cells == {"a", "b"}

    def test_torn_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, self._snapshot())
        with open(path, "a") as handle:
            handle.write('{"type": "span", "path": "torn')
        events = read_trace(path)
        assert all(e.get("path") != "torn" for e in events)
        assert summarize_trace(path)  # still renders

    def test_empty_snapshot_writes_nothing(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert write_trace(path, None) == 0
        assert not path.exists()

    def test_record_event_and_coverage(self, graph, tmp_path):
        tele = Telemetry()
        record, __ = run_with_budget(
            CELF(mc_simulations=5), graph, 3, IC,
            rng=np.random.default_rng(6), track_memory=False, telemetry=tele,
        )
        path = tmp_path / "trace.jsonl"
        write_trace(path, tele.snapshot(), cell="c", record=record)
        events = read_trace(path)
        (rec_event,) = [e for e in events if e["type"] == "record"]
        assert rec_event["algorithm"] == "CELF"
        assert rec_event["status"] == "OK"
        # Selection is the whole measured block here, so the root span
        # must cover the recorded elapsed to within the 10% contract.
        root = sum(
            e["elapsed"] for e in events
            if e["type"] == "span" and e["path"] == "select:CELF"
        )
        assert root == pytest.approx(record.elapsed_seconds, rel=0.10)
        text = summarize_trace(path)
        assert "select:CELF" in text or "select:CELF" in text.replace("  ", "")
        assert "Coverage:" in text
        assert "oracle.gain_cache_misses" in text

    def test_summarize_aggregates_multiple_cells(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, self._snapshot(), cell="a")
        write_trace(path, self._snapshot(), cell="b")
        text = summarize_trace(path)
        assert "x.things" in text
        assert "14" in text  # 7 + 7 summed across cells

"""Reverse-reachable (RR) set compatibility layer.

An RR set for a node ``v`` is the set of nodes that would reach ``v`` in a
random live-edge world.  Borgs et al.'s key identity: the probability that
a seed set S intersects the RR set of a uniformly random node equals
σ(S)/n, so seed selection reduces to greedy maximum coverage over a pool
of RR sets.

The engine itself lives in :mod:`repro.diffusion.rrpool` — a flat CSR
pool with parallel sampling and a vectorized max-cover.  This module
keeps the historical surface:

* :func:`random_rr_set` and :func:`greedy_max_cover` are re-exported.
* :class:`RRCollection` is now a thin shim over :class:`FlatRRPool`
  exposing the old ``sets`` / ``member_of`` list views (rebuilt lazily
  from the CSR arrays and cached until the next append).
* :func:`greedy_max_cover_legacy` is the original list-walking cover,
  retained as the reference implementation the flat engine is proven
  seed-for-seed identical to (``tests/test_rr_statistical.py`` and
  ``benchmarks/bench_rr_engine.py``).
"""

from __future__ import annotations

import numpy as np

from ..graph.digraph import DiGraph
from .models import Dynamics
from .rrpool import FlatRRPool, greedy_max_cover, pad_seeds, random_rr_set

__all__ = [
    "random_rr_set",
    "FlatRRPool",
    "RRCollection",
    "greedy_max_cover",
    "greedy_max_cover_legacy",
]


class RRCollection(FlatRRPool):
    """Backward-compatible view of a :class:`FlatRRPool`.

    ``sets[i]`` is the node array of RR set i; ``member_of[v]`` lists the
    ids of the sets containing node v.  Both are materialized from the
    CSR arrays on first access and cached until the pool grows.
    """

    __slots__ = ("_sets_cache", "_member_cache")

    def __init__(self, n: int, sets: list[np.ndarray] | None = None) -> None:
        super().__init__(n)
        self._sets_cache: list[np.ndarray] | None = None
        self._member_cache: list[list[int]] | None = None
        for nodes in sets or []:
            self.add(nodes)

    def add(self, nodes: np.ndarray, width: int = 0) -> None:
        self._sets_cache = self._member_cache = None
        super().add(nodes, width)

    def _append_chunk(self, lengths, flat, widths) -> None:
        self._sets_cache = self._member_cache = None
        super()._append_chunk(lengths, flat, widths)

    @property
    def sets(self) -> list[np.ndarray]:
        if self._sets_cache is None:
            ptr = self.set_ptr
            self._sets_cache = [
                self.set_nodes[ptr[i] : ptr[i + 1]] for i in range(len(self))
            ]
        return self._sets_cache

    @property
    def member_of(self) -> list[list[int]]:
        if self._member_cache is None:
            node_ptr, node_sets = self.node_index
            self._member_cache = [
                node_sets[node_ptr[v] : node_ptr[v + 1]].tolist()
                for v in range(self.n)
            ]
        return self._member_cache


def greedy_max_cover_legacy(
    collection: FlatRRPool,
    k: int,
    pad_priority: np.ndarray | None = None,
) -> tuple[list[int], float]:
    """The original list-walking greedy max-cover (reference implementation).

    Functionally identical to :func:`repro.diffusion.rrpool.greedy_max_cover`
    (the statistical test layer asserts byte-identical seed sets); kept
    for equivalence testing and as the baseline of the
    ``benchmarks/bench_rr_engine.py`` speedup measurement.
    """
    num_sets = len(collection)
    if num_sets == 0 or k <= 0:
        return [], 0.0
    n = collection.n
    if isinstance(collection, RRCollection):
        sets = collection.sets
        member_of = collection.member_of
    else:
        ptr, data = collection.set_ptr, collection.set_nodes
        sets = [data[ptr[i] : ptr[i + 1]] for i in range(num_sets)]
        node_ptr, node_sets = collection.node_index
        member_of = [
            node_sets[node_ptr[v] : node_ptr[v + 1]].tolist() for v in range(n)
        ]
    count = np.zeros(n, dtype=np.int64)
    for v in range(n):
        count[v] = len(member_of[v])
    covered = np.zeros(num_sets, dtype=bool)
    seeds: list[int] = []
    for __ in range(min(k, n)):
        v = int(count.argmax())
        if count[v] <= 0:
            # Nothing left to cover; pad with the highest-degree unseeded
            # nodes so exactly k seeds are returned, as the reference
            # codes do.
            priority = (
                pad_priority
                if pad_priority is not None
                else collection.membership_counts()
            )
            pad_seeds(seeds, k, n, priority)
            break
        seeds.append(v)
        newly = [i for i in member_of[v] if not covered[i]]
        for i in newly:
            covered[i] = True
            for u in sets[i]:
                count[int(u)] -= 1
        # count[v] is now 0 automatically (its uncovered sets were covered).
    return seeds[:k], float(covered.mean())

"""Vectorized path-proxy engine for the MIA/LDAG family (PMIA, LDAG, IRIE).

The proxy-based techniques all start from the same primitive: bounded
max-product Dijkstra — the best path-propagation probability ``pp`` from a
source to every node whose product stays above a threshold (θ of PMIA,
η of LDAG, the 1/320 AP cutoff of IRIE's IE step).  The legacy helpers
(`max_probability_paths`, ``build_miia``, ``build_ldag``) run one Python
``dict`` + ``heapq`` loop per source; this module replaces them with a
**batched frontier-relaxation kernel** processing many sources per call
over the shared CSR gathers, plus flat **local-structure stores** whose
ap/alpha dynamic programs are vectorized array sweeps.

Exactness guarantees (the engine is a drop-in, not an approximation):

* ``pp`` values are *bitwise* identical to the legacy helpers.  Both
  compute each candidate as ``pp(parent) * w`` — the same left-to-right
  float product along the same winning path — and take the max over the
  same candidate set; scatter-max and a binary heap agree on maxima.
* The **settle order** (which fixes PMIA's processing order, LDAG's edge
  orientation and all downstream float-accumulation orders) is replayed
  exactly.  Legacy order is non-increasing in ``pp``; inside a plateau of
  equal ``pp`` it is *chronological heap order*: nodes reached from a
  strictly-higher plateau are present from the start and pop by id, while
  nodes reached through an intra-plateau weight-1-style edge only become
  poppable once their achiever settles.  The kernel sorts by
  ``(-pp, id)`` and then replays only the plateaus that contain a member
  without an external achiever with a tiny heap simulation (rare: it
  requires an exact ``pp(x) * w == pp(y)`` tie with ``pp(x) == pp(y)``).
* **Parents** follow the legacy last-writer rule: the achiever
  (``pp(x) * w == pp(y)`` exactly, conducting) with the earliest settle
  rank.  PMIA's children lists are rebuilt in legacy dict-insertion
  order — first-push order, i.e. sorted by ``(first pusher's settle
  rank, child id)`` (in-CSR slices list sources in ascending id order).
* **Blocked nodes** (PMIA's prefix exclusion) receive a ``pp`` and a
  settle position but conduct nothing: they are dropped from frontier
  expansion and from achiever/pusher candidacy, exactly like the legacy
  ``continue`` after settling.

The structure stores keep each arborescence/DAG as small arrays in settle
order with a per-structure edge list pre-sorted for the sweeps; the
ap/alpha passes then process one settle *rank* at a time across every
structure, with ``np.add.at`` / ``np.multiply.at`` (element-order
sequential) reproducing the legacy per-node accumulation order exactly.

Incremental invalidation: the greedy loops key dirty sets off the
``containing[]`` inverted index (node → structures it appears in); each
round only the dirty structures are re-swept — and for PMIA rebuilt, as
one batched kernel call over the dirty roots.  ``path_workers`` fans the
initial build out over a process pool (contiguous root chunks, flat
arrays shipped back, deterministic merge — the kernel draws no
randomness, so unlike ``rr_workers``/``mc_workers`` no SeedSequence
spawning is needed and results are independent of the worker count).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

import numpy as np

from ._frontier import expand_slices

__all__ = [
    "PathBatch",
    "batched_max_prob_paths",
    "LocalTree",
    "LocalDag",
    "TreeStore",
    "DagStore",
    "build_tree_store",
    "build_dag_store",
]

#: Cap on batch rows so the dense (rows × n) pp scratch stays small.  The
#: sweet spot is a scratch that fits the last-level cache: the kernel's
#: scatter/gather traffic is random-access within it, and measured build
#: times on the largest catalog graph are ~2x worse at 8x this size.
_MAX_DENSE = 500_000


def _tele():
    # Lazy: a top-level framework import from diffusion would be circular
    # (framework → runner → algorithm registry → diffusion engines).
    from ..framework.telemetry import current

    return current()


def _scatter_max(pp: np.ndarray, keys: np.ndarray, vals: np.ndarray) -> np.ndarray:
    """Segmented max of ``vals`` into ``pp[keys]``; returns improved keys."""
    order = np.argsort(keys, kind="stable")
    ks = keys[order]
    vs = vals[order]
    bounds = np.flatnonzero(np.r_[True, ks[1:] != ks[:-1]])
    uniq = ks[bounds]
    seg_max = np.maximum.reduceat(vs, bounds)
    improved = seg_max > pp[uniq]
    uniq = uniq[improved]
    pp[uniq] = seg_max[improved]
    return uniq


class PathBatch:
    """Flat per-source CSR of bounded max-probability paths.

    For source ``i``, ``slice(i)`` covers nodes in exact legacy settle
    order (the source itself first).  ``parent_pos`` indexes into the same
    slice (-1 for the source); ``parent_w`` is the weight of the edge to
    the parent; ``first_rank`` is the settle rank of the first pusher
    (-1 for the source) — the key that orders PMIA children lists.
    """

    __slots__ = ("sources", "threshold", "ptr", "node", "pp", "parent_pos",
                 "parent_w", "first_rank")

    def __init__(self, sources, threshold, ptr, node, pp, parent_pos,
                 parent_w, first_rank) -> None:
        self.sources = sources
        self.threshold = threshold
        self.ptr = ptr
        self.node = node
        self.pp = pp
        self.parent_pos = parent_pos
        self.parent_w = parent_w
        self.first_rank = first_rank

    def __len__(self) -> int:
        return len(self.sources)

    def size(self, i: int) -> int:
        return int(self.ptr[i + 1] - self.ptr[i])

    def slice(self, i: int) -> slice:
        return slice(int(self.ptr[i]), int(self.ptr[i + 1]))

    def pp_dict(self, i: int) -> dict[int, float]:
        """``{node: pp}`` excluding the source — legacy helper shape."""
        sl = self.slice(i)
        return {
            int(u): float(p)
            for u, p in zip(self.node[sl.start + 1:sl.stop], self.pp[sl.start + 1:sl.stop])
        }


def _kernel_chunk(
    graph,
    threshold: float,
    reverse: bool,
    blocked: np.ndarray | None,
    sources: np.ndarray,
) -> tuple[np.ndarray, ...]:
    """Serial batched kernel over one chunk of sources (worker-safe).

    Returns flat ``(ptr, node, pp, parent_pos, parent_w, first_rank)``.
    The chunk-invariant operands lead and ``sources`` trails, matching
    the pool's shared-args convention (``fn(*shared, *args)``).
    """
    n = graph.n
    if reverse:  # search toward the source along in-edges (MIIA / LDAG)
        ptr, adj, w = graph.in_ptr, graph.in_src, graph.in_w
    else:  # forward from the source (IRIE's IE step)
        ptr, adj, w = graph.out_ptr, graph.out_dst, graph.out_w
    conduct = None if blocked is None else ~np.asarray(blocked, dtype=bool)

    # Per-node best edge weight: a frontier node x with pp(x) * wmax(x)
    # below the threshold cannot produce a single successful relaxation
    # (pp <= 1 and products only shrink), so the kernel drops it before
    # expansion — on probability-pruned searches the overwhelming share
    # of frontier nodes sit just above the threshold and die here.
    wmax = np.zeros(n, dtype=np.float64)
    nz = np.flatnonzero(np.diff(ptr) > 0)
    if nz.size:
        wmax[nz] = np.maximum.reduceat(w, ptr[nz])

    sources = np.asarray(sources, dtype=np.int64)
    step = max(1, min(len(sources), _MAX_DENSE // max(n, 1)))
    parts: list[tuple[np.ndarray, ...]] = []
    for lo in range(0, len(sources), step):
        parts.append(_kernel_batch(
            n, ptr, adj, w, sources[lo:lo + step], threshold, conduct, wmax,
        ))
    if len(parts) == 1:
        return parts[0]
    ptrs = [parts[0][0]]
    for part in parts[1:]:
        ptrs.append(part[0][1:] + ptrs[-1][-1])
    return tuple([np.concatenate(ptrs)] + [
        np.concatenate([part[j] for part in parts]) for j in range(1, 6)
    ])


def _kernel_batch(n, ptr, adj, w, sources, threshold, conduct, wmax):
    B = len(sources)
    pp = np.zeros(B * n, dtype=np.float64)
    rows = np.arange(B, dtype=np.int64)
    pp[rows * n + sources] = 1.0

    # Phase 1 — frontier relaxation (Bellman-Ford flavoured scatter-max).
    # Candidates are pp(parent) * w, exactly the heap's push values; the
    # converged maxima are therefore bitwise equal to Dijkstra's.  Every
    # above-threshold relaxation pair (x, y, edge) is cached as it is
    # produced: phase 2/3 consume exactly these pairs, so caching them
    # here spares a full CSR re-scan over the reached set later.
    fb, fv = rows, sources
    pk_y: list[np.ndarray] = []  # flat key of the relaxed target y
    pk_x: list[np.ndarray] = []  # flat key of the relaxing node x
    pk_e: list[np.ndarray] = []  # edge index of the (x, y) edge
    while fv.size:
        if conduct is not None:
            keep = conduct[fv] | (fv == sources[fb])
            fb, fv = fb[keep], fv[keep]
        xkey = fb * n + fv
        ppx = pp[xkey]
        # Hopeless-frontier prune: even the best edge cannot reach the
        # threshold, so expansion would contribute nothing.
        keep = ppx * wmax[fv] >= threshold
        fb, fv, xkey, ppx = fb[keep], fv[keep], xkey[keep], ppx[keep]
        if fv.size == 0:
            break
        counts = (ptr[fv + 1] - ptr[fv]).astype(np.int64, copy=False)
        eidx = expand_slices(ptr, fv)
        if eidx.size == 0:
            break
        cand = np.repeat(ppx, counts) * w[eidx]
        keys = np.repeat(fb * n, counts) + adj[eidx]
        oki = np.flatnonzero(cand >= threshold)
        if oki.size == 0:
            break
        ky = keys[oki]
        pk_y.append(ky)
        pk_x.append(np.repeat(xkey, counts)[oki])
        pk_e.append(eidx[oki])
        upd = _scatter_max(pp, ky, cand[oki])
        if upd.size == 0:
            break
        fb, fv = np.divmod(upd, n)

    # Phase 2 — settle order: (-pp, id) within each row, then replay the
    # plateaus whose chronological order the sort cannot know.
    flat = np.flatnonzero(pp)
    rb, rv = np.divmod(flat, n)
    rpp = pp[flat]
    # ``flat`` is already (row, id)-sorted and lexsort is stable, so two
    # keys give the full (row, -pp, id) order.
    order = np.lexsort((-rpp, rb))
    rb, rv, rpp = rb[order], rv[order], rpp[order]
    R = rv.size
    row_counts = np.bincount(rb, minlength=B)
    row_ptr = np.concatenate(([0], np.cumsum(row_counts, dtype=np.int64)))
    final_rank = np.arange(R, dtype=np.int64) - row_ptr[rb]

    newp = np.r_[True, (rb[1:] != rb[:-1]) | (rpp[1:] != rpp[:-1])]
    plat_id = np.cumsum(newp) - 1
    plat_start = np.flatnonzero(newp)
    plat_size = np.diff(np.r_[plat_start, R])

    # Everything order/parent related derives from the phase-1 pair
    # cache: an "achiever" of y is a conducting reached x with
    # pp(x) * w == pp(y).  The cache is a superset of all final-valid
    # pusher pairs — each x's *last* frontier visit relaxes with its
    # final pp(x), and pp only ever increases, so earlier visits merely
    # contribute duplicates (every consumer below tolerates them:
    # scatter flags, per-segment argmins with equal ranks, and the
    # replay's pushed-set guard are all idempotent).  Both endpoints of
    # every cached pair are reached (cand >= threshold was scatter-maxed
    # into y; x sat on the frontier) and x conducts (phase 1 drops
    # non-conducting frontier nodes), so no sentinel filtering is needed.
    if pk_y:
        kall_y = np.concatenate(pk_y)
        kall_x = np.concatenate(pk_x)
        kall_e = np.concatenate(pk_e)
    else:
        kall_y = kall_x = kall_e = np.empty(0, dtype=np.int64)
    posflat = np.empty(B * n, dtype=np.int64)
    posflat[rb * n + rv] = np.arange(R, dtype=np.int64)
    seg = posflat[kall_y]
    xseg = posflat[kall_x]
    aw = w[kall_e]
    axpp = rpp[xseg]
    aval = axpp * aw
    is_ach = aval == rpp[seg]
    is_source = rv == sources[rb]
    src_seg = is_source[seg]

    has_ext = np.zeros(R, dtype=bool)
    ext = is_ach & (axpp > rpp[seg])
    has_ext[seg[ext]] = True
    needs_fix = ~has_ext & ~is_source
    fix_plat = np.zeros(plat_start.size, dtype=bool)
    fix_plat[plat_id[needs_fix]] = True
    sim_mask = fix_plat & (plat_size > 1)
    sim_plats = np.flatnonzero(sim_mask)
    if sim_plats.size:
        # Pre-convert everything the replay loops touch to Python lists in
        # one vectorized pass each — per-element numpy scalar indexing
        # would dominate on tie-heavy weightings (WC/LT-uniform graphs
        # are full of exact 1/in-degree products and weight-1.0 chains).
        intra = np.flatnonzero(is_ach & (axpp == rpp[seg]) & ~src_seg)
        ipl = plat_id[seg[intra]]
        sel = sim_mask[ipl]
        intra, ipl = intra[sel], ipl[sel]
        io = np.argsort(ipl, kind="stable")
        intra = intra[io]
        bounds = np.searchsorted(ipl[io], sim_plats)
        bounds = np.r_[bounds, intra.size].tolist()
        intra_u = rv[xseg[intra]].tolist()
        intra_y = rv[seg[intra]].tolist()
        ready0 = (has_ext | is_source)
        rv_list = rv.tolist()
        ready0_list = ready0.tolist()
        ranks = final_rank.tolist()
        for j, p in enumerate(sim_plats.tolist()):
            s0 = int(plat_start[p])
            sz = int(plat_size[p])
            members = rv_list[s0:s0 + sz]  # ascending id = provisional order
            pos = {u: s0 + i for i, u in enumerate(members)}
            adjm: dict[int, list[int]] = {}
            for e in range(bounds[j], bounds[j + 1]):
                adjm.setdefault(intra_u[e], []).append(intra_y[e])
            ready = [u for u, ok in zip(members, ready0_list[s0:s0 + sz]) if ok]
            heapq.heapify(ready)
            pushed = set(ready)
            base = ranks[s0]
            settled = 0
            while ready:
                u = heapq.heappop(ready)
                ranks[pos[u]] = base + settled
                settled += 1
                for y in adjm.get(u, ()):
                    if y not in pushed:
                        pushed.add(y)
                        heapq.heappush(ready, y)
            # Defensive: every member is reachable through its achiever
            # chain; if the replay ever missed one, fall back to id order.
            if settled != sz:  # pragma: no cover
                for u in sorted(u for u in members if u not in pushed):
                    ranks[pos[u]] = base + settled
                    settled += 1
        final_rank = np.asarray(ranks, dtype=np.int64)

    # Phase 3 — parents (first-settling achiever) and first-push ranks.
    # Achiever pairs are a subset of pusher pairs (aval == pp(y) >= the
    # threshold), so one (segment, rank) sort serves both argmins: the
    # first entry per segment is the first pusher, and the first
    # achiever-flagged entry per segment is the parent.
    arank = final_rank[xseg]
    parent_pos = np.full(R, -1, dtype=np.int64)
    parent_w = np.zeros(R, dtype=np.float64)
    first_rank = np.full(R, -1, dtype=np.int64)
    push = np.flatnonzero((aval >= threshold) & ~src_seg)
    if push.size:
        pseg = seg[push]
        prank = arank[push]
        span = int(prank.max()) + 1
        po = push[np.argsort(pseg * span + prank, kind="stable")]
        so = seg[po]
        first = np.flatnonzero(np.r_[True, so[1:] != so[:-1]])
        first_rank[so[first]] = arank[po[first]]
        # Per segment, the smallest sorted position carrying an achiever
        # (a big sentinel marks non-achievers; duplicates of the winning
        # pair carry the same rank and edge, so any of them is the same
        # parent).
        pos_idx = np.where(is_ach[po], np.arange(po.size, dtype=np.int64),
                           po.size)
        amin = np.minimum.reduceat(pos_idx, first)
        hasa = amin < po.size
        segs_a = so[first][hasa]
        picks = po[amin[hasa]]
        parent_pos[segs_a] = arank[picks]
        parent_w[segs_a] = aw[picks]

    # Reorder to settle order by inverting the rank permutation (cheaper
    # than another sort: final_rank is a permutation within each row).
    out = np.empty(R, dtype=np.int64)
    out[row_ptr[rb] + final_rank] = np.arange(R, dtype=np.int64)
    return (row_ptr, rv[out], rpp[out], parent_pos[out], parent_w[out],
            first_rank[out])


def _worker_chunks(count: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous (lo, hi) chunks, one per worker, sizes as even as possible."""
    workers = max(1, min(workers, count))
    sizes = np.full(workers, count // workers, dtype=np.int64)
    sizes[: count % workers] += 1
    ends = np.cumsum(sizes)
    return [(int(e - s), int(e)) for s, e in zip(sizes, ends)]


def _partition_permutation(graph, items: np.ndarray) -> np.ndarray | None:
    """Stable permutation grouping ``items`` by edge-cut shard label.

    Active only when sharding is armed (``REPRO_BENCH_SHARDS`` > 1):
    sources that live in the same graph region land in the same chunks,
    so each shard's workers touch a smaller slice of the shared CSR.
    Safe because every kernel row is computed independently of its batch
    companions — regrouping changes scheduling, never values — and the
    caller scatters rows back to input order, keeping the result
    byte-identical to the ungrouped run (pinned by the sharding suite).
    """
    from ..framework.pool import PoolConfig  # lazy: import cycle

    shards = PoolConfig.from_env().shards
    if shards <= 1 or len(items) <= shards:
        return None
    from ..graph.partition import edge_cut_partition

    labels = edge_cut_partition(graph, shards)
    _tele().count("paths.partition_grouped", len(items))
    return np.argsort(labels[items], kind="stable")


def _gather_rows(merged: tuple[np.ndarray, ...], order: np.ndarray) -> tuple[np.ndarray, ...]:
    """Reorder the rows of a flat kernel result to ``order``.

    ``merged`` is ``(ptr, node, pp, parent_pos, parent_w, first_rank)``;
    all payload fields are row-local (positions index within the row's
    slice), so a pure row gather is exact.
    """
    ptr = merged[0]
    lens = np.diff(ptr)[order]
    new_ptr = np.concatenate(([0], np.cumsum(lens, dtype=np.int64)))
    idx = (
        np.repeat(ptr[:-1][order] - new_ptr[:-1], lens)
        + np.arange(int(new_ptr[-1]), dtype=np.int64)
    )
    return tuple([new_ptr] + [merged[j][idx] for j in range(1, len(merged))])


def batched_max_prob_paths(
    graph,
    sources,
    threshold: float,
    *,
    reverse: bool = False,
    blocked: np.ndarray | None = None,
    workers: int | None = None,
    tick: Callable[[], None] | None = None,
) -> PathBatch:
    """Bounded max-product Dijkstra for many sources in one call.

    ``reverse=True`` searches along in-edges toward each source (the
    MIIA/LDAG orientation); ``reverse=False`` searches forward along
    out-edges (IRIE's IE step).  ``blocked`` nodes settle but conduct
    nothing (PMIA's prefix exclusion; a blocked source still conducts).
    ``workers`` > 1 fans contiguous source chunks over a process pool —
    the kernel is deterministic, so the result is identical at any
    worker count.  ``tick`` is called between chunks (budget checks).
    """
    sources = np.asarray(sources, dtype=np.int64)
    tele = _tele()
    with tele.span("paths.dijkstra_batch"):
        if workers is not None and workers > 1 and len(sources) > 1:
            from ..framework.pool import run_chunks  # lazy: import cycle

            # Partition-aware sharding: group sources by shard label so
            # chunks have CSR locality, then scatter the rows back.
            perm = _partition_permutation(graph, sources)
            run_sources = sources if perm is None else sources[perm]
            spans = _worker_chunks(len(run_sources), workers)
            tele.count("paths.worker_chunks", len(spans))
            # The kernel is deterministic, so the resilient pool can
            # replay a lost chunk exactly; parts merge in span order.
            # The graph and search parameters are chunk-invariant and
            # ride the shared-args transport (shm arena when big enough).
            parts = run_chunks(
                _kernel_chunk,
                [(run_sources[lo:hi],) for lo, hi in spans],
                workers=len(spans),
                label="paths.dijkstra_batch",
                tick=tick,
                shared=(graph, threshold, reverse, blocked),
            )
            ptrs = [parts[0][0]]
            for part in parts[1:]:
                ptrs.append(part[0][1:] + ptrs[-1][-1])
            merged = tuple([np.concatenate(ptrs)] + [
                np.concatenate([part[j] for part in parts]) for j in range(1, 6)
            ])
            if perm is not None:
                inverse = np.empty_like(perm)
                inverse[perm] = np.arange(perm.size, dtype=np.int64)
                merged = _gather_rows(merged, inverse)
        else:
            merged = _kernel_chunk(graph, threshold, reverse, blocked, sources)
            if tick is not None:
                tick()
    tele.count("paths.dijkstra_sources", len(sources))
    return PathBatch(sources, threshold, *merged)


# ---------------------------------------------------------------------------
# Local structure stores (MIA arborescences and LDAGs as flat sub-DAGs)
# ---------------------------------------------------------------------------


class LocalTree:
    """One MIIA arborescence in flat form (nodes in settle order, root first).

    ``e_*`` lists the child→parent edges sorted by (parent position,
    first-push rank, child id) — legacy children-list order — so the tree
    DPs can multiply sibling misses in the exact legacy sequence.
    """

    __slots__ = ("root", "nodes", "pp", "parent_pos", "parent_w",
                 "e_tpos", "e_cpos", "e_w")

    def __init__(self, root, nodes, pp, parent_pos, parent_w,
                 e_tpos, e_cpos, e_w) -> None:
        self.root = root
        self.nodes = nodes
        self.pp = pp
        self.parent_pos = parent_pos
        self.parent_w = parent_w
        self.e_tpos = e_tpos
        self.e_cpos = e_cpos
        self.e_w = e_w

    def __len__(self) -> int:
        return len(self.nodes)


class LocalDag:
    """One LDAG in flat form (nodes in settle order, root first).

    Edges are the kept graph edges (y → x with rank(y) > rank(x)) as
    (target position, source position, weight), sorted by target position
    with the in-CSR order preserved inside each target — the legacy
    ``in_edges[x]`` accumulation order.
    """

    __slots__ = ("root", "nodes", "pp", "e_tpos", "e_spos", "e_w")

    def __init__(self, root, nodes, pp, e_tpos, e_spos, e_w) -> None:
        self.root = root
        self.nodes = nodes
        self.pp = pp
        self.e_tpos = e_tpos
        self.e_spos = e_spos
        self.e_w = e_w

    def __len__(self) -> int:
        return len(self.nodes)


def _trees_from_batch(batch: PathBatch) -> list[LocalTree]:
    # Children ordering for every tree in one global stable lexsort: the
    # structure index is the outermost key, so per-tree slices of the
    # sorted edge list are exactly the per-tree (parent position,
    # first-push rank, child id) orders.
    ptr = batch.ptr
    S = len(batch)
    M = batch.node.size
    srow = np.repeat(np.arange(S, dtype=np.int64), np.diff(ptr))
    local = np.arange(M, dtype=np.int64) - ptr[srow]
    child = np.flatnonzero(local > 0)  # every non-root entry is an edge
    # One composite integer key replaces a 4-key lexsort (~8x faster):
    # all operands are bounded by the batch size / row sizes, so the
    # packed key stays in ~42 bits.
    nd = batch.node[child]
    fr = batch.first_rank[child]
    ppos = batch.parent_pos[child]
    sr = srow[child]
    if child.size:
        m1 = int(ppos.max()) + 1
        m2 = int(fr.max()) + 1
        m3 = int(nd.max()) + 1
        if S * m1 * m2 * m3 < 2 ** 62:  # Python ints: no silent overflow
            comp = ((sr * m1 + ppos) * m2 + fr) * m3 + nd
            eo = child[np.argsort(comp, kind="stable")]
        else:  # pragma: no cover - graphs beyond the packed-key range
            eo = child[np.lexsort((nd, fr, ppos, sr))]
    else:
        eo = child
    e_cpos_all = local[eo]
    e_tpos_all = batch.parent_pos[eo]
    e_w_all = batch.parent_w[eo]
    e_ptr = ptr[1:] - np.arange(1, S + 1, dtype=np.int64)  # minus the roots
    e_ptr = np.concatenate(([0], e_ptr))
    trees: list[LocalTree] = []
    sources = batch.sources.tolist()
    for i in range(S):
        sl = batch.slice(i)
        el = slice(int(e_ptr[i]), int(e_ptr[i + 1]))
        trees.append(LocalTree(
            sources[i], batch.node[sl], batch.pp[sl],
            batch.parent_pos[sl], batch.parent_w[sl],
            e_tpos_all[el], e_cpos_all[el], e_w_all[el],
        ))
    return trees


def _dag_chunk(graph, eta, roots) -> tuple[tuple[np.ndarray, ...], tuple[np.ndarray, ...]]:
    """Kernel chunk + intra-DAG edge extraction (worker-safe).

    Edges are recovered in row blocks against a reused dense
    (row, node) → settle-rank scratch, with non-member sources
    compressed away before the weight gather.  Chunk-invariant operands
    lead (the pool's shared-args convention).
    """
    flat = _kernel_chunk(graph, eta, True, None, roots)
    ptr, node = flat[0], flat[1]
    n = graph.n
    nr = len(roots)
    step = max(1, min(nr, _MAX_DENSE // max(n, 1)))
    rank_flat = np.full(step * n, -1, dtype=np.int64)
    rows, tpos, spos, ws = [], [], [], []
    for lo in range(0, nr, step):
        hi = min(lo + step, nr)
        mlo, mhi = int(ptr[lo]), int(ptr[hi])
        nd = node[mlo:mhi]
        lptr = ptr[lo:hi + 1] - ptr[lo]
        srow = np.repeat(np.arange(hi - lo, dtype=np.int64), np.diff(lptr))
        rank = np.arange(mhi - mlo, dtype=np.int64) - lptr[srow]
        nflat = srow * n + nd
        rank_flat[nflat] = rank
        cnts = (graph.in_ptr[nd + 1] - graph.in_ptr[nd]).astype(np.int64, copy=False)
        eidx = expand_slices(graph.in_ptr, nd)
        es = np.repeat(np.arange(nd.size, dtype=np.int64), cnts)
        ey = graph.in_src[eidx].astype(np.int64, copy=False)
        eyrank = rank_flat[srow[es] * n + ey]
        kidx = np.flatnonzero(eyrank > rank[es])  # non-members carry -1
        es_k = es[kidx]
        rows.append(srow[es_k] + lo)
        tpos.append(rank[es_k])
        spos.append(eyrank[kidx])
        ws.append(graph.in_w[eidx[kidx]])
        rank_flat[nflat] = -1  # reset the scratch for the next block
    e_row = np.concatenate(rows) if rows else np.empty(0, np.int64)
    e_tpos = np.concatenate(tpos) if tpos else np.empty(0, np.int64)
    e_spos = np.concatenate(spos) if spos else np.empty(0, np.int64)
    e_w = np.concatenate(ws) if ws else np.empty(0, np.float64)
    e_ptr = np.searchsorted(e_row, np.arange(nr + 1, dtype=np.int64))
    return flat, (e_ptr, e_tpos, e_spos, e_w)


def _dags_from_chunk(roots, flat, edges) -> list[LocalDag]:
    ptr = flat[0]
    e_ptr, e_tpos, e_spos, e_w = edges
    dags: list[LocalDag] = []
    for i in range(len(roots)):
        sl = slice(int(ptr[i]), int(ptr[i + 1]))
        el = slice(int(e_ptr[i]), int(e_ptr[i + 1]))
        dags.append(LocalDag(
            int(roots[i]), flat[1][sl], flat[2][sl],
            e_tpos[el], e_spos[el], e_w[el],
        ))
    return dags


class _StoreBase:
    """Shared shape: per-structure records + the containing inverted index."""

    def __init__(self, graph, structures: list) -> None:
        self.graph = graph
        self.structures = structures
        # Inverted index (node → structures it appears in) as a CSR built
        # from one stable argsort of the (member, structure) pairs; the
        # stable sort keeps structure ids ascending inside each node
        # group.  Per-node sets materialize lazily, only once ``rebuild``
        # first mutates a node's membership — store construction itself
        # never pays for set building.
        if structures:
            sizes = np.array([len(st) for st in structures], dtype=np.int64)
            allnodes = np.concatenate([st.nodes for st in structures])
            alli = np.repeat(np.arange(len(structures), dtype=np.int64), sizes)
            order = np.argsort(allnodes, kind="stable")
            sn = allnodes[order]
            self._inv_ids = alli[order]
            self._inv_ptr = np.searchsorted(sn, np.arange(graph.n + 1, dtype=np.int64))
        else:
            self._inv_ids = np.empty(0, dtype=np.int64)
            self._inv_ptr = np.zeros(graph.n + 1, dtype=np.int64)
        self._overlay: dict[int, set[int]] = {}

    def __len__(self) -> int:
        return len(self.structures)

    def sizes(self) -> np.ndarray:
        return np.array([len(st) for st in self.structures], dtype=np.int64)

    def _containing_mutable(self, u: int) -> set[int]:
        """The (lazily materialized) mutable membership set of node ``u``."""
        s = self._overlay.get(u)
        if s is None:
            lo, hi = int(self._inv_ptr[u]), int(self._inv_ptr[u + 1])
            s = set(self._inv_ids[lo:hi].tolist())
            self._overlay[u] = s
        return s

    def dirty(self, seed: int) -> list[int]:
        """Structures invalidated by inserting ``seed`` (ascending index)."""
        s = self._overlay.get(seed)
        if s is not None:
            return sorted(s)
        lo, hi = int(self._inv_ptr[seed]), int(self._inv_ptr[seed + 1])
        return self._inv_ids[lo:hi].tolist()


class TreeStore(_StoreBase):
    """All MIIA arborescences of a graph + the batched tree DPs (PMIA)."""

    def __init__(self, graph, theta: float, trees: list[LocalTree],
                 workers: int | None = None) -> None:
        super().__init__(graph, trees)
        self.theta = theta
        self.workers = workers

    def rebuild(self, idxs: list[int], blocked: np.ndarray,
                tick: Callable[[], None] | None = None) -> None:
        """Re-derive the arborescences of ``idxs`` with ``blocked`` seeds
        banned from interior positions, updating ``containing``."""
        tele = _tele()
        with tele.span("paths.rebuild"):
            roots = np.array([self.structures[i].root for i in idxs], dtype=np.int64)
            batch = batched_max_prob_paths(
                self.graph, roots, self.theta, reverse=True, blocked=blocked,
                tick=tick,
            )
            for i, tree in zip(idxs, _trees_from_batch(batch)):
                old = self.structures[i]
                old_nodes = set(int(u) for u in old.nodes)
                new_nodes = set(int(u) for u in tree.nodes)
                for u in old_nodes - new_nodes:
                    self._containing_mutable(u).discard(i)
                for u in new_nodes - old_nodes:
                    self._containing_mutable(u).add(i)
                self.structures[i] = tree
        tele.count("paths.structures_rebuilt", len(idxs))

    def gains(self, idxs: list[int], in_seed: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-structure ``(nodes, gain)`` for non-seed members.

        The DP replays the legacy tree passes rank-by-rank: ap leaves
        first (sibling misses multiplied in children order), alpha root
        first (total-miss / own-miss with the legacy tiny-miss fallback).
        """
        with _tele().span("paths.ap_sweep"):
            return self._gains(idxs, in_seed)

    def _gains(self, idxs: list[int], in_seed: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
        trees = [self.structures[i] for i in idxs]
        sizes = np.array([len(t) for t in trees], dtype=np.int64)
        starts = np.concatenate(([0], np.cumsum(sizes)))
        T = int(starts[-1])
        fnodes = np.concatenate([t.nodes for t in trees]) if trees else np.empty(0, np.int64)
        franks = np.concatenate([np.arange(s, dtype=np.int64) for s in sizes]) if trees else np.empty(0, np.int64)
        ft = np.concatenate([t.e_tpos + s for t, s in zip(trees, starts)]) if trees else np.empty(0, np.int64)
        fc = np.concatenate([t.e_cpos + s for t, s in zip(trees, starts)]) if trees else np.empty(0, np.int64)
        fw = np.concatenate([t.e_w for t in trees]) if trees else np.empty(0, np.float64)
        tr = np.concatenate([t.e_tpos for t in trees]) if trees else np.empty(0, np.int64)
        eo = np.argsort(tr, kind="stable")
        ft, fc, fw, tr = ft[eo], fc[eo], fw[eo], tr[eo]
        max_size = int(sizes.max()) if sizes.size else 0
        rank_bounds = np.searchsorted(tr, np.arange(max_size + 1, dtype=np.int64))
        size_order = np.argsort(-sizes, kind="stable")
        starts_by_size = starts[size_order]
        n_at_rank = np.searchsorted(-sizes[size_order], -np.arange(max_size + 1, dtype=np.int64), side="left")

        seedm = in_seed[fnodes]
        ap = np.zeros(T, dtype=np.float64)
        miss = np.ones(T, dtype=np.float64)
        for r in range(max_size - 1, -1, -1):
            el = slice(rank_bounds[r], rank_bounds[r + 1])
            if el.start != el.stop:
                np.multiply.at(miss, ft[el], 1.0 - ap[fc[el]] * fw[el])
            mem = starts_by_size[: n_at_rank[r]] + r
            ap[mem] = np.where(seedm[mem], 1.0, 1.0 - miss[mem])

        alpha = np.zeros(T, dtype=np.float64)
        roots_flat = starts[:-1]
        alpha[roots_flat] = np.where(seedm[roots_flat], 0.0, 1.0)
        for r in range(max_size):
            el = slice(rank_bounds[r], rank_bounds[r + 1])
            if el.start == el.stop:
                continue
            ft_s, fc_s, fw_s = ft[el], fc[el], fw[el]
            m = 1.0 - ap[fc_s] * fw_s
            bnd = np.flatnonzero(np.r_[True, ft_s[1:] != ft_s[:-1]])
            cmp_idx = np.cumsum(np.r_[False, ft_s[1:] != ft_s[:-1]])
            tot = np.ones(bnd.size, dtype=np.float64)
            np.multiply.at(tot, cmp_idx, m)
            siblings = np.empty(m.size, dtype=np.float64)
            okm = m > 1e-12
            siblings[okm] = tot[cmp_idx[okm]] / m[okm]
            for j in np.flatnonzero(~okm):
                p = cmp_idx[j]
                lo = bnd[p]
                hi = bnd[p + 1] if p + 1 < bnd.size else m.size
                sib = 1.0
                for q in range(lo, hi):
                    if q != j:
                        sib *= m[q]
                siblings[j] = sib
            apar = alpha[ft_s]
            if r > 0:
                apar = np.where(seedm[ft_s], 0.0, apar)
            alpha[fc_s] = apar * fw_s * siblings

        gains = alpha * (1.0 - ap)
        out: list[tuple[np.ndarray, np.ndarray]] = []
        for i in range(len(trees)):
            sl = slice(int(starts[i]), int(starts[i + 1]))
            keep = ~seedm[sl]
            out.append((fnodes[sl][keep], gains[sl][keep]))
        return out


class DagStore(_StoreBase):
    """All LDAGs of a graph + the batched linear-threshold DPs (LDAG)."""

    def __init__(self, graph, eta: float, dags: list[LocalDag],
                 workers: int | None = None) -> None:
        super().__init__(graph, dags)
        self.eta = eta
        self.workers = workers

    def gains(self, idxs: list[int], in_seed: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-structure ``(nodes, gain)`` for non-seed members.

        ap: rank-descending sweep of ``min(Σ ap(y)·w, 1)`` (in-CSR order
        inside each target); alpha: rank-ascending propagation stopping
        at seeds — both in legacy float-accumulation order.
        """
        with _tele().span("paths.ap_sweep"):
            return self._gains(idxs, in_seed)

    def _gains(self, idxs: list[int], in_seed: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
        dags = [self.structures[i] for i in idxs]
        sizes = np.array([len(d) for d in dags], dtype=np.int64)
        starts = np.concatenate(([0], np.cumsum(sizes)))
        T = int(starts[-1])
        fnodes = np.concatenate([d.nodes for d in dags]) if dags else np.empty(0, np.int64)
        ft = np.concatenate([d.e_tpos + s for d, s in zip(dags, starts)]) if dags else np.empty(0, np.int64)
        fs = np.concatenate([d.e_spos + s for d, s in zip(dags, starts)]) if dags else np.empty(0, np.int64)
        fw = np.concatenate([d.e_w for d in dags]) if dags else np.empty(0, np.float64)
        tr = np.concatenate([d.e_tpos for d in dags]) if dags else np.empty(0, np.int64)
        eo = np.argsort(tr, kind="stable")
        ft, fs, fw, tr = ft[eo], fs[eo], fw[eo], tr[eo]
        max_size = int(sizes.max()) if sizes.size else 0
        rank_bounds = np.searchsorted(tr, np.arange(max_size + 1, dtype=np.int64))
        size_order = np.argsort(-sizes, kind="stable")
        starts_by_size = starts[size_order]
        n_at_rank = np.searchsorted(-sizes[size_order], -np.arange(max_size + 1, dtype=np.int64), side="left")

        seedm = in_seed[fnodes]
        ap = np.zeros(T, dtype=np.float64)
        acc = np.zeros(T, dtype=np.float64)
        for r in range(max_size - 1, -1, -1):
            el = slice(rank_bounds[r], rank_bounds[r + 1])
            if el.start != el.stop:
                np.add.at(acc, ft[el], ap[fs[el]] * fw[el])
            mem = starts_by_size[: n_at_rank[r]] + r
            ap[mem] = np.where(seedm[mem], 1.0, np.minimum(acc[mem], 1.0))

        alpha = np.zeros(T, dtype=np.float64)
        roots_flat = starts[:-1]
        alpha[roots_flat] = np.where(seedm[roots_flat], 0.0, 1.0)
        for r in range(max_size):
            el = slice(rank_bounds[r], rank_bounds[r + 1])
            if el.start == el.stop:
                continue
            ft_s, fs_s, fw_s = ft[el], fs[el], fw[el]
            contrib = alpha[ft_s] * fw_s
            if r > 0:
                contrib = np.where(seedm[ft_s], 0.0, contrib)
            np.add.at(alpha, fs_s, contrib)

        gains = alpha * (1.0 - ap)
        out: list[tuple[np.ndarray, np.ndarray]] = []
        for i in range(len(dags)):
            sl = slice(int(starts[i]), int(starts[i + 1]))
            keep = ~seedm[sl]
            out.append((fnodes[sl][keep], gains[sl][keep]))
        return out


def build_tree_store(
    graph,
    theta: float,
    *,
    workers: int | None = None,
    tick: Callable[[], None] | None = None,
) -> TreeStore:
    """MIIA(v, θ) for every node of the graph, batched (and optionally
    fanned over a process pool)."""
    with _tele().span("paths.build_structures"):
        batch = batched_max_prob_paths(
            graph, np.arange(graph.n, dtype=np.int64), theta,
            reverse=True, workers=workers, tick=tick,
        )
        return TreeStore(graph, theta, _trees_from_batch(batch), workers=workers)


def build_dag_store(
    graph,
    eta: float,
    *,
    workers: int | None = None,
    tick: Callable[[], None] | None = None,
) -> DagStore:
    """LDAG(v, η) for every node of the graph, batched (and optionally
    fanned over a process pool)."""
    tele = _tele()
    with tele.span("paths.build_structures"):
        roots = np.arange(graph.n, dtype=np.int64)
        if workers is not None and workers > 1 and graph.n > 1:
            from ..framework.pool import run_chunks  # lazy: import cycle

            # Same partition grouping + scatter-back as the tree build:
            # per-root results are batch-independent, so only scheduling
            # changes and the store comes out byte-identical.
            perm = _partition_permutation(graph, roots)
            run_roots = roots if perm is None else roots[perm]
            spans = _worker_chunks(graph.n, workers)
            tele.count("paths.worker_chunks", len(spans))
            parts = run_chunks(
                _dag_chunk,
                [(run_roots[lo:hi],) for lo, hi in spans],
                workers=len(spans),
                label="paths.build_structures",
                tick=tick,
                shared=(graph, eta),
            )
            built: list[LocalDag] = []
            for (lo, hi), (flat, edges) in zip(spans, parts):
                built.extend(_dags_from_chunk(run_roots[lo:hi], flat, edges))
            if perm is None:
                dags = built
            else:
                dags = [built[0]] * len(built)
                for j, dag in enumerate(built):
                    dags[int(perm[j])] = dag
        else:
            flat, edges = _dag_chunk(graph, eta, roots)
            dags = _dags_from_chunk(roots, flat, edges)
            if tick is not None:
                tick()
    return DagStore(graph, eta, dags, workers=workers)

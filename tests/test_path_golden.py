"""Golden seed sets for the path-proxy family, pinned on both engines.

The reference graph is deterministic (fixed generator + weighting seeds),
and the four techniques are deterministic given the graph — so these
exact seed lists must survive any engine change.  A diff here means the
flat engine stopped being a bit-identical drop-in.
"""

import numpy as np
import pytest

from repro.algorithms.irie import IRIE
from repro.algorithms.ldag import LDAG
from repro.algorithms.pmia import PMIA
from repro.algorithms.simpath import SIMPATH
from repro.diffusion.models import IC, WC, LT
from repro.graph.digraph import DiGraph
from repro.graph.generators import preferential_attachment


@pytest.fixture(scope="module")
def ref_graphs():
    n, src, dst = preferential_attachment(120, 2, np.random.default_rng(99))
    topo = DiGraph.from_arrays(n, src, dst)
    return {m.name: m.weighted(topo, np.random.default_rng(0)) for m in (IC, WC, LT)}


GOLDEN = {
    "PMIA": ("WC", [5, 2, 1, 0, 22, 24, 4, 21, 23, 17]),
    "LDAG": ("LT", [5, 2, 0, 1, 22, 24, 21, 4, 18, 23]),
    "IRIE": ("WC", [5, 2, 1, 0, 22, 24, 21, 17, 74, 38]),
}

MODELS = {"WC": WC, "LT": LT}
CLASSES = {"PMIA": PMIA, "LDAG": LDAG, "IRIE": IRIE}


@pytest.mark.parametrize("name", sorted(GOLDEN))
@pytest.mark.parametrize("engine", ["flat", "legacy"])
def test_golden_seeds_both_engines(name, engine, ref_graphs):
    model_name, expected = GOLDEN[name]
    model = MODELS[model_name]
    result = CLASSES[name](engine=engine).select(
        ref_graphs[model_name], 10, model, rng=np.random.default_rng(0)
    )
    assert result.seeds == expected


@pytest.mark.parametrize("vertex_cover", [False, True])
def test_golden_simpath_seeds(vertex_cover, ref_graphs):
    # The vertex-cover start-up is a documented approximation (η-pruning
    # from the covered side), yet on this graph the CELF rounds land on
    # the same seeds — pinned to catch silent drift in either mode.
    result = SIMPATH(vertex_cover=vertex_cover).select(
        ref_graphs["LT"], 10, LT, rng=np.random.default_rng(0)
    )
    assert result.seeds == [5, 2, 1, 0, 22, 24, 21, 4, 18, 17]

"""repro — an influence-maximization benchmarking platform.

A complete, from-scratch Python reproduction of

    Arora, Galhotra & Ranu.  *Debunking the Myths of Influence
    Maximization: An In-Depth Benchmarking Study.*  SIGMOD 2017.

Layout:

* :mod:`repro.graph` — CSR digraphs, generators, edge-weight schemes.
* :mod:`repro.datasets` — scaled analogues of the paper's eight datasets.
* :mod:`repro.diffusion` — IC/LT cascades, MC spread, snapshots, RR sets.
* :mod:`repro.algorithms` — the eleven benchmarked techniques + baselines.
* :mod:`repro.framework` (aliased :mod:`repro.core`) — the benchmarking
  platform itself: Alg. 3 runner, tuning, budgets, skyline.

Quickstart::

    import numpy as np
    from repro import datasets, diffusion, algorithms

    graph = diffusion.WC.weighted(datasets.load("nethept"))
    algo = algorithms.make("IMM", epsilon=0.5, rr_scale=0.05)
    result = algo.select(graph, k=20, model=diffusion.WC,
                         rng=np.random.default_rng(0))
    sigma = diffusion.monte_carlo_spread(graph, result.seeds, diffusion.WC,
                                         r=1000)
    print(result.seeds, sigma.mean)
"""

from . import algorithms, datasets, diffusion, framework, graph
from . import core

__version__ = "1.0.0"

__all__ = [
    "algorithms",
    "core",
    "datasets",
    "diffusion",
    "framework",
    "graph",
    "__version__",
]

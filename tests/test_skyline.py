"""Tests for the skyline analysis and decision tree (Fig. 11)."""

import pytest

from repro.framework.skyline import PillarScores, classify_pillars, recommend, skyline


def score(name, q, t, m):
    return PillarScores(name=name, quality=q, time_seconds=t, memory_mb=m)


class TestDominance:
    def test_strict_dominance(self):
        a = score("a", 100, 1.0, 10)
        b = score("b", 90, 2.0, 20)
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_incomparable(self):
        fast = score("fast", 80, 0.1, 50)
        lean = score("lean", 80, 5.0, 1)
        assert not fast.dominates(lean)
        assert not lean.dominates(fast)

    def test_equal_points_do_not_dominate(self):
        a = score("a", 50, 1.0, 5)
        b = score("b", 50, 1.0, 5)
        assert not a.dominates(b)


class TestSkyline:
    def test_dominated_removed(self):
        pts = [score("good", 100, 1, 1), score("bad", 50, 2, 2)]
        sky = skyline(pts)
        assert [s.name for s in sky] == ["good"]

    def test_incomparable_all_kept(self):
        pts = [
            score("quality", 100, 10, 100),
            score("speed", 50, 0.1, 100),
            score("memory", 50, 10, 1),
        ]
        assert len(skyline(pts)) == 3

    def test_empty(self):
        assert skyline([]) == []


class TestClassification:
    def test_no_triple_pillar_when_tradeoffs_exist(self):
        # The paper's conclusion: nobody stands on all three pillars.
        pts = [
            score("TIM/IMM", 100, 0.5, 500),     # Q + E
            score("CELF", 100, 500.0, 5),        # Q + M
            score("EaSyIM", 80, 1.0, 5),         # E + M
        ]
        pillars = classify_pillars(pts)
        assert pillars["TIM/IMM"] == {"Q", "E"}
        assert pillars["CELF"] == {"Q", "M"}
        assert pillars["EaSyIM"] == {"E", "M"}
        assert all(len(p) < 3 for p in pillars.values())

    def test_empty_input(self):
        assert classify_pillars([]) == {}


class TestDecisionTree:
    """Fig. 11b verbatim."""

    def test_ample_memory_branch(self):
        assert recommend("LT") == "TIM+"
        assert recommend("WC") == "IMM"
        assert recommend("IC") == "PMC"

    def test_memory_scarce_branch(self):
        for model in ("IC", "WC", "LT"):
            assert recommend(model, memory_constrained=True) == "EaSyIM"

    def test_case_insensitive(self):
        assert recommend("wc") == "IMM"

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            recommend("SIR")

"""Tests for partition-aware sharded fan-out.

Two layers: the deterministic edge-cut partitioner
(:mod:`repro.graph.partition`) and the pool's shard scheduling plus the
path engine's partition-grouped chunk composition.  The load-bearing
claim everywhere is *byte-identity*: sharding decides scheduling and
chunk composition, never values, so every engine must produce exactly
the same seeds/spreads/structures at any shard count.
"""

import os

import numpy as np
import pytest

from repro.algorithms.imm import IMM
from repro.algorithms.ris import RIS
from repro.diffusion.models import Dynamics, WC
from repro.diffusion.paths import (
    _kernel_chunk,
    batched_max_prob_paths,
    build_dag_store,
    build_tree_store,
)
from repro.diffusion.simulation import monte_carlo_spread
from repro.framework.pool import PoolConfig, run_chunks, shards_env
from repro.framework.telemetry import Telemetry, activate
from repro.graph.digraph import DiGraph
from repro.graph.generators import build, powerlaw_configuration
from repro.graph.partition import cut_fraction, edge_cut_partition

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="process pools need fork/spawn support"
)


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(7)
    return WC.weighted(build(powerlaw_configuration(120, 2.3, 4.0, rng)), rng)


def _draw_bytes(seed_sequence_state, n):
    rng = np.random.default_rng(np.random.SeedSequence(**seed_sequence_state))
    return rng.random(n).tobytes()


# ----------------------------------------------------------------------
# The partitioner


class TestEdgeCutPartition:
    def test_labels_complete_and_in_range(self, graph):
        for shards in (2, 3, 7):
            labels = edge_cut_partition(graph, shards)
            assert labels.shape == (graph.n,)
            assert labels.min() >= 0 and labels.max() < shards

    def test_balance_is_exact(self, graph):
        for shards in (2, 3, 5):
            labels = edge_cut_partition(graph, shards)
            target = -(-graph.n // shards)
            counts = np.bincount(labels, minlength=shards)
            # Every shard except the last holds exactly ceil(n/shards).
            assert (counts[:-1] == target).all()
            assert counts.sum() == graph.n

    def test_deterministic(self, graph):
        a = edge_cut_partition(graph, 4)
        b = edge_cut_partition(graph, 4)
        assert np.array_equal(a, b)

    def test_single_shard_and_empty(self):
        g = DiGraph.from_arrays(5, [0, 1], [1, 2])
        assert np.array_equal(edge_cut_partition(g, 1), np.zeros(5))
        empty = DiGraph.from_arrays(0, [], [])
        assert edge_cut_partition(empty, 3).size == 0

    def test_more_shards_than_nodes_clamps(self):
        g = DiGraph.from_arrays(3, [0, 1], [1, 2])
        labels = edge_cut_partition(g, 10)
        assert labels.max() < 3

    def test_rejects_nonpositive_shards(self, graph):
        with pytest.raises(ValueError):
            edge_cut_partition(graph, 0)

    def test_cut_fraction_bounds_and_exactness(self, graph):
        labels = edge_cut_partition(graph, 3)
        frac = cut_fraction(graph, labels)
        assert 0.0 <= frac <= 1.0
        manual = (
            labels[graph.edge_src] != labels[graph.out_dst]
        ).sum() / graph.m
        assert frac == pytest.approx(manual)
        # One shard cuts nothing.
        assert cut_fraction(graph, np.zeros(graph.n, dtype=np.int64)) == 0.0

    def test_bfs_growth_beats_round_robin_cut(self, graph):
        # The point of region growth: fewer cross-shard edges than a
        # locality-blind striped assignment of the same balance.
        labels = edge_cut_partition(graph, 3)
        striped = np.arange(graph.n, dtype=np.int64) % 3
        assert cut_fraction(graph, labels) < cut_fraction(graph, striped)


# ----------------------------------------------------------------------
# Configuration plumbing


class TestShardConfig:
    def test_from_env_reads_shards(self, monkeypatch):
        assert PoolConfig.from_env().shards == 1
        monkeypatch.setenv("REPRO_BENCH_SHARDS", "5")
        assert PoolConfig.from_env().shards == 5
        monkeypatch.setenv("REPRO_BENCH_SHARDS", "0")
        assert PoolConfig.from_env().shards == 1

    def test_shards_env_scoping(self):
        key = "REPRO_BENCH_SHARDS"
        assert os.environ.get(key) is None
        with shards_env(3):
            assert os.environ[key] == "3"
            assert PoolConfig.from_env().shards == 3
        assert os.environ.get(key) is None
        with shards_env(None):  # no-op
            assert os.environ.get(key) is None


# ----------------------------------------------------------------------
# Pool scheduling byte-identity


class TestShardedPool:
    def test_results_identical_at_any_shard_count(self):
        args = [
            ({"entropy": 99, "spawn_key": (i,)}, 500) for i in range(6)
        ]
        baseline = run_chunks(_draw_bytes, args, workers=3)
        for shards in (2, 3, 6):
            tele = Telemetry()
            with activate(tele):
                sharded = run_chunks(
                    _draw_bytes, args, workers=3,
                    config=PoolConfig(shards=shards),
                )
            assert sharded == baseline
            assert tele.counters["pool.shards"] == shards

    def test_shards_clamped_to_chunks(self):
        args = [({"entropy": 1, "spawn_key": (i,)}, 100) for i in range(2)]
        out = run_chunks(
            _draw_bytes, args, workers=2, config=PoolConfig(shards=16)
        )
        assert out == run_chunks(_draw_bytes, args, workers=2)

    def test_no_shard_counter_when_off(self):
        args = [({"entropy": 1, "spawn_key": (i,)}, 100) for i in range(3)]
        tele = Telemetry()
        with activate(tele):
            run_chunks(_draw_bytes, args, workers=3)
        assert "pool.shards" not in tele.counters


# ----------------------------------------------------------------------
# Engines: sharded vs unsharded byte-identity


def _select(algo, graph, k, rng_seed=11):
    return algo.select(graph, k, WC, rng=np.random.default_rng(rng_seed)).seeds


class TestEngineByteIdentity:
    def test_ris_sharded_identical(self, graph):
        baseline = _select(RIS(num_rr_sets=900, rr_workers=3), graph, 5)
        tele = Telemetry()
        with activate(tele), shards_env(3):
            sharded = _select(RIS(num_rr_sets=900, rr_workers=3), graph, 5)
        assert sharded == baseline
        assert tele.counters["pool.shards"] == 3

    def test_imm_sharded_identical(self, graph):
        algo = lambda: IMM(epsilon=0.5, rr_scale=0.02, rr_workers=3)  # noqa: E731
        baseline = _select(algo(), graph, 5)
        with shards_env(2):
            sharded = _select(algo(), graph, 5)
        assert sharded == baseline

    def test_monte_carlo_sharded_identical(self, graph):
        est = monte_carlo_spread(
            graph, [0, 3], WC, r=60, rng=np.random.default_rng(2), workers=3
        )
        with shards_env(3):
            sharded = monte_carlo_spread(
                graph, [0, 3], WC, r=60, rng=np.random.default_rng(2),
                workers=3,
            )
        assert sharded.mean == est.mean and sharded.std == est.std


class TestPathEnginePartitionGrouping:
    def test_batched_paths_sharded_bitwise_equal(self, graph):
        sources = np.arange(graph.n, dtype=np.int64)
        plain = batched_max_prob_paths(graph, sources, 0.01, reverse=True)
        parallel = batched_max_prob_paths(
            graph, sources, 0.01, reverse=True, workers=3
        )
        tele = Telemetry()
        with activate(tele), shards_env(3):
            sharded = batched_max_prob_paths(
                graph, sources, 0.01, reverse=True, workers=3
            )
        assert tele.counters["paths.partition_grouped"] == graph.n
        for got in (parallel, sharded):
            assert np.array_equal(got.ptr, plain.ptr)
            assert np.array_equal(got.node, plain.node)
            assert np.array_equal(got.pp, plain.pp)
            assert np.array_equal(got.parent_pos, plain.parent_pos)
            assert np.array_equal(got.parent_w, plain.parent_w)

    def test_forward_orientation_sharded_bitwise_equal(self, graph):
        sources = np.arange(0, graph.n, 2, dtype=np.int64)
        plain = batched_max_prob_paths(graph, sources, 0.02, reverse=False)
        with shards_env(2):
            sharded = batched_max_prob_paths(
                graph, sources, 0.02, reverse=False, workers=2
            )
        assert np.array_equal(sharded.ptr, plain.ptr)
        assert np.array_equal(sharded.node, plain.node)
        assert np.array_equal(sharded.pp, plain.pp)

    def test_dag_store_sharded_bitwise_equal(self, graph):
        plain = build_dag_store(graph, 0.05)
        with shards_env(3):
            sharded = build_dag_store(graph, 0.05, workers=3)
        assert len(sharded.structures) == len(plain.structures)
        for a, b in zip(sharded.structures, plain.structures):
            assert a.root == b.root
            assert np.array_equal(a.nodes, b.nodes)
            assert np.array_equal(a.pp, b.pp)
            assert np.array_equal(a.e_tpos, b.e_tpos)
            assert np.array_equal(a.e_spos, b.e_spos)
            assert np.array_equal(a.e_w, b.e_w)

    def test_tree_store_sharded_bitwise_equal(self, graph):
        plain = build_tree_store(graph, 0.05)
        with shards_env(2):
            sharded = build_tree_store(graph, 0.05, workers=3)
        assert len(sharded.structures) == len(plain.structures)
        for a, b in zip(sharded.structures, plain.structures):
            assert a.root == b.root
            assert np.array_equal(a.nodes, b.nodes)
            assert np.array_equal(a.pp, b.pp)
            assert np.array_equal(a.e_w, b.e_w)

    def test_kernel_rows_independent_of_batch_composition(self, graph):
        # The invariant that makes partition grouping safe: each row of
        # the batched kernel is a pure function of its own source.
        sources = np.array([3, 17, 42, 80], dtype=np.int64)
        together = _kernel_chunk(graph, 0.01, True, None, sources)
        ptr = together[0]
        for i, s in enumerate(sources):
            alone = _kernel_chunk(
                graph, 0.01, True, None, np.array([s], dtype=np.int64)
            )
            sl = slice(int(ptr[i]), int(ptr[i + 1]))
            for j in range(1, 6):
                assert np.array_equal(together[j][sl], alone[j])

    def test_grouping_inactive_for_few_items(self, graph):
        # len(items) <= shards: grouping is skipped (nothing to gain).
        sources = np.arange(2, dtype=np.int64)
        tele = Telemetry()
        with activate(tele), shards_env(4):
            batched_max_prob_paths(graph, sources, 0.01, reverse=True,
                                   workers=2)
        assert "paths.partition_grouped" not in tele.counters

"""Tests for GREEDY, CELF and CELF++ — the spread-simulation family."""

import numpy as np
import pytest

from repro.algorithms.celf import CELF, CELFpp
from repro.algorithms.greedy import Greedy
from repro.diffusion.models import IC, LT, Dynamics
from repro.diffusion.simulation import monte_carlo_spread
from repro.graph.digraph import DiGraph


@pytest.fixture
def clear_winner():
    """Node 0 reaches 5 nodes with certainty; everyone else reaches <= 1."""
    edges = [(0, i) for i in range(1, 6)] + [(6, 7)]
    weights = [1.0] * 5 + [1.0]
    return DiGraph.from_edges(8, edges, weights=weights)


ALGOS = [Greedy, CELF, CELFpp]


class TestSeedQuality:
    @pytest.mark.parametrize("cls", ALGOS)
    def test_picks_clear_winner_first(self, cls, clear_winner, rng):
        res = cls(mc_simulations=30).select(clear_winner, 1, IC, rng=rng)
        assert res.seeds == [0]

    @pytest.mark.parametrize("cls", ALGOS)
    def test_second_pick_is_marginal(self, cls, clear_winner, rng):
        res = cls(mc_simulations=30).select(clear_winner, 2, IC, rng=rng)
        assert res.seeds[0] == 0
        assert res.seeds[1] == 6  # the only node adding 2 new activations

    @pytest.mark.parametrize("cls", ALGOS)
    def test_runs_under_lt(self, cls, two_cliques, rng):
        res = cls(mc_simulations=20).select(two_cliques, 2, LT, rng=rng)
        assert len(res.seeds) == 2

    def test_all_three_agree_on_deterministic_graph(self, clear_winner, rng):
        picks = [
            cls(mc_simulations=20).select(clear_winner, 2, IC, rng=rng).seeds
            for cls in ALGOS
        ]
        assert picks[0] == picks[1] == picks[2]


class TestLaziness:
    def test_celf_lookups_do_not_exceed_greedy(self, two_cliques):
        k = 3
        greedy = Greedy(mc_simulations=30).select(
            two_cliques, k, IC, rng=np.random.default_rng(0)
        )
        celf = CELF(mc_simulations=30).select(
            two_cliques, k, IC, rng=np.random.default_rng(0)
        )
        g_lookups = sum(greedy.extras["node_lookups_per_iteration"])
        c_lookups = sum(celf.extras["node_lookups_per_iteration"])
        assert c_lookups <= g_lookups

    def test_first_iteration_scans_all_nodes(self, two_cliques, rng):
        res = CELF(mc_simulations=10).select(two_cliques, 2, IC, rng=rng)
        assert res.extras["node_lookups_per_iteration"][0] == two_cliques.n

    def test_lookup_counters_have_one_entry_per_iteration(self, two_cliques, rng):
        res = CELF(mc_simulations=10).select(two_cliques, 3, IC, rng=rng)
        assert len(res.extras["node_lookups_per_iteration"]) == 3

    def test_celfpp_counts_lookups_too(self, two_cliques, rng):
        res = CELFpp(mc_simulations=10).select(two_cliques, 3, IC, rng=rng)
        lookups = res.extras["node_lookups_per_iteration"]
        assert len(lookups) == 3
        assert lookups[0] == two_cliques.n


class TestQualityVsMCCount:
    def test_more_simulations_do_not_hurt(self, two_cliques):
        """Myth M2 mechanism: CELF quality depends on the MC count."""
        spreads = []
        for r in (2, 200):
            res = CELF(mc_simulations=r).select(
                two_cliques, 2, IC, rng=np.random.default_rng(1)
            )
            est = monte_carlo_spread(
                two_cliques, res.seeds, Dynamics.IC, r=3000,
                rng=np.random.default_rng(2),
            )
            spreads.append(est.mean)
        assert spreads[1] >= spreads[0] - 0.35

    def test_invalid_simulation_count(self):
        with pytest.raises(ValueError):
            CELF(mc_simulations=0)
        with pytest.raises(ValueError):
            CELFpp(mc_simulations=-5)
        with pytest.raises(ValueError):
            Greedy(mc_simulations=0)


class TestEstimatedSpread:
    @pytest.mark.parametrize("cls", ALGOS)
    def test_estimated_spread_reported(self, cls, clear_winner, rng):
        res = cls(mc_simulations=30).select(clear_winner, 2, IC, rng=rng)
        assert res.extras["estimated_spread"] == pytest.approx(8.0, abs=0.5)

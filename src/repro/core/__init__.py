"""The paper's primary contribution, re-exported under ``repro.core``.

The contribution of the benchmarking paper *is* the platform of Fig. 2:
the generalized IM module (Alg. 3), the decoupled spread computation, the
parameter-tuning procedure, resource budgeting, and the skyline insights.
Those live in :mod:`repro.framework`; this package aliases them at the
conventional ``repro.core`` location.
"""

from ..framework import (
    FrameworkTrace,
    IMFramework,
    MCConvergencePoint,
    Measurement,
    PillarScores,
    ResourceBudget,
    RunRecord,
    SweepPoint,
    TuningResult,
    classify_pillars,
    converged,
    load_records,
    mc_convergence_study,
    measure,
    recommend,
    render_series,
    render_table,
    run_with_budget,
    save_records,
    skyline,
    tune_parameter,
)

__all__ = [
    "FrameworkTrace",
    "IMFramework",
    "MCConvergencePoint",
    "Measurement",
    "PillarScores",
    "ResourceBudget",
    "RunRecord",
    "SweepPoint",
    "TuningResult",
    "classify_pillars",
    "converged",
    "load_records",
    "mc_convergence_study",
    "measure",
    "recommend",
    "render_series",
    "render_table",
    "run_with_budget",
    "save_records",
    "skyline",
    "tune_parameter",
]

"""Influence-probability estimators over action logs.

The three static models of Goyal, Bonchi & Lakshmanan (WSDM'10), adapted
to directed graphs:

* :func:`bernoulli` — maximum-likelihood frequency:
  ``p(u,v) = A_{v|u} / A_u`` where ``A_{v|u}`` counts actions ``v``
  performed *after* ``u`` (a successful propagation along the edge) and
  ``A_u`` counts ``u``'s actions (the trials).
* :func:`jaccard` — ``A_{v|u} / A_{u ∪ v}``, normalizing by joint
  activity; more robust when activity levels are wildly uneven.
* :func:`partial_credits` — when ``v`` acts after several of its
  in-neighbours, each gets credit ``1/(number of prior active parents)``
  instead of full credit, avoiding systematic over-counting at
  high-in-degree nodes.

All estimators return a weighted copy of the input topology; edges never
observed propagating get ``default`` (0 by default — never seen, never
believed).
"""

from __future__ import annotations

import numpy as np

from ..graph.digraph import DiGraph
from .traces import ActionLog

__all__ = ["bernoulli", "jaccard", "partial_credits"]


def _edge_statistics(graph: DiGraph, log: ActionLog):
    """Per-edge counts shared by the estimators.

    Returns (successes, trials, joint, credits) arrays aligned with the
    graph's out-CSR edge order.
    """
    m = graph.m
    successes = np.zeros(m, dtype=np.float64)
    credits = np.zeros(m, dtype=np.float64)
    joint = np.zeros(m, dtype=np.float64)
    trials = np.zeros(graph.n, dtype=np.float64)
    acted = np.zeros(graph.n, dtype=np.float64)

    # Edge index lookup: (u, v) -> position in out-CSR order.
    edge_pos: dict[tuple[int, int], int] = {}
    src = graph.edge_src
    for j in range(m):
        edge_pos[(int(src[j]), int(graph.out_dst[j]))] = j

    for action in log.actions:
        for u in action:
            trials[u] += 1
            acted[u] += 1
        for v, tv in action.items():
            # In-neighbours of v that acted strictly before it.
            parents = [
                u for u in action
                if action[u] < tv and (u, v) in edge_pos
            ]
            for u in parents:
                j = edge_pos[(u, v)]
                successes[j] += 1
                credits[j] += 1.0 / len(parents)
        # Joint activity per edge where either endpoint acted.
        for (u, v), j in edge_pos.items():
            if u in action or v in action:
                joint[j] += 1
    return successes, trials, joint, credits


def _weighted(graph: DiGraph, numerator, denominator, default: float) -> DiGraph:
    with np.errstate(divide="ignore", invalid="ignore"):
        w = np.where(denominator > 0, numerator / denominator, default)
    return graph.with_weights(np.clip(w, 0.0, 1.0))


def bernoulli(graph: DiGraph, log: ActionLog, default: float = 0.0) -> DiGraph:
    """MLE frequency estimate p(u,v) = successes(u,v) / trials(u)."""
    successes, trials, __, __c = _edge_statistics(graph, log)
    return _weighted(graph, successes, trials[graph.edge_src], default)


def jaccard(graph: DiGraph, log: ActionLog, default: float = 0.0) -> DiGraph:
    """Jaccard estimate p(u,v) = successes(u,v) / joint-activity(u,v)."""
    successes, __, joint, __c = _edge_statistics(graph, log)
    return _weighted(graph, successes, joint, default)


def partial_credits(
    graph: DiGraph, log: ActionLog, default: float = 0.0
) -> DiGraph:
    """Credit-shared estimate p(u,v) = credits(u,v) / trials(u)."""
    __, trials, __j, credits = _edge_statistics(graph, log)
    return _weighted(graph, credits, trials[graph.edge_src], default)

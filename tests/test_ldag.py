"""Tests for LDAG: local DAG construction and LT-linear greedy selection."""

import numpy as np
import pytest

from repro.algorithms.ldag import LDAG, build_ldag
from repro.diffusion.models import IC, LT
from repro.diffusion.simulation import monte_carlo_spread
from repro.graph.digraph import DiGraph
from tests.oracles import exact_lt_spread


@pytest.fixture
def lt_chain():
    """0 -> 1 -> 2 with weight-1 edges (LT-uniform on a chain)."""
    return DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[1.0, 1.0])


class TestBuildLDAG:
    def test_chain_dag_contains_all_ancestors(self, lt_chain):
        dag = build_ldag(lt_chain, 2, eta=1 / 320)
        assert dag.nodes == {0, 1, 2}

    def test_threshold_prunes_far_nodes(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.1, 0.1])
        dag = build_ldag(g, 2, eta=0.05)
        assert 1 in dag.nodes
        assert 0 not in dag.nodes  # path product 0.01 < 0.05

    def test_edges_point_toward_root(self, lt_chain):
        dag = build_ldag(lt_chain, 2, eta=1 / 320)
        # In-edges of 2 inside the DAG come only from farther node 1.
        assert [y for y, __ in dag.in_edges[2]] == [1]
        assert [y for y, __ in dag.in_edges[1]] == [0]
        assert dag.in_edges[0] == []

    def test_order_is_topological(self, lt_chain):
        dag = build_ldag(lt_chain, 2, eta=1 / 320)
        position = {u: i for i, u in enumerate(dag.order)}
        for x in dag.order:
            for y, __ in dag.in_edges[x]:
                assert position[y] < position[x]

    def test_cycle_broken_acyclically(self):
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)], weights=[0.5, 0.5])
        dag = build_ldag(g, 0, eta=0.1)
        position = {u: i for i, u in enumerate(dag.order)}
        for x in dag.order:
            for y, __ in dag.in_edges[x]:
                assert position[y] < position[x]


class TestActivationProbability:
    def test_forward_ap_linear(self, lt_chain):
        dag = build_ldag(lt_chain, 2, eta=1 / 320)
        in_seed = np.zeros(3, dtype=bool)
        in_seed[0] = True
        LDAG._forward_ap(dag, in_seed)
        assert dag.ap[0] == 1.0
        assert dag.ap[1] == pytest.approx(1.0)
        assert dag.ap[2] == pytest.approx(1.0)

    def test_ap_product_along_weights(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.5, 0.4])
        dag = build_ldag(g, 2, eta=0.01)
        in_seed = np.zeros(3, dtype=bool)
        in_seed[0] = True
        LDAG._forward_ap(dag, in_seed)
        assert dag.ap[1] == pytest.approx(0.5)
        assert dag.ap[2] == pytest.approx(0.2)

    def test_alpha_is_path_weight(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.5, 0.4])
        dag = build_ldag(g, 2, eta=0.01)
        in_seed = np.zeros(3, dtype=bool)
        LDAG._backward_alpha(dag, in_seed)
        assert dag.alpha[2] == 1.0
        assert dag.alpha[1] == pytest.approx(0.4)
        assert dag.alpha[0] == pytest.approx(0.2)

    def test_alpha_blocked_by_seed(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.5, 0.4])
        dag = build_ldag(g, 2, eta=0.01)
        in_seed = np.zeros(3, dtype=bool)
        in_seed[1] = True
        LDAG._backward_alpha(dag, in_seed)
        assert dag.alpha[0] == 0.0  # influence to 2 only flows through seed 1

    def test_alpha_zero_when_root_seeded(self, lt_chain):
        dag = build_ldag(lt_chain, 2, eta=0.01)
        in_seed = np.zeros(3, dtype=bool)
        in_seed[2] = True
        LDAG._backward_alpha(dag, in_seed)
        assert all(a == 0.0 for a in dag.alpha.values())


class TestSelection:
    def test_chain_picks_head(self, lt_chain, rng):
        res = LDAG().select(lt_chain, 1, LT, rng=rng)
        assert res.seeds == [0]

    def test_rejects_ic(self, lt_chain, rng):
        with pytest.raises(ValueError):
            LDAG().select(lt_chain, 1, IC, rng=rng)

    def test_matches_exact_greedy_on_tree(self, rng):
        # On a DAG the LDAG computation is exact, so its first seed must be
        # the true argmax of exact LT spread.
        g = DiGraph.from_edges(
            6, [(0, 1), (0, 2), (1, 3), (2, 4), (5, 4)],
            weights=[0.5, 0.5, 0.5, 0.5, 0.5],
        )
        res = LDAG().select(g, 1, LT, rng=rng)
        spreads = {v: exact_lt_spread(g, [v]) for v in range(6)}
        assert res.seeds[0] == max(spreads, key=spreads.get)

    def test_quality_close_to_mc(self, rng):
        trial_rng = np.random.default_rng(0)
        g = DiGraph.from_arrays(
            40, trial_rng.integers(0, 40, 120), trial_rng.integers(0, 40, 120)
        )
        from repro.diffusion.models import LT as LTModel

        wg = LTModel.weighted(g)
        res = LDAG().select(wg, 3, LTModel, rng=rng)
        got = monte_carlo_spread(wg, res.seeds, LTModel, r=2000, rng=rng).mean
        # Compare against degree heuristic — LDAG should not be worse.
        order = np.argsort(-wg.out_degree())[:3]
        base = monte_carlo_spread(wg, list(order), LTModel, r=2000, rng=rng).mean
        assert got >= 0.9 * base

    def test_invalid_eta(self):
        with pytest.raises(ValueError):
            LDAG(eta=0.0)
        with pytest.raises(ValueError):
            LDAG(eta=2.0)

    def test_extras_report_dag_sizes(self, lt_chain, rng):
        res = LDAG().select(lt_chain, 1, LT, rng=rng)
        assert res.extras["total_dag_nodes"] >= 3
        assert res.extras["avg_dag_size"] > 0

"""Unit tests for the batched cascade kernels and the spread-oracle layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import registry
from repro.diffusion import oracle as oracle_mod
from repro.diffusion._frontier import expand_slices, gather_csr, gather_edges
from repro.diffusion.batched import (
    batched_cascades,
    simulate_ic_batch,
    simulate_lt_batch,
)
from repro.diffusion.models import Dynamics, WC
from repro.diffusion.oracle import (
    BatchedMCOracle,
    GainCache,
    SequentialMCOracle,
    SketchOracle,
    SnapshotOracle,
    make_oracle,
)
from repro.diffusion.simulation import monte_carlo_spread
from repro.graph.digraph import DiGraph
from repro.graph.generators import build, powerlaw_configuration


@pytest.fixture
def sure_line():
    """0 -> 1 -> 2 -> 3 with weight 1.0: every cascade activates everything."""
    return DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)], weights=[1.0, 1.0, 1.0])


@pytest.fixture
def dead_line():
    """0 -> 1 -> 2 with weight 0.0: no cascade ever leaves the seeds."""
    return DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.0, 0.0])


@pytest.fixture(scope="module")
def small_powerlaw():
    rng = np.random.default_rng(404)
    return WC.weighted(build(powerlaw_configuration(80, 2.3, 4.0, rng)), rng)


class TestFrontierHelpers:
    def test_empty_frontier_fast_path(self, sure_line):
        assert expand_slices(sure_line.out_ptr, np.empty(0, dtype=np.int64)).size == 0
        assert gather_edges(sure_line.out_ptr, []).size == 0

    def test_expand_slices_matches_manual(self, small_powerlaw):
        graph = small_powerlaw
        nodes = np.array([0, 3, 17, 40], dtype=np.int64)
        manual = np.concatenate(
            [
                np.arange(graph.out_ptr[v], graph.out_ptr[v + 1], dtype=np.int64)
                for v in nodes
            ]
        )
        np.testing.assert_array_equal(expand_slices(graph.out_ptr, nodes), manual)

    def test_gather_csr_matches_fancy_index(self, small_powerlaw):
        graph = small_powerlaw
        nodes = np.array([1, 2, 5], dtype=np.int64)
        idx = expand_slices(graph.out_ptr, nodes)
        np.testing.assert_array_equal(
            gather_csr(graph.out_ptr, graph.out_dst, nodes), graph.out_dst[idx]
        )


class TestBatchedKernels:
    def test_ic_sure_edges_activate_everything(self, sure_line, rng):
        active = simulate_ic_batch(sure_line, [0], rng, batch=5)
        assert active.shape == (5, 4)
        assert active.all()

    def test_ic_dead_edges_stay_at_seeds(self, dead_line, rng):
        active = simulate_ic_batch(dead_line, [0], rng, batch=4)
        np.testing.assert_array_equal(active.sum(axis=1), np.ones(4))
        assert active[:, 0].all()

    def test_lt_sure_edges_activate_everything(self, sure_line, rng):
        # In-weight 1.0 >= theta for any theta drawn from [0, 1).
        active = simulate_lt_batch(sure_line, [0], rng, batch=5)
        assert active.all()

    def test_empty_seed_set(self, sure_line, rng):
        for fn in (simulate_ic_batch, simulate_lt_batch):
            assert not fn(sure_line, [], rng, batch=3).any()

    def test_batch_must_be_positive(self, sure_line, rng):
        with pytest.raises(ValueError):
            simulate_ic_batch(sure_line, [0], rng, batch=0)
        with pytest.raises(ValueError):
            batched_cascades(sure_line, [0], Dynamics.LT, rng, 0)

    def test_lt_threshold_shape_validated(self, sure_line, rng):
        with pytest.raises(ValueError):
            simulate_lt_batch(sure_line, [0], rng, batch=2, thresholds=np.zeros(4))

    def test_mc_batch_composes_with_ragged_r(self, small_powerlaw):
        # r not a multiple of batch still yields exactly r samples.
        est, samples = monte_carlo_spread(
            small_powerlaw, [0, 3], Dynamics.IC, r=23,
            rng=np.random.default_rng(8), batch=10, return_samples=True,
        )
        assert samples.shape == (23,)
        assert est.simulations == 23

    def test_mc_batch_must_be_positive(self, small_powerlaw):
        with pytest.raises(ValueError):
            monte_carlo_spread(
                small_powerlaw, [0], Dynamics.IC, r=5,
                rng=np.random.default_rng(1), batch=0,
            )

    def test_single_sample_std_is_finite(self, small_powerlaw):
        est = monte_carlo_spread(
            small_powerlaw, [0], Dynamics.IC, r=1, rng=np.random.default_rng(2)
        )
        assert est.std == 0.0
        assert np.isfinite(est.stderr)


class TestOracleBackends:
    def test_serial_oracle_preserves_rng_stream(self, small_powerlaw):
        oracle = SequentialMCOracle(
            small_powerlaw, Dynamics.IC, 40, np.random.default_rng(3)
        )
        value = oracle.gain(2)
        expected = monte_carlo_spread(
            small_powerlaw, [2], Dynamics.IC, r=40, rng=np.random.default_rng(3)
        ).mean
        assert value == expected
        assert oracle.evaluations == 1

    def test_batched_oracle_is_repeatable(self, small_powerlaw):
        oracle = BatchedMCOracle(
            small_powerlaw, Dynamics.IC, 40, np.random.default_rng(3), batch=16
        )
        first = oracle.evaluate([1, 4])
        second = oracle.evaluate([4, 1])  # order-insensitive key
        assert first == second
        assert oracle.evaluations == 1  # the repeat was served from cache

    def test_snapshot_commit_matches_evaluate(self, small_powerlaw):
        oracle = SnapshotOracle(
            small_powerlaw, Dynamics.IC, 60, np.random.default_rng(5)
        )
        for v in (0, 7, 13):
            oracle.commit(v)
        # Sum of per-world marginals must equal the world-average sigma of
        # the committed set — the covered-mask blocking is exact.
        assert oracle.committed_sigma == pytest.approx(
            oracle.evaluate([0, 7, 13]), abs=1e-12
        )

    def test_snapshot_exact_on_deterministic_graph(self, sure_line):
        oracle = SnapshotOracle(sure_line, Dynamics.IC, 8, np.random.default_rng(1))
        assert oracle.evaluate([0]) == 4.0
        assert oracle.gain(1) == 3.0
        oracle.commit(0)
        assert oracle.gain(1) == 0.0  # everything already covered

    def test_sketch_bound_dominates_gain_when_exact(self, sure_line):
        # sketch_k > n: every sketch holds all ranks, so the estimate is
        # the exact reach count and the bound dominates any marginal gain.
        oracle = SketchOracle(
            sure_line, Dynamics.IC, 8, np.random.default_rng(1), sketch_k=16
        )
        for v in range(sure_line.n):
            assert oracle.gain_bound(v) >= oracle.gain(v)

    def test_make_oracle_resolution(self, small_powerlaw):
        rng = np.random.default_rng(0)
        assert isinstance(
            make_oracle(None, small_powerlaw, Dynamics.IC, rng, mc_simulations=10),
            SequentialMCOracle,
        )
        assert isinstance(
            make_oracle(
                None, small_powerlaw, Dynamics.IC, rng,
                mc_simulations=10, mc_batch=8,
            ),
            BatchedMCOracle,
        )
        with pytest.raises(ValueError, match="unknown spread oracle"):
            make_oracle("bogus", small_powerlaw, Dynamics.IC, rng, mc_simulations=10)


class TestGainCache:
    def test_deterministic_backend_hits(self, small_powerlaw):
        oracle = BatchedMCOracle(
            small_powerlaw, Dynamics.IC, 20, np.random.default_rng(3), batch=8
        )
        cache = GainCache()
        first = cache.gain(oracle, 5)
        second = cache.gain(oracle, 5)
        assert first == second
        assert (cache.hits, cache.misses) == (1, 1)

    def test_commit_invalidates_by_key(self, small_powerlaw):
        oracle = BatchedMCOracle(
            small_powerlaw, Dynamics.IC, 20, np.random.default_rng(3), batch=8
        )
        cache = GainCache()
        cache.gain(oracle, 5)
        oracle.commit(9, 0.0)
        cache.gain(oracle, 5)  # new committed set -> new key -> miss
        assert (cache.hits, cache.misses) == (0, 2)

    def test_stochastic_backend_bypasses(self, small_powerlaw):
        oracle = SequentialMCOracle(
            small_powerlaw, Dynamics.IC, 20, np.random.default_rng(3)
        )
        cache = GainCache()
        cache.gain(oracle, 5)
        cache.gain(oracle, 5)
        assert (cache.hits, cache.misses) == (0, 2)
        assert oracle.evaluations == 2  # every query re-simulates


class TestAlgorithmsWithOracles:
    @pytest.mark.parametrize("name", ["GREEDY", "CELF", "CELF++"])
    @pytest.mark.parametrize("backend", ["batched", "snapshot", "sketch"])
    def test_backends_produce_valid_selections(self, small_powerlaw, name, backend):
        algo = registry.make(
            name, mc_simulations=20, spread_oracle=backend,
            mc_batch=16, num_worlds=20,
        )
        result = algo.select(small_powerlaw, 4, WC, rng=np.random.default_rng(9))
        assert len(result.seeds) == 4
        assert result.extras["spread_oracle"] == backend
        assert result.extras["sigma_evaluations"] > 0
        assert result.extras["estimated_spread"] > 0

    def test_default_path_reports_serial_backend(self, small_powerlaw):
        result = registry.make("CELF", mc_simulations=5).select(
            small_powerlaw, 2, WC, rng=np.random.default_rng(9)
        )
        assert result.extras["spread_oracle"] == "serial"
        assert result.extras["gain_cache_hits"] == 0

    def test_celfpp_lookahead_becomes_cache_hits(self, small_powerlaw):
        # mg2 is stored under (S u {cur_best}, v); once cur_best is picked,
        # v's next re-lookup is served from the memo.
        result = registry.make(
            "CELF++", mc_simulations=20, spread_oracle="batched", mc_batch=16
        ).select(small_powerlaw, 5, WC, rng=np.random.default_rng(9))
        assert result.extras["gain_cache_hits"] > 0

    def test_sketch_backend_skips_initial_scan(self, small_powerlaw):
        full = registry.make(
            "CELF", mc_simulations=20, spread_oracle="snapshot", num_worlds=20
        ).select(small_powerlaw, 3, WC, rng=np.random.default_rng(9))
        lazy = registry.make(
            "CELF", mc_simulations=20, spread_oracle="sketch", num_worlds=20
        ).select(small_powerlaw, 3, WC, rng=np.random.default_rng(9))
        assert (
            lazy.extras["sigma_evaluations"] < full.extras["sigma_evaluations"]
        )

    def test_invalid_oracle_knobs_rejected(self):
        for kwargs in (
            {"mc_batch": 0},
            {"mc_workers": 0},
            {"num_worlds": 0},
            {"mc_simulations": 0},
        ):
            with pytest.raises(ValueError):
                registry.make("CELF", **kwargs)

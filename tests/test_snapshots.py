"""Tests for live-edge snapshots, reachability and SCC contraction."""

import numpy as np
import pytest

from repro.diffusion.models import Dynamics
from repro.diffusion.simulation import monte_carlo_spread
from repro.diffusion.snapshots import (
    Snapshot,
    generate_ic_snapshot,
    generate_lt_snapshot,
    strongly_connected_components,
)
from repro.graph.digraph import DiGraph


class TestICSnapshot:
    def test_live_fraction_tracks_weights(self, rng):
        g = DiGraph.from_edges(
            2, [(0, 1)], weights=[0.25]
        )
        live = sum(
            generate_ic_snapshot(g, rng).num_live_edges for __ in range(4000)
        )
        assert live / 4000 == pytest.approx(0.25, abs=0.03)

    def test_unit_weights_all_live(self, rng):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[1.0, 1.0])
        snap = generate_ic_snapshot(g, rng)
        assert snap.num_live_edges == 2

    def test_reachability_equals_cascade_distribution(self, diamond_graph, rng):
        # Averaged snapshot reach == MC cascade spread (the coin-flip
        # equivalence StaticGreedy/PMC rely on).
        r = 20000
        reach = np.mean(
            [generate_ic_snapshot(diamond_graph, rng).reach_count([0]) for __ in range(r)]
        )
        est = monte_carlo_spread(diamond_graph, [0], Dynamics.IC, r=r, rng=rng)
        assert reach == pytest.approx(est.mean, abs=0.06)

    def test_reach_empty_sources(self, diamond_graph, rng):
        snap = generate_ic_snapshot(diamond_graph, rng)
        assert snap.reach_count([]) == 0


class TestLTSnapshot:
    def test_at_most_one_in_edge_live(self, rng):
        g = DiGraph.from_edges(4, [(0, 3), (1, 3), (2, 3)], weights=[0.3, 0.3, 0.3])
        for __ in range(50):
            snap = generate_lt_snapshot(g, rng)
            assert snap.num_live_edges <= 1

    def test_choice_probability_matches_weight(self, rng):
        g = DiGraph.from_edges(3, [(0, 2), (1, 2)], weights=[0.6, 0.3])
        counts = {"(0,2)": 0, "(1,2)": 0, "none": 0}
        trials = 6000
        for __ in range(trials):
            snap = generate_lt_snapshot(g, rng)
            if snap.num_live_edges == 0:
                counts["none"] += 1
            elif snap.reachable_from([0])[2]:
                counts["(0,2)"] += 1
            else:
                counts["(1,2)"] += 1
        assert counts["(0,2)"] / trials == pytest.approx(0.6, abs=0.03)
        assert counts["(1,2)"] / trials == pytest.approx(0.3, abs=0.03)
        assert counts["none"] / trials == pytest.approx(0.1, abs=0.03)

    def test_live_edge_spread_equals_lt_cascade(self, diamond_graph, rng):
        # Kempe et al.'s theorem: LT cascade distribution == reach in the
        # one-in-edge random worlds.
        r = 20000
        reach = np.mean(
            [generate_lt_snapshot(diamond_graph, rng).reach_count([0]) for __ in range(r)]
        )
        est = monte_carlo_spread(diamond_graph, [0], Dynamics.LT, r=r, rng=rng)
        assert reach == pytest.approx(est.mean, abs=0.06)


class TestSCC:
    def _snapshot_all_live(self, g):
        return Snapshot(g, np.ones(g.m, dtype=bool))

    def test_cycle_is_one_component(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        comp = strongly_connected_components(self._snapshot_all_live(g))
        assert len(set(comp.tolist())) == 1

    def test_dag_all_singletons(self, diamond_graph):
        comp = strongly_connected_components(self._snapshot_all_live(diamond_graph))
        assert len(set(comp.tolist())) == 4

    def test_two_cycles_with_bridge(self):
        g = DiGraph.from_edges(
            6, [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2), (4, 5)]
        )
        comp = strongly_connected_components(self._snapshot_all_live(g))
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[0] != comp[2]
        assert comp[4] != comp[5]

    def test_dead_edges_split_components(self):
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        live = np.array([True, False])
        comp = strongly_connected_components(Snapshot(g, live))
        assert comp[0] != comp[1]

    def test_matches_networkx(self, rng):
        networkx = pytest.importorskip("networkx")
        for trial in range(5):
            trial_rng = np.random.default_rng(trial)
            n = 30
            src = trial_rng.integers(0, n, size=90)
            dst = trial_rng.integers(0, n, size=90)
            g = DiGraph.from_arrays(n, src, dst)
            comp = strongly_connected_components(self._snapshot_all_live(g))
            nx_graph = networkx.DiGraph()
            nx_graph.add_nodes_from(range(n))
            nx_graph.add_edges_from(zip(g.edge_src.tolist(), g.edge_dst.tolist()))
            nx_comps = list(networkx.strongly_connected_components(nx_graph))
            assert len(set(comp.tolist())) == len(nx_comps)
            for group in nx_comps:
                ids = {int(comp[v]) for v in group}
                assert len(ids) == 1

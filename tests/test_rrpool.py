"""Unit tests for the flat CSR RR-set engine (repro.diffusion.rrpool)."""

import numpy as np
import pytest

from repro.diffusion.models import Dynamics, WC
from repro.diffusion.rrpool import FlatRRPool, greedy_max_cover, pad_seeds
from repro.diffusion.rrsets import RRCollection, greedy_max_cover_legacy
from repro.graph.digraph import DiGraph
from repro.graph.generators import build, powerlaw_configuration


def random_pool(n: int, num_sets: int, rng: np.random.Generator) -> FlatRRPool:
    """A pool of random subsets — no graph semantics, pure data structure."""
    pool = FlatRRPool(n)
    for __ in range(num_sets):
        size = int(rng.integers(1, max(2, n // 2)))
        pool.add(rng.choice(n, size=size, replace=False))
    return pool


@pytest.fixture
def wc_graph(rng):
    return WC.weighted(build(powerlaw_configuration(120, 2.3, 4.0, rng)), rng)


class TestFlatCSRLayout:
    def test_set_view_roundtrip(self, rng):
        pool = FlatRRPool(10)
        sets = [np.array([1, 3]), np.array([0]), np.array([2, 5, 9])]
        for s in sets:
            pool.add(s)
        assert pool.set_ptr.tolist() == [0, 2, 3, 6]
        for i, s in enumerate(sets):
            assert pool.nodes_of(i).tolist() == s.tolist()

    def test_node_index_matches_bruteforce(self, rng):
        pool = random_pool(17, 40, rng)
        ptr, data = pool.set_ptr, pool.set_nodes
        expected = {v: [] for v in range(pool.n)}
        for i in range(len(pool)):
            for v in data[ptr[i] : ptr[i + 1]]:
                expected[int(v)].append(i)
        for v in range(pool.n):
            assert pool.sets_of(v).tolist() == expected[v]

    def test_incremental_adds_compact_lazily(self):
        pool = FlatRRPool(4)
        pool.add(np.array([0]))
        assert len(pool) == 1  # pending, not yet compacted
        __ = pool.set_ptr  # forces compaction
        pool.add(np.array([1, 2]), width=3)
        assert len(pool) == 2
        assert pool.set_nodes.tolist() == [0, 1, 2]
        assert pool.widths.tolist() == [0, 3]
        assert pool.total_width == 3

    def test_membership_counts(self, rng):
        pool = FlatRRPool(5)
        pool.add(np.array([0, 1]))
        pool.add(np.array([1, 4]))
        assert pool.membership_counts().tolist() == [1, 2, 0, 0, 1]

    def test_nbytes_counts_all_csr_arrays(self, rng):
        pool = random_pool(17, 40, rng)
        before = pool.nbytes
        assert before >= pool.set_ptr.nbytes + pool.set_nodes.nbytes
        __ = pool.node_index
        assert pool.nbytes > before  # inverted index now materialized

    def test_absorb(self, rng):
        a = random_pool(9, 5, rng)
        b = random_pool(9, 7, rng)
        expect = [a.nodes_of(i).tolist() for i in range(5)]
        expect += [b.nodes_of(i).tolist() for i in range(7)]
        a.absorb(b)
        assert len(a) == 12
        assert [a.nodes_of(i).tolist() for i in range(12)] == expect

    def test_absorb_rejects_mismatched_universe(self):
        with pytest.raises(ValueError):
            FlatRRPool(3).absorb(FlatRRPool(4))

    def test_coverage_fraction(self):
        pool = FlatRRPool(4)
        pool.add(np.array([0, 1]))
        pool.add(np.array([2]))
        assert pool.coverage_fraction([1]) == 0.5
        assert pool.coverage_fraction([1, 2]) == 1.0
        assert pool.coverage_fraction([]) == 0.0
        assert FlatRRPool(4).coverage_fraction([0]) == 0.0


class TestParallelSampling:
    def test_deterministic_for_fixed_count_workers(self, wc_graph):
        pools = []
        for __ in range(2):
            rng = np.random.default_rng(42)
            p = FlatRRPool(wc_graph.n)
            p.extend(wc_graph, Dynamics.IC, 200, rng, workers=2)
            pools.append(p)
        a, b = pools
        assert np.array_equal(a.set_ptr, b.set_ptr)
        assert np.array_equal(a.set_nodes, b.set_nodes)
        assert np.array_equal(a.widths, b.widths)

    def test_worker_count_changes_stream(self, wc_graph):
        p2 = FlatRRPool(wc_graph.n)
        p2.extend(wc_graph, Dynamics.IC, 200, np.random.default_rng(42), workers=2)
        p3 = FlatRRPool(wc_graph.n)
        p3.extend(wc_graph, Dynamics.IC, 200, np.random.default_rng(42), workers=3)
        assert len(p2) == len(p3) == 200
        assert not np.array_equal(p2.set_nodes, p3.set_nodes)

    def test_parallel_budget_ticks(self, wc_graph):
        class Counter:
            calls = 0

            def check(self):
                Counter.calls += 1

        p = FlatRRPool(wc_graph.n)
        p.extend(
            wc_graph, Dynamics.IC, 50, np.random.default_rng(0),
            workers=2, budget=Counter(),
        )
        assert Counter.calls == 2  # once per worker chunk

    def test_workers_one_matches_serial(self, wc_graph):
        serial = FlatRRPool(wc_graph.n)
        serial.extend(wc_graph, Dynamics.IC, 100, np.random.default_rng(5))
        one = FlatRRPool(wc_graph.n)
        one.extend(wc_graph, Dynamics.IC, 100, np.random.default_rng(5), workers=1)
        assert np.array_equal(serial.set_nodes, one.set_nodes)


class TestFlatCoverEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_identical_seeds_on_random_pools(self, seed):
        rng = np.random.default_rng(seed)
        pool = random_pool(40, 300, rng)
        k = int(rng.integers(1, 12))
        flat_seeds, flat_cov = greedy_max_cover(pool, k)
        legacy_seeds, legacy_cov = greedy_max_cover_legacy(pool, k)
        assert flat_seeds == legacy_seeds
        assert flat_cov == legacy_cov

    def test_identical_on_sampled_rr_pools(self, wc_graph, rng):
        pool = FlatRRPool(wc_graph.n)
        pool.extend(wc_graph, Dynamics.IC, 2000, rng)
        degree = wc_graph.out_degree()
        flat = greedy_max_cover(pool, 10, pad_priority=degree)
        legacy = greedy_max_cover_legacy(pool, 10, pad_priority=degree)
        assert flat == legacy

    def test_empty_pool(self):
        assert greedy_max_cover(FlatRRPool(5), 3) == ([], 0.0)


class TestPadPath:
    """Regression: the pad must follow descending degree, not node order."""

    def test_pads_by_descending_priority(self):
        pool = FlatRRPool(5)
        pool.add(np.array([4]))
        priority = np.array([0, 3, 9, 1, 5])  # "out-degrees"
        seeds, coverage = greedy_max_cover(pool, 3, pad_priority=priority)
        # 4 covers the only set; pads follow priority order 2 (9), then 1 (3).
        assert seeds == [4, 2, 1]
        assert coverage == 1.0

    def test_pad_ties_break_toward_lower_id(self):
        pool = FlatRRPool(4)
        pool.add(np.array([3]))
        seeds, __ = greedy_max_cover(pool, 3, pad_priority=np.array([1, 1, 1, 0]))
        assert seeds == [3, 0, 1]

    def test_default_pad_uses_membership_counts(self):
        pool = FlatRRPool(4)
        pool.add(np.array([0, 2]))
        pool.add(np.array([0, 2]))
        pool.add(np.array([0]))
        # 0 covers everything; 2 sits in more sets than 1 or 3, so it pads
        # first even though 1 has the lower id.
        seeds, __ = greedy_max_cover(pool, 2)
        assert seeds == [0, 2]

    def test_legacy_pad_matches_flat(self):
        rng = np.random.default_rng(9)
        pool = random_pool(12, 4, rng)
        priority = rng.integers(0, 50, size=12)
        k = 10  # far beyond what the pool can cover — forces the pad path
        assert greedy_max_cover(pool, k, pad_priority=priority) == (
            greedy_max_cover_legacy(pool, k, pad_priority=priority)
        )

    def test_pad_seeds_helper(self):
        assert pad_seeds([2], 3, 4, np.array([5, 1, 0, 9])) == [2, 3, 0]


class TestRRCollectionShim:
    def test_is_a_flat_pool(self):
        assert issubclass(RRCollection, FlatRRPool)

    def test_constructor_with_sets(self):
        pool = RRCollection(4, sets=[np.array([0, 1]), np.array([2])])
        assert len(pool) == 2
        assert pool.member_of[0] == [0]
        assert [s.tolist() for s in pool.sets] == [[0, 1], [2]]

    def test_caches_invalidate_on_add(self):
        pool = RRCollection(4)
        pool.add(np.array([0]))
        assert pool.member_of[0] == [0]
        pool.add(np.array([0, 1]))
        assert pool.member_of[0] == [0, 1]
        assert len(pool.sets) == 2

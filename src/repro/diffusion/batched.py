"""Batched cascade kernels: advance B independent cascades at once.

The serial simulators in :mod:`independent_cascade` / :mod:`linear_threshold`
run one cascade per call, so σ(S) estimation with ``r`` simulations costs
``r`` Python-level BFS walks.  These kernels keep the per-cascade state in
``B×n`` boolean matrices and, per diffusion step, do

1. **one** shared CSR gather of the out-edges of the *union* frontier
   (:func:`repro.diffusion._frontier.gather_edges`), and
2. **one** vectorized RNG draw of shape ``B×E`` covering every
   (cascade, frontier edge) trial,

so a whole batch advances with a constant number of numpy calls per step
regardless of ``B``.  Cascades that have already died simply contribute
empty frontier rows; the step loop exits when every row is dead.

Sample-for-sample the batched kernels draw from a different stream layout
than the serial loops (coins are consumed edge-major across the batch),
so batched and serial estimates agree only *distributionally* — verified
by the KS tests in ``tests/test_spread_statistical.py``, mirroring the
serial-vs-parallel contract of the RR engine.
"""

from __future__ import annotations

import numpy as np

from ..graph.digraph import DiGraph
from ._frontier import gather_edges
from .models import Dynamics

__all__ = [
    "simulate_ic_batch",
    "simulate_lt_batch",
    "batched_cascades",
]


def _tele():
    # Lazy: a top-level framework import from diffusion would be circular
    # (framework → runner → algorithm registry → diffusion engines).
    from ..framework.telemetry import current

    return current()


def _union_frontier_edges(
    out_ptr: np.ndarray, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(eidx, src)`` for all out-edges of nodes on any cascade's frontier."""
    union = np.nonzero(frontier.any(axis=0))[0]
    if union.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    eidx = gather_edges(out_ptr, union)
    counts = out_ptr[union + 1] - out_ptr[union]
    return eidx, np.repeat(union, counts)


def simulate_ic_batch(
    graph: DiGraph,
    seeds: np.ndarray | list[int],
    rng: np.random.Generator,
    batch: int,
) -> np.ndarray:
    """Run ``batch`` independent IC cascades; return the ``B×n`` active mask.

    Per Definition 4, each edge out of a newly active node is tried exactly
    once per cascade: a node enters a cascade's frontier only on the step
    it activates, so its out-edges receive one coin in that cascade.
    """
    if batch < 1:
        raise ValueError("batch must be positive")
    seeds = np.asarray(seeds, dtype=np.int64)
    active = np.zeros((batch, graph.n), dtype=bool)
    if seeds.size == 0:
        return active
    active[:, seeds] = True
    frontier = active.copy()
    out_ptr, out_dst, out_w = graph.out_ptr, graph.out_dst, graph.out_w
    steps = 0
    while True:
        eidx, src = _union_frontier_edges(out_ptr, frontier)
        if eidx.size == 0:
            break
        steps += 1
        dst = out_dst[eidx]
        coins = rng.random((batch, eidx.size))
        # A trial happens only in cascades whose frontier holds the source.
        attempt = frontier[:, src] & (coins < out_w[eidx][None, :])
        b_idx, e_pos = np.nonzero(attempt)
        if b_idx.size == 0:
            break
        newly = np.zeros_like(active)
        newly[b_idx, dst[e_pos]] = True
        newly &= ~active
        if not newly.any():
            break
        active |= newly
        frontier = newly
    tele = _tele()
    tele.count("batched.cascades", batch)
    tele.count("batched.frontier_steps", steps)
    return active


def simulate_lt_batch(
    graph: DiGraph,
    seeds: np.ndarray | list[int],
    rng: np.random.Generator,
    batch: int,
    thresholds: np.ndarray | None = None,
) -> np.ndarray:
    """Run ``batch`` independent LT cascades; return the ``B×n`` active mask.

    Each cascade draws its own threshold realization θ ~ U(0,1)^n unless
    ``thresholds`` (shape ``B×n``) shares one across calls.  As in the
    serial kernel, only nodes that have received in-weight are threshold
    candidates: accumulated weight never shrinks, so checking all touched
    nodes each step is equivalent to checking the newly touched ones.
    """
    if batch < 1:
        raise ValueError("batch must be positive")
    seeds = np.asarray(seeds, dtype=np.int64)
    active = np.zeros((batch, graph.n), dtype=bool)
    if seeds.size == 0:
        return active
    if thresholds is None:
        theta = rng.random((batch, graph.n))
    else:
        theta = np.asarray(thresholds, dtype=np.float64)
        if theta.shape != (batch, graph.n):
            raise ValueError("thresholds must have shape (batch, n)")
    accumulated = np.zeros((batch, graph.n), dtype=np.float64)
    touched = np.zeros((batch, graph.n), dtype=bool)
    active[:, seeds] = True
    frontier = active.copy()
    out_ptr, out_dst, out_w = graph.out_ptr, graph.out_dst, graph.out_w
    n = graph.n
    steps = 0
    while True:
        eidx, src = _union_frontier_edges(out_ptr, frontier)
        if eidx.size == 0:
            break
        steps += 1
        dst = out_dst[eidx]
        b_idx, e_pos = np.nonzero(frontier[:, src])
        if b_idx.size == 0:
            break
        # Each active node's weight counts exactly once per cascade:
        # frontier rows hold only newly active nodes.
        flat = b_idx * n + dst[e_pos]
        np.add.at(accumulated.ravel(), flat, out_w[eidx][e_pos])
        touched[b_idx, dst[e_pos]] = True
        newly = touched & ~active & (accumulated >= theta)
        if not newly.any():
            break
        active |= newly
        frontier = newly
    tele = _tele()
    tele.count("batched.cascades", batch)
    tele.count("batched.frontier_steps", steps)
    return active


def batched_cascades(
    graph: DiGraph,
    seeds: np.ndarray | list[int],
    dynamics: Dynamics,
    rng: np.random.Generator,
    batch: int,
) -> np.ndarray:
    """Dispatch ``batch`` cascades under the given dynamics (B×n mask)."""
    if dynamics is Dynamics.IC:
        return simulate_ic_batch(graph, seeds, rng, batch)
    if dynamics is Dynamics.LT:
        return simulate_lt_batch(graph, seeds, rng, batch)
    raise ValueError(f"unsupported dynamics {dynamics!r}")  # pragma: no cover

"""Tests for record serialization and table rendering."""

import numpy as np
import pytest

from repro.framework.metrics import RunRecord
from repro.framework.results import (
    load_records,
    render_series,
    render_table,
    save_records,
)


@pytest.fixture
def records():
    return [
        RunRecord("IMM", "WC", 50, "OK", seeds=[1, 2], spread=123.4,
                  spread_std=5.6, elapsed_seconds=0.7, peak_memory_mb=12.0,
                  extras={"epsilon": 0.1}),
        RunRecord("CELF", "WC", 50, "DNF"),
    ]


class TestSerialization:
    def test_round_trip(self, records, tmp_path):
        path = tmp_path / "records.json"
        save_records(records, path)
        loaded = load_records(path)
        assert len(loaded) == 2
        assert loaded[0].algorithm == "IMM"
        assert loaded[0].spread == pytest.approx(123.4)
        assert loaded[0].extras["epsilon"] == 0.1
        assert loaded[1].status == "DNF"

    def test_numpy_values_in_extras(self, tmp_path):
        record = RunRecord(
            "X", "IC", 1, "OK",
            extras={"arr": np.array([1, 2]), "scalar": np.float64(3.5)},
        )
        path = tmp_path / "r.json"
        save_records([record], path)
        loaded = load_records(path)
        assert loaded[0].extras["arr"] == [1, 2]
        assert loaded[0].extras["scalar"] == 3.5


class TestRendering:
    def test_table_contains_all_rows(self, records):
        text = render_table(records, title="Fig X")
        assert "Fig X" in text
        assert "IMM" in text and "CELF" in text
        assert "DNF" in text

    def test_missing_values_dashed(self, records):
        text = render_table(records)
        assert "-" in text

    def test_series_alignment(self):
        text = render_series(
            "k", [10, 20], {"IMM": [1.0, 2.0], "TIM+": [None, 3.0]},
            title="Fig 7",
        )
        lines = text.splitlines()
        assert lines[0] == "Fig 7"
        assert "IMM" in lines[1]
        assert "-" in text  # the None

"""Deterministic edge-cut partitioning of a CSR graph.

The sharded fan-out path wants locality-aware work placement: when a
build is split into shards, grouping sources that live in the same
region of the graph means each shard's workers touch a smaller working
set of the (shared) CSR.  This module provides the partitioner —
balanced label assignment by greedy BFS region growth over the union of
out- and in-adjacency — plus the edge-cut quality metric.

Determinism is a hard requirement (partition labels feed chunk
composition, and chunk composition must be a pure function of the
inputs): growth order is fixed by CSR order and ascending node ids, no
randomness anywhere.  Balance is likewise hard: every shard except the
last holds exactly ``ceil(n / shards)`` nodes (the last takes the
remainder), so a shard can never exceed one worker's node budget.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .digraph import DiGraph

__all__ = ["edge_cut_partition", "cut_fraction"]


def edge_cut_partition(graph: DiGraph, shards: int) -> np.ndarray:
    """Assign every node a shard label in ``0 .. shards-1``.

    Shards are grown one at a time by BFS over undirected adjacency
    (out- then in-neighbors, CSR order), seeded at the lowest-id
    unlabeled node; when a region's frontier dies the next lowest-id
    unlabeled node reseeds it.  Runs in O(n + m) and is a pure function
    of the topology.
    """
    shards = int(shards)
    if shards < 1:
        raise ValueError("shards must be positive")
    n = graph.n
    labels = np.zeros(n, dtype=np.int64)
    if shards == 1 or n == 0:
        return labels
    shards = min(shards, n)
    labels.fill(-1)
    target = -(-n // shards)  # ceil: every shard but the last is exact
    out_ptr, out_dst = graph.out_ptr, graph.out_dst
    in_ptr, in_src = graph.in_ptr, graph.in_src
    next_seed = 0
    for s in range(shards):
        cap = target if s < shards - 1 else n
        size = 0
        queue: deque[int] = deque()
        while size < cap:
            if not queue:
                while next_seed < n and labels[next_seed] >= 0:
                    next_seed += 1
                if next_seed >= n:
                    break
                labels[next_seed] = s
                queue.append(next_seed)
                size += 1
                continue
            u = queue.popleft()
            for ptr, adj in ((out_ptr, out_dst), (in_ptr, in_src)):
                lo, hi = int(ptr[u]), int(ptr[u + 1])
                for v in adj[lo:hi]:
                    if size >= cap:
                        break
                    v = int(v)
                    if labels[v] < 0:
                        labels[v] = s
                        queue.append(v)
                        size += 1
    # A frontier exhausted exactly at the seed scan's end can leave
    # stragglers; they join the last shard (balance already satisfied).
    labels[labels < 0] = shards - 1
    return labels


def cut_fraction(graph: DiGraph, labels: np.ndarray) -> float:
    """Fraction of edges whose endpoints fall in different shards."""
    if graph.m == 0:
        return 0.0
    labels = np.asarray(labels, dtype=np.int64)
    return float((labels[graph.edge_src] != labels[graph.out_dst]).mean())

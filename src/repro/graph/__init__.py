"""Graph substrate: CSR digraphs, generators, weight schemes, I/O, stats."""

from .digraph import DiGraph
from .multigraph import MultiDiGraph, consolidate
from . import generators, io, stats, utils, weights
from .stats import GraphStats, effective_diameter, graph_stats
from .weights import (
    constant,
    incoming_weight_sums,
    lt_random,
    lt_uniform,
    trivalency,
    weighted_cascade,
)

__all__ = [
    "DiGraph",
    "MultiDiGraph",
    "consolidate",
    "generators",
    "io",
    "utils",
    "stats",
    "weights",
    "GraphStats",
    "effective_diameter",
    "graph_stats",
    "constant",
    "incoming_weight_sums",
    "lt_random",
    "lt_uniform",
    "trivalency",
    "weighted_cascade",
]

"""Fig. 5 and Fig. 10f — IMRank's convergence pathologies (myth M7).

Fig. 5: spread as a function of the number of scoring rounds at several k
(IC model, hepph analogue) — not monotone, which is why no principled
stopping rule exists.

Fig. 10f: the *original* stopping criterion (top-k set unchanged between
consecutive rounds) exits early, producing a spread-vs-k curve that can
even decrease; the corrected criterion (always 10 rounds) restores sane
growth.
"""

import numpy as np

from repro.algorithms.imrank import IMRank
from repro.diffusion.models import IC, WC
from repro.framework.results import render_series

from _common import emit, evaluate_spread, once, weighted_dataset


def test_fig5_spread_vs_scoring_rounds(benchmark):
    graph = weighted_dataset("hepph", IC)
    rounds_grid = (1, 2, 4, 6, 8, 10)
    k_grid = (1, 50, 100, 200)

    def experiment():
        series = {}
        for l in (1, 2):
            res = IMRank(l=l, scoring_rounds=max(rounds_grid)).select(
                graph, max(k_grid), IC, rng=np.random.default_rng(0)
            )
            rankings = res.extras["rankings_per_round"]
            for k in k_grid:
                spreads = []
                for r in rounds_grid:
                    seeds = rankings[r][:k]
                    spreads.append(evaluate_spread(graph, seeds, IC).mean)
                series[f"l={l},k={k}"] = spreads
        return series

    series = once(benchmark, experiment)
    text = render_series(
        "#rounds", list(rounds_grid), series,
        title="Fig 5: IMRank spread vs scoring rounds (hepph analogue, IC)",
    )
    emit("fig05_imrank_rounds", text)
    # Every curve exists and stays within [k, n].
    for name, values in series.items():
        assert all(1.0 <= v <= graph.n for v in values), name


def test_fig10f_original_vs_corrected_stopping(benchmark):
    graph = weighted_dataset("hepph", WC)
    k_grid = (25, 50, 100, 150, 200)

    def experiment():
        rows = {"Incorrect (original)": [], "Corrected (10 rounds)": [],
                "rounds used (original)": []}
        for k in k_grid:
            original = IMRank(l=1, scoring_rounds=10, stopping="original").select(
                graph, k, WC, rng=np.random.default_rng(k)
            )
            corrected = IMRank(l=1, scoring_rounds=10, stopping="fixed").select(
                graph, k, WC, rng=np.random.default_rng(k)
            )
            rows["Incorrect (original)"].append(
                evaluate_spread(graph, original.seeds, WC).mean
            )
            rows["Corrected (10 rounds)"].append(
                evaluate_spread(graph, corrected.seeds, WC).mean
            )
            rows["rounds used (original)"].append(original.extras["rounds_run"])
        return rows

    rows = once(benchmark, experiment)
    text = render_series(
        "k", list(k_grid), rows,
        title="Fig 10f: IMRank original vs corrected stopping (hepph, WC)",
    )
    emit("fig10f_imrank_convergence", text)

    # M7's mechanism: the original criterion stops before 10 rounds.
    assert any(r < 10 for r in rows["rounds used (original)"])
    # The corrected curve grows with k.
    corrected = rows["Corrected (10 rounds)"]
    assert corrected[-1] > corrected[0]

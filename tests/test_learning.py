"""Tests for the influence-probability learning substrate."""

import numpy as np
import pytest

from repro.diffusion.independent_cascade import simulate_ic_times
from repro.diffusion.models import IC
from repro.graph.digraph import DiGraph
from repro.learning import (
    ActionLog,
    bernoulli,
    generate_action_log,
    jaccard,
    partial_credits,
    seed_set_transfer,
    weight_error,
)


@pytest.fixture
def chain():
    return DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.7, 0.4])


class TestSimulateICTimes:
    def test_seed_time_zero(self, chain, rng):
        times = simulate_ic_times(chain, [0], rng)
        assert times[0] == 0

    def test_times_strictly_ordered_along_chain(self, rng):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[1.0, 1.0])
        times = simulate_ic_times(g, [0], rng)
        assert times.tolist() == [0, 1, 2]

    def test_inactive_marked(self, rng):
        g = DiGraph.from_edges(2, [(0, 1)], weights=[0.0])
        times = simulate_ic_times(g, [0], rng)
        assert times[1] == -1

    def test_empty_seeds(self, chain, rng):
        assert (simulate_ic_times(chain, [], rng) == -1).all()

    def test_agrees_with_activation_mask(self, chain):
        from repro.diffusion.independent_cascade import simulate_ic

        a = simulate_ic(chain, [0], np.random.default_rng(3))
        t = simulate_ic_times(chain, [0], np.random.default_rng(3))
        assert np.array_equal(a, t >= 0)


class TestActionLog:
    def test_add_and_len(self):
        log = ActionLog(3)
        log.add({0: 0, 1: 1})
        assert len(log) == 1

    def test_rejects_bad_user(self):
        log = ActionLog(2)
        with pytest.raises(ValueError):
            log.add({5: 0})

    def test_participation_counts(self):
        log = ActionLog(3)
        log.add({0: 0, 1: 1})
        log.add({1: 0})
        assert log.participation_counts().tolist() == [1, 2, 0]

    def test_mean_cascade_size(self):
        log = ActionLog(3)
        assert log.mean_cascade_size() == 0.0
        log.add({0: 0})
        log.add({0: 0, 1: 1, 2: 2})
        assert log.mean_cascade_size() == 2.0

    def test_generate_log_shapes(self, chain, rng):
        log = generate_action_log(chain, 20, rng)
        assert len(log) == 20
        assert all(0 in {t for t in a.values()} for a in log.actions)

    def test_generate_validates(self, chain, rng):
        with pytest.raises(ValueError):
            generate_action_log(chain, -1, rng)
        with pytest.raises(ValueError):
            generate_action_log(chain, 1, rng, seeds_per_action=0)


class TestEstimators:
    def _log_from_chain(self, chain, actions=3000):
        return generate_action_log(chain, actions, np.random.default_rng(0))

    def test_bernoulli_recovers_chain_weights(self, chain):
        log = self._log_from_chain(chain)
        learned = bernoulli(chain, log)
        assert learned.weight(0, 1) == pytest.approx(0.7, abs=0.05)
        assert learned.weight(1, 2) == pytest.approx(0.4, abs=0.05)

    def test_unseen_edges_get_default(self):
        g = DiGraph.from_edges(2, [(0, 1)], weights=[0.5])
        learned = bernoulli(g, ActionLog(2), default=0.25)
        assert learned.weight(0, 1) == 0.25

    def test_jaccard_bounded(self, chain):
        log = self._log_from_chain(chain, actions=500)
        learned = jaccard(chain, log)
        assert ((learned.out_w >= 0) & (learned.out_w <= 1)).all()

    def test_partial_credits_splits_among_parents(self, rng):
        # Both 0 and 1 always act at t=0 and 2 immediately follows: each
        # parent should receive about half the credit.
        g = DiGraph.from_edges(3, [(0, 2), (1, 2)], weights=[0.9, 0.9])
        log = ActionLog(3)
        for __ in range(100):
            log.add({0: 0, 1: 0, 2: 1})
        full = bernoulli(g, log)
        shared = partial_credits(g, log)
        assert full.weight(0, 2) == pytest.approx(1.0)
        assert shared.weight(0, 2) == pytest.approx(0.5)
        assert shared.weight(1, 2) == pytest.approx(0.5)

    def test_bernoulli_more_data_more_accurate(self, chain):
        small = bernoulli(chain, generate_action_log(
            chain, 30, np.random.default_rng(1)))
        big = bernoulli(chain, generate_action_log(
            chain, 5000, np.random.default_rng(1)))
        err_small = weight_error(chain, small).mae
        err_big = weight_error(chain, big).mae
        assert err_big <= err_small + 0.02


class TestEvaluation:
    def test_weight_error_zero_for_identical(self, chain):
        err = weight_error(chain, chain)
        assert err.mae == 0.0
        assert err.rmse == 0.0

    def test_weight_error_mismatched_topology(self, chain):
        other = DiGraph.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            weight_error(chain, other)

    def test_coverage_counts_non_default(self, chain):
        learned = chain.with_weights(np.array([0.5, 0.0]))
        err = weight_error(chain, learned, default=0.0)
        assert err.coverage == pytest.approx(0.5)

    def test_seed_transfer_end_to_end(self, rng):
        from repro.algorithms import make

        trial = np.random.default_rng(4)
        g = DiGraph.from_arrays(
            50, trial.integers(0, 50, 200), trial.integers(0, 50, 200)
        )
        true_graph = g.with_weights(
            np.random.default_rng(5).uniform(0.05, 0.4, g.m)
        )
        log = generate_action_log(true_graph, 2000, np.random.default_rng(6))
        learned = bernoulli(true_graph, log)
        result = seed_set_transfer(
            true_graph, learned, IC, make("EaSyIM", path_length=3),
            k=3, rng=rng, mc_simulations=500,
        )
        assert result["transfer_ratio"] >= 0.8

"""EaSyIM — Efficient and Scalable Influence Maximization
(Galhotra, Arora & Roy, SIGMOD'16) — Sec. 4.4, global score estimation.

The score of a node is the weight of all paths of length <= ℓ leaving it,
computed by ℓ rounds of a single message-passing recurrence:

    s_d(u) = Σ_{v ∈ Out(u), v alive} W(u,v) · (1 + s_{d-1}(v)),   s_0 = 0

Only *one float per node* is stored — the memory frugality the paper
singles out ("EaSyIM only stores a number per node", Sec. 5.4, Figs. 1c/8).
After each seed is picked, it (and everything already selected) is removed
from the alive set and scores are recomputed, discounting paths through
seeds — the UpdateDataStructures step of the generalized framework.

``path_length`` (ℓ) is the accuracy knob this implementation exposes; the
benchmark sweeps it the way the paper sweeps EaSyIM's external parameter
(Fig. 4a-c).  Works under both IC and LT: the recurrence only reads edge
weights, which is exactly how the original supports both models.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..diffusion.models import Dynamics, PropagationModel
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm

__all__ = ["EaSyIM"]


class EaSyIM(IMAlgorithm):
    """Path-count score estimation with O(n) working memory."""

    name = "EaSyIM"
    supported = (Dynamics.IC, Dynamics.LT)
    external_parameter = "path length"

    def __init__(self, path_length: int = 4) -> None:
        if path_length < 1:
            raise ValueError("path_length must be positive")
        self.path_length = path_length

    def _scores(
        self,
        graph: DiGraph,
        alive: np.ndarray,
        edge_src: np.ndarray,
    ) -> np.ndarray:
        """ℓ rounds of the score recurrence, restricted to alive nodes."""
        score = np.zeros(graph.n, dtype=np.float64)
        alive_dst = alive[graph.out_dst]
        contribution = np.where(alive_dst, graph.out_w, 0.0)
        for __ in range(self.path_length):
            acc = np.zeros(graph.n, dtype=np.float64)
            np.add.at(acc, edge_src, contribution * (1.0 + score[graph.out_dst]))
            score = acc
        return score

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        edge_src = graph.edge_src
        alive = np.ones(graph.n, dtype=bool)
        seeds: list[int] = []
        for __ in range(k):
            self._tick(budget)
            score = self._scores(graph, alive, edge_src)
            score[~alive] = -np.inf
            v = int(score.argmax())
            seeds.append(v)
            alive[v] = False
        return seeds, {"path_length": self.path_length}

"""Serving-layer bench: cold vs warm latency, coalescing throughput.

The serving layer's claim is the ROADMAP's north star made concrete:
after the first query pays for the heavy artifact (a sampled RR pool, a
snapshot-oracle world set), every subsequent query is an index lookup.
This bench measures that pivot end to end — client to server over TCP —
on a bundled graph:

* ``topk`` cold (samples the RR pool) vs warm (max-cover over the cached
  pool) vs warm at a different ``k`` (same pool, different budget);
* ``sigma`` cold (builds the snapshot oracle) vs warm (cached worlds)
  vs repeated (σ-memo hit);
* a pipelined σ burst, which the server coalesces into one batched
  oracle evaluation, vs the same queries issued one at a time (each of
  which pays its own coalescing window, lock and executor hop).

A byte-identity check pins the serving contract: the served seeds equal
the batch harness's seeds for the same pinned inputs.

Knobs: ``REPRO_BENCH_SERVE_DATASET`` (default ``nethept``),
``REPRO_BENCH_SERVE_RR`` (RR sets, default 20000),
``REPRO_BENCH_SERVE_WORLDS`` (snapshot worlds, default 200),
``REPRO_BENCH_SERVE_BURST`` (σ burst size, default 16).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import algorithms
from repro.diffusion import model_by_name
from repro.serving import ServingConfig, start_in_thread

from _common import emit, once, weighted_dataset

DATASET = os.environ.get("REPRO_BENCH_SERVE_DATASET", "nethept")
RR_SETS = int(os.environ.get("REPRO_BENCH_SERVE_RR", 20_000))
WORLDS = int(os.environ.get("REPRO_BENCH_SERVE_WORLDS", 200))
BURST = int(os.environ.get("REPRO_BENCH_SERVE_BURST", 16))
K = 10


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:9.2f} ms"


def _timed(fn):
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def _run() -> list[str]:
    handle = start_in_thread(
        ServingConfig(datasets=(DATASET,), coalesce_ms=5.0)
    )
    lines = [
        f"influence-query serving on {DATASET} "
        f"(rr_sets={RR_SETS:,}, worlds={WORLDS}, burst={BURST})",
        "",
    ]
    try:
        with handle.client() as client:
            params = {"num_rr_sets": RR_SETS}
            cold, t_cold = _timed(
                lambda: client.topk(DATASET, "IC", "RIS", K, params=params)
            )
            warm, t_warm = _timed(
                lambda: client.topk(DATASET, "IC", "RIS", K, params=params)
            )
            other_k, t_other = _timed(
                lambda: client.topk(DATASET, "IC", "RIS", K * 2, params=params)
            )
            assert not cold["warm"] and warm["warm"] and other_k["warm"]
            assert warm["seeds"] == cold["seeds"]
            lines += [
                f"topk (RIS, k={K}):",
                f"  cold (sample pool + cover) {_ms(t_cold)}",
                f"  warm (cover cached pool)   {_ms(t_warm)}"
                f"   speedup x{t_cold / t_warm:.1f}",
                f"  warm k={K * 2:<3} (same pool)   {_ms(t_other)}",
                "",
            ]

            seeds = cold["seeds"]
            s_cold, t_scold = _timed(
                lambda: client.sigma(DATASET, "IC", seeds, worlds=WORLDS)
            )
            s_warm, t_swarm = _timed(
                lambda: client.sigma(DATASET, "IC", seeds[:5], worlds=WORLDS)
            )
            s_rep, t_srep = _timed(
                lambda: client.sigma(DATASET, "IC", seeds[:5], worlds=WORLDS)
            )
            assert s_warm["warm"] and s_rep["sigma"] == s_warm["sigma"]
            lines += [
                f"sigma (snapshot oracle, {WORLDS} worlds):",
                f"  cold (sample worlds + BFS) {_ms(t_scold)}",
                f"  warm (cached worlds, BFS)  {_ms(t_swarm)}"
                f"   speedup x{t_scold / t_swarm:.1f}",
                f"  repeat (sigma-memo hit)    {_ms(t_srep)}",
                "",
            ]

            burst_sets = [[int(v)] for v in range(BURST)]
            batch, t_batch = _timed(
                lambda: client.sigma_many(
                    DATASET, "IC", burst_sets, worlds=WORLDS
                )
            )
            serial, t_serial = _timed(
                lambda: [
                    client.sigma(DATASET, "IC", s, worlds=WORLDS, seed=1)
                    for s in burst_sets
                ]
            )
            coalesced = max(r["batched"] for r in batch)
            lines += [
                f"sigma burst of {BURST} singleton queries:",
                f"  pipelined (coalesced into batches of <= {coalesced}) "
                f"{_ms(t_batch)}",
                f"  one-at-a-time (no coalescing window) {_ms(t_serial)}",
                f"  throughput gain x{t_serial / t_batch:.1f}",
                "",
            ]

            stats = client.stats()
            cache = stats["cache"]
            counters = stats["counters"]
            lines += [
                "server state after the run:",
                f"  artifacts resident: {cache['entries']} "
                f"({cache['total_bytes']:,} B of {cache['budget_bytes']:,} B)",
                f"  artifact hits/misses: {cache['hits']}/{cache['misses']}",
                f"  coalesced batches: "
                f"{counters.get('serving.coalesced_batches', 0)} covering "
                f"{counters.get('serving.coalesced_requests', 0)} requests",
                f"  warm topk answers: {counters.get('serving.topk_warm', 0)}",
            ]

            # Byte-identity vs the batch harness on the same pinned inputs.
            model = model_by_name("IC")
            graph = weighted_dataset(DATASET, model)
            ref = algorithms.make("RIS", num_rr_sets=RR_SETS).select(
                graph, K, model, rng=np.random.default_rng(0)
            )
            identical = ref.seeds == cold["seeds"]
            lines.append(f"  served seeds byte-identical to batch: {identical}")
            assert identical, "serving must match the batch path exactly"
            assert t_warm < t_cold, "warm topk must beat cold topk"
    finally:
        handle.stop()
    return lines


def test_serving_layer(benchmark):
    lines = once(benchmark, _run)
    emit("serving", "\n".join(lines))

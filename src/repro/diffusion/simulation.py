"""Spread computation (Alg. 1) and Monte-Carlo estimation of σ(S).

``Γ(S)`` — the spread of one cascade realization — is the number of active
nodes when diffusion stops (Definition 6).  The quantity every IM algorithm
optimizes is the expectation σ(S) = E[Γ(S)], estimated by ``r`` independent
Monte-Carlo simulations; Kempe et al. recommend r = 10,000, which is the
library default.  Benchmarks use smaller ``r`` appropriate to the scaled
datasets (see the Fig. 12 convergence bench).

Two execution shapes are available and compose freely:

* ``batch > 1`` — the simulations run through the batched multi-cascade
  kernels (:mod:`repro.diffusion.batched`): ``ceil(r / batch)`` vectorized
  batches instead of ``r`` Python-level cascades.
* ``workers > 1`` — the simulations fan out over a ``SeedSequence``-spawned
  process pool; each worker runs its chunk serially or batched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.digraph import DiGraph
from .independent_cascade import simulate_ic
from .linear_threshold import simulate_lt
from .models import Dynamics, PropagationModel

__all__ = [
    "DEFAULT_MC_SIMULATIONS",
    "SpreadEstimate",
    "simulate_spread",
    "monte_carlo_spread",
]

DEFAULT_MC_SIMULATIONS = 10_000


def _tele():
    # Lazy: a top-level framework import from diffusion would be circular
    # (framework → runner → algorithm registry → diffusion engines).
    from ..framework.telemetry import current

    return current()


def _simulate_chunk(
    graph: DiGraph,
    seeds: list[int],
    dynamics: "Dynamics",
    count: int,
    seed_sequence_state: dict,
    batch: int = 1,
) -> np.ndarray:
    """Worker for parallel MC: ``count`` independent cascades.

    Module-level so it pickles; the RNG is rebuilt from a spawned
    ``SeedSequence`` so parallel and serial runs draw from the same
    well-separated streams.  ``batch > 1`` runs the chunk through the
    batched kernels.
    """
    rng = np.random.default_rng(np.random.SeedSequence(**seed_sequence_state))
    if batch > 1:
        return _batched_samples(graph, seeds, dynamics, count, rng, batch)
    out = np.empty(count, dtype=np.float64)
    for i in range(count):
        out[i] = simulate_spread(graph, seeds, dynamics, rng)
    return out


def _batched_samples(
    graph: DiGraph,
    seeds: np.ndarray | list[int],
    dynamics: Dynamics,
    r: int,
    rng: np.random.Generator,
    batch: int,
) -> np.ndarray:
    """``r`` spread samples via ceil(r / batch) multi-cascade batches."""
    from .batched import batched_cascades

    out = np.empty(r, dtype=np.float64)
    done = 0
    while done < r:
        b = min(batch, r - done)
        active = batched_cascades(graph, seeds, dynamics, rng, b)
        out[done : done + b] = active.sum(axis=1)
        done += b
    return out


@dataclass(frozen=True)
class SpreadEstimate:
    """σ(S) estimate: sample mean, standard deviation, and sample count."""

    mean: float
    std: float
    simulations: int

    @property
    def stderr(self) -> float:
        """Standard error of the mean (the Fig.-12 error bar)."""
        if self.simulations <= 0:
            return float("nan")
        return self.std / np.sqrt(self.simulations)


def simulate_spread(
    graph: DiGraph,
    seeds: np.ndarray | list[int],
    dynamics: Dynamics,
    rng: np.random.Generator,
) -> int:
    """One realization of Γ(S) under the given dynamics (Alg. 1)."""
    if dynamics is Dynamics.IC:
        active = simulate_ic(graph, seeds, rng)
    elif dynamics is Dynamics.LT:
        active = simulate_lt(graph, seeds, rng)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unsupported dynamics {dynamics!r}")
    return int(active.sum())


def monte_carlo_spread(
    graph: DiGraph,
    seeds: np.ndarray | list[int],
    model: PropagationModel | Dynamics,
    r: int = DEFAULT_MC_SIMULATIONS,
    rng: np.random.Generator | None = None,
    return_samples: bool = False,
    workers: int | None = None,
    batch: int | None = None,
) -> SpreadEstimate | tuple[SpreadEstimate, np.ndarray]:
    """Estimate σ(S) by ``r`` independent cascade simulations.

    Accepts either a full :class:`PropagationModel` (whose dynamics are
    used — the graph must already carry that model's weights) or bare
    :class:`Dynamics`.

    ``workers > 1`` fans the simulations out over a process pool — the
    paper's 10K-simulation evaluation protocol is embarrassingly parallel.
    Worker streams are spawned from one ``SeedSequence``, so results are
    reproducible for a fixed (r, workers) pair, though they differ from
    the serial draw order.

    ``batch > 1`` advances that many cascades per vectorized kernel call
    (:mod:`repro.diffusion.batched`) instead of one cascade per Python
    loop pass; combined with ``workers`` each worker runs its chunk
    batched.  Batched draws differ from serial draws sample-for-sample
    but agree distributionally (KS-tested under ``pytest -m statistical``).
    """
    if r < 1:
        raise ValueError("r must be positive")
    dynamics = model.dynamics if isinstance(model, PropagationModel) else model
    rng = np.random.default_rng() if rng is None else rng
    batch = 1 if batch is None else int(batch)
    if batch < 1:
        raise ValueError("batch must be positive")
    tele = _tele()
    with tele.span("mc.spread"):
        if workers is not None and workers > 1:
            samples = _parallel_samples(graph, seeds, dynamics, r, rng, workers, batch)
        elif batch > 1:
            samples = _batched_samples(graph, seeds, dynamics, r, rng, batch)
        else:
            samples = np.empty(r, dtype=np.float64)
            for i in range(r):
                samples[i] = simulate_spread(graph, seeds, dynamics, rng)
    tele.count("mc.simulations", r)
    estimate = SpreadEstimate(
        mean=float(samples.mean()),
        # ddof=1 on a single sample is 0/0 -> NaN; a lone draw carries no
        # dispersion information, so report 0 instead.
        std=float(samples.std(ddof=1)) if r > 1 else 0.0,
        simulations=r,
    )
    if return_samples:
        return estimate, samples
    return estimate


def _parallel_samples(
    graph: DiGraph,
    seeds: np.ndarray | list[int],
    dynamics: Dynamics,
    r: int,
    rng: np.random.Generator,
    workers: int,
    batch: int = 1,
) -> np.ndarray:
    """Fan ``r`` simulations out over the resilient worker pool."""
    # Lazy for the same circular-import reason as _tele.
    from ..framework.pool import run_chunks

    seed_list = [int(s) for s in np.asarray(seeds, dtype=np.int64)]
    base = int(rng.integers(0, 2**63 - 1))
    chunks = np.full(workers, r // workers, dtype=np.int64)
    chunks[: r % workers] += 1
    chunks = chunks[chunks > 0]
    states = [{"entropy": base, "spawn_key": (i,)} for i in range(len(chunks))]
    _tele().count("mc.worker_chunks", len(chunks))
    # Chunks draw from spawn-key-derived streams, so a lost chunk replays
    # byte-identically and the concatenation order is fixed by chunk index.
    # The graph, seed set and dynamics are chunk-invariant and travel via
    # the shared-args transport (shm arena / once-per-worker pickle).
    parts = run_chunks(
        _simulate_chunk,
        [(int(c), s, batch) for c, s in zip(chunks, states)],
        workers=len(chunks),
        label="mc.spread",
        shared=(graph, seed_list, dynamics),
    )
    return np.concatenate(parts)

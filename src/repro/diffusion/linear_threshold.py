"""Linear Threshold dynamics (Definition 5).

Each node ``v`` draws an activation threshold θ_v ~ U(0, 1) at the start of
the cascade.  ``v`` activates once the summed weight of its *active*
in-neighbours reaches θ_v.  The incoming weights of every node sum to at
most 1, which every LT weight scheme in :mod:`repro.graph.weights`
guarantees.
"""

from __future__ import annotations

import numpy as np

from ..graph.digraph import DiGraph
from ._frontier import gather_edges

__all__ = ["simulate_lt"]


def simulate_lt(
    graph: DiGraph,
    seeds: np.ndarray | list[int],
    rng: np.random.Generator,
    thresholds: np.ndarray | None = None,
) -> np.ndarray:
    """Run one LT cascade from ``seeds``; return the active-node mask Va.

    ``thresholds`` may be supplied to share one threshold realization across
    calls (used by tests that check the live-edge equivalence); by default a
    fresh θ ~ U(0,1)^n is drawn per cascade, as the paper's setup specifies.
    """
    seeds = np.asarray(seeds, dtype=np.int64)
    active = np.zeros(graph.n, dtype=bool)
    if seeds.size == 0:
        return active
    if thresholds is None:
        theta = rng.random(graph.n)
    else:
        theta = np.asarray(thresholds, dtype=np.float64)
        if theta.shape[0] != graph.n:
            raise ValueError("thresholds must have one entry per node")

    accumulated = np.zeros(graph.n, dtype=np.float64)
    active[seeds] = True
    frontier = np.unique(seeds)
    out_dst, out_w, out_ptr = graph.out_dst, graph.out_w, graph.out_ptr
    while frontier.size:
        eidx = gather_edges(out_ptr, frontier)
        if eidx.size == 0:
            break
        dst = out_dst[eidx]
        # Each active node's weight counts exactly once: frontier nodes are
        # newly active and never re-enter the frontier.
        np.add.at(accumulated, dst, out_w[eidx])
        candidates = np.unique(dst)
        hit = candidates[
            ~active[candidates] & (accumulated[candidates] >= theta[candidates])
        ]
        if hit.size == 0:
            break
        frontier = hit
        active[frontier] = True
    return active

"""Scaled synthetic analogues of the paper's eight datasets (Table 1).

The originals (arXiv/SNAP/Twitter-crawl graphs, up to 65.6M nodes and 1.8B
edges) are neither redistributable nor tractable in pure Python.  Each
analogue is generated deterministically from a per-name seed and matched on
the properties that drive the paper's findings:

* degree *shape* (heavy-tailed for the social graphs),
* average degree (the lever behind the IC-vs-WC RR-set blow-up, M6),
* directed vs undirected handling (undirected -> arcs both ways),
* small effective diameter.

Absolute sizes are scaled down 10x-16,000x; the scale factor is recorded on
each spec and surfaced by :func:`summary`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

import numpy as np

from ..graph import generators
from ..graph.digraph import DiGraph
from ..graph.stats import GraphStats, graph_stats

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "SMALL_DATASETS",
    "LARGE_DATASETS",
    "load",
    "spec",
    "names",
    "summary",
    "table1_rows",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one analogue plus the paper's Table-1 row it mirrors."""

    name: str
    directed: bool
    seed: int
    build: Callable[[np.random.Generator], generators.EdgeArrays]
    paper_n: str
    paper_m: str
    paper_avg_degree: float
    paper_diameter: float

    def generate(self) -> DiGraph:
        rng = np.random.default_rng(self.seed)
        n, src, dst = self.build(rng)
        return DiGraph.from_arrays(n, src, dst)


def _pa(n: int, m_per_node: int) -> Callable[[np.random.Generator], generators.EdgeArrays]:
    def build(rng: np.random.Generator) -> generators.EdgeArrays:
        return generators.preferential_attachment(n, m_per_node, rng, directed=False)

    return build


def _plc(n: int, avg_degree: float, exponent: float = 2.3, directed: bool = True):
    def build(rng: np.random.Generator) -> generators.EdgeArrays:
        return generators.powerlaw_configuration(
            n, exponent, avg_degree, rng, directed=directed
        )

    return build


DATASETS: dict[str, DatasetSpec] = {
    # --- the four "small" datasets all techniques are compared on ---
    "nethept": DatasetSpec(
        name="nethept",
        directed=False,
        seed=101,
        build=_pa(1500, 2),
        paper_n="15K",
        paper_m="31K",
        paper_avg_degree=2.06,
        paper_diameter=8.8,
    ),
    "hepph": DatasetSpec(
        name="hepph",
        directed=False,
        seed=102,
        build=_pa(1200, 10),
        paper_n="12K",
        paper_m="118K",
        paper_avg_degree=9.83,
        paper_diameter=5.8,
    ),
    "dblp": DatasetSpec(
        name="dblp",
        directed=False,
        seed=103,
        build=_pa(3000, 3),
        paper_n="317K",
        paper_m="1.05M",
        paper_avg_degree=3.31,
        paper_diameter=8.0,
    ),
    "youtube": DatasetSpec(
        name="youtube",
        directed=False,
        seed=104,
        build=_pa(4000, 3),
        paper_n="1.13M",
        paper_m="2.99M",
        paper_avg_degree=2.65,
        paper_diameter=6.5,
    ),
    # --- the four "large" datasets of Table 3 ---
    "livejournal": DatasetSpec(
        name="livejournal",
        directed=True,
        seed=105,
        build=_plc(5000, 14.2),
        paper_n="4.85M",
        paper_m="69M",
        paper_avg_degree=14.23,
        paper_diameter=6.5,
    ),
    "orkut": DatasetSpec(
        name="orkut",
        directed=False,
        seed=106,
        build=_pa(2500, 19),
        paper_n="3.07M",
        paper_m="117.1M",
        paper_avg_degree=38.14,
        paper_diameter=4.8,
    ),
    "twitter": DatasetSpec(
        name="twitter",
        directed=True,
        seed=107,
        build=_plc(4000, 36.0, exponent=2.1),
        paper_n="41.6M",
        paper_m="1.5B",
        paper_avg_degree=36.06,
        paper_diameter=5.1,
    ),
    "friendster": DatasetSpec(
        name="friendster",
        directed=False,
        seed=108,
        build=_pa(4000, 14),
        paper_n="65.6M",
        paper_m="1.8B",
        paper_avg_degree=27.69,
        paper_diameter=5.8,
    ),
}

SMALL_DATASETS = ("nethept", "hepph", "dblp", "youtube")
LARGE_DATASETS = ("livejournal", "orkut", "twitter", "friendster")


def names() -> tuple[str, ...]:
    """All dataset names in Table-1 order."""
    return tuple(DATASETS)


def spec(name: str) -> DatasetSpec:
    """Look up a dataset recipe by name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; options: {', '.join(DATASETS)}") from None


@lru_cache(maxsize=None)
def load(name: str) -> DiGraph:
    """Generate (and cache) the analogue topology for ``name``.

    The returned graph is unweighted; apply a scheme from
    :mod:`repro.graph.weights` or use :func:`repro.diffusion.weighted_graph`.
    """
    return spec(name).generate()


def summary(name: str) -> GraphStats:
    """Table-1 statistics of the analogue."""
    s = spec(name)
    return graph_stats(load(name), name=name, directed=s.directed)


def table1_rows() -> str:
    """Render the analogue of Table 1 alongside the paper's numbers."""
    header = (
        f"{'Dataset':<14} {'n':>9} {'m':>11} {'Type':<10} {'AvgDeg':>10} "
        f"{'90%Diam':>8}   | paper: n, m, avg deg, diam"
    )
    lines = [header, "-" * len(header)]
    for name, s in DATASETS.items():
        row = summary(name)
        lines.append(
            f"{row.row()}   | {s.paper_n}, {s.paper_m}, "
            f"{s.paper_avg_degree}, {s.paper_diameter}"
        )
    return "\n".join(lines)

"""Shared infrastructure for the per-table/per-figure benchmarks.

Every bench regenerates one table or figure of the paper on the scaled
dataset analogues (see DESIGN.md §1 for the substitutions).  The rendered
rows/series are printed and also written to ``benchmarks/results/`` so the
paper-vs-measured comparison of EXPERIMENTS.md can be refreshed.

Scaling knobs used throughout (documented here once):

* ``MC_EVAL`` — simulations for the decoupled spread estimate (the paper
  uses 10K on C++; the Fig.-12 bench shows estimates at our graph sizes
  stabilize well below that).
* ``RR_SCALE`` — multiplier on TIM+/IMM sample-size bounds.  The bounds
  assume native-code throughput; the multiplier preserves their ε-shape
  (θ ∝ 1/ε²) at pure-Python cost.
* ``TIME_LIMIT`` / ``MEMORY_LIMIT`` — the proportional analogues of the
  paper's 40-hour wall and 256 GB RAM; violations render as DNF / Crashed
  exactly as in Table 3.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.datasets import load
from repro.diffusion import monte_carlo_spread
from repro.diffusion.models import IC, LT, WC, PropagationModel

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

MC_EVAL = 150
RR_SCALE = 0.01
TIME_LIMIT = 15.0
MEMORY_LIMIT_MB = 300.0

#: Per-algorithm constructor parameters scaled for pure Python.  epsilon /
#: snapshot counts follow Table 2; only the implementation-scale knobs
#: (rr_scale, MC counts) are reduced.
SCALED_PARAMS: dict[str, dict] = {
    "CELF": {"mc_simulations": 10},
    "CELF++": {"mc_simulations": 10},
    "GREEDY": {"mc_simulations": 10},
    "TIM+": {"rr_scale": RR_SCALE},
    "IMM": {"rr_scale": RR_SCALE},
    "StaticGreedy": {"num_snapshots": 50},
    "PMC": {"num_snapshots": 50},
    "EaSyIM": {"path_length": 3},
    "RIS": {"num_rr_sets": 2000},
}

_WEIGHTED_CACHE: dict[tuple[str, str], object] = {}


def weighted_dataset(name: str, model: PropagationModel):
    """Weighted analogue graph, cached across benches in one session."""
    key = (name, model.name)
    if key not in _WEIGHTED_CACHE:
        _WEIGHTED_CACHE[key] = model.weighted(
            load(name), np.random.default_rng(0)
        )
    return _WEIGHTED_CACHE[key]


def scaled_params(name: str, model: PropagationModel | None = None, **overrides):
    """Table-2 parameters merged with the Python-scale adjustments."""
    from repro.algorithms.registry import optimal_parameters

    params = {}
    if model is not None:
        params.update(optimal_parameters(name, model))
    params.update(SCALED_PARAMS.get(name, {}))
    params.update(overrides)
    return params


def evaluate_spread(graph, seeds, model, r: int = MC_EVAL, seed: int = 99):
    """Decoupled σ(S) estimate (the Sec.-5.1 uniform comparison point)."""
    return monte_carlo_spread(
        graph, seeds, model, r=r, rng=np.random.default_rng(seed)
    )


def emit(name: str, text: str) -> None:
    """Print a rendered table/figure and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    print(f"\n=== {name} ===\n{text}\n")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

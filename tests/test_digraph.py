"""Unit tests for the CSR DiGraph."""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_from_edges_basic(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert g.n == 3
        assert g.m == 3

    def test_empty_graph(self):
        g = DiGraph.from_edges(0, [])
        assert g.n == 0
        assert g.m == 0

    def test_nodes_without_edges(self):
        g = DiGraph.from_edges(5, [(0, 1)])
        assert g.n == 5
        assert g.m == 1
        assert g.out_degree(4) == 0
        assert g.in_degree(4) == 0

    def test_self_loops_dropped(self):
        g = DiGraph.from_edges(3, [(0, 0), (0, 1), (1, 1)])
        assert g.m == 1
        assert g.has_edge(0, 1)

    def test_duplicates_deduplicated(self):
        g = DiGraph.from_edges(3, [(0, 1), (0, 1), (0, 2)])
        assert g.m == 2

    def test_duplicates_kept_when_requested(self):
        g = DiGraph.from_edges(3, [(0, 1), (0, 1)], dedup=False)
        assert g.m == 2

    def test_out_of_range_endpoint_raises(self):
        with pytest.raises(ValueError):
            DiGraph.from_edges(2, [(0, 5)])

    def test_negative_n_raises(self):
        with pytest.raises(ValueError):
            DiGraph.from_arrays(-1, np.array([]), np.array([]))

    def test_mismatched_weights_raise(self):
        with pytest.raises(ValueError):
            DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.5])

    def test_mismatched_src_dst_raise(self):
        with pytest.raises(ValueError):
            DiGraph.from_arrays(3, np.array([0, 1]), np.array([1]))


class TestAdjacency:
    def test_out_neighbors(self):
        g = DiGraph.from_edges(4, [(0, 1), (0, 2), (1, 3)], weights=[0.1, 0.2, 0.3])
        dst, w = g.out_neighbors(0)
        assert sorted(dst.tolist()) == [1, 2]
        assert sorted(w.tolist()) == [0.1, 0.2]

    def test_in_neighbors(self):
        g = DiGraph.from_edges(4, [(0, 2), (1, 2), (3, 2)], weights=[0.1, 0.2, 0.3])
        src, w = g.in_neighbors(2)
        assert sorted(src.tolist()) == [0, 1, 3]
        assert w.sum() == pytest.approx(0.6)

    def test_degrees_match_edges(self):
        g = DiGraph.from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
        assert g.out_degree().tolist() == [2, 1, 1, 0]
        assert g.in_degree().tolist() == [0, 1, 2, 1]
        assert g.out_degree(0) == 2
        assert g.in_degree(2) == 2

    def test_weight_lookup(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.25, 0.75])
        assert g.weight(0, 1) == 0.25
        assert g.weight(1, 2) == 0.75
        with pytest.raises(KeyError):
            g.weight(0, 2)

    def test_has_edge(self):
        g = DiGraph.from_edges(3, [(0, 1)])
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_edge_src_matches_csr(self):
        g = DiGraph.from_edges(4, [(2, 3), (0, 1), (2, 1)])
        src = g.edge_src
        dst = g.edge_dst
        pairs = sorted(zip(src.tolist(), dst.tolist()))
        assert pairs == [(0, 1), (2, 1), (2, 3)]

    def test_edges_iterator(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.5, 0.9])
        triples = list(g.edges())
        assert (0, 1, 0.5) in triples
        assert (1, 2, 0.9) in triples


class TestViews:
    def test_in_and_out_views_consistent(self):
        g = DiGraph.from_edges(
            5, [(0, 1), (0, 2), (3, 2), (4, 0), (2, 4)], weights=[0.1, 0.2, 0.3, 0.4, 0.5]
        )
        out_pairs = {(u, v): w for u, v, w in g.edges()}
        in_pairs = {}
        for v in range(g.n):
            src, w = g.in_neighbors(v)
            for u, wu in zip(src, w):
                in_pairs[(int(u), v)] = float(wu)
        assert out_pairs == in_pairs

    def test_with_weights_replaces_both_views(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        new_w = np.array([0.1, 0.2, 0.3])
        g2 = g.with_weights(new_w)
        assert g2.weight(0, 1) in (0.1, 0.2, 0.3)
        for v in range(3):
            src, w_in = g2.in_neighbors(v)
            for u, wu in zip(src, w_in):
                assert g2.weight(int(u), v) == pytest.approx(float(wu))

    def test_with_weights_wrong_length_raises(self):
        g = DiGraph.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.with_weights(np.array([0.1, 0.2]))

    def test_with_weights_keeps_topology(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        g2 = g.with_weights(np.array([0.9, 0.8]))
        assert g2.n == g.n
        assert g2.m == g.m
        assert np.array_equal(g2.out_dst, g.out_dst)

    def test_reverse(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.3, 0.7])
        r = g.reverse()
        assert r.has_edge(1, 0)
        assert r.has_edge(2, 1)
        assert r.weight(1, 0) == pytest.approx(0.3)
        assert not r.has_edge(0, 1)

    def test_reverse_twice_is_identity(self):
        g = DiGraph.from_edges(4, [(0, 1), (2, 3), (1, 3)], weights=[0.2, 0.4, 0.6])
        rr = g.reverse().reverse()
        assert g == rr


class TestEquality:
    def test_equal_graphs(self):
        g1 = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[0.5, 0.5])
        g2 = DiGraph.from_edges(3, [(1, 2), (0, 1)], weights=[0.5, 0.5])
        assert g1 == g2

    def test_unequal_weights(self):
        g1 = DiGraph.from_edges(3, [(0, 1)], weights=[0.5])
        g2 = DiGraph.from_edges(3, [(0, 1)], weights=[0.6])
        assert g1 != g2

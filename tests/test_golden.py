"""Golden regression tests: frozen outputs on a fixed graph and RNG seed.

These pin the exact behaviour of the deterministic techniques (and the
seeded behaviour of the stochastic ones) on one reference workload, so a
silent semantic change to any algorithm shows up as a diff here rather
than as a quietly shifted benchmark.
"""

import numpy as np
import pytest

from repro.algorithms import registry
from repro.diffusion.models import IC, LT, WC
from repro.graph.digraph import DiGraph
from repro.graph.generators import preferential_attachment


@pytest.fixture(scope="module")
def reference_graphs():
    n, src, dst = preferential_attachment(120, 2, np.random.default_rng(99))
    topology = DiGraph.from_arrays(n, src, dst)
    return {m.name: m.weighted(topology) for m in (IC, WC, LT)}


#: Deterministic given the fixed topology: no RNG in their selection.
DETERMINISTIC = ("Degree", "SingleDiscount", "DegreeDiscount", "PageRank",
                 "IRIE", "EaSyIM", "PMIA", "IMRank1", "IMRank2", "LDAG",
                 "SIMPATH")


@pytest.mark.parametrize("name", DETERMINISTIC)
def test_deterministic_selection_is_stable(name, reference_graphs):
    algo = registry.make(name)
    model = WC if algo.supports(WC) else LT
    graph = reference_graphs[model.name]
    first = algo.select(graph, 5, model, rng=np.random.default_rng(0)).seeds
    second = registry.make(name).select(
        graph, 5, model, rng=np.random.default_rng(12345)
    ).seeds
    # Independent of the RNG: the technique is deterministic.
    assert first == second


STOCHASTIC = {
    "CELF": {"mc_simulations": 10},
    "CELF++": {"mc_simulations": 10},
    "RIS": {"num_rr_sets": 500},
    "TIM+": {"epsilon": 0.5, "rr_scale": 0.02},
    "IMM": {"epsilon": 0.5, "rr_scale": 0.02},
    "StaticGreedy": {"num_snapshots": 20},
    "PMC": {"num_snapshots": 20},
    "SKIM": {"num_instances": 8, "sketch_k": 4},
    "SSA": {"epsilon": 0.5, "rr_scale": 0.02},
    "D-SSA": {"epsilon": 0.5, "rr_scale": 0.02},
}


@pytest.mark.parametrize("name", sorted(STOCHASTIC))
def test_stochastic_selection_reproducible_under_seed(name, reference_graphs):
    params = STOCHASTIC[name]
    algo = registry.make(name, **params)
    model = WC if algo.supports(WC) else LT
    graph = reference_graphs[model.name]
    first = algo.select(graph, 5, model, rng=np.random.default_rng(7)).seeds
    second = registry.make(name, **params).select(
        graph, 5, model, rng=np.random.default_rng(7)
    ).seeds
    assert first == second


def test_degree_golden_seeds(reference_graphs):
    """Fully frozen output: the top-degree ordering of the fixture graph."""
    graph = reference_graphs["WC"]
    got = registry.make("Degree").select(
        graph, 5, WC, rng=np.random.default_rng(0)
    ).seeds
    expected = list(np.argsort(-graph.out_degree(), kind="stable")[:5])
    assert got == [int(v) for v in expected]


def test_all_techniques_agree_on_first_seed(reference_graphs):
    """On a hub-dominated PA graph most techniques should concur on the
    strongest seed — wide disagreement signals a broken scorer."""
    graph = reference_graphs["WC"]
    picks = []
    for name in ("Degree", "IRIE", "EaSyIM", "PMIA", "IMRank1"):
        algo = registry.make(name)
        model = WC if algo.supports(WC) else LT
        picks.append(algo.select(graph, 1, model,
                                 rng=np.random.default_rng(0)).seeds[0])
    assert len(set(picks)) <= 2

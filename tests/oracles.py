"""Exact ground-truth oracles for tiny graphs.

Used to validate Monte-Carlo estimators, RR-set unbiasedness, and the
live-edge equivalences on graphs small enough for exhaustive enumeration.
"""

from __future__ import annotations

import itertools

from repro.diffusion.models import Dynamics
from repro.graph.digraph import DiGraph


def exact_spread(graph: DiGraph, seeds: list[int], dynamics: Dynamics) -> float:
    """Exact σ(S) under either dynamics (dispatcher for the two oracles)."""
    if dynamics is Dynamics.IC:
        return exact_ic_spread(graph, seeds)
    if dynamics is Dynamics.LT:
        return exact_lt_spread(graph, seeds)
    raise ValueError(f"unsupported dynamics {dynamics!r}")


def exact_ic_spread(graph: DiGraph, seeds: list[int]) -> float:
    """Exact σ(S) under IC by enumerating all 2^m live-edge worlds.

    Only usable on graphs with a handful of edges; this is the ground
    truth MC estimates and RR-set estimators are validated against.
    """
    m = graph.m
    if m > 20:
        raise ValueError("too many edges for exhaustive enumeration")
    src = graph.edge_src
    dst = graph.edge_dst
    w = graph.out_w
    total = 0.0
    for pattern in itertools.product((False, True), repeat=m):
        prob = 1.0
        adj: dict[int, list[int]] = {}
        for j, live in enumerate(pattern):
            if live:
                prob *= w[j]
                adj.setdefault(int(src[j]), []).append(int(dst[j]))
            else:
                prob *= 1.0 - w[j]
        if prob == 0.0:
            continue
        reached = set(seeds)
        frontier = list(seeds)
        while frontier:
            u = frontier.pop()
            for v in adj.get(u, ()):
                if v not in reached:
                    reached.add(v)
                    frontier.append(v)
        total += prob * len(reached)
    return total


def exact_lt_spread(graph: DiGraph, seeds: list[int]) -> float:
    """Exact σ(S) under LT via Kempe et al.'s live-edge equivalence.

    Each node independently keeps one incoming edge with probability equal
    to its weight (or none, with the residual probability); spread is the
    expected forward reach of S over all such worlds.
    """
    choices: list[list[tuple[int | None, float]]] = []
    for v in range(graph.n):
        srcs, ws = graph.in_neighbors(v)
        options: list[tuple[int | None, float]] = [
            (int(u), float(wu)) for u, wu in zip(srcs, ws)
        ]
        residual = 1.0 - float(ws.sum())
        options.append((None, residual))
        choices.append(options)
    total = 0.0
    for combo in itertools.product(*[range(len(c)) for c in choices]):
        prob = 1.0
        parents: list[int | None] = []
        for v, idx in enumerate(combo):
            parent, p = choices[v][idx]
            prob *= p
            parents.append(parent)
        if prob == 0.0:
            continue
        reached = set(seeds)
        changed = True
        while changed:
            changed = False
            for v in range(graph.n):
                if v not in reached and parents[v] is not None and parents[v] in reached:
                    reached.add(v)
                    changed = True
        total += prob * len(reached)
    return total

"""Robustness — the fourth desirable property of Sec. 5.

"The four most desirable properties of an IM algorithm are quality of
spread, computational efficiency, memory footprint, and *robustness* to
datasets, diffusion models and parameters."  Figs. 6-8 cover the first
three; this bench quantifies the fourth along two axes the paper's
narrative uses:

* **randomness robustness** — run-to-run variation of the achieved spread
  across independent executions (low for scoring techniques, higher for
  small-sample stochastic ones);
* **weight-scheme robustness** — does a technique's *relative* standing
  survive swapping IC-constant for tri-valency weights?  (The IC/WC myth
  M6 generalized: claims must hold across weightings.)
"""

import numpy as np

from repro.algorithms import registry
from repro.diffusion.models import IC, TV
from repro.framework.results import render_series
from repro.graph.weights import trivalency

from _common import RR_SCALE, emit, evaluate_spread, once, weighted_dataset

K = 15
RUNS = 6
ROSTER = {
    "IMM": {"epsilon": 0.5, "rr_scale": RR_SCALE},
    "PMC": {"num_snapshots": 25},
    "IRIE": {},
    "EaSyIM": {"path_length": 3},
    "IMRank1": {},
}


def test_robustness_to_randomness(benchmark):
    graph = weighted_dataset("nethept", IC)

    def experiment():
        rows = {}
        for name, params in ROSTER.items():
            spreads = []
            for run in range(RUNS):
                res = registry.make(name, **params).select(
                    graph, K, IC, rng=np.random.default_rng(run)
                )
                spreads.append(evaluate_spread(graph, res.seeds, IC).mean)
            rows[name] = spreads
        return rows

    rows = once(benchmark, experiment)
    lines = [
        f"Robustness to randomness (nethept, IC, k={K}, {RUNS} runs)",
        f"{'Algorithm':<10} {'mean':>8} {'sd':>7} {'cv %':>6}",
        "-" * 36,
    ]
    for name, spreads in rows.items():
        arr = np.asarray(spreads)
        cv = 100 * arr.std(ddof=1) / arr.mean()
        lines.append(f"{name:<10} {arr.mean():>8.1f} {arr.std(ddof=1):>7.2f} "
                     f"{cv:>6.2f}")
    emit("robustness_randomness", "\n".join(lines))

    # Deterministic scorers have (near-)zero run variance.
    for name in ("IRIE", "EaSyIM", "IMRank1"):
        arr = np.asarray(rows[name])
        assert arr.std(ddof=1) < 1e-9
    # Everyone stays within 20% coefficient of variation.
    for name, spreads in rows.items():
        arr = np.asarray(spreads)
        assert arr.std(ddof=1) / arr.mean() < 0.20, name


def test_robustness_to_weight_scheme(benchmark):
    from repro.datasets import load

    topology = load("nethept")
    ic_graph = weighted_dataset("nethept", IC)
    tv_graph = trivalency(topology, rng=np.random.default_rng(0))

    def experiment():
        table = {}
        for name, params in ROSTER.items():
            res_ic = registry.make(name, **params).select(
                ic_graph, K, IC, rng=np.random.default_rng(1)
            )
            res_tv = registry.make(name, **params).select(
                tv_graph, K, TV, rng=np.random.default_rng(1)
            )
            table[name] = (
                evaluate_spread(ic_graph, res_ic.seeds, IC).mean,
                evaluate_spread(tv_graph, res_tv.seeds, TV).mean,
            )
        return table

    table = once(benchmark, experiment)
    text = render_series(
        "alg", list(table),
        {
            "IC-constant": [round(v[0], 1) for v in table.values()],
            "tri-valency": [round(v[1], 1) for v in table.values()],
        },
        title=f"Robustness across weight schemes (nethept, k={K})",
    )
    emit("robustness_weight_scheme", text)

    # The *relative* best under IC stays within the top half under TV.
    ic_rank = sorted(table, key=lambda n: -table[n][0])
    tv_rank = sorted(table, key=lambda n: -table[n][1])
    assert tv_rank.index(ic_rank[0]) <= len(table) // 2

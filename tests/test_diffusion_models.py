"""Tests for propagation-model definitions and weight pairing."""

import numpy as np
import pytest

from repro.diffusion.models import (
    IC,
    LT,
    LT_RANDOM,
    STANDARD_MODELS,
    TV,
    WC,
    Dynamics,
    model_by_name,
    weighted_graph,
)
from repro.graph.digraph import DiGraph
from repro.graph.weights import incoming_weight_sums


@pytest.fixture
def g():
    return DiGraph.from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 0)])


class TestModelDefinitions:
    def test_standard_models_are_the_papers_three(self):
        assert [m.name for m in STANDARD_MODELS] == ["IC", "WC", "LT"]

    def test_dynamics_assignment(self):
        assert IC.dynamics is Dynamics.IC
        assert WC.dynamics is Dynamics.IC  # WC is an IC instance (M6!)
        assert TV.dynamics is Dynamics.IC
        assert LT.dynamics is Dynamics.LT
        assert LT_RANDOM.dynamics is Dynamics.LT

    def test_lookup_by_name(self):
        assert model_by_name("WC") is WC
        with pytest.raises(KeyError):
            model_by_name("nope")


class TestWeighting:
    def test_ic_constant_point_one(self, g):
        wg = IC.weighted(g)
        assert np.allclose(wg.out_w, 0.1)

    def test_wc_inverse_in_degree(self, g):
        wg = WC.weighted(g)
        assert wg.weight(0, 2) == pytest.approx(0.5)  # in-deg(2) == 2

    def test_lt_incoming_sums(self, g):
        wg = LT.weighted(g)
        sums = incoming_weight_sums(wg)
        assert (sums <= 1.0 + 1e-9).all()

    def test_lt_random_uses_rng(self, g):
        a = LT_RANDOM.weighted(g, np.random.default_rng(1))
        b = LT_RANDOM.weighted(g, np.random.default_rng(1))
        c = LT_RANDOM.weighted(g, np.random.default_rng(2))
        assert np.allclose(a.out_w, b.out_w)
        assert not np.allclose(a.out_w, c.out_w)

    def test_weighted_graph_helper(self, g):
        assert weighted_graph(g, IC) == IC.weighted(g)

    def test_topology_preserved(self, g):
        wg = WC.weighted(g)
        assert wg.n == g.n and wg.m == g.m

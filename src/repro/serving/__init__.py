"""Influence-query serving: warm artifacts behind an asyncio front.

The batch harness answers "which seeds?" by re-running selection from
scratch; this package turns that into a resident service where the heavy
state — sampled RR pools, live-edge snapshot worlds, finished selections
— is built once and kept warm behind a byte-budgeted LRU.  See
:mod:`repro.serving.server` for the protocol and DESIGN.md ("Serving
layer") for the architecture.
"""

from .artifacts import Artifact, ArtifactLRU, artifact_key, payload_nbytes
from .catalog import ServingCatalog, graph_nbytes
from .client import ServingClient, ServingError
from .server import (
    DEFAULT_PORT,
    InfluenceServer,
    ServerHandle,
    ServingConfig,
    ServingRequestError,
    run_server,
    start_in_thread,
)

__all__ = [
    "Artifact",
    "ArtifactLRU",
    "artifact_key",
    "payload_nbytes",
    "ServingCatalog",
    "graph_nbytes",
    "ServingClient",
    "ServingError",
    "DEFAULT_PORT",
    "InfluenceServer",
    "ServerHandle",
    "ServingConfig",
    "ServingRequestError",
    "run_server",
    "start_in_thread",
]

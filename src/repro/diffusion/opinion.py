"""Opinion-aware diffusion — the OI model of the EaSyIM paper.

The benchmarked EaSyIM technique comes from "Holistic influence
maximization: combining scalability and efficiency with *opinion-aware*
models" (Galhotra, Arora & Roy, SIGMOD'16).  The benchmarking study
exercises only its opinion-oblivious mode; this module supplies the
opinion-aware half as a platform extension.

In the **Opinion-based IC (OI)** model every node carries an opinion
``o(v) ∈ [-1, 1]`` (negative users bad-mouth the product).  Activation
spreads exactly as in IC, but the payoff of a cascade is the *sum of
opinions* of the activated nodes, not their count:

    Γ_o(S) = Σ_{v ∈ Va} o(v)

so activating a detractor hurts.  Influence maximization under OI seeks
seeds maximizing E[Γ_o(S)] — the function stays submodular for
non-negative opinions and loses the guarantee otherwise, which is why
score-based techniques (EaSyIM-OI) are the practical choice.

:class:`repro.algorithms.OpinionEaSyIM` extends the EaSyIM recurrence with
opinion-weighted path scores:
s_d(u) = Σ_{v alive} W(u,v) · (o(v) + s_{d-1}(v)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..graph.digraph import DiGraph
from .independent_cascade import simulate_ic

__all__ = [
    "OpinionEstimate",
    "assign_opinions",
    "simulate_opinion_spread",
    "monte_carlo_opinion_spread",
]


def assign_opinions(
    n: int,
    rng: np.random.Generator,
    negative_fraction: float = 0.2,
) -> np.ndarray:
    """Random opinions: U(0,1) supporters, U(-1,0) for a detractor share."""
    if not 0.0 <= negative_fraction <= 1.0:
        raise ValueError("negative_fraction must be in [0, 1]")
    opinions = rng.uniform(0.0, 1.0, size=n)
    detractors = rng.random(n) < negative_fraction
    opinions[detractors] = rng.uniform(-1.0, 0.0, size=int(detractors.sum()))
    return opinions


def simulate_opinion_spread(
    graph: DiGraph,
    seeds: np.ndarray | list[int],
    opinions: np.ndarray,
    rng: np.random.Generator,
) -> float:
    """One OI cascade: IC activation, opinion-summed payoff Γ_o(S)."""
    if opinions.shape[0] != graph.n:
        raise ValueError("opinions must have one entry per node")
    active = simulate_ic(graph, seeds, rng)
    return float(opinions[active].sum())


@dataclass(frozen=True)
class OpinionEstimate:
    """E[Γ_o(S)] estimate."""

    mean: float
    std: float
    simulations: int


def monte_carlo_opinion_spread(
    graph: DiGraph,
    seeds: np.ndarray | list[int],
    opinions: np.ndarray,
    r: int = 1000,
    rng: np.random.Generator | None = None,
) -> OpinionEstimate:
    """Monte-Carlo estimate of the opinion-weighted spread."""
    if r < 1:
        raise ValueError("r must be positive")
    rng = np.random.default_rng() if rng is None else rng
    samples = np.empty(r, dtype=np.float64)
    for i in range(r):
        samples[i] = simulate_opinion_spread(graph, seeds, opinions, rng)
    return OpinionEstimate(
        mean=float(samples.mean()),
        std=float(samples.std(ddof=1)) if r > 1 else 0.0,
        simulations=r,
    )

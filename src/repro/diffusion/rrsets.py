"""Reverse-reachable (RR) set sampling — the substrate of RIS/TIM+/IMM.

An RR set for a node ``v`` is the set of nodes that would reach ``v`` in a
random live-edge world.  Borgs et al.'s key identity: the probability that
a seed set S intersects the RR set of a uniformly random node equals
σ(S)/n, so seed selection reduces to greedy maximum coverage over a pool
of RR sets.

Under IC an RR set is a reverse BFS with per-edge coin flips; under LT it
is a reverse random walk that, at each node, keeps at most one incoming
edge chosen with probability equal to its weight (and stops with the
residual probability).  Both samplers record the "width" (number of edges
examined) that TIM+'s KPT estimation needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.digraph import DiGraph
from .models import Dynamics

__all__ = ["random_rr_set", "RRCollection", "greedy_max_cover"]


def random_rr_set(
    graph: DiGraph,
    dynamics: Dynamics,
    rng: np.random.Generator,
    root: int | None = None,
) -> tuple[np.ndarray, int]:
    """Sample one RR set; returns ``(nodes, width)``.

    ``width`` counts the in-edges examined while growing the set — the
    quantity TIM+ uses to estimate KPT (expected cascade cost).
    """
    if graph.n == 0:
        raise ValueError("graph has no nodes")
    if root is None:
        root = int(rng.integers(0, graph.n))
    in_ptr, in_src, in_w = graph.in_ptr, graph.in_src, graph.in_w
    visited = {root}
    width = 0

    if dynamics is Dynamics.IC:
        frontier = [root]
        while frontier:
            v = frontier.pop()
            lo, hi = int(in_ptr[v]), int(in_ptr[v + 1])
            width += hi - lo
            if lo == hi:
                continue
            coins = rng.random(hi - lo)
            hits = np.nonzero(coins < in_w[lo:hi])[0]
            for j in hits:
                u = int(in_src[lo + j])
                if u not in visited:
                    visited.add(u)
                    frontier.append(u)
        return np.fromiter(visited, dtype=np.int64, count=len(visited)), width

    if dynamics is Dynamics.LT:
        v = root
        while True:
            lo, hi = int(in_ptr[v]), int(in_ptr[v + 1])
            width += hi - lo
            if lo == hi:
                break
            cumulative = np.cumsum(in_w[lo:hi])
            j = int(np.searchsorted(cumulative, rng.random(), side="right"))
            if j >= hi - lo:
                break  # residual probability 1 - sum(w): no live in-edge
            u = int(in_src[lo + j])
            if u in visited:
                break  # walk closed a cycle; the set cannot grow further
            visited.add(u)
            v = u
        return np.fromiter(visited, dtype=np.int64, count=len(visited)), width

    raise ValueError(f"unsupported dynamics {dynamics!r}")  # pragma: no cover


@dataclass
class RRCollection:
    """A pool of RR sets with the inverted index used by max-cover.

    ``sets[i]`` is the node array of RR set i; ``member_of[v]`` lists the
    ids of the sets containing node v.
    """

    n: int
    sets: list[np.ndarray] = field(default_factory=list)
    member_of: list[list[int]] = field(init=False)
    total_width: int = 0

    def __post_init__(self) -> None:
        self.member_of = [[] for __ in range(self.n)]
        existing, self.sets = self.sets, []
        for nodes in existing:
            self.add(nodes)

    def add(self, nodes: np.ndarray, width: int = 0) -> None:
        """Append one RR set to the pool."""
        set_id = len(self.sets)
        self.sets.append(nodes)
        self.total_width += width
        for v in nodes:
            self.member_of[int(v)].append(set_id)

    def extend(
        self,
        graph: DiGraph,
        dynamics: Dynamics,
        count: int,
        rng: np.random.Generator,
    ) -> None:
        """Sample ``count`` additional RR sets from ``graph``."""
        for __ in range(count):
            nodes, width = random_rr_set(graph, dynamics, rng)
            self.add(nodes, width)

    def __len__(self) -> int:
        return len(self.sets)

    def coverage_fraction(self, seeds: np.ndarray | list[int]) -> float:
        """Fraction of RR sets intersected by ``seeds`` (= σ(S)/n estimate)."""
        if not self.sets:
            return 0.0
        covered = np.zeros(len(self.sets), dtype=bool)
        for s in np.asarray(seeds, dtype=np.int64):
            covered[self.member_of[int(s)]] = True
        return float(covered.mean())


def greedy_max_cover(
    collection: RRCollection, k: int
) -> tuple[list[int], float]:
    """Greedy maximum coverage of the RR pool (Sec. 4.2 seed selection).

    Returns the chosen seeds and the fraction of sets covered.  Uses lazy
    (CELF-style) marginal-count updates; coverage counts are exact.
    """
    num_sets = len(collection.sets)
    if num_sets == 0 or k <= 0:
        return [], 0.0
    count = np.zeros(collection.n, dtype=np.int64)
    for v in range(collection.n):
        count[v] = len(collection.member_of[v])
    covered = np.zeros(num_sets, dtype=bool)
    seeds: list[int] = []
    for __ in range(min(k, collection.n)):
        v = int(count.argmax())
        if count[v] <= 0:
            # Nothing left to cover; pad with highest-degree unseeded nodes
            # so exactly k seeds are returned, as the reference codes do.
            remaining = [u for u in range(collection.n) if u not in set(seeds)]
            seeds.extend(remaining[: k - len(seeds)])
            break
        seeds.append(v)
        newly = [i for i in collection.member_of[v] if not covered[i]]
        for i in newly:
            covered[i] = True
            for u in collection.sets[i]:
                count[int(u)] -= 1
        # count[v] is now 0 automatically (its uncovered sets were covered).
    return seeds[:k], float(covered.mean())

"""The vectorized path-proxy engine vs the legacy dict/heap helpers.

The engine promises *exact* equivalence (bitwise pp, identical settle
order, identical parents), so every comparison here is ``==`` — no
tolerances except where the contract itself states one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.irie import IRIE, max_probability_paths
from repro.algorithms.ldag import LDAG, build_ldag
from repro.algorithms.pmia import PMIA, build_miia
from repro.diffusion.models import WC, LT
from repro.diffusion.paths import (
    DagStore,
    PathBatch,
    TreeStore,
    batched_max_prob_paths,
    build_dag_store,
    build_tree_store,
)
from repro.graph.digraph import DiGraph

THETA = 1.0 / 320.0


@st.composite
def tie_heavy_graphs(draw, max_nodes=9, max_edges=24):
    """Random digraphs with dyadic weights — exact pp ties are common."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    pairs = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    )
    edges = draw(st.lists(pairs, max_size=max_edges, unique=True))
    edges = [(u, v) for u, v in edges if u != v]
    ws = draw(
        st.lists(
            st.sampled_from([1.0, 0.5, 0.25, 0.125]),
            min_size=len(edges),
            max_size=len(edges),
        )
    )
    return DiGraph.from_edges(n, edges, weights=ws)


def legacy_settle(graph, root, theta, blocked=None):
    """(order, parent, weight) replay of ``build_miia``'s heap loop."""
    arb = build_miia(graph, root, theta, blocked=blocked)
    return list(reversed(arb.order)), arb.parent, arb.weight


class TestKernelVsLegacy:
    def test_forward_pp_chain(self, line_graph):
        batch = batched_max_prob_paths(line_graph, [0], 0.1)
        assert batch.pp_dict(0) == max_probability_paths(line_graph, 0, 0.1)

    def test_forward_threshold_prunes(self, line_graph):
        # 0.5^3 = 0.125 < 0.2: node 3 must not appear.
        batch = batched_max_prob_paths(line_graph, [0], 0.2)
        assert 3 not in batch.pp_dict(0)
        assert batch.pp_dict(0) == max_probability_paths(line_graph, 0, 0.2)

    def test_forward_many_sources(self, two_cliques):
        sources = np.arange(two_cliques.n)
        batch = batched_max_prob_paths(two_cliques, sources, THETA)
        for i, s in enumerate(sources):
            assert batch.pp_dict(i) == max_probability_paths(
                two_cliques, int(s), THETA
            )

    def test_reverse_matches_miia(self, diamond_graph):
        batch = batched_max_prob_paths(diamond_graph, [3], 0.01, reverse=True)
        order, parent, weight = legacy_settle(diamond_graph, 3, 0.01)
        sl = batch.slice(0)
        nodes = batch.node[sl].tolist()
        assert nodes == order
        for pos, u in enumerate(nodes):
            ppos = int(batch.parent_pos[sl][pos])
            if u == 3:
                assert ppos == -1
            else:
                assert nodes[ppos] == parent[u]
                assert batch.parent_w[sl][pos] == weight[u]

    def test_blocked_settles_but_conducts_nothing(self, line_graph):
        blocked = np.array([False, False, True, False])
        batch = batched_max_prob_paths(
            line_graph, [3], 0.01, reverse=True, blocked=blocked
        )
        sl = batch.slice(0)
        nodes = batch.node[sl].tolist()
        # Node 2 settles (it is reached) but nothing upstream of it does.
        assert 2 in nodes and 1 not in nodes and 0 not in nodes
        order, parent, weight = legacy_settle(line_graph, 3, 0.01, blocked)
        assert nodes == order

    def test_blocked_source_still_conducts(self, line_graph):
        blocked = np.array([False, False, False, True])
        batch = batched_max_prob_paths(
            line_graph, [3], 0.01, reverse=True, blocked=blocked
        )
        order, __, __w = legacy_settle(line_graph, 3, 0.01, blocked)
        assert batch.node[batch.slice(0)].tolist() == order

    def test_plateau_intra_tie_settle_order(self):
        # pp(1) = pp(2) = 0.5 with 2 reached *through* 1 by a weight-1.0
        # edge: legacy settles 1 first (2 enters the heap only after 1
        # pops), even though sorting by id alone would also put 1 first;
        # the interesting case is the reverse id order below.
        g = DiGraph.from_edges(
            3, [(1, 0), (2, 1)], weights=[0.5, 1.0]
        )
        batch = batched_max_prob_paths(g, [0], 0.01, reverse=True)
        order, __, __w = legacy_settle(g, 0, 0.01)
        assert batch.node[batch.slice(0)].tolist() == order

    def test_plateau_chain_reverse_id_order(self):
        # 0 <- 2 (0.5), 2 <- 1 (1.0): plateau {1, 2} at pp 0.5, but 1 only
        # becomes poppable after 2 settles — chronological heap order is
        # [2, 1], the opposite of id order.  The kernel must replay it.
        g = DiGraph.from_edges(3, [(2, 0), (1, 2)], weights=[0.5, 1.0])
        batch = batched_max_prob_paths(g, [0], 0.01, reverse=True)
        order, __, __w = legacy_settle(g, 0, 0.01)
        assert order == [0, 2, 1]
        assert batch.node[batch.slice(0)].tolist() == order

    def test_workers_identical_results(self, two_cliques):
        sources = np.arange(two_cliques.n)
        serial = batched_max_prob_paths(two_cliques, sources, THETA, reverse=True)
        fanned = batched_max_prob_paths(
            two_cliques, sources, THETA, reverse=True, workers=2
        )
        for a, b in zip(
            (serial.ptr, serial.node, serial.pp, serial.parent_pos,
             serial.parent_w, serial.first_rank),
            (fanned.ptr, fanned.node, fanned.pp, fanned.parent_pos,
             fanned.parent_w, fanned.first_rank),
        ):
            np.testing.assert_array_equal(a, b)

    def test_batch_shape_invariants(self, two_cliques):
        sources = np.arange(two_cliques.n)
        batch = batched_max_prob_paths(two_cliques, sources, THETA)
        assert len(batch) == two_cliques.n
        for i, s in enumerate(sources):
            sl = batch.slice(i)
            assert batch.size(i) == sl.stop - sl.start
            assert batch.node[sl.start] == s          # source first
            assert batch.pp[sl.start] == 1.0
            assert batch.parent_pos[sl.start] == -1
            assert batch.first_rank[sl.start] == -1
            assert s not in batch.pp_dict(i)

    @settings(max_examples=60, deadline=None)
    @given(tie_heavy_graphs())
    def test_property_forward_matches_legacy(self, g):
        batch = batched_max_prob_paths(g, np.arange(g.n), THETA)
        for v in range(g.n):
            legacy = max_probability_paths(g, v, THETA)
            got = batch.pp_dict(v)
            assert got.keys() == legacy.keys()          # same reachable set
            for u, p in legacy.items():
                assert got[u] == p                      # bitwise identical

    @settings(max_examples=60, deadline=None)
    @given(tie_heavy_graphs())
    def test_property_reverse_matches_miia(self, g):
        batch = batched_max_prob_paths(g, np.arange(g.n), THETA, reverse=True)
        for v in range(g.n):
            order, parent, weight = legacy_settle(g, v, THETA)
            sl = batch.slice(v)
            nodes = batch.node[sl].tolist()
            assert nodes == order                       # identical settle order
            for pos, u in enumerate(nodes):
                ppos = int(batch.parent_pos[sl][pos])
                if u == v:
                    assert ppos == -1
                else:
                    assert nodes[ppos] == parent[u]     # identical parents
                    assert abs(batch.parent_w[sl][pos] - weight[u]) <= 1e-12


class TestTreeStore:
    def graph(self):
        rng = np.random.default_rng(3)
        n, m = 40, 160
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        keep = src != dst
        w = rng.choice([1.0, 0.5, 0.25, 0.125], m)[keep]
        return DiGraph.from_edges(
            n, list(zip(src[keep].tolist(), dst[keep].tolist())), weights=w.tolist()
        )

    def test_trees_match_build_miia(self):
        g = self.graph()
        store = build_tree_store(g, THETA)
        for tree in store.structures:
            arb = build_miia(g, tree.root, THETA)
            nodes = tree.nodes.tolist()
            assert nodes == list(reversed(arb.order))
            # Children lists in legacy dict-insertion order.
            kids = {u: [] for u in nodes}
            for t, c in zip(tree.e_tpos.tolist(), tree.e_cpos.tolist()):
                kids[nodes[t]].append(nodes[c])
            for u in nodes:
                assert kids[u] == arb.children[u]

    def test_gains_match_legacy_dp(self):
        g = self.graph()
        store = build_tree_store(g, THETA)
        in_seed = np.zeros(g.n, dtype=bool)
        in_seed[[4, 17]] = True
        for i, (nodes, gains) in enumerate(
            store.gains(list(range(len(store))), in_seed)
        ):
            arb = build_miia(g, store.structures[i].root, THETA)
            PMIA._forward_ap(arb, in_seed)
            PMIA._backward_alpha(arb, in_seed)
            legacy = {
                u: arb.alpha[u] * (1.0 - arb.ap[u])
                for u in arb.order if not in_seed[u]
            }
            got = dict(zip(nodes.tolist(), gains.tolist()))
            assert got.keys() == legacy.keys()
            for u, gain in legacy.items():
                assert got[u] == gain

    def test_dirty_and_rebuild_track_membership(self):
        g = self.graph()
        store = build_tree_store(g, THETA)
        seed = int(max(range(g.n), key=lambda u: len(store.dirty(u))))
        dirty = store.dirty(seed)
        assert dirty == sorted(dirty)
        for i in dirty:
            assert seed in set(store.structures[i].nodes.tolist())
        blocked = np.zeros(g.n, dtype=bool)
        blocked[seed] = True
        store.rebuild(dirty, blocked)
        for i in dirty:
            tree = store.structures[i]
            arb = build_miia(g, tree.root, THETA, blocked=blocked)
            assert tree.nodes.tolist() == list(reversed(arb.order))
        # The inverted index reflects the rebuilt membership.
        for u in range(g.n):
            expect = sorted(
                i for i, t in enumerate(store.structures)
                if u in set(t.nodes.tolist())
            )
            assert store.dirty(u) == expect


class TestDagStore:
    def graph(self):
        rng = np.random.default_rng(11)
        n, m = 35, 140
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        keep = src != dst
        w = (rng.uniform(0.05, 0.4, m)[keep]).round(3)
        return DiGraph.from_edges(
            n, list(zip(src[keep].tolist(), dst[keep].tolist())), weights=w.tolist()
        )

    def test_dags_match_build_ldag(self):
        g = self.graph()
        store = build_dag_store(g, THETA)
        for dag in store.structures:
            legacy = build_ldag(g, dag.root, THETA)
            nodes = dag.nodes.tolist()
            assert nodes == list(reversed(legacy.order))
            in_edges = {u: [] for u in nodes}
            for t, s, w in zip(
                dag.e_tpos.tolist(), dag.e_spos.tolist(), dag.e_w.tolist()
            ):
                in_edges[nodes[t]].append((nodes[s], w))
            for u in nodes:
                assert in_edges[u] == legacy.in_edges[u]

    def test_gains_match_legacy_dp(self):
        g = self.graph()
        store = build_dag_store(g, THETA)
        in_seed = np.zeros(g.n, dtype=bool)
        in_seed[[2, 9]] = True
        ldag = LDAG(eta=THETA)
        for i, (nodes, gains) in enumerate(
            store.gains(list(range(len(store))), in_seed)
        ):
            legacy = ldag._dag_gains(
                build_ldag(g, store.structures[i].root, THETA), in_seed
            )
            got = dict(zip(nodes.tolist(), gains.tolist()))
            assert got.keys() == legacy.keys()
            for u, gain in legacy.items():
                assert got[u] == gain

    def test_workers_identical_store(self):
        g = self.graph()
        serial = build_dag_store(g, THETA)
        fanned = build_dag_store(g, THETA, workers=2)
        assert len(serial) == len(fanned)
        for a, b in zip(serial.structures, fanned.structures):
            np.testing.assert_array_equal(a.nodes, b.nodes)
            np.testing.assert_array_equal(a.pp, b.pp)
            np.testing.assert_array_equal(a.e_tpos, b.e_tpos)
            np.testing.assert_array_equal(a.e_spos, b.e_spos)
            np.testing.assert_array_equal(a.e_w, b.e_w)


class TestEngineSelectionParity:
    """Flat vs legacy seeds on a small weighted graph — must be identical."""

    def graph(self, model):
        rng = np.random.default_rng(21)
        n, m = 60, 240
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        keep = src != dst
        g = DiGraph.from_edges(
            n, list(zip(src[keep].tolist(), dst[keep].tolist()))
        )
        return model.weighted(g)

    @pytest.mark.parametrize("cls,model", [(PMIA, WC), (LDAG, LT), (IRIE, WC)])
    def test_flat_equals_legacy(self, cls, model):
        g = self.graph(model)
        flat = cls(engine="flat").select(g, 8, model, rng=np.random.default_rng(0))
        legacy = cls(engine="legacy").select(g, 8, model, rng=np.random.default_rng(0))
        assert flat.seeds == legacy.seeds


class TestIRIETieBreak:
    def test_symmetric_graph_prefers_lowest_id(self):
        # Two disjoint symmetric 3-cycles: every rank iteration is exactly
        # symmetric between {0,1,2} and {3,4,5}, so all six ranks tie and
        # the explicit argmax tie-break must pick ids in ascending order.
        edges, ws = [], []
        for base in (0, 3):
            cyc = [base, base + 1, base + 2]
            for i in range(3):
                u, v = cyc[i], cyc[(i + 1) % 3]
                edges += [(u, v), (v, u)]
                ws += [0.25, 0.25]
        g = DiGraph.from_edges(6, edges, weights=ws)
        for engine in ("flat", "legacy"):
            res = IRIE(engine=engine).select(
                g, 2, WC, rng=np.random.default_rng(0)
            )
            assert res.seeds == [0, 3]

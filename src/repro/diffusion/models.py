"""Propagation models: diffusion dynamics paired with a weight scheme.

The paper's experimental setup (Sec. 5.1) uses three named models:

* ``IC``  — Independent Cascade dynamics, constant weights W(u,v) = 0.1,
* ``WC``  — Independent Cascade dynamics, weighted-cascade weights 1/|In(v)|,
* ``LT``  — Linear Threshold dynamics, uniform weights 1/|In(v)|.

The remaining schemes of Sec. 2.1 (tri-valency, LT-random, LT-parallel
edges) are also provided so the myth experiments (M5, Table 4) can swap
them in.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..graph import weights as weight_schemes
from ..graph.digraph import DiGraph

__all__ = [
    "Dynamics",
    "PropagationModel",
    "IC",
    "WC",
    "TV",
    "LT",
    "LT_RANDOM",
    "STANDARD_MODELS",
    "model_by_name",
    "weighted_graph",
]


class Dynamics(enum.Enum):
    """The two diffusion processes of Definitions 4 and 5."""

    IC = "independent-cascade"
    LT = "linear-threshold"


@dataclass(frozen=True)
class PropagationModel:
    """A named (dynamics, weight-scheme) pair.

    ``assign`` maps an unweighted topology to a weighted graph; schemes that
    draw random weights take the generator argument, deterministic schemes
    ignore it.
    """

    name: str
    dynamics: Dynamics
    assign: Callable[[DiGraph, np.random.Generator], DiGraph] = field(compare=False)

    def weighted(self, graph: DiGraph, rng: np.random.Generator | None = None) -> DiGraph:
        """Return ``graph`` with this model's edge weights applied."""
        rng = np.random.default_rng(0) if rng is None else rng
        return self.assign(graph, rng)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


IC = PropagationModel(
    "IC", Dynamics.IC, lambda g, rng: weight_schemes.constant(g, 0.1)
)
WC = PropagationModel(
    "WC", Dynamics.IC, lambda g, rng: weight_schemes.weighted_cascade(g)
)
TV = PropagationModel(
    "TV", Dynamics.IC, lambda g, rng: weight_schemes.trivalency(g, rng=rng)
)
LT = PropagationModel(
    "LT", Dynamics.LT, lambda g, rng: weight_schemes.lt_uniform(g)
)
LT_RANDOM = PropagationModel(
    "LT-random", Dynamics.LT, lambda g, rng: weight_schemes.lt_random(g, rng=rng)
)

#: The three models every experiment section sweeps (Sec. 5.1).
STANDARD_MODELS: tuple[PropagationModel, ...] = (IC, WC, LT)

_BY_NAME = {m.name: m for m in (IC, WC, TV, LT, LT_RANDOM)}


def model_by_name(name: str) -> PropagationModel:
    """Look up a model by its paper name (``IC``, ``WC``, ``TV``, ``LT``...)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; options: {', '.join(_BY_NAME)}"
        ) from None


def weighted_graph(
    graph: DiGraph, model: PropagationModel, rng: np.random.Generator | None = None
) -> DiGraph:
    """Convenience wrapper for :meth:`PropagationModel.weighted`."""
    return model.weighted(graph, rng)

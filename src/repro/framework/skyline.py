"""Skyline analysis and the decision tree of Fig. 11.

The concluding insight of the paper: IM techniques stand on (at most two
of) three pillars — quality of spread, running-time efficiency, and main
memory footprint — and *no* technique stands on all three.  This module
computes the skyline (Pareto frontier) over measured (quality, time,
memory) triples, classifies techniques into the Q/E/M categories of
Fig. 11a, and encodes the decision tree of Fig. 11b.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "PillarScores",
    "skyline",
    "classify_pillars",
    "recommend",
]


@dataclass(frozen=True)
class PillarScores:
    """Measured performance of one technique (higher quality is better;
    lower time and memory are better)."""

    name: str
    quality: float
    time_seconds: float
    memory_mb: float

    def dominates(self, other: "PillarScores") -> bool:
        """Pareto dominance over (quality, time, memory)."""
        no_worse = (
            self.quality >= other.quality
            and self.time_seconds <= other.time_seconds
            and self.memory_mb <= other.memory_mb
        )
        strictly_better = (
            self.quality > other.quality
            or self.time_seconds < other.time_seconds
            or self.memory_mb < other.memory_mb
        )
        return no_worse and strictly_better


def skyline(scores: Iterable[PillarScores]) -> list[PillarScores]:
    """Techniques not Pareto-dominated by any other."""
    items = list(scores)
    return [
        s
        for s in items
        if not any(other.dominates(s) for other in items if other is not s)
    ]


def classify_pillars(
    scores: Sequence[PillarScores],
    quality_band: float = 0.95,
    time_band: float = 10.0,
    memory_band: float = 10.0,
) -> dict[str, set[str]]:
    """Assign each technique the pillars it stands on (Fig. 11a).

    A technique earns Q if its quality is within ``quality_band`` of the
    best; E if its time is within a factor ``time_band`` of the fastest;
    M if its memory is within a factor ``memory_band`` of the smallest.
    The generous factor bands mirror the paper's log-scale plots, where
    techniques within roughly one decade share a pillar.
    """
    if not scores:
        return {}
    best_quality = max(s.quality for s in scores)
    best_time = min(s.time_seconds for s in scores)
    best_memory = min(s.memory_mb for s in scores)
    assignment: dict[str, set[str]] = {}
    for s in scores:
        pillars: set[str] = set()
        if best_quality <= 0 or s.quality >= quality_band * best_quality:
            pillars.add("Q")
        if s.time_seconds <= time_band * max(best_time, 1e-12):
            pillars.add("E")
        if s.memory_mb <= memory_band * max(best_memory, 1e-12):
            pillars.add("M")
        assignment[s.name] = pillars
    return assignment


def recommend(model: str, memory_constrained: bool = False) -> str:
    """The decision tree of Fig. 11b.

    With ample memory: TIM+ for LT, IMM for WC, PMC for IC with uniform
    weights.  With scarce memory, EaSyIM "easily out-performs the other
    three techniques in memory footprint, while also generating reasonable
    quality and efficiency."
    """
    model = model.upper()
    if model not in ("IC", "WC", "LT", "TV"):
        raise ValueError(f"unknown model {model!r}")
    if memory_constrained:
        return "EaSyIM"
    if model == "LT":
        return "TIM+"
    if model == "WC":
        return "IMM"
    return "PMC"

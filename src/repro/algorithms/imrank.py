"""IMRank (Cheng et al., SIGIR'14) — rank-refinement seed selection.

Sec. 4.5: start from any cheap initial ranking, then repeatedly

1. run Last-to-First Allocation (LFA): walking the ranking from the last
   node to the first, every node passes a share of its expected influence
   mass to its higher-ranked in-neighbours (who would have activated it
   first), keeping the residual for itself;
2. re-sort nodes by the allocated mass Mr.

A self-consistent ranking is a fixed point.  The ``l`` parameter controls
the allocation depth: ``l = 1`` allocates along direct in-edges, ``l = 2``
also lets mass flow along two-hop paths to higher-ranked nodes (the
IMRank1/IMRank2 variants of the paper's figures).

Stopping criteria — the heart of myth M7:

* ``stopping="original"`` — stop as soon as the *top-k set* is unchanged
  between consecutive rounds.  The paper shows this exits too early
  (often after round 1), producing the pathological spread-vs-k curve of
  Fig. 10f.
* ``stopping="fixed"`` (default) — always run ``scoring_rounds`` rounds
  (10 in Table 2), the authors' suggested fix.  Even then the spread is
  not monotone in the number of rounds (Fig. 5), which the per-round
  rankings recorded in ``extras`` let the benchmarks demonstrate.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..diffusion.models import Dynamics, PropagationModel
from ..graph.digraph import DiGraph
from .base import Budget, IMAlgorithm

__all__ = ["IMRank"]


class IMRank(IMAlgorithm):
    """Self-consistent ranking via last-to-first influence allocation."""

    name = "IMRank"
    supported = (Dynamics.IC,)
    external_parameter = "#Scoring Rounds"

    def __init__(
        self,
        l: int = 1,
        scoring_rounds: int = 10,
        stopping: str = "fixed",
    ) -> None:
        if l not in (1, 2):
            raise ValueError("l must be 1 or 2")
        if scoring_rounds < 1:
            raise ValueError("scoring_rounds must be positive")
        if stopping not in ("fixed", "original"):
            raise ValueError("stopping must be 'fixed' or 'original'")
        self.l = l
        self.scoring_rounds = scoring_rounds
        self.stopping = stopping
        if l == 2:
            self.name = "IMRank2"
        else:
            self.name = "IMRank1"

    # ------------------------------------------------------------------

    def _lfa(self, graph: DiGraph, order: np.ndarray) -> np.ndarray:
        """One LFA sweep: returns the allocated influence mass Mr."""
        n = graph.n
        position = np.empty(n, dtype=np.int64)
        position[order] = np.arange(n)
        mr = np.ones(n, dtype=np.float64)
        # Last-ranked first: lower-ranked nodes surrender mass upward.
        for i in range(n - 1, 0, -1):
            v = int(order[i])
            src, w = graph.in_neighbors(v)
            if src.size == 0:
                continue
            higher = position[src] < i
            if not higher.any():
                continue
            # Higher-ranked in-neighbours claim shares in rank order.
            claimants = src[higher]
            probs = w[higher]
            by_rank = np.argsort(position[claimants], kind="stable")
            for j in by_rank:
                u = int(claimants[j])
                p = float(probs[j])
                mr[u] += p * mr[v]
                mr[v] *= 1.0 - p
                if self.l == 2:
                    # Depth-2 allocation: u's own higher-ranked
                    # in-neighbours receive a second-order share.
                    src2, w2 = graph.in_neighbors(u)
                    mask2 = position[src2] < position[u]
                    for u2, p2 in zip(src2[mask2], w2[mask2]):
                        share = p * p2 * mr[v]
                        mr[int(u2)] += share
                        mr[v] -= share
        return mr

    def _select(
        self,
        graph: DiGraph,
        k: int,
        model: PropagationModel,
        rng: np.random.Generator,
        budget: Budget | None,
    ) -> tuple[list[int], dict[str, Any]]:
        # Initial ranking: out-degree (a "simple ranking strategy", Sec 4.5).
        order = np.argsort(-graph.out_degree(), kind="stable")
        rankings: list[list[int]] = [list(map(int, order[:k]))]
        rounds_run = 0
        for __ in range(self.scoring_rounds):
            self._tick(budget)
            mr = self._lfa(graph, order)
            new_order = np.argsort(-mr, kind="stable")
            rounds_run += 1
            rankings.append(list(map(int, new_order[:k])))
            if self.stopping == "original" and set(new_order[:k].tolist()) == set(
                order[:k].tolist()
            ):
                order = new_order
                break
            order = new_order
        return list(map(int, order[:k])), {
            "rounds_run": rounds_run,
            "rankings_per_round": rankings,
            "stopping": self.stopping,
            "l": self.l,
        }

"""The IM algorithm zoo of Fig. 3: all benchmarked techniques + baselines."""

from .base import Budget, BudgetExceeded, IMAlgorithm, SeedSelectionResult
from .celf import CELF, CELFpp
from .easyim import EaSyIM
from .greedy import Greedy
from .heuristics import Degree, DegreeDiscount, PageRankHeuristic, SingleDiscount, pagerank
from .imm import IMM
from .imrank import IMRank
from .irie import IRIE
from .ldag import LDAG
from .pmc import PMC
from .pmia import PMIA
from .opinion_easyim import OpinionEaSyIM
from .ris import RIS
from .simpath import SIMPATH, simpath_spread
from .skim import SKIM
from .ssa import DSSA, SSA
from .static_greedy import StaticGreedy
from .tim import TIMPlus
from .registry import (
    ALGORITHMS,
    BENCHMARKED,
    OPTIMAL_PARAMETERS,
    accepts_parameter,
    make,
    make_tuned,
    optimal_parameters,
    support_matrix,
    supports,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "IMAlgorithm",
    "SeedSelectionResult",
    "CELF",
    "CELFpp",
    "EaSyIM",
    "Greedy",
    "Degree",
    "DegreeDiscount",
    "PageRankHeuristic",
    "SingleDiscount",
    "pagerank",
    "IMM",
    "IMRank",
    "IRIE",
    "LDAG",
    "PMC",
    "PMIA",
    "OpinionEaSyIM",
    "RIS",
    "SIMPATH",
    "simpath_spread",
    "SKIM",
    "SSA",
    "DSSA",
    "StaticGreedy",
    "TIMPlus",
    "ALGORITHMS",
    "BENCHMARKED",
    "OPTIMAL_PARAMETERS",
    "accepts_parameter",
    "make",
    "make_tuned",
    "optimal_parameters",
    "support_matrix",
    "supports",
]

"""Tests for IMRank: LFA allocation and the two stopping criteria (M7)."""

import numpy as np
import pytest

from repro.algorithms.imrank import IMRank
from repro.diffusion.models import IC, LT
from repro.graph.digraph import DiGraph


@pytest.fixture
def hub_graph():
    edges = [(0, i) for i in range(1, 8)] + [(8, 9)]
    return IC.weighted(DiGraph.from_edges(10, edges))


class TestLFA:
    def test_mass_conserved(self, hub_graph):
        algo = IMRank(l=1)
        order = np.argsort(-hub_graph.out_degree(), kind="stable")
        mr = algo._lfa(hub_graph, order)
        assert mr.sum() == pytest.approx(hub_graph.n)

    def test_influencer_gains_mass(self, hub_graph):
        algo = IMRank(l=1)
        order = np.argsort(-hub_graph.out_degree(), kind="stable")
        mr = algo._lfa(hub_graph, order)
        assert mr[0] > 1.0  # hub absorbs followers' mass
        assert mr[1] < 1.0  # a leaf of the hub surrenders mass

    def test_l2_allocates_deeper(self):
        # Chain 0 -> 1 -> 2: with l=2, node 0 receives mass from node 2 as
        # well, so its Mr exceeds the l=1 value.
        g = IC.weighted(DiGraph.from_edges(3, [(0, 1), (1, 2)]))
        order = np.array([0, 1, 2])
        mr1 = IMRank(l=1)._lfa(g, order)
        mr2 = IMRank(l=2)._lfa(g, order)
        assert mr2[0] > mr1[0]

    def test_no_allocation_to_lower_ranked(self):
        # If the only in-neighbour ranks lower, no mass moves.
        g = IC.weighted(DiGraph.from_edges(2, [(1, 0)]))
        order = np.array([0, 1])  # 0 ranked above 1
        mr = IMRank(l=1)._lfa(g, order)
        assert mr.tolist() == [1.0, 1.0]


class TestSelection:
    def test_finds_hub(self, hub_graph, rng):
        res = IMRank(l=1).select(hub_graph, 1, IC, rng=rng)
        assert res.seeds == [0]

    def test_l2_variant_named(self):
        assert IMRank(l=2).name == "IMRank2"
        assert IMRank(l=1).name == "IMRank1"

    def test_rejects_lt(self, hub_graph, rng):
        with pytest.raises(ValueError):
            IMRank().select(hub_graph, 1, LT, rng=rng)

    def test_fixed_stopping_runs_all_rounds(self, hub_graph, rng):
        res = IMRank(l=1, scoring_rounds=7, stopping="fixed").select(
            hub_graph, 2, IC, rng=rng
        )
        assert res.extras["rounds_run"] == 7

    def test_original_stopping_exits_early(self, hub_graph, rng):
        """M7: the original criterion stops as soon as top-k stabilizes,
        typically immediately on a graph with an obvious degree ranking."""
        res = IMRank(l=1, scoring_rounds=10, stopping="original").select(
            hub_graph, 2, IC, rng=rng
        )
        assert res.extras["rounds_run"] < 10

    def test_rankings_recorded_per_round(self, hub_graph, rng):
        res = IMRank(l=1, scoring_rounds=4).select(hub_graph, 3, IC, rng=rng)
        rankings = res.extras["rankings_per_round"]
        assert len(rankings) == 5  # initial + one per round
        assert all(len(r) == 3 for r in rankings)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IMRank(l=3)
        with pytest.raises(ValueError):
            IMRank(scoring_rounds=0)
        with pytest.raises(ValueError):
            IMRank(stopping="never")

"""Unit tests for the resilient worker pool (repro.framework.pool).

The pool is the single process fan-out substrate under all three engines,
so these tests pin its contract directly: chunk-order results, bounded
retry with quarantine, executor-collapse salvage, serial downgrade, env
configuration, and — the regression that motivated it — no orphan worker
processes after a mid-iteration interrupt.

Fault seeds are pinned: the injector's draw is
``sha256(f"{seed}:{index}:{attempt}")``, so which chunk faults on which
attempt is a pure function of (seed, rate) and the assertions below are
deterministic, not flaky.
"""

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.algorithms.base import IMAlgorithm
from repro.diffusion.models import Dynamics, WC
from repro.framework.metrics import STATUS_FAILED, run_with_budget
from repro.framework.pool import (
    ChunkFaultInjector,
    ChunkQuarantined,
    FaultSpec,
    PoolConfig,
    PoolError,
    ResilientPool,
    active_fault_spec,
    fault_fires,
    pool_retries_env,
    run_chunks,
)
from repro.framework.telemetry import Telemetry, activate
from repro.graph.digraph import DiGraph

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="process pools need fork/spawn support"
)


# -- module-level chunk functions (must pickle) -------------------------


def _square(x):
    return x * x


def _sleep_then(value, seconds):
    time.sleep(seconds)
    return value


def _always_raise(x):
    raise ValueError(f"chunk {x} is poison")


def _fail_first_attempts(state_dir, index, needed):
    """Raise until ``needed`` prior attempts of this chunk are on record.

    Cross-process attempt counting via marker files, so retries (which may
    land on a different worker) see the history.
    """
    prior = len([f for f in os.listdir(state_dir) if f.startswith(f"{index}.")])
    with open(os.path.join(state_dir, f"{index}.{prior}"), "w"):
        pass
    if prior < needed:
        raise RuntimeError(f"transient failure {prior} of chunk {index}")
    return index * 10


def _draw_bytes(seed_sequence_state, n):
    rng = np.random.default_rng(np.random.SeedSequence(**seed_sequence_state))
    return rng.random(n).tobytes()


# -- basic contract -----------------------------------------------------


class TestRunChunks:
    def test_empty_input(self):
        assert run_chunks(_square, []) == []

    def test_serial_paths_preserve_order(self):
        assert run_chunks(_square, [(i,) for i in range(5)], workers=1) == [
            0, 1, 4, 9, 16,
        ]
        assert run_chunks(_square, [(7,)], workers=8) == [49]

    def test_parallel_results_in_chunk_order(self):
        out = run_chunks(_square, [(i,) for i in range(8)], workers=3)
        assert out == [i * i for i in range(8)]

    def test_tick_called_per_chunk(self):
        calls = []
        run_chunks(_square, [(i,) for i in range(4)], workers=2,
                   tick=lambda: calls.append(1))
        assert len(calls) == 4
        calls.clear()
        run_chunks(_square, [(i,) for i in range(4)], workers=1,
                   tick=lambda: calls.append(1))
        assert len(calls) == 4

    def test_spawn_key_chunk_is_replayable(self):
        """The unit of work is self-describing: re-running it is identical."""
        state = {"entropy": 1234, "spawn_key": (3,)}
        assert _draw_bytes(state, 64) == _draw_bytes(dict(state), 64)


# -- retry / quarantine -------------------------------------------------


class TestRetryAndQuarantine:
    def test_transient_failure_retried_then_succeeds(self, tmp_path):
        tele = Telemetry()
        cfg = PoolConfig(retries=4, backoff_seconds=0.0)
        with activate(tele):
            out = run_chunks(
                _fail_first_attempts,
                [(str(tmp_path), i, 1 if i == 2 else 0) for i in range(4)],
                workers=2,
                config=cfg,
            )
        assert out == [0, 10, 20, 30]
        assert tele.counters["pool.chunk_retries"] == 1
        assert "pool.worker_restarts" not in tele.counters

    def test_poison_chunk_quarantined_with_details(self):
        cfg = PoolConfig(retries=2, backoff_seconds=0.0)
        pool = ResilientPool(cfg, label="unit")
        with pytest.raises(ChunkQuarantined) as err:
            pool.run(_always_raise, [(0,), (1,)], workers=2)
        details = err.value.details
        assert details["label"] == "unit"
        assert details["failed_attempts"] == 2
        assert "poison" in details["last_error"]

    def test_quarantine_maps_to_failed_taxonomy(self):
        gen = np.random.default_rng(0)
        g = WC.weighted(
            DiGraph.from_arrays(10, gen.integers(0, 10, 30), gen.integers(0, 10, 30))
        )
        record, result = run_with_budget(_QuarantineAlgo(), g, 2, WC)
        assert result is None
        assert record.status == STATUS_FAILED
        pool_detail = record.extras["failure"]["pool"]
        assert pool_detail["failed_attempts"] >= 1
        assert record.extras["failure"]["type"] == "ChunkQuarantined"


# -- fault injection: collapse, salvage, downgrade ----------------------


class TestFaultRecovery:
    """Pinned-seed fault schedules (see module docstring)."""

    BASELINE = [i * i for i in range(6)]

    def test_kill_salvages_and_restarts(self):
        tele = Telemetry()
        # seed 79 @ rate .25: only chunk 5 is killed, on attempt 0.  With 2
        # workers the first five chunks complete and commit before chunk 5
        # runs, so exactly 5 results are salvaged across the restart.
        with activate(tele), ChunkFaultInjector(mode="kill", rate=0.25, seed=79):
            out = run_chunks(_square, [(i,) for i in range(6)], workers=2)
        assert out == self.BASELINE
        assert tele.counters["pool.worker_restarts"] == 1
        assert tele.counters["pool.chunks_salvaged"] == 5
        assert "pool.serial_downgrades" not in tele.counters

    def test_corrupt_results_detected_and_retried(self):
        tele = Telemetry()
        # seed 0 @ rate .3: chunks 1, 2, 5 corrupt on attempt 0.
        with activate(tele), ChunkFaultInjector(mode="corrupt", rate=0.3, seed=0):
            out = run_chunks(_square, [(i,) for i in range(6)], workers=3)
        assert out == self.BASELINE
        assert tele.counters["pool.corrupt_results"] >= 3
        assert tele.counters["pool.chunk_retries"] >= 3

    def test_hang_reclaimed_by_stall_timeout(self):
        tele = Telemetry()
        # seed 22 @ rate .2: only chunk 3 hangs, on attempt 0.
        with activate(tele), ChunkFaultInjector(
            mode="hang", rate=0.2, seed=22, hang_seconds=30.0, stall_timeout=0.75
        ):
            out = run_chunks(_square, [(i,) for i in range(4)], workers=4)
        assert out == [0, 1, 4, 9]
        assert tele.counters["pool.worker_restarts"] >= 1

    def test_serial_downgrade_is_correct_and_counted(self):
        tele = Telemetry()
        cfg = PoolConfig(max_restarts=0, backoff_seconds=0.0)
        with activate(tele), ChunkFaultInjector(mode="kill", rate=1.0, seed=0):
            out = run_chunks(_square, [(i,) for i in range(6)], workers=3,
                             config=cfg)
        assert out == self.BASELINE
        assert tele.counters["pool.serial_downgrades"] == 1

    def test_downgraded_serial_failure_still_quarantines(self):
        cfg = PoolConfig(max_restarts=0, retries=1, backoff_seconds=0.0)
        with ChunkFaultInjector(mode="kill", rate=1.0, seed=0):
            with pytest.raises(ChunkQuarantined):
                run_chunks(_always_raise, [(0,), (1,)], workers=2, config=cfg)


# -- configuration ------------------------------------------------------


class TestConfiguration:
    def test_pool_config_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_POOL_RETRIES", "7")
        monkeypatch.setenv("REPRO_POOL_MAX_RESTARTS", "2")
        monkeypatch.setenv("REPRO_POOL_STALL_TIMEOUT", "1.5")
        cfg = PoolConfig.from_env()
        assert cfg.retries == 7
        assert cfg.max_restarts == 2
        assert cfg.stall_timeout_seconds == 1.5

    def test_pool_retries_env_scoped_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_POOL_RETRIES", raising=False)
        with pool_retries_env(9):
            assert PoolConfig.from_env().retries == 9
        assert PoolConfig.from_env().retries == PoolConfig().retries
        with pool_retries_env(None):  # no-op passthrough
            assert PoolConfig.from_env().retries == PoolConfig().retries

    def test_injector_arms_and_restores_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_RATE", raising=False)
        assert active_fault_spec() is None
        with ChunkFaultInjector(mode="raise", rate=0.5, seed=3):
            spec = active_fault_spec()
            assert spec is not None
            assert (spec.mode, spec.rate, spec.seed) == ("raise", 0.5, 3)
        assert active_fault_spec() is None

    def test_injector_rejects_bad_modes(self):
        with pytest.raises(ValueError):
            ChunkFaultInjector(mode="meltdown")
        with pytest.raises(ValueError):
            ChunkFaultInjector(rate=1.5)

    def test_fault_draw_is_deterministic(self):
        spec = FaultSpec(mode="kill", rate=0.25, seed=0)
        draws = [fault_fires(spec, i, a) for i in range(6) for a in range(3)]
        assert draws == [fault_fires(spec, i, a) for i in range(6) for a in range(3)]
        none = FaultSpec(mode="kill", rate=0.0, seed=0)
        assert not any(fault_fires(none, i, 0) for i in range(64))


# -- satellite regression: no orphan workers on interrupt ---------------


class TestNoOrphans:
    def test_interrupt_mid_iteration_leaves_no_orphan_processes(self):
        """Ctrl-C while chunks are in flight must terminate the workers.

        ``tick`` raises ``KeyboardInterrupt`` as soon as the first (fast)
        chunk commits while three others are still sleeping; the pool's
        forced shutdown must terminate those workers rather than leaving
        them to finish 30-second sleeps as orphans.
        """
        before = {p.pid for p in multiprocessing.active_children()}

        def tick():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_chunks(
                _sleep_then,
                [(0, 0.0), (1, 30.0), (2, 30.0), (3, 30.0)],
                workers=4,
                tick=tick,
            )
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            leftover = {
                p.pid for p in multiprocessing.active_children()
            } - before
            if not leftover:
                break
            time.sleep(0.05)
        assert not leftover, f"orphan worker processes survived: {leftover}"


# -- helpers for the taxonomy test --------------------------------------


class _QuarantineAlgo(IMAlgorithm):
    """Algorithm whose fan-out hits a poison chunk — must map to FAILED."""

    name = "QuarantineAlgo"
    supported = (Dynamics.IC,)

    def _select(self, graph, k, model, rng, budget):
        run_chunks(
            _always_raise,
            [(0,), (1,)],
            workers=2,
            config=PoolConfig(retries=1, backoff_seconds=0.0),
        )
        return list(range(k)), {}
